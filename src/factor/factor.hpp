#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bigint/bigint.hpp"
#include "core/task.hpp"
#include "par/generic.hpp"

/// The brute-force weak-RSA-key search of paper Section 5.2.
///
/// A "weak" RSA modulus is N = P * (P + D) with a small difference D.
/// Given N, a candidate difference D yields P directly:
///
///   P^2 + D*P - N = 0   =>   P = (sqrt(D^2 + 4N) - D) / 2,
///
/// which is an integer exactly when D^2 + 4N is a perfect square.  The
/// search space of even differences is split into batches (the paper uses
/// 32 even values of D per worker task); each worker task scans its batch,
/// and the consumer task reports success.
namespace dpn::factor {

using bigint::BigInt;

/// A generated test instance with known ground truth.
struct FactorProblem {
  BigInt n;              // public modulus, P * (P + d_true)
  BigInt p;              // ground truth
  std::uint64_t d_true;  // even difference between the factors

  /// Builds an instance whose factor is found in the final batch of
  /// `total_tasks` tasks of `batch` even differences each, matching the
  /// paper's setup ("the factor P would be found after executing 2048
  /// worker tasks", batch 32).
  static FactorProblem generate(std::uint64_t seed, std::size_t prime_bits,
                                std::uint64_t total_tasks,
                                std::uint64_t batch = 32);
};

/// Scans even differences d_start, d_start+2, ..., (count values) for a
/// factorization of n.  Returns the factor if found.
std::optional<BigInt> scan_differences(const BigInt& n, std::uint64_t d_start,
                                       std::uint64_t count);

/// Result of a worker task; consumed by FactorConsumerTask.
class FactorResultTask final : public core::Task {
 public:
  bool found = false;
  BigInt p;  // valid when found
  BigInt q;
  std::uint64_t d_start = 0;  // batch identity (for order verification)
  bool announce = true;       // print on success (benchmarks turn this off)

  /// Consumer side: prints on success (if announcing) and requests stop.
  std::shared_ptr<core::Task> run() override;

  std::string type_name() const override { return "dpn.factor.Result"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<FactorResultTask> read_object(
      serial::ObjectInputStream& in);
};

/// Worker side: scans one batch of differences.
class FactorWorkerTask final : public core::Task {
 public:
  FactorWorkerTask() = default;
  FactorWorkerTask(BigInt n, std::uint64_t d_start, std::uint64_t count,
                   bool announce = true)
      : n_(std::move(n)), d_start_(d_start), count_(count),
        announce_(announce) {}

  std::shared_ptr<core::Task> run() override;

  std::uint64_t d_start() const { return d_start_; }
  std::uint64_t count() const { return count_; }

  std::string type_name() const override { return "dpn.factor.Worker"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<FactorWorkerTask> read_object(
      serial::ObjectInputStream& in);

 private:
  BigInt n_;
  std::uint64_t d_start_ = 0;
  std::uint64_t count_ = 32;
  bool announce_ = true;
};

/// Producer side: splits the difference space into batches.  Yields
/// `total_tasks` worker tasks, then null (ending the search).
class FactorProducerTask final : public core::Task {
 public:
  FactorProducerTask() = default;
  FactorProducerTask(BigInt n, std::uint64_t total_tasks,
                     std::uint64_t batch = 32, bool announce = true)
      : n_(std::move(n)), remaining_(total_tasks), batch_(batch),
        announce_(announce) {}

  std::shared_ptr<core::Task> run() override;

  std::string type_name() const override { return "dpn.factor.Producer"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<FactorProducerTask> read_object(
      serial::ObjectInputStream& in);

 private:
  BigInt n_;
  std::uint64_t next_d_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t batch_ = 32;
  bool announce_ = true;
};

/// Reference implementation without process networks: directly invokes
/// the producer/worker/consumer task run() methods in a loop, as the
/// paper's Table 1 sequential baseline does.  Returns the found factor.
std::optional<BigInt> run_sequential(const BigInt& n,
                                     std::uint64_t total_tasks,
                                     std::uint64_t batch = 32);

}  // namespace dpn::factor
