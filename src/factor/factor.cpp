#include "factor/factor.hpp"

#include <cstdio>

namespace dpn::factor {

FactorProblem FactorProblem::generate(std::uint64_t seed,
                                      std::size_t prime_bits,
                                      std::uint64_t total_tasks,
                                      std::uint64_t batch) {
  if (total_tasks == 0 || batch == 0) {
    throw UsageError{"FactorProblem needs at least one task and batch"};
  }
  Xoshiro256 rng{seed};
  const BigInt p = BigInt::random_prime(rng, prime_bits);
  // Place the true difference inside the *last* batch so the search runs
  // the full task count, as in the paper's experiment.
  const std::uint64_t last_batch_start = 2 * batch * (total_tasks - 1);
  const std::uint64_t offset = 2 * rng.below(batch);
  FactorProblem problem;
  problem.d_true = last_batch_start + offset;
  problem.p = p;
  problem.n = p * (p + BigInt{static_cast<std::int64_t>(problem.d_true)});
  return problem;
}

std::optional<BigInt> scan_differences(const BigInt& n, std::uint64_t d_start,
                                       std::uint64_t count) {
  const BigInt four_n = n << 2;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t d = d_start + 2 * i;
    const BigInt big_d{static_cast<std::int64_t>(d)};
    const BigInt discriminant = big_d * big_d + four_n;
    BigInt root;
    if (!BigInt::perfect_square(discriminant, &root)) continue;
    const BigInt p = (root - big_d) >> 1;
    if (p.is_zero() || p.is_negative()) continue;
    if (p * (p + big_d) == n) return p;
  }
  return std::nullopt;
}

std::shared_ptr<core::Task> FactorResultTask::run() {
  if (!found) return nullptr;
  if (announce) std::printf("factor: N = P * Q with P = %s, Q = %s (D = %llu)\n",
              p.to_decimal().c_str(), q.to_decimal().c_str(),
              static_cast<unsigned long long>((q - p).to_u64()));
  std::fflush(stdout);
  return std::make_shared<par::StopSignal>();
}

void FactorResultTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_bool(found);
  out.write_u64(d_start);
  out.write_bool(announce);
  // BigInts as decimal strings keeps the wire format simple and testable.
  out.write_string(p.to_hex());
  out.write_string(q.to_hex());
}

std::shared_ptr<FactorResultTask> FactorResultTask::read_object(
    serial::ObjectInputStream& in) {
  auto task = std::make_shared<FactorResultTask>();
  task->found = in.read_bool();
  task->d_start = in.read_u64();
  task->announce = in.read_bool();
  task->p = BigInt::from_hex(in.read_string());
  task->q = BigInt::from_hex(in.read_string());
  return task;
}

std::shared_ptr<core::Task> FactorWorkerTask::run() {
  auto result = std::make_shared<FactorResultTask>();
  result->d_start = d_start_;
  result->announce = announce_;
  if (auto p = scan_differences(n_, d_start_, count_)) {
    result->found = true;
    result->p = *p;
    result->q = n_ / *p;
  }
  return result;
}

void FactorWorkerTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_string(n_.to_hex());
  out.write_u64(d_start_);
  out.write_u64(count_);
  out.write_bool(announce_);
}

std::shared_ptr<FactorWorkerTask> FactorWorkerTask::read_object(
    serial::ObjectInputStream& in) {
  auto task = std::make_shared<FactorWorkerTask>();
  task->n_ = BigInt::from_hex(in.read_string());
  task->d_start_ = in.read_u64();
  task->count_ = in.read_u64();
  task->announce_ = in.read_bool();
  return task;
}

std::shared_ptr<core::Task> FactorProducerTask::run() {
  if (remaining_ == 0) return nullptr;
  --remaining_;
  auto task =
      std::make_shared<FactorWorkerTask>(n_, next_d_, batch_, announce_);
  next_d_ += 2 * batch_;
  return task;
}

void FactorProducerTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_string(n_.to_hex());
  out.write_u64(next_d_);
  out.write_u64(remaining_);
  out.write_u64(batch_);
  out.write_bool(announce_);
}

std::shared_ptr<FactorProducerTask> FactorProducerTask::read_object(
    serial::ObjectInputStream& in) {
  auto task = std::make_shared<FactorProducerTask>();
  task->n_ = BigInt::from_hex(in.read_string());
  task->next_d_ = in.read_u64();
  task->remaining_ = in.read_u64();
  task->batch_ = in.read_u64();
  task->announce_ = in.read_bool();
  return task;
}

std::optional<BigInt> run_sequential(const BigInt& n,
                                     std::uint64_t total_tasks,
                                     std::uint64_t batch) {
  FactorProducerTask producer{n, total_tasks, batch};
  std::optional<BigInt> found;
  for (;;) {
    auto worker_task = producer.run();
    if (!worker_task) break;
    auto result = std::dynamic_pointer_cast<FactorResultTask>(
        worker_task->run());
    if (result && result->found && !found) found = result->p;
  }
  return found;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<FactorResultTask>("dpn.factor.Result") &&
    serial::register_type<FactorWorkerTask>("dpn.factor.Worker") &&
    serial::register_type<FactorProducerTask>("dpn.factor.Producer");
}

}  // namespace dpn::factor
