#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "par/schema.hpp"

/// Simulation of the paper's heterogeneous cluster (Section 5.2).
///
/// The original experiment ran on 25 computers / 34 CPUs in five speed
/// classes connected by 100 Mb/s ethernet.  We reproduce the *shape* of
/// Tables 1/2 and Figures 19/20 on one machine by giving each simulated
/// worker a speed multiplier: a task whose nominal cost is c seconds (on
/// the reference 1 GHz Pentium III, class C) takes c / speed wall-clock
/// seconds on a worker of that class.  The worker really executes the
/// task (the BigInt scan runs for real) and then a calibrated sleep makes
/// up the remainder, so dozens of simulated CPUs coexist on a small host
/// without distorting each other's timing.
namespace dpn::cluster {

struct CpuClass {
  char name;
  std::string description;
  double sequential_minutes;  // Table 1, measured on the real hardware
  double speed;               // normalized to class C = 1.00
  int cpus;                   // CPUs of this class in the fleet
};

/// The five classes of Table 1 with the paper's timings; speeds are
/// normalized to class C (22.50 minutes = 1.00).
const std::vector<CpuClass>& table1_classes();

/// Per-worker speeds for the paper's 34-CPU fleet, fastest classes first
/// (the assignment order used for Table 2: A, 6xB, 15xC, 4xD, 8xE).
/// Worker 8 is the first class-C CPU and worker 27 the first class-E CPU
/// -- the two inflection points of Figure 20.
std::vector<double> fleet_speeds();

/// Ideal elapsed time for `workers` CPUs (paper Section 5.2): the ideal
/// speed is the sum of the first `workers` fleet speeds, and the time
/// scales the class-C sequential time by it.
double ideal_speed(std::size_t workers);
double ideal_time(double class_c_sequential_seconds, std::size_t workers);

/// A par::Worker that emulates a CPU of the given speed: each task takes
/// task_seconds / speed wall-clock time (real compute + calibrated sleep).
class ThrottledWorker final : public par::IterativeProcess {
 public:
  ThrottledWorker(std::shared_ptr<par::ChannelInputStream> in,
                  std::shared_ptr<par::ChannelOutputStream> out, double speed,
                  double task_seconds);

  std::string type_name() const override { return "dpn.cluster.Worker"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<ThrottledWorker> read_object(
      serial::ObjectInputStream& in);

  double speed() const { return speed_; }
  std::size_t tasks_processed() const { return tasks_processed_; }

 protected:
  void step() override;

 private:
  ThrottledWorker() = default;
  double speed_ = 1.0;
  double task_seconds_ = 0.0;
  std::size_t tasks_processed_ = 0;
};

/// Worker factory for par::meta_static / meta_dynamic: slot i gets
/// speeds[i].  `task_seconds` is the nominal class-C cost of one task.
par::WorkerFactory throttled_factory(std::vector<double> speeds,
                                     double task_seconds);

/// Emulates the sequential run of Table 1: total_tasks tasks, each costing
/// task_seconds at class-C speed, run at `speed`.  Returns wall seconds.
/// The tasks really execute (the workload is the factor scan).
double run_sequential_throttled(const bigint::BigInt& n,
                                std::uint64_t total_tasks,
                                std::uint64_t batch, double speed,
                                double task_seconds);

}  // namespace dpn::cluster
