#include "cluster/cluster.hpp"

#include <chrono>
#include <thread>

#include "factor/factor.hpp"
#include "support/stopwatch.hpp"

namespace dpn::cluster {

namespace {
constexpr double kClassCMinutes = 22.50;
}

const std::vector<CpuClass>& table1_classes() {
  static const std::vector<CpuClass> kClasses = {
      {'A', "2.4 GHz Pentium 4", 11.63, kClassCMinutes / 11.63, 1},
      {'B', "2.2 GHz Pentium 4", 13.13, kClassCMinutes / 13.13, 6},
      {'C', "1.0 GHz Pentium III", 22.50, 1.00, 15},
      {'D', "dual 933 MHz Pentium III", 22.78, kClassCMinutes / 22.78, 4},
      {'E', "8 x 700 MHz Pentium III Xeon", 28.14, kClassCMinutes / 28.14, 8},
  };
  return kClasses;
}

std::vector<double> fleet_speeds() {
  std::vector<double> speeds;
  for (const CpuClass& cls : table1_classes()) {
    for (int i = 0; i < cls.cpus; ++i) speeds.push_back(cls.speed);
  }
  return speeds;  // 34 CPUs, fastest classes first
}

double ideal_speed(std::size_t workers) {
  const std::vector<double> speeds = fleet_speeds();
  double total = 0.0;
  for (std::size_t i = 0; i < workers && i < speeds.size(); ++i) {
    total += speeds[i];
  }
  return total;
}

double ideal_time(double class_c_sequential_seconds, std::size_t workers) {
  const double speed = ideal_speed(workers);
  return speed > 0 ? class_c_sequential_seconds / speed
                   : class_c_sequential_seconds;
}

ThrottledWorker::ThrottledWorker(std::shared_ptr<par::ChannelInputStream> in,
                                 std::shared_ptr<par::ChannelOutputStream> out,
                                 double speed, double task_seconds)
    : speed_(speed), task_seconds_(task_seconds) {
  if (speed <= 0) throw UsageError{"worker speed must be positive"};
  track_input(std::move(in));
  track_output(std::move(out));
}

void ThrottledWorker::step() {
  io::DataInputStream in{input(0)};
  auto task = par::read_task(in);
  if (!task) throw SerializationError{"throttled worker got a null task"};

  Stopwatch watch;
  auto result = task->run();
  const double target = task_seconds_ / speed_;
  const double remaining = target - watch.elapsed_seconds();
  if (remaining > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
  }
  ++tasks_processed_;

  io::DataOutputStream out{output(0)};
  par::write_task(out, result);
}

void ThrottledWorker::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_f64(speed_);
  out.write_f64(task_seconds_);
}

std::shared_ptr<ThrottledWorker> ThrottledWorker::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<ThrottledWorker>(new ThrottledWorker);
  process->read_base(in);
  process->speed_ = in.read_f64();
  process->task_seconds_ = in.read_f64();
  return process;
}

par::WorkerFactory throttled_factory(std::vector<double> speeds,
                                     double task_seconds) {
  return [speeds = std::move(speeds), task_seconds](
             std::size_t index, std::shared_ptr<par::ChannelInputStream> in,
             std::shared_ptr<par::ChannelOutputStream> out)
             -> std::shared_ptr<core::Process> {
    if (index >= speeds.size()) {
      throw UsageError{"not enough CPUs in the simulated fleet"};
    }
    return std::make_shared<ThrottledWorker>(std::move(in), std::move(out),
                                             speeds[index], task_seconds);
  };
}

double run_sequential_throttled(const bigint::BigInt& n,
                                std::uint64_t total_tasks,
                                std::uint64_t batch, double speed,
                                double task_seconds) {
  Stopwatch total;
  factor::FactorProducerTask producer{n, total_tasks, batch};
  for (;;) {
    auto worker_task = producer.run();
    if (!worker_task) break;
    Stopwatch watch;
    auto result = worker_task->run();
    (void)result;
    const double target = task_seconds / speed;
    const double remaining = target - watch.elapsed_seconds();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
    }
  }
  return total.elapsed_seconds();
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<ThrottledWorker>("dpn.cluster.Worker");
}

}  // namespace dpn::cluster
