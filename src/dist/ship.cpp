#include "dist/ship.hpp"

#include <mutex>

#include "dist/remote_streams.hpp"
#include "io/memory.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace dpn::dist {
namespace {

std::shared_ptr<SendContext> send_context(serial::ObjectOutputStream& out) {
  if (const auto* ctx =
          std::any_cast<std::shared_ptr<SendContext>>(&out.attachment())) {
    return *ctx;
  }
  throw UsageError{
      "channel endpoints can only be serialized through "
      "dpn::dist::ship_process / ship_object"};
}

std::shared_ptr<ReceiveContext> receive_context(
    serial::ObjectInputStream& in) {
  if (const auto* ctx =
          std::any_cast<std::shared_ptr<ReceiveContext>>(&in.attachment())) {
    return *ctx;
  }
  // Deserialization outside a compute server (tests, tools): attach a
  // context bound to the process-wide default node.
  auto ctx = std::make_shared<ReceiveContext>();
  ctx->node = NodeContext::default_node();
  in.set_attachment(ctx);
  return ctx;
}

/// Replaces the moving consumer endpoint of a cut channel (Section 4.2).
/// Resolves on the destination into a live ChannelInputStream whose
/// sequence is [unconsumed bytes][socket segment].
class RemoteInputStub final : public serial::Serializable {
 public:
  bool live = false;
  ByteVector buffered;
  std::string host;
  std::uint32_t port = 0;
  std::uint64_t token = 0;
  std::string label;
  std::uint64_t capacity = io::Pipe::kDefaultCapacity;
  // Endpoint buffering config; the reconstructed endpoint keeps the
  // channel's performance profile.
  std::uint64_t read_buffer = 0;
  // Consumer-side traffic counters travel with the endpoint so a shipped
  // channel's metrics survive migration.
  std::uint64_t bytes_read = 0;
  std::uint64_t tokens_read = 0;
  // Remote tuning (ChannelOptions::RemoteTuning) travels too.
  std::uint64_t credit_window = 0;
  std::uint64_t coalesce_bytes = 0;

  std::string type_name() const override { return "dpn.RemoteInputStub"; }

  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_bool(live);
    out.write_bytes({buffered.data(), buffered.size()});
    out.write_string(host);
    out.write_u32(port);
    out.write_u64(token);
    out.write_string(label);
    out.write_u64(capacity);
    out.write_u64(read_buffer);
    out.write_u64(bytes_read);
    out.write_u64(tokens_read);
    out.write_u64(credit_window);
    out.write_u64(coalesce_bytes);
  }

  static std::shared_ptr<RemoteInputStub> read_object(
      serial::ObjectInputStream& in) {
    auto stub = std::make_shared<RemoteInputStub>();
    stub->live = in.read_bool();
    stub->buffered = in.read_bytes();
    stub->host = in.read_string();
    stub->port = in.read_u32();
    stub->token = in.read_u64();
    stub->label = in.read_string();
    stub->capacity = in.read_u64();
    stub->read_buffer = in.read_u64();
    stub->bytes_read = in.read_u64();
    stub->tokens_read = in.read_u64();
    stub->credit_window = in.read_u64();
    stub->coalesce_bytes = in.read_u64();
    return stub;
  }

  std::shared_ptr<serial::Serializable> read_resolve(
      serial::ObjectInputStream& in) override {
    auto ctx = receive_context(in);
    auto state = std::make_shared<core::ChannelState>();
    state->pipe = nullptr;  // the producer is on another server
    state->capacity = static_cast<std::size_t>(capacity);
    state->label = label;
    state->read_buffer = static_cast<std::size_t>(read_buffer);
    state->output_remote = true;
    state->remote.credit_window = static_cast<std::size_t>(credit_window);
    state->remote.coalesce_bytes = static_cast<std::size_t>(coalesce_bytes);
    state->metrics->bytes_read.store(bytes_read, std::memory_order_relaxed);
    state->metrics->tokens_read.store(tokens_read, std::memory_order_relaxed);

    auto sequence = std::make_shared<io::SequenceInputStream>();
    if (!buffered.empty()) {
      sequence->append(
          std::make_shared<io::MemoryInputStream>(std::move(buffered)));
    }
    if (live) {
      // Dial back to the node that kept the producer (the paper's
      // "establishes a network connection back to the waiting
      // RemoteOutputStream").  The channel's credit window doubles as the
      // mux stream's receive window: the transport never buffers more
      // than the channel would accept.
      auto stream = RendezvousService::dial(
          host, static_cast<std::uint16_t>(port), token,
          ctx->node->address(), static_cast<std::size_t>(credit_window));
      auto segment = std::make_shared<FrameChannelInput>(
          std::move(stream), ctx->node,
          static_cast<std::uint32_t>(coalesce_bytes),
          PeerAddress{host, static_cast<std::uint16_t>(port)}, token);
      segment->set_parent_sequence(sequence);
      ctx->node->register_remote_input(segment);
      sequence->append(std::move(segment));
    }
    auto endpoint = std::make_shared<core::ChannelInputStream>(
        state, std::move(sequence));
    state->input = endpoint;
    return endpoint;
  }
};

/// Replaces the moving producer endpoint of a cut channel.
class RemoteOutputStub final : public serial::Serializable {
 public:
  bool dead = false;  // consumer terminated before the shipment
  std::string host;
  std::uint32_t port = 0;
  std::uint64_t token = 0;
  std::string label;
  std::uint64_t capacity = io::Pipe::kDefaultCapacity;
  std::uint64_t write_buffer = 0;
  // Producer-side traffic counters; see RemoteInputStub.
  std::uint64_t bytes_written = 0;
  std::uint64_t tokens_written = 0;
  // Remote tuning (ChannelOptions::RemoteTuning).
  std::uint64_t credit_window = 0;
  std::uint64_t coalesce_bytes = 0;

  std::string type_name() const override { return "dpn.RemoteOutputStub"; }

  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_bool(dead);
    out.write_string(host);
    out.write_u32(port);
    out.write_u64(token);
    out.write_string(label);
    out.write_u64(capacity);
    out.write_u64(write_buffer);
    out.write_u64(bytes_written);
    out.write_u64(tokens_written);
    out.write_u64(credit_window);
    out.write_u64(coalesce_bytes);
  }

  static std::shared_ptr<RemoteOutputStub> read_object(
      serial::ObjectInputStream& in) {
    auto stub = std::make_shared<RemoteOutputStub>();
    stub->dead = in.read_bool();
    stub->host = in.read_string();
    stub->port = in.read_u32();
    stub->token = in.read_u64();
    stub->label = in.read_string();
    stub->capacity = in.read_u64();
    stub->write_buffer = in.read_u64();
    stub->bytes_written = in.read_u64();
    stub->tokens_written = in.read_u64();
    stub->credit_window = in.read_u64();
    stub->coalesce_bytes = in.read_u64();
    return stub;
  }

  std::shared_ptr<serial::Serializable> read_resolve(
      serial::ObjectInputStream& in) override {
    auto ctx = receive_context(in);
    auto state = std::make_shared<core::ChannelState>();
    state->pipe = nullptr;
    state->capacity = static_cast<std::size_t>(capacity);
    state->label = label;
    state->write_buffer = static_cast<std::size_t>(write_buffer);
    state->input_remote = true;
    state->remote.credit_window = static_cast<std::size_t>(credit_window);
    state->remote.coalesce_bytes = static_cast<std::size_t>(coalesce_bytes);
    state->metrics->bytes_written.store(bytes_written,
                                        std::memory_order_relaxed);
    state->metrics->tokens_written.store(tokens_written,
                                         std::memory_order_relaxed);

    std::shared_ptr<io::OutputStream> sink;
    if (dead) {
      sink = std::make_shared<DeadOutputStream>();
    } else {
      auto stream = RendezvousService::dial(
          host, static_cast<std::uint16_t>(port), token,
          ctx->node->address());
      auto remote = std::make_shared<FrameChannelOutput>(
          std::move(stream),
          PeerAddress{host, static_cast<std::uint16_t>(port)}, ctx->node,
          static_cast<std::size_t>(credit_window));
      // The consumer knows us by the token we just dialed with; its
      // teardown CLOSE must find this endpoint's credit wait.
      ctx->node->register_credit_waiter(token, remote);
      sink = std::move(remote);
    }
    auto sequence =
        std::make_shared<io::SequenceOutputStream>(std::move(sink));
    auto endpoint = std::make_shared<core::ChannelOutputStream>(
        state, std::move(sequence));
    state->output = endpoint;
    return endpoint;
  }
};

/// One endpoint of a channel wholly inside the shipment.  The first stub
/// of a pair carries the channel's metadata and unconsumed bytes; the
/// destination rebuilds one local pipe per shipment-local pipe id.
class LocalPairStub final : public serial::Serializable {
 public:
  std::uint64_t pipe_id = 0;
  std::uint8_t role = 0;  // 0 = input endpoint, 1 = output endpoint
  bool has_meta = false;
  std::uint64_t capacity = io::Pipe::kDefaultCapacity;
  std::string label;
  ByteVector buffered;
  bool write_closed = false;
  bool read_closed = false;
  std::uint64_t write_buffer = 0;
  std::uint64_t read_buffer = 0;
  std::uint64_t credit_window = 0;
  std::uint64_t coalesce_bytes = 0;
  // Full traffic counters: the whole channel moves, so both directions'
  // metrics travel with the metadata stub.
  std::uint64_t bytes_written = 0;
  std::uint64_t tokens_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t tokens_read = 0;

  std::string type_name() const override { return "dpn.LocalPairStub"; }

  void write_fields(serial::ObjectOutputStream& out) const override {
    out.write_u64(pipe_id);
    out.write_u8(role);
    out.write_bool(has_meta);
    if (has_meta) {
      out.write_u64(capacity);
      out.write_string(label);
      out.write_bytes({buffered.data(), buffered.size()});
      out.write_bool(write_closed);
      out.write_bool(read_closed);
      out.write_u64(write_buffer);
      out.write_u64(read_buffer);
      out.write_u64(credit_window);
      out.write_u64(coalesce_bytes);
      out.write_u64(bytes_written);
      out.write_u64(tokens_written);
      out.write_u64(bytes_read);
      out.write_u64(tokens_read);
    }
  }

  static std::shared_ptr<LocalPairStub> read_object(
      serial::ObjectInputStream& in) {
    auto stub = std::make_shared<LocalPairStub>();
    stub->pipe_id = in.read_u64();
    stub->role = in.read_u8();
    stub->has_meta = in.read_bool();
    if (stub->has_meta) {
      stub->capacity = in.read_u64();
      stub->label = in.read_string();
      stub->buffered = in.read_bytes();
      stub->write_closed = in.read_bool();
      stub->read_closed = in.read_bool();
      stub->write_buffer = in.read_u64();
      stub->read_buffer = in.read_u64();
      stub->credit_window = in.read_u64();
      stub->coalesce_bytes = in.read_u64();
      stub->bytes_written = in.read_u64();
      stub->tokens_written = in.read_u64();
      stub->bytes_read = in.read_u64();
      stub->tokens_read = in.read_u64();
    }
    return stub;
  }

  std::shared_ptr<serial::Serializable> read_resolve(
      serial::ObjectInputStream& in) override {
    auto ctx = receive_context(in);
    auto& channel = ctx->channels[pipe_id];
    if (has_meta) {
      if (channel) {
        throw SerializationError{"duplicate channel metadata in shipment"};
      }
      const std::size_t cap = std::max<std::size_t>(
          static_cast<std::size_t>(capacity), buffered.size());
      channel = std::make_shared<core::Channel>(core::ChannelOptions{
          cap, label, static_cast<std::size_t>(write_buffer),
          static_cast<std::size_t>(read_buffer),
          {static_cast<std::size_t>(credit_window),
           static_cast<std::size_t>(coalesce_bytes)}});
      if (!buffered.empty()) {
        channel->pipe()->write({buffered.data(), buffered.size()});
      }
      if (write_closed) channel->pipe()->close_write();
      if (read_closed) channel->pipe()->close_read();
      auto& metrics = *channel->state()->metrics;
      metrics.bytes_written.store(bytes_written, std::memory_order_relaxed);
      metrics.tokens_written.store(tokens_written, std::memory_order_relaxed);
      metrics.bytes_read.store(bytes_read, std::memory_order_relaxed);
      metrics.tokens_read.store(tokens_read, std::memory_order_relaxed);
    } else if (!channel) {
      throw SerializationError{
          "channel endpoint stub arrived before its metadata"};
    }
    if (role == 0) return channel->input();
    return channel->output();
  }
};

/// Publishes a buffered producer's coalesced bytes into the pipe so the
/// cut sees exact byte positions.  A dead reader means the bytes would be
/// discarded anyway, so ChannelClosed is swallowed.
void flush_producer(const std::shared_ptr<core::ChannelState>& state) {
  auto producer = state->output.lock();
  if (!producer) return;
  try {
    producer->flush();
  } catch (const ChannelClosed&) {
  }
}

/// The channel's unconsumed history at a cut: the consumer's read-ahead
/// bytes (pulled from the pipe first, so the older prefix) followed by the
/// bytes still in the pipe.  Any producer write buffer must have been
/// flushed into the pipe beforehand.
ByteVector drain_unconsumed(const std::shared_ptr<core::ChannelState>& state) {
  ByteVector out;
  if (auto consumer = state->input.lock()) {
    out = consumer->take_read_buffer();
  }
  ByteVector piped = state->pipe->steal_buffer();
  out.insert(out.end(), piped.begin(), piped.end());
  return out;
}

/// Retires a channel's typed fast path at a ship cut (io/typed_ring.hpp):
/// the ring's backlog is encoded into the byte plane -- in order, ahead of
/// anything the producer writes after the demotion -- and both typed
/// endpoints fall back to byte streams.  Normally the backlog lands in the
/// pipe (unbounded first, so a full ring cannot wedge the cut) where the
/// [read-ahead][pipe] unconsumed-history machinery picks it up; when the
/// producer already closed, the pipe rejects writes, so the bytes are
/// returned for the caller to append after the drained history instead (no
/// racing writer exists then, so the order is still exact).  A demotion
/// that throws mid-encode poisons the ring -- the consumer sees WorkerLost,
/// never a silently truncated stream -- and fails the shipment.
ByteVector demote_typed(const std::shared_ptr<core::ChannelState>& state) {
  if (!state->typed || state->typed->demoted()) return {};
  if (state->pipe->read_closed()) {
    // Reader gone: the backlog would be discarded on arrival anyway.
    io::MemoryOutputStream discard;
    state->typed->demote_into(discard);
    return {};
  }
  if (state->pipe->write_closed()) {
    io::MemoryOutputStream sink;
    state->typed->demote_into(sink);
    return sink.take();
  }
  state->pipe->set_unbounded();
  io::LocalOutputStream sink{state->pipe};
  state->typed->demote_into(sink);
  return {};
}

std::shared_ptr<serial::Serializable> make_pair_stub(
    SendContext& ctx, const std::shared_ptr<core::ChannelState>& state,
    std::uint8_t role) {
  std::uint64_t id = 0;
  if (const auto it = ctx.pipe_ids.find(state.get());
      it != ctx.pipe_ids.end()) {
    id = it->second;
  } else {
    id = ctx.next_pipe_id++;
    ctx.pipe_ids.emplace(state.get(), id);
  }
  auto stub = std::make_shared<LocalPairStub>();
  stub->pipe_id = id;
  stub->role = role;
  if (ctx.meta_emitted.insert(id).second) {
    stub->has_meta = true;
    stub->capacity = state->capacity;
    stub->label = state->label;
    stub->write_buffer = state->write_buffer;
    stub->read_buffer = state->read_buffer;
    stub->credit_window = state->remote.credit_window;
    stub->coalesce_bytes = state->remote.coalesce_bytes;
    stub->bytes_written =
        state->metrics->bytes_written.load(std::memory_order_relaxed);
    stub->tokens_written =
        state->metrics->tokens_written.load(std::memory_order_relaxed);
    stub->bytes_read =
        state->metrics->bytes_read.load(std::memory_order_relaxed);
    stub->tokens_read =
        state->metrics->tokens_read.load(std::memory_order_relaxed);
    // Both endpoints travel in this shipment and neither is running:
    // flush the producer's coalesced bytes into the pipe, then collect
    // [reader read-ahead][pipe contents] as the unconsumed history.
    if (!state->pipe->read_closed()) {
      state->pipe->set_unbounded();  // nobody is draining; don't block
      flush_producer(state);
    }
    const ByteVector typed_tail = demote_typed(state);
    stub->buffered = drain_unconsumed(state);
    stub->buffered.insert(stub->buffered.end(), typed_tail.begin(),
                          typed_tail.end());
    stub->write_closed = state->pipe->write_closed();
    stub->read_closed = state->pipe->read_closed();
  }
  if (role == 0) {
    state->input_remote = true;
  } else {
    state->output_remote = true;
  }
  return stub;
}

std::shared_ptr<serial::Serializable> replace_input_endpoint(
    const std::shared_ptr<core::ChannelInputStream>& endpoint,
    serial::ObjectOutputStream& out) {
  auto ctx = send_context(out);
  const auto& state = endpoint->state();
  if (ctx->internal.count(state.get()) != 0) {
    return make_pair_stub(*ctx, state, 0);
  }
  if (state->input_remote) {
    throw SerializationError{
        "channel input endpoint was already shipped away"};
  }
  if (state->output_remote || !state->pipe) {
    throw SerializationError{
        "re-shipping a receiving endpoint whose producer is already remote "
        "is not supported (paper Section 6.1, future work)"};
  }

  auto stub = std::make_shared<RemoteInputStub>();
  stub->label = state->label;
  stub->capacity = state->capacity;
  stub->read_buffer = state->read_buffer;
  stub->credit_window = state->remote.credit_window;
  stub->coalesce_bytes = state->remote.coalesce_bytes;
  stub->bytes_read =
      state->metrics->bytes_read.load(std::memory_order_relaxed);
  stub->tokens_read =
      state->metrics->tokens_read.load(std::memory_order_relaxed);
  DPN_TRACE_EVENT(obs::TraceKind::kShip, state->label, stub->bytes_read);
  NodeContext& node = *ctx->node;

  auto producer = state->output.lock();
  if (state->pipe->write_closed() || !producer) {
    // The producer already closed (or vanished): ship the remaining bytes
    // only; the endpoint ends cleanly after draining them.  A buffered
    // producer flushed on close, so the pipe already holds its bytes; the
    // moving consumer's read-ahead is the older prefix.
    stub->live = false;
    const ByteVector typed_tail = demote_typed(state);
    stub->buffered = drain_unconsumed(state);
    stub->buffered.insert(stub->buffered.end(), typed_tail.begin(),
                          typed_tail.end());
  } else {
    // Live cut: the staying producer is switched onto a pending socket;
    // whatever is still in the pipe travels with the stub.  Order is
    // preserved: consumer read-ahead first, pipe bytes after it (Memory
    // segment), socket bytes last.  A buffered producer is flushed into
    // the pipe before the switch so the pipe steal captures exact byte
    // positions; writes after the switch coalesce towards the socket.
    const std::uint64_t token = node.next_token();
    auto promise = node.rendezvous().expect(token);
    auto stream_out = std::make_shared<FrameChannelOutput>(
        promise, token, ctx->node, state->remote.credit_window);
    node.register_credit_waiter(token, stream_out);
    state->pipe->set_unbounded();  // unwedge any in-flight producer write
    flush_producer(state);
    // Typed channel: flush the ring's backlog into the pipe before the
    // switch, so it travels with the stub ahead of any socket bytes; the
    // producer's next push sees kDemoted and encodes through the (now
    // switched) sequence.
    demote_typed(state);
    producer->sequence().switch_to(std::move(stream_out),
                                   /*close_old=*/false);
    stub->buffered = drain_unconsumed(state);
    stub->live = true;
    stub->host = node.host();
    stub->port = node.rendezvous().port();
    stub->token = token;
  }
  state->input_remote = true;
  return stub;
}

std::shared_ptr<serial::Serializable> replace_output_endpoint(
    const std::shared_ptr<core::ChannelOutputStream>& endpoint,
    serial::ObjectOutputStream& out) {
  auto ctx = send_context(out);
  const auto& state = endpoint->state();
  if (ctx->internal.count(state.get()) != 0) {
    return make_pair_stub(*ctx, state, 1);
  }
  if (state->output_remote) {
    throw SerializationError{
        "channel output endpoint was already shipped away"};
  }
  NodeContext& node = *ctx->node;
  // A buffered producer must publish its coalesced bytes into the current
  // transport before the cut: the protocols below reason about exact byte
  // positions (pipe contents when the write side closes, socket history
  // ahead of the redirect marker).  A dead consumer surfaces as
  // ChannelClosed; those bytes would have been discarded anyway.
  try {
    endpoint->flush();
  } catch (const ChannelClosed&) {
  }
  auto current = endpoint->sequence().current();

  if (std::dynamic_pointer_cast<io::LocalOutputStream>(current)) {
    // The consumer stays on this node: register a rendezvous token, hang a
    // pending socket segment after the consumer's pipe, and let the pipe
    // drain (Section 4.2, "a similar sequence of events takes place when
    // a LocalOutputStream is serialized").
    auto stub = std::make_shared<RemoteOutputStub>();
    stub->label = state->label;
    stub->capacity = state->capacity;
    stub->write_buffer = state->write_buffer;
    stub->credit_window = state->remote.credit_window;
    stub->coalesce_bytes = state->remote.coalesce_bytes;
    stub->bytes_written =
        state->metrics->bytes_written.load(std::memory_order_relaxed);
    stub->tokens_written =
        state->metrics->tokens_written.load(std::memory_order_relaxed);
    DPN_TRACE_EVENT(obs::TraceKind::kShip, state->label, stub->bytes_written);
    // Typed channel with the producer leaving: flush the ring backlog into
    // the pipe so the staying consumer drains [ring backlog][socket bytes]
    // in order.  A producer that already closed keeps its ring live
    // instead -- the consumer pops the backlog straight to kEof, and the
    // shipped endpoint is closed anyway.
    if (!state->pipe->write_closed()) demote_typed(state);
    auto consumer = state->input.lock();
    if (!consumer || state->pipe->read_closed()) {
      stub->dead = true;  // reader already terminated
    } else {
      const std::uint64_t token = node.next_token();
      auto promise = node.rendezvous().expect(token);
      auto segment = std::make_shared<FrameChannelInput>(
          promise, token, ctx->node,
          static_cast<std::uint32_t>(state->remote.coalesce_bytes));
      segment->set_parent_sequence(consumer->sequence_ptr());
      ctx->node->register_remote_input(segment);
      consumer->sequence().append(std::move(segment));
      state->pipe->close_write();
      stub->host = node.host();
      stub->port = node.rendezvous().port();
      stub->token = token;
    }
    state->output_remote = true;
    return stub;
  }

  if (auto remote =
          std::dynamic_pointer_cast<FrameChannelOutput>(current)) {
    // Already the producer side of a remote segment: redirect (Section
    // 4.3).  Tell the consumer in-band to expect a successor connection,
    // and send the reincarnated producer straight to the consumer's node.
    remote->connect_now();
    const std::uint64_t successor_token = node.next_token();
    const PeerAddress peer = remote->peer();
    remote->redirect_and_finish(successor_token);

    auto stub = std::make_shared<RemoteOutputStub>();
    stub->label = state->label;
    stub->capacity = state->capacity;
    stub->write_buffer = state->write_buffer;
    stub->credit_window = state->remote.credit_window;
    stub->coalesce_bytes = state->remote.coalesce_bytes;
    stub->bytes_written =
        state->metrics->bytes_written.load(std::memory_order_relaxed);
    stub->tokens_written =
        state->metrics->tokens_written.load(std::memory_order_relaxed);
    stub->host = peer.host;
    stub->port = peer.port;
    stub->token = successor_token;
    state->output_remote = true;
    DPN_TRACE_EVENT(obs::TraceKind::kRedirect, state->label, successor_token);
    return stub;
  }

  if (std::dynamic_pointer_cast<DeadOutputStream>(current)) {
    auto stub = std::make_shared<RemoteOutputStub>();
    stub->dead = true;
    stub->label = state->label;
    stub->capacity = state->capacity;
    stub->write_buffer = state->write_buffer;
    state->output_remote = true;
    return stub;
  }

  throw SerializationError{
      "channel output endpoint has an unsupported transport underneath"};
}

[[maybe_unused]] const bool kStubsRegistered =
    serial::register_type<RemoteInputStub>("dpn.RemoteInputStub") &&
    serial::register_type<RemoteOutputStub>("dpn.RemoteOutputStub") &&
    serial::register_type<LocalPairStub>("dpn.LocalPairStub");

}  // namespace

void ensure_hooks_installed() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    core::DistributionHooks hooks;
    hooks.replace_input = replace_input_endpoint;
    hooks.replace_output = replace_output_endpoint;
    core::set_distribution_hooks(std::move(hooks));
  });
}

namespace {

ByteVector ship_any(const std::shared_ptr<NodeContext>& node,
                    const std::shared_ptr<serial::Serializable>& object,
                    const std::shared_ptr<core::Process>& for_cut) {
  ensure_hooks_installed();
  auto ctx = std::make_shared<SendContext>();
  ctx->node = node;
  if (for_cut) {
    // Channels with both endpoints inside the shipment stay local pipes on
    // the destination; only cut channels become sockets.
    std::set<const core::ChannelState*> inputs;
    for (const auto& ep : for_cut->channel_inputs()) {
      inputs.insert(ep->state().get());
    }
    for (const auto& ep : for_cut->channel_outputs()) {
      const core::ChannelState* state = ep->state().get();
      if (inputs.count(state) != 0 && state->pipe) {
        ctx->internal.insert(state);
      }
    }
  }
  auto sink = std::make_shared<io::MemoryOutputStream>();
  serial::ObjectOutputStream out{sink};
  out.set_attachment(ctx);
  out.write_object(object);
  return sink->take();
}

}  // namespace

ByteVector ship_process(const std::shared_ptr<NodeContext>& node,
                        const std::shared_ptr<core::Process>& process) {
  return ship_any(node, process, process);
}

std::shared_ptr<core::Process> receive_process(
    const std::shared_ptr<NodeContext>& node, ByteSpan bytes) {
  auto object = receive_object(node, bytes);
  auto process = std::dynamic_pointer_cast<core::Process>(object);
  if (!process) {
    throw SerializationError{"shipment did not contain a Process"};
  }
  return process;
}

ByteVector ship_object(const std::shared_ptr<NodeContext>& node,
                       const std::shared_ptr<serial::Serializable>& object) {
  return ship_any(node, object,
                  std::dynamic_pointer_cast<core::Process>(object));
}

std::shared_ptr<serial::Serializable> receive_object(
    const std::shared_ptr<NodeContext>& node, ByteSpan bytes) {
  ensure_hooks_installed();
  auto ctx = std::make_shared<ReceiveContext>();
  ctx->node = node;
  auto source = std::make_shared<io::MemoryInputStream>(
      ByteVector{bytes.begin(), bytes.end()});
  serial::ObjectInputStream in{source};
  in.set_attachment(ctx);
  return in.read_object();
}

}  // namespace dpn::dist
