#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "dist/node.hpp"
#include "io/sequence.hpp"
#include "io/stream.hpp"
#include "net/frames.hpp"
#include "net/transport.hpp"

/// The transport-backed stream segments that sit underneath a distributed
/// channel (the paper's RemoteInputStream / RemoteOutputStream /
/// RedirectedInputStream, Sections 4.2-4.3).
///
/// A remote channel segment is one net::Stream carrying frames in the
/// producer->consumer direction:
///   DATA     -- payload bytes;
///   FIN      -- producer closed: consumer sees end-of-stream after drain;
///   REDIRECT -- "the stream continues on a new connection; expect a
///               rendezvous with this token" (sent when the producing
///               endpoint is shipped onward to a third server, so traffic
///               stops relaying through the middle man -- Figure 15).
/// Consumer-side close shuts the stream down, which surfaces as
/// ChannelClosed on the producer's next write: the cascade of Section 3.4
/// crosses machine boundaries.  On the blocking backend a segment owns a
/// TCP connection; on the mux backend it is one logical stream over the
/// shared per-host connection -- the frame protocol is identical either
/// way.
namespace dpn::dist {

/// Consumer side of a remote channel segment.  Lives inside a
/// ChannelInputStream's SequenceInputStream; when a REDIRECT arrives it
/// appends the successor segment to that same sequence and lets the
/// current segment run out.
class FrameChannelInput final : public io::InputStream {
 public:
  /// An established connection (this endpoint dialed the producer's node).
  /// `credit_batch` overrides the consumption-credit coalescing threshold
  /// (0 = default; see ChannelOptions::remote.coalesce_bytes).
  FrameChannelInput(std::shared_ptr<net::Stream> stream,
                    std::shared_ptr<NodeContext> node,
                    std::uint32_t credit_batch = 0);

  /// A connection that will arrive at this node's rendezvous (this
  /// endpoint stayed put / was redirected to).  The first read blocks
  /// until the producer dials in.
  FrameChannelInput(std::shared_ptr<StreamPromise> promise,
                    std::uint64_t token, std::shared_ptr<NodeContext> node,
                    std::uint32_t credit_batch = 0);

  /// The sequence to splice successor segments into on REDIRECT.
  void set_parent_sequence(std::weak_ptr<io::SequenceInputStream> parent) {
    parent_ = std::move(parent);
  }

  std::size_t read_some(MutableByteSpan out) override;
  void close() override;

  /// Grants the producer extra window beyond normal consumption credits.
  /// The distributed deadlock detector uses this as the remote analogue
  /// of growing a full local channel.  Thread-safe; a no-op until the
  /// segment has a live stream.
  void grant_bonus_credits(std::uint32_t bytes);

 private:
  void ensure_connected();
  void handle_redirect(const net::RedirectInfo& info);
  void send_credit(std::uint32_t bytes);

  std::shared_ptr<NodeContext> node_;
  std::weak_ptr<io::SequenceInputStream> parent_;

  std::shared_ptr<net::Stream> stream_;
  std::shared_ptr<StreamPromise> promise_;
  std::uint64_t pending_token_ = 0;
  std::optional<net::FrameReader> reader_;

  // Reverse-direction flow control (see net::FrameType::kCredit).
  // Consumption credits below this size coalesce into one grant instead
  // of costing a frame (header + syscall) each.
  static constexpr std::uint32_t kCreditBatch = 4096;
  const std::uint32_t credit_batch_;
  std::mutex credit_mutex_;
  std::optional<net::FrameWriter> credit_writer_;
  bool credit_channel_dead_ = false;
  std::uint32_t pending_credit_ = 0;

  ByteVector buffer_;
  std::size_t position_ = 0;
  bool eof_ = false;
  std::atomic<bool> closed_{false};
};

/// Producer side of a remote channel segment.
class FrameChannelOutput final : public io::OutputStream {
 public:
  /// An established connection; `peer` is the consumer node's rendezvous
  /// address (kept so this endpoint can orchestrate a redirect if it is
  /// shipped again).  `node` attributes traffic to the hosting node's
  /// counters (may be null in tests).  `window_override` replaces the
  /// node's default flow-control window when nonzero
  /// (ChannelOptions::remote.credit_window).
  FrameChannelOutput(std::shared_ptr<net::Stream> stream, PeerAddress peer,
                     std::shared_ptr<NodeContext> node = nullptr,
                     std::size_t window_override = 0);

  /// A connection that will arrive at this node's rendezvous (this
  /// endpoint stayed put while its consumer shipped out).  The first
  /// write blocks until the consumer dials in; the consumer's rendezvous
  /// address is learned from its HELLO.
  FrameChannelOutput(std::shared_ptr<StreamPromise> promise,
                     std::uint64_t token, std::shared_ptr<NodeContext> node,
                     std::size_t window_override = 0);

  void write(ByteSpan data) override;
  void flush() override {}
  void close() override;

  /// Blocks until the segment has a live stream (no-op if it already
  /// does).  Used before a redirect.
  void connect_now();

  bool connected() const;

  /// The consumer node's rendezvous address (valid once connected).
  const PeerAddress& peer() const { return peer_; }

  /// Tells the consumer the stream continues elsewhere (paper Figure 15),
  /// then ends this segment with a FIN.  The endpoint is unusable after.
  void redirect_and_finish(std::uint64_t successor_token);

 private:
  void ensure_connected_locked();
  void await_credit_locked();
  void park_stream_locked();

  mutable std::mutex mutex_;
  std::shared_ptr<NodeContext> node_;
  std::shared_ptr<net::Stream> stream_;
  std::shared_ptr<StreamPromise> promise_;
  std::uint64_t pending_token_ = 0;
  std::optional<net::FrameWriter> writer_;
  // Flow-control window: payload bytes this producer may still send
  // before it must block for consumer credits (bounded remote channels).
  std::int64_t window_ = 0;
  std::optional<net::FrameReader> credit_reader_;
  PeerAddress peer_;
  bool closed_ = false;
};

/// Output whose reader is already gone: every write throws ChannelClosed.
/// Used when an endpoint is shipped after its consumer terminated.
class DeadOutputStream final : public io::OutputStream {
 public:
  void write(ByteSpan) override { throw ChannelClosed{}; }
  void close() override {}
};

}  // namespace dpn::dist
