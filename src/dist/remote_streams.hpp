#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "dist/node.hpp"
#include "io/sequence.hpp"
#include "io/stream.hpp"
#include "net/frames.hpp"
#include "net/transport.hpp"

/// The transport-backed stream segments that sit underneath a distributed
/// channel (the paper's RemoteInputStream / RemoteOutputStream /
/// RedirectedInputStream, Sections 4.2-4.3).
///
/// A remote channel segment is one net::Stream carrying frames in the
/// producer->consumer direction:
///   DATA     -- payload bytes;
///   FIN      -- producer closed: consumer sees end-of-stream after drain;
///   REDIRECT -- "the stream continues on a new connection; expect a
///               rendezvous with this token" (sent when the producing
///               endpoint is shipped onward to a third server, so traffic
///               stops relaying through the middle man -- Figure 15).
/// Consumer-side close shuts the stream down, which surfaces as
/// ChannelClosed on the producer's next write: the cascade of Section 3.4
/// crosses machine boundaries.  On the blocking backend a segment owns a
/// TCP connection; on the mux backend it is one logical stream over the
/// shared per-host connection -- the frame protocol is identical either
/// way.
namespace dpn::dist {

/// Consumer side of a remote channel segment.  Lives inside a
/// ChannelInputStream's SequenceInputStream; when a REDIRECT arrives it
/// appends the successor segment to that same sequence and lets the
/// current segment run out.
class FrameChannelInput final : public io::InputStream {
 public:
  /// An established connection (this endpoint dialed the producer's node).
  /// `credit_batch` overrides the consumption-credit coalescing threshold
  /// (0 = default; see ChannelOptions::remote.coalesce_bytes).
  /// `producer` and `close_token` name the producer node's rendezvous and
  /// the token this segment was dialed with, enabling the out-of-band
  /// CLOSE notification on teardown (zero/empty disables it).
  FrameChannelInput(std::shared_ptr<net::Stream> stream,
                    std::shared_ptr<NodeContext> node,
                    std::uint32_t credit_batch = 0,
                    PeerAddress producer = {},
                    std::uint64_t close_token = 0);

  /// A connection that will arrive at this node's rendezvous (this
  /// endpoint stayed put / was redirected to).  The first read blocks
  /// until the producer dials in.
  FrameChannelInput(std::shared_ptr<StreamPromise> promise,
                    std::uint64_t token, std::shared_ptr<NodeContext> node,
                    std::uint32_t credit_batch = 0);

  /// The sequence to splice successor segments into on REDIRECT.
  void set_parent_sequence(std::weak_ptr<io::SequenceInputStream> parent) {
    parent_ = std::move(parent);
  }

  std::size_t read_some(MutableByteSpan out) override;
  void close() override;

  /// Grants the producer extra window beyond normal consumption credits.
  /// The distributed deadlock detector uses this as the remote analogue
  /// of growing a full local channel.  Thread-safe; a no-op until the
  /// segment has a live stream.
  void grant_bonus_credits(std::uint32_t bytes);

 private:
  void ensure_connected();
  void handle_redirect(const net::RedirectInfo& info);
  void send_credit(std::uint32_t bytes);
  void notify_producer_closed() noexcept;

  std::shared_ptr<NodeContext> node_;
  std::weak_ptr<io::SequenceInputStream> parent_;

  std::shared_ptr<net::Stream> stream_;
  std::shared_ptr<StreamPromise> promise_;
  std::uint64_t pending_token_ = 0;
  std::optional<net::FrameReader> reader_;

  // Where an early close() sends the out-of-band CLOSE notification: the
  // producer node's rendezvous + the token its credit waiter is
  // registered under.  Learned from the stub (dialing side) or from the
  // producer's HELLO (promise side).
  PeerAddress producer_addr_;
  std::uint64_t close_token_ = 0;

  // Reverse-direction flow control (see net::FrameType::kCredit).
  // Consumption credits below this size coalesce into one grant instead
  // of costing a frame (header + syscall) each.
  static constexpr std::uint32_t kCreditBatch = 4096;
  const std::uint32_t credit_batch_;
  std::mutex credit_mutex_;
  std::optional<net::FrameWriter> credit_writer_;
  bool credit_channel_dead_ = false;
  std::uint32_t pending_credit_ = 0;

  ByteVector buffer_;
  std::size_t position_ = 0;
  // Atomic: written by the reader, consulted by a close() from another
  // thread to decide whether the producer still needs a CLOSE nudge.
  std::atomic<bool> eof_{false};
  std::atomic<bool> closed_{false};
};

/// Producer side of a remote channel segment.
class FrameChannelOutput final : public io::OutputStream {
 public:
  /// An established connection; `peer` is the consumer node's rendezvous
  /// address (kept so this endpoint can orchestrate a redirect if it is
  /// shipped again).  `node` attributes traffic to the hosting node's
  /// counters (may be null in tests).  `window_override` replaces the
  /// node's default flow-control window when nonzero
  /// (ChannelOptions::remote.credit_window).
  FrameChannelOutput(std::shared_ptr<net::Stream> stream, PeerAddress peer,
                     std::shared_ptr<NodeContext> node = nullptr,
                     std::size_t window_override = 0);

  /// A connection that will arrive at this node's rendezvous (this
  /// endpoint stayed put while its consumer shipped out).  The first
  /// write blocks until the consumer dials in; the consumer's rendezvous
  /// address is learned from its HELLO.
  FrameChannelOutput(std::shared_ptr<StreamPromise> promise,
                     std::uint64_t token, std::shared_ptr<NodeContext> node,
                     std::size_t window_override = 0);

  void write(ByteSpan data) override;
  void flush() override {}
  void close() override;

  /// Blocks until the segment has a live stream (no-op if it already
  /// does).  Used before a redirect.
  void connect_now();

  bool connected() const;

  /// The consumer node's rendezvous address (valid once connected).
  const PeerAddress& peer() const { return peer_; }

  /// Tells the consumer the stream continues elsewhere (paper Figure 15),
  /// then ends this segment with a FIN.  The endpoint is unusable after.
  void redirect_and_finish(std::uint64_t successor_token);

  /// Out-of-band notification (dist CLOSE frame, delivered through the
  /// node's rendezvous): the consumer of this segment entered teardown
  /// and will never read or grant again.  Wakes a writer parked in
  /// await_credit_locked by surfacing end-of-stream on its credit read.
  /// Deliberately does NOT take mutex_ -- the parked writer holds it.
  void peer_closed();

 private:
  void ensure_connected_locked();
  /// Reads frames off the credit direction.  With block=true, waits for at
  /// least one grant (the window is exhausted); either way it then drains
  /// every frame already queued.  See write() for why the non-blocking
  /// drain must also run while the window still has room.
  void drain_credits_locked(bool block);
  void await_credit_locked() { drain_credits_locked(/*block=*/true); }
  void park_stream_locked();

  mutable std::mutex mutex_;
  std::shared_ptr<NodeContext> node_;
  std::shared_ptr<net::Stream> stream_;
  // Duplicate handle for peer_closed(), under its own lock: the wake must
  // not contend for mutex_ (held across the parked credit read).
  std::mutex wake_mutex_;
  std::shared_ptr<net::Stream> wake_stream_;
  std::atomic<bool> peer_closed_{false};
  std::shared_ptr<StreamPromise> promise_;
  std::uint64_t pending_token_ = 0;
  std::optional<net::FrameWriter> writer_;
  // Flow-control window: payload bytes this producer may still send
  // before it must block for consumer credits (bounded remote channels).
  std::int64_t window_ = 0;
  // Payload bytes sent since the credit direction was last drained; at
  // kDrainEveryBytes the next write polls the queued grants off even
  // though the window is not exhausted (teardown-gridlock fix).
  std::int64_t since_drain_ = 0;
  static constexpr std::int64_t kDrainEveryBytes = 32 << 10;
  std::optional<net::FrameReader> credit_reader_;
  PeerAddress peer_;
  bool closed_ = false;
};

/// Output whose reader is already gone: every write throws ChannelClosed.
/// Used when an endpoint is shipped after its consumer terminated.
class DeadOutputStream final : public io::OutputStream {
 public:
  void write(ByteSpan) override { throw ChannelClosed{}; }
  void close() override {}
};

}  // namespace dpn::dist
