#include "dist/node.hpp"

#include <algorithm>
#include <random>

#include "dist/remote_streams.hpp"

#include "io/data.hpp"
#include "io/memory.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace dpn::dist {

namespace {

constexpr std::uint32_t kHelloMagic = 0x44504e43;  // "DPNC"
constexpr std::uint32_t kCloseMagic = 0x44504e58;  // "DPNX"

/// HELLO: magic, token, dialer rendezvous host + port.
void write_hello(net::Stream& stream, std::uint64_t token,
                 const PeerAddress& self) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream data{sink};
  data.write_u32(kHelloMagic);
  data.write_u64(token);
  data.write_string(self.host);
  data.write_u16(self.port);
  const ByteVector& bytes = sink->data();
  stream.write_all({bytes.data(), bytes.size()});
}

/// Adapts a freshly accepted stream for DataInputStream; the dialer
/// writes its opening message immediately, so blocking reads are fine.
class StreamReader final : public io::InputStream {
 public:
  explicit StreamReader(net::Stream& s) : stream_(s) {}
  std::size_t read_some(MutableByteSpan out) override {
    return stream_.read_some(out);
  }
  void close() override {}

 private:
  net::Stream& stream_;
};

struct Hello {
  std::uint64_t token = 0;
  PeerAddress dialer;
  bool close = false;  // a CLOSE notification, not a channel handshake
};

Hello read_hello(net::Stream& stream) {
  auto reader = std::make_shared<StreamReader>(stream);
  io::DataInputStream data{reader};
  const std::uint32_t magic = data.read_u32();
  Hello hello;
  if (magic == kCloseMagic) {
    // CLOSE: magic, token.  Out-of-band "the consumer bound to this token
    // entered teardown" -- no dialer address, no stream handoff.
    hello.token = data.read_u64();
    hello.close = true;
    return hello;
  }
  if (magic != kHelloMagic) {
    throw NetError{"rendezvous: bad HELLO magic"};
  }
  hello.token = data.read_u64();
  hello.dialer.host = data.read_string();
  hello.dialer.port = data.read_u16();
  return hello;
}

}  // namespace

bool StreamPromise::fulfill(std::shared_ptr<net::Stream> stream,
                            PeerAddress dialer) {
  {
    std::scoped_lock lock{mutex_};
    if (cancelled_ || fulfilled_) return false;
    stream_ = std::move(stream);
    dialer_ = std::move(dialer);
    fulfilled_ = true;
  }
  cv_.notify_all();
  return true;
}

std::shared_ptr<net::Stream> StreamPromise::wait() {
  std::unique_lock lock{mutex_};
  cv_.wait(lock, [&] { return fulfilled_ || cancelled_; });
  if (cancelled_ && !fulfilled_) {
    throw NetError{"pending channel connection cancelled"};
  }
  return std::move(stream_);
}

void StreamPromise::cancel() {
  {
    std::scoped_lock lock{mutex_};
    cancelled_ = true;
  }
  cv_.notify_all();
}

bool StreamPromise::fulfilled() const {
  std::scoped_lock lock{mutex_};
  return fulfilled_;
}

RendezvousService::RendezvousService()
    : listener_(net::default_transport().listen(0)) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
}

RendezvousService::~RendezvousService() {
  shutting_down_.store(true);
  listener_->close();  // wakes the acceptor
  if (acceptor_.joinable()) acceptor_.join();
  std::scoped_lock lock{mutex_};
  for (auto& [token, promise] : pending_) promise->cancel();
  pending_.clear();
}

std::shared_ptr<StreamPromise> RendezvousService::expect(std::uint64_t token) {
  auto promise = std::make_shared<StreamPromise>();
  std::scoped_lock lock{mutex_};
  if (const auto parked = parked_.find(token); parked != parked_.end()) {
    promise->fulfill(std::move(parked->second.stream),
                     std::move(parked->second.dialer));
    parked_.erase(parked);
    return promise;
  }
  const auto [it, inserted] = pending_.emplace(token, promise);
  (void)it;
  if (!inserted) {
    throw UsageError{"rendezvous token registered twice"};
  }
  return promise;
}

void RendezvousService::forget(std::uint64_t token) {
  std::shared_ptr<StreamPromise> promise;
  {
    std::scoped_lock lock{mutex_};
    parked_.erase(token);
    const auto it = pending_.find(token);
    if (it == pending_.end()) return;
    promise = it->second;
    pending_.erase(it);
  }
  promise->cancel();
}

std::shared_ptr<net::Stream> RendezvousService::dial(const std::string& host,
                                                     std::uint16_t port,
                                                     std::uint64_t token,
                                                     const PeerAddress& self,
                                                     std::size_t stream_window) {
  // Dial-backs race the peer's listener coming up (ship_process sends the
  // shipment before every cut channel has reconnected), so a refused or
  // slow connect here retries with backoff instead of failing the whole
  // re-establishment.
  auto stream = net::dial_with_retry(net::default_transport(), host, port,
                                     {}, stream_window);
  write_hello(*stream, token, self);
  return stream;
}

std::shared_ptr<net::Stream> RendezvousService::send_close(
    const std::string& host, std::uint16_t port, std::uint64_t token) {
  auto stream = net::default_transport().dial(host, port);
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream data{sink};
  data.write_u32(kCloseMagic);
  data.write_u64(token);
  const ByteVector& bytes = sink->data();
  stream->write_all({bytes.data(), bytes.size()});
  stream->shutdown_write();
  return stream;
}

void RendezvousService::set_close_handler(
    std::function<void(std::uint64_t)> handler) {
  std::scoped_lock lock{mutex_};
  close_handler_ = std::move(handler);
}

void RendezvousService::accept_loop() {
  for (;;) {
    std::shared_ptr<net::Stream> stream;
    try {
      stream = listener_->accept();
    } catch (const NetError&) {
      if (shutting_down_.load()) return;
      continue;
    }
    try {
      const Hello hello = read_hello(*stream);
      if (hello.close) {
        std::function<void(std::uint64_t)> handler;
        {
          std::scoped_lock lock{mutex_};
          handler = close_handler_;
        }
        if (handler) handler(hello.token);
        continue;  // notification only; the stream carries nothing else
      }
      std::shared_ptr<StreamPromise> promise;
      {
        std::scoped_lock lock{mutex_};
        const auto it = pending_.find(hello.token);
        if (it != pending_.end()) {
          promise = it->second;
          pending_.erase(it);
        }
      }
      if (!promise) {
        // No one expects this token yet; a redirected producer can dial
        // before the consumer's lazy frame reader sees the REDIRECT.
        // Park the connection for the expect() that is on its way.
        std::scoped_lock lock{mutex_};
        parked_.emplace(hello.token,
                        Parked{std::move(stream), hello.dialer});
        continue;
      }
      promise->fulfill(std::move(stream), hello.dialer);
    } catch (const std::exception& e) {
      log::warn("rendezvous: handshake failed: ", e.what());
    }
  }
}

namespace {
std::uint64_t random_seed() {
  std::random_device rd;
  return (std::uint64_t{rd()} << 32) ^ rd();
}
}  // namespace

NodeContext::NodeContext(std::string advertised_host)
    : host_(std::move(advertised_host)), token_state_(random_seed()) {
  // The handler captures only the shared registry, never `this`: the
  // acceptor can still be dispatching a late CLOSE while the rest of this
  // NodeContext is being destroyed.
  rendezvous_.set_close_handler(
      [registry = credit_waiters_](std::uint64_t token) {
        std::shared_ptr<FrameChannelOutput> waiter;
        {
          std::scoped_lock lock{registry->mutex};
          const auto it = registry->waiters.find(token);
          if (it != registry->waiters.end()) {
            waiter = it->second.lock();
            registry->waiters.erase(it);
          }
        }
        if (waiter) {
          log::debug("rendezvous: CLOSE wakes credit waiter for token ",
                     token);
          waiter->peer_closed();
        } else {
          log::debug("rendezvous: CLOSE for unknown token ", token);
        }
      });
}

std::shared_ptr<NodeContext> NodeContext::create(std::string advertised_host) {
  // Installs the channel-endpoint serialization hooks on first use.
  extern void ensure_hooks_installed();
  ensure_hooks_installed();
  return std::shared_ptr<NodeContext>(
      new NodeContext{std::move(advertised_host)});
}

std::shared_ptr<NodeContext> NodeContext::default_node() {
  static std::shared_ptr<NodeContext>* node =
      new std::shared_ptr<NodeContext>(create());
  return *node;
}

void NodeContext::register_remote_stream(
    const std::shared_ptr<net::Stream>& stream) {
  std::scoped_lock lock{streams_mutex_};
  std::erase_if(remote_streams_,
                [](const std::weak_ptr<net::Stream>& weak) {
                  return weak.expired();
                });
  remote_streams_.push_back(stream);
}

void NodeContext::abort_remote_channels() {
  aborting_.store(true, std::memory_order_release);
  std::scoped_lock lock{streams_mutex_};
  for (const auto& weak : remote_streams_) {
    if (auto stream = weak.lock()) {
      // shutdown (not close) so a concurrently blocked recv/send wakes
      // without racing on descriptor reuse.
      stream->shutdown_read();
      stream->shutdown_write();
    }
  }
}

void NodeContext::park_stream(std::shared_ptr<net::Stream> stream) {
  std::scoped_lock lock{streams_mutex_};
  parked_streams_.push_back(std::move(stream));
}

void NodeContext::register_credit_waiter(
    std::uint64_t token, const std::shared_ptr<FrameChannelOutput>& output) {
  std::scoped_lock lock{credit_waiters_->mutex};
  std::erase_if(credit_waiters_->waiters, [](const auto& entry) {
    return entry.second.expired();
  });
  credit_waiters_->waiters[token] = output;
}

void NodeContext::register_remote_input(
    const std::shared_ptr<FrameChannelInput>& input) {
  std::scoped_lock lock{streams_mutex_};
  std::erase_if(remote_inputs_,
                [](const std::weak_ptr<FrameChannelInput>& weak) {
                  return weak.expired();
                });
  remote_inputs_.push_back(input);
}

void NodeContext::grant_remote_credits() {
  std::vector<std::shared_ptr<FrameChannelInput>> inputs;
  {
    std::scoped_lock lock{streams_mutex_};
    for (const auto& weak : remote_inputs_) {
      if (auto input = weak.lock()) inputs.push_back(std::move(input));
    }
  }
  const auto bonus = static_cast<std::uint32_t>(
      std::min<std::size_t>(remote_window(), ~std::uint32_t{0}));
  for (const auto& input : inputs) input->grant_bonus_credits(bonus);
}

std::uint64_t NodeContext::next_token() {
  std::scoped_lock lock{token_mutex_};
  SplitMix64 mix{token_state_};
  const std::uint64_t token = mix.next();
  token_state_ = token ^ 0x5bd1e995;
  return token;
}

}  // namespace dpn::dist
