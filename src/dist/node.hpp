#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/transport.hpp"
#include "support/sync.hpp"

/// Per-server infrastructure for distributed channels.
///
/// When a channel endpoint is shipped to another server, the endpoint that
/// stays behind must accept exactly one incoming connection for that
/// channel (paper Section 4.2), and a redirected endpoint must accept a
/// connection from a third server it has never heard of (Section 4.3).
/// Rather than opening one listening endpoint per pending channel, each
/// logical server (NodeContext) runs a single *rendezvous* listener:
///
///   * the staying side registers a fresh random token and gets a
///     StreamPromise;
///   * the stub shipped with the moving endpoint carries
///     (host, rendezvous port, token);
///   * the moving side dials the rendezvous and opens with a HELLO
///     carrying the token (plus its own rendezvous address, which the
///     receiver remembers in case *it* needs to redirect later);
///   * the rendezvous acceptor matches the token and hands the stream to
///     the waiting endpoint.
///
/// All connections go through net::Transport (NetworkOptions::transport
/// picks the backend), so on the mux backend every channel between a host
/// pair shares one TCP connection and the rendezvous "dial" is just a new
/// logical stream.
///
/// Multiple NodeContexts may coexist in one OS process, which is how the
/// tests and examples run "server A / B / C" topologies over real sockets
/// on one machine.
namespace dpn::dist {

/// Advertised rendezvous coordinates of some node.
struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;

  bool valid() const { return port != 0; }
};

/// One-shot handoff of an accepted, handshaken stream.
class StreamPromise {
 public:
  /// Fulfills the promise (acceptor side).  Returns false if the promise
  /// was cancelled, in which case the caller keeps the stream.
  bool fulfill(std::shared_ptr<net::Stream> stream, PeerAddress dialer);

  /// Blocks until fulfilled or cancelled; throws NetError on cancel.
  std::shared_ptr<net::Stream> wait();

  /// The dialer's rendezvous address; valid after wait() returns.
  const PeerAddress& dialer() const { return dialer_; }

  /// Wakes any waiter with an error and refuses future fulfillment.
  void cancel();

  bool fulfilled() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<net::Stream> stream_;
  PeerAddress dialer_;
  bool fulfilled_ = false;
  bool cancelled_ = false;
};

/// The node-wide channel listener.
class RendezvousService {
 public:
  RendezvousService();
  ~RendezvousService();

  RendezvousService(const RendezvousService&) = delete;
  RendezvousService& operator=(const RendezvousService&) = delete;

  std::uint16_t port() const { return listener_->port(); }

  /// Registers a token and returns the promise its connection will arrive
  /// on.  Tokens are single-use.  If the connection already arrived (a
  /// dialer can race ahead of a lazily-read REDIRECT frame) the promise is
  /// fulfilled immediately from the parked connection.
  std::shared_ptr<StreamPromise> expect(std::uint64_t token);

  /// Drops a registration (e.g. a discarded never-connected endpoint).
  void forget(std::uint64_t token);

  /// Dials a remote rendezvous and performs the HELLO handshake.
  /// `self` is this node's own rendezvous address, told to the peer.
  /// `stream_window` tunes the mux backend's per-stream credit window
  /// (0 = transport default; ignored by the blocking backend).
  static std::shared_ptr<net::Stream> dial(const std::string& host,
                                           std::uint16_t port,
                                           std::uint64_t token,
                                           const PeerAddress& self,
                                           std::size_t stream_window = 0);

  /// Dials a remote rendezvous and delivers a CLOSE notification for
  /// `token`: "the consumer bound to this token has entered teardown".
  /// Single attempt, no retry -- this is a courtesy wakeup, not data.
  /// Returns the stream so the caller can park it (dropping it
  /// immediately could reset the message out of existence on the mux
  /// backend before the acceptor reads it).
  static std::shared_ptr<net::Stream> send_close(const std::string& host,
                                                 std::uint16_t port,
                                                 std::uint64_t token);

  /// Installs the handler the acceptor invokes for each CLOSE
  /// notification (NodeContext routes it to the registered credit
  /// waiter).  Call once, before any peer learns this node's port.
  void set_close_handler(std::function<void(std::uint64_t)> handler);

 private:
  void accept_loop();

  struct Parked {
    std::shared_ptr<net::Stream> stream;
    PeerAddress dialer;
  };

  std::shared_ptr<net::Listener> listener_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<StreamPromise>> pending_;
  std::unordered_map<std::uint64_t, Parked> parked_;
  std::function<void(std::uint64_t)> close_handler_;
  std::jthread acceptor_;
  std::atomic<bool> shutting_down_{false};
};

/// Aggregate traffic/blocking counters for all remote channel segments of
/// one node.  The distributed deadlock detector (paper Section 6.2) uses
/// them for a Mattern-style global quiescence test: when every process on
/// every node is blocked AND the fleet-wide bytes sent equal bytes
/// received (no frame in flight), the stall is real.
struct TrafficStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  /// Processes currently blocked inside a remote read / write.
  std::atomic<std::int64_t> blocked_remote_readers{0};
  std::atomic<std::int64_t> blocked_remote_writers{0};
};

/// A logical server: advertised address + rendezvous listener + token
/// source.  Creating the first NodeContext installs the distribution
/// hooks into dpn::core.
class NodeContext : public std::enable_shared_from_this<NodeContext> {
 public:
  static std::shared_ptr<NodeContext> create(
      std::string advertised_host = "127.0.0.1");

  /// Process-wide fallback node, created on first use.  Used when objects
  /// are deserialized outside any compute server.
  static std::shared_ptr<NodeContext> default_node();

  const std::string& host() const { return host_; }
  RendezvousService& rendezvous() { return rendezvous_; }

  PeerAddress address() const {
    return PeerAddress{host_, rendezvous_.port()};
  }

  /// Fresh random token for a pending channel connection.
  std::uint64_t next_token();

  /// Remote-channel counters for this node's endpoints.
  const std::shared_ptr<TrafficStats>& traffic() const { return traffic_; }

  /// Registers a live remote-channel stream so abort_remote_channels()
  /// can reach it.  Dead entries are pruned opportunistically.
  void register_remote_stream(const std::shared_ptr<net::Stream>& stream);

  /// Shuts down every registered remote-channel stream, waking processes
  /// blocked in remote reads/writes (they stop via the normal
  /// end-of-stream / ChannelClosed paths).  Used by the distributed
  /// deadlock detector's fleet abort.
  void abort_remote_channels();

  /// True once abort_remote_channels() has run: readers woken by the
  /// shutdown report a quiet stop instead of WorkerLost (an abort is
  /// deliberate, not a lost producer).
  bool aborting() const { return aborting_.load(std::memory_order_acquire); }

  /// Flow-control window (bytes) that remote producers writing *from*
  /// this node start with, and the bonus this node's consumers grant when
  /// the distributed deadlock detector orders a window grow.  Remote
  /// channels are bounded (Section 3.5 across machines); the default is
  /// generous enough that healthy graphs never notice.
  std::size_t remote_window() const { return remote_window_.load(); }
  void set_remote_window(std::size_t bytes) { remote_window_.store(bytes); }

  /// Keeps a half-closed producer-side stream alive until this node is
  /// destroyed.  Closing it earlier could turn unread credit frames into
  /// a TCP RST that destroys in-flight channel data at the consumer.
  void park_stream(std::shared_ptr<net::Stream> stream);

  /// Registers a consumer-side remote segment for credit bonuses.
  void register_remote_input(const std::shared_ptr<class FrameChannelInput>&
                                 input);

  /// Registers the producer side of a remote segment under its rendezvous
  /// token so a consumer-side CLOSE notification (delivered out-of-band
  /// through this node's rendezvous listener) can wake a writer parked in
  /// its credit wait.  Entries are weak; dead ones are pruned.
  void register_credit_waiter(
      std::uint64_t token,
      const std::shared_ptr<class FrameChannelOutput>& output);

  /// Grants one bonus window of credits on every live consumer-side
  /// segment of this node -- the distributed equivalent of growing a full
  /// channel's buffer (Parks' rule applied to a remote channel).
  void grant_remote_credits();

 private:
  explicit NodeContext(std::string advertised_host);

  /// token -> producer endpoint awaiting that token's consumer.  Lives in
  /// a shared_ptr because the rendezvous acceptor's close handler captures
  /// it by value: the handler may still run while the NodeContext's later
  /// members are being destroyed (the acceptor joins only when rendezvous_
  /// itself is destroyed).
  struct CreditWaiters {
    std::mutex mutex;
    std::unordered_map<std::uint64_t,
                       std::weak_ptr<class FrameChannelOutput>> waiters;
  };
  std::shared_ptr<CreditWaiters> credit_waiters_ =
      std::make_shared<CreditWaiters>();

  std::string host_;
  RendezvousService rendezvous_;
  std::mutex token_mutex_;
  std::uint64_t token_state_;
  std::shared_ptr<TrafficStats> traffic_ = std::make_shared<TrafficStats>();
  std::atomic<std::size_t> remote_window_{1u << 18};
  std::atomic<bool> aborting_{false};
  std::mutex streams_mutex_;
  std::vector<std::weak_ptr<net::Stream>> remote_streams_;
  std::vector<std::shared_ptr<net::Stream>> parked_streams_;
  std::vector<std::weak_ptr<class FrameChannelInput>> remote_inputs_;
};

}  // namespace dpn::dist
