#pragma once

#include <memory>
#include <set>
#include <unordered_map>

#include "core/channel.hpp"
#include "core/process.hpp"
#include "dist/node.hpp"
#include "serial/serial.hpp"

/// Shipping live process graphs between servers (paper Section 4).
///
/// ship_process() serializes a Process (or CompositeProcess) for execution
/// on another node; receive_process() reconstructs it there.  The channel
/// endpoints the processes reference are carried along, and the network
/// connections needed to keep every cut channel flowing are established
/// automatically as a *side effect of serialization*, exactly as in the
/// paper:
///
///  * a channel wholly inside the shipped subgraph travels as a pair of
///    LocalPairStubs and is rebuilt as an ordinary local pipe (with its
///    unconsumed bytes) on the destination -- co-located processes never
///    talk through the network;
///  * a cut channel's moving endpoint is replaced by a stub holding
///    (host, rendezvous port, token) of the node that keeps the other
///    endpoint; the staying endpoint is switched onto a pending socket
///    through its Sequence stream; on arrival the stub resolves by
///    dialing back -- unconsumed pipe bytes travel inside the stub and
///    are prepended, so not a byte is lost or reordered;
///  * shipping an endpoint that is *already* the producer side of a
///    remote segment triggers the redirect protocol of Section 4.3: the
///    old consumer is told in-band to expect a successor connection, and
///    the stub sends the new producer straight to the consumer's node --
///    traffic never relays through the abandoned middleman.
namespace dpn::dist {

/// Serialization-time context (stored in the ObjectOutputStream
/// attachment).
struct SendContext {
  std::shared_ptr<NodeContext> node;
  /// Channels with both endpoints inside the shipment.
  std::set<const core::ChannelState*> internal;
  std::unordered_map<const core::ChannelState*, std::uint64_t> pipe_ids;
  std::set<std::uint64_t> meta_emitted;
  std::uint64_t next_pipe_id = 0;
};

/// Deserialization-time context (ObjectInputStream attachment).
struct ReceiveContext {
  std::shared_ptr<NodeContext> node;
  /// Internal channels already rebuilt, by shipment-local pipe id.
  std::unordered_map<std::uint64_t, std::shared_ptr<core::Channel>> channels;
};

/// Installs the channel-endpoint serialization hooks into dpn::core.
/// Idempotent; called automatically by NodeContext::create.
void ensure_hooks_installed();

/// Serializes `process` for execution elsewhere.  `node` is the local
/// (sending) server, whose rendezvous will accept the dial-backs for
/// channels cut by this shipment.
ByteVector ship_process(const std::shared_ptr<NodeContext>& node,
                        const std::shared_ptr<core::Process>& process);

/// Reconstructs a shipped process on `node` (the receiving server),
/// dialing back for every cut channel.
std::shared_ptr<core::Process> receive_process(
    const std::shared_ptr<NodeContext>& node, ByteSpan bytes);

/// Generic object-graph variants used by the compute-server protocol
/// (tasks, results); channel endpoints are supported the same way.
ByteVector ship_object(const std::shared_ptr<NodeContext>& node,
                       const std::shared_ptr<serial::Serializable>& object);
std::shared_ptr<serial::Serializable> receive_object(
    const std::shared_ptr<NodeContext>& node, ByteSpan bytes);

}  // namespace dpn::dist
