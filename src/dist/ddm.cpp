#include "dist/ddm.hpp"

#include <algorithm>

#include "io/data.hpp"
#include "support/log.hpp"

namespace dpn::dist {
namespace {

enum class Op : std::uint8_t {
  kPoll = 1,
  kGrow = 2,
  kAbort = 3,
  kShutdown = 4,
  kGrowRemote = 5,
};

void write_state(io::DataOutputStream& out, const AgentState& state) {
  out.write_u64(state.live);
  out.write_u64(state.blocked_local_readers);
  out.write_u64(state.blocked_local_writers);
  out.write_u64(state.blocked_remote_readers);
  out.write_u64(state.blocked_remote_writers);
  out.write_bool(state.has_write_blocked);
  out.write_u64(state.smallest_blocked_capacity);
  out.write_u64(state.bytes_sent);
  out.write_u64(state.bytes_received);
}

AgentState read_state(io::DataInputStream& in) {
  AgentState state;
  state.live = in.read_u64();
  state.blocked_local_readers = in.read_u64();
  state.blocked_local_writers = in.read_u64();
  state.blocked_remote_readers = in.read_u64();
  state.blocked_remote_writers = in.read_u64();
  state.has_write_blocked = in.read_bool();
  state.smallest_blocked_capacity = in.read_u64();
  state.bytes_sent = in.read_u64();
  state.bytes_received = in.read_u64();
  return state;
}

std::uint64_t blocked_total(const AgentState& state) {
  return state.blocked_local_readers + state.blocked_local_writers +
         state.blocked_remote_readers + state.blocked_remote_writers;
}

}  // namespace

struct DeadlockCoordinator::Agent {
  std::string name;
  std::shared_ptr<net::Stream> stream;
  std::unique_ptr<io::DataInputStream> in;
  std::unique_ptr<io::DataOutputStream> out;
  bool alive = true;
};

DeadlockCoordinator::DeadlockCoordinator(Options options)
    : options_(options), listener_(net::default_transport().listen(0)) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
  poller_ = std::jthread{[this] { poll_loop(); }};
}

DeadlockCoordinator::~DeadlockCoordinator() { stop(); }

std::size_t DeadlockCoordinator::agents_connected() const {
  std::scoped_lock lock{agents_mutex_};
  return agents_.size();
}

void DeadlockCoordinator::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  if (poller_.joinable()) poller_.join();
  std::scoped_lock lock{agents_mutex_};
  for (const auto& agent : agents_) {
    if (!agent->alive) continue;
    try {
      agent->out->write_u8(static_cast<std::uint8_t>(Op::kShutdown));
    } catch (const IoError&) {
    }
    agent->stream->close();
  }
  agents_.clear();
}

void DeadlockCoordinator::accept_loop() {
  for (;;) {
    std::shared_ptr<net::Stream> stream;
    try {
      stream = listener_->accept();
    } catch (const NetError&) {
      return;
    }
    try {
      auto agent = std::make_shared<Agent>();
      agent->stream = std::move(stream);
      agent->in = std::make_unique<io::DataInputStream>(
          std::make_shared<net::StreamInput>(agent->stream));
      agent->out = std::make_unique<io::DataOutputStream>(
          std::make_shared<net::StreamOutput>(agent->stream));
      agent->name = agent->in->read_string();
      std::scoped_lock lock{agents_mutex_};
      agents_.push_back(std::move(agent));
      previous_valid_ = false;  // membership changed; restart stability
      log::debug("coordinator: agent '", agents_.back()->name, "' joined");
    } catch (const std::exception& e) {
      log::warn("coordinator: agent handshake failed: ", e.what());
    }
  }
}

void DeadlockCoordinator::poll_loop() {
  while (!stopping_.load()) {
    std::this_thread::sleep_for(options_.poll_interval);
    if (stopping_.load()) return;
    if (!poll_round()) return;
  }
}

bool DeadlockCoordinator::poll_round() {
  std::scoped_lock lock{agents_mutex_};
  if (agents_.empty()) return true;

  std::vector<AgentState> states;
  states.reserve(agents_.size());
  for (const auto& agent : agents_) {
    if (!agent->alive) {
      states.push_back(AgentState{});
      continue;
    }
    try {
      agent->out->write_u8(static_cast<std::uint8_t>(Op::kPoll));
      states.push_back(read_state(*agent->in));
    } catch (const IoError&) {
      agent->alive = false;
      states.push_back(AgentState{});
      previous_valid_ = false;
    }
  }

  std::uint64_t live = 0, blocked = 0, sent = 0, received = 0;
  std::uint64_t remote_writers = 0;
  bool any_write_blocked = false;
  std::size_t victim = agents_.size();
  for (std::size_t i = 0; i < states.size(); ++i) {
    const AgentState& state = states[i];
    live += state.live;
    blocked += blocked_total(state);
    sent += state.bytes_sent;
    received += state.bytes_received;
    remote_writers += state.blocked_remote_writers;
    if (state.has_write_blocked && agents_[i]->alive) {
      if (victim == agents_.size() ||
          state.smallest_blocked_capacity <
              states[victim].smallest_blocked_capacity) {
        victim = i;
      }
      any_write_blocked = true;
    }
  }

  const bool stalled = live > 0 && blocked >= live;
  const bool stable = previous_valid_ && states == previous_states_;
  previous_states_ = std::move(states);
  previous_valid_ = true;
  stable_rounds_ = (stalled && stable) ? stable_rounds_ + 1 : 0;

  if (stable_rounds_ < 1) return true;

  if (any_write_blocked) {
    // Artificial: apply Parks' rule on the node with the tightest
    // write-blocked channel.
    try {
      agents_[victim]->out->write_u8(static_cast<std::uint8_t>(Op::kGrow));
      agents_[victim]->in->read_bool();
      growth_commands_.fetch_add(1);
      if (outcome_.load() == FleetOutcome::kNone) {
        outcome_.store(FleetOutcome::kGrown);
      }
      log::debug("coordinator: told '", agents_[victim]->name,
                 "' to grow its smallest blocked channel");
    } catch (const IoError&) {
      agents_[victim]->alive = false;
    }
    previous_valid_ = false;
    stable_rounds_ = 0;
    return true;
  }

  if (remote_writers > 0) {
    // Someone is blocked writing into a *remote* channel whose window is
    // exhausted: the distributed analogue of a full pipe.  Tell every
    // node to grant bonus credits on its consumer-side segments (the
    // producers' windows grow; over-granting is as harmless as
    // over-growing a buffer).
    for (const auto& agent : agents_) {
      if (!agent->alive) continue;
      try {
        agent->out->write_u8(static_cast<std::uint8_t>(Op::kGrowRemote));
        agent->in->read_bool();
      } catch (const IoError&) {
        agent->alive = false;
      }
    }
    growth_commands_.fetch_add(1);
    if (outcome_.load() == FleetOutcome::kNone) {
      outcome_.store(FleetOutcome::kGrown);
    }
    previous_valid_ = false;
    stable_rounds_ = 0;
    return true;
  }

  // Every blocked process is waiting to read.  Before declaring a true
  // deadlock, make sure nothing that could wake a reader is in flight:
  // either the fleet-wide byte counters balance, or the stall has
  // persisted so long that any in-flight frame would have landed.
  if (!(sent == received || stable_rounds_ >= 8)) return true;
  outcome_.store(FleetOutcome::kTrueDeadlock);
  log::warn("coordinator: true distributed deadlock across ",
            agents_.size(), " node(s)");
  if (options_.abort_on_true_deadlock) {
    for (const auto& agent : agents_) {
      if (!agent->alive) continue;
      try {
        agent->out->write_u8(static_cast<std::uint8_t>(Op::kAbort));
        agent->in->read_bool();
      } catch (const IoError&) {
        agent->alive = false;
      }
    }
  }
  previous_valid_ = false;
  stable_rounds_ = 0;
  return true;
}

MonitorAgent::MonitorAgent(std::string name, core::Network& network,
                           std::shared_ptr<NodeContext> node,
                           const std::string& coordinator_host,
                           std::uint16_t coordinator_port)
    : name_(std::move(name)), network_(network), node_(std::move(node)) {
  stream_ = net::dial_with_retry(net::default_transport(), coordinator_host,
                                 coordinator_port, {});
  io::DataOutputStream out{std::make_shared<net::StreamOutput>(stream_)};
  out.write_string(name_);
  server_ = std::jthread{[this] { serve(); }};
}

MonitorAgent::~MonitorAgent() { stop(); }

void MonitorAgent::stop() {
  if (stopping_.exchange(true)) return;
  stream_->close();  // wakes serve()
  if (server_.joinable()) server_.join();
}

AgentState MonitorAgent::snapshot() const {
  AgentState state;
  const core::Network::BlockedCounts counts = network_.blocked_counts();
  state.live = counts.live;
  state.blocked_local_readers = counts.blocked_readers;
  state.blocked_local_writers = counts.blocked_writers;
  state.has_write_blocked = counts.has_write_blocked;
  state.smallest_blocked_capacity = counts.smallest_blocked_capacity;
  const TrafficStats& traffic = *node_->traffic();
  state.blocked_remote_readers = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, traffic.blocked_remote_readers.load()));
  state.blocked_remote_writers = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, traffic.blocked_remote_writers.load()));
  state.bytes_sent = traffic.bytes_sent.load();
  state.bytes_received = traffic.bytes_received.load();
  return state;
}

void MonitorAgent::serve() {
  io::DataInputStream in{std::make_shared<net::StreamInput>(stream_)};
  io::DataOutputStream out{std::make_shared<net::StreamOutput>(stream_)};
  try {
    for (;;) {
      const auto op = static_cast<Op>(in.read_u8());
      switch (op) {
        case Op::kPoll:
          write_state(out, snapshot());
          break;
        case Op::kGrow:
          out.write_bool(network_.grow_smallest_blocked());
          break;
        case Op::kGrowRemote:
          node_->grant_remote_credits();
          out.write_bool(true);
          break;
        case Op::kAbort:
          network_.abort();
          node_->abort_remote_channels();
          out.write_bool(true);
          break;
        case Op::kShutdown:
          return;
        default:
          throw IoError{"monitor agent: unknown op"};
      }
    }
  } catch (const IoError&) {
    // Coordinator gone or we were stopped; nothing else to do.
  }
}

}  // namespace dpn::dist
