#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "dist/node.hpp"
#include "net/transport.hpp"

/// Distributed deadlock management -- the paper's Section 6.2 future work
/// ("we plan to apply those ideas [Parks' bounded scheduling] to our
/// distributed Java implementation"), implemented.
///
/// A local deadlock monitor cannot act on a distributed graph: a process
/// blocked reading a socket is indistinguishable from one waiting for a
/// peer that is happily computing.  The detector therefore aggregates
/// fleet-wide state through a small coordinator:
///
///  * every participating Network runs a MonitorAgent that keeps one
///    transport stream to the DeadlockCoordinator and answers polls with its
///    local stall state: live processes, processes blocked on local
///    channels, processes blocked inside remote channel reads/writes, and
///    the node's cumulative remote-channel bytes sent/received;
///  * the coordinator declares a *global stall* when (a) every live
///    process in the fleet is blocked, (b) fleet-wide bytes sent equal
///    bytes received (no frame in flight that could unblock a reader --
///    the Mattern-style quiescence test), and (c) the same state was
///    observed on two consecutive polls;
///  * a stall with at least one write-blocked *local* channel somewhere is
///    artificial: the coordinator tells the node owning the smallest such
///    channel to grow it (Parks' rule, applied fleet-wide);
///  * a stall with only blocked readers is a true distributed deadlock:
///    the coordinator tells every agent to abort its network, so the
///    fleet terminates with Interrupted instead of hanging forever.
namespace dpn::dist {

enum class FleetOutcome : std::uint8_t {
  kNone = 0,
  kGrown = 1,         // at least one artificial stall was resolved
  kTrueDeadlock = 2,  // a global read-only stall was detected
};

/// Per-node stall report (one poll reply).
struct AgentState {
  std::uint64_t live = 0;
  std::uint64_t blocked_local_readers = 0;
  std::uint64_t blocked_local_writers = 0;
  std::uint64_t blocked_remote_readers = 0;
  std::uint64_t blocked_remote_writers = 0;
  bool has_write_blocked = false;
  std::uint64_t smallest_blocked_capacity = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  bool operator==(const AgentState&) const = default;
};

/// The fleet-wide detector.  Owns a transport listener; agents dial in.
class DeadlockCoordinator {
 public:
  struct Options {
    std::chrono::milliseconds poll_interval{5};
    double growth_factor = 2.0;
    std::size_t max_channel_capacity = 1u << 24;
    /// Abort the fleet when a true deadlock is found (otherwise just
    /// record it).
    bool abort_on_true_deadlock = true;
  };

  DeadlockCoordinator() : DeadlockCoordinator(Options{}) {}
  explicit DeadlockCoordinator(Options options);
  ~DeadlockCoordinator();

  DeadlockCoordinator(const DeadlockCoordinator&) = delete;
  DeadlockCoordinator& operator=(const DeadlockCoordinator&) = delete;

  std::uint16_t port() const { return listener_->port(); }

  FleetOutcome outcome() const { return outcome_.load(); }
  std::size_t growth_commands() const { return growth_commands_.load(); }
  std::size_t agents_connected() const;

  /// Stops polling and disconnects every agent.
  void stop();

 private:
  struct Agent;

  void accept_loop();
  void poll_loop();
  bool poll_round();

  Options options_;
  std::shared_ptr<net::Listener> listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<FleetOutcome> outcome_{FleetOutcome::kNone};
  std::atomic<std::size_t> growth_commands_{0};

  mutable std::mutex agents_mutex_;
  std::vector<std::shared_ptr<Agent>> agents_;
  std::vector<AgentState> previous_states_;
  bool previous_valid_ = false;
  std::size_t stable_rounds_ = 0;

  std::jthread acceptor_;
  std::jthread poller_;
};

/// The per-node participant: connects a Network (and its NodeContext's
/// remote-channel counters) to a coordinator.  Construct after the
/// network is built; keep alive for the run.
class MonitorAgent {
 public:
  MonitorAgent(std::string name, core::Network& network,
               std::shared_ptr<NodeContext> node,
               const std::string& coordinator_host,
               std::uint16_t coordinator_port);
  ~MonitorAgent();

  MonitorAgent(const MonitorAgent&) = delete;
  MonitorAgent& operator=(const MonitorAgent&) = delete;

  void stop();

 private:
  void serve();
  AgentState snapshot() const;

  std::string name_;
  core::Network& network_;
  std::shared_ptr<NodeContext> node_;
  std::shared_ptr<net::Stream> stream_;
  std::atomic<bool> stopping_{false};
  std::jthread server_;
};

}  // namespace dpn::dist
