#include "dist/remote_streams.hpp"

#include <cstring>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace dpn::dist {

FrameChannelInput::FrameChannelInput(std::shared_ptr<net::Stream> stream,
                                     std::shared_ptr<NodeContext> node,
                                     std::uint32_t credit_batch,
                                     PeerAddress producer,
                                     std::uint64_t close_token)
    : node_(std::move(node)), stream_(std::move(stream)),
      producer_addr_(std::move(producer)), close_token_(close_token),
      credit_batch_(credit_batch != 0 ? credit_batch : kCreditBatch) {
  if (node_) node_->register_remote_stream(stream_);
  reader_.emplace(std::make_shared<net::StreamInput>(stream_));
}

FrameChannelInput::FrameChannelInput(std::shared_ptr<StreamPromise> promise,
                                     std::uint64_t token,
                                     std::shared_ptr<NodeContext> node,
                                     std::uint32_t credit_batch)
    : node_(std::move(node)),
      promise_(std::move(promise)),
      pending_token_(token),
      credit_batch_(credit_batch != 0 ? credit_batch : kCreditBatch) {}

namespace {

/// Increments a blocked counter for the duration of a scope.
class BlockedScope {
 public:
  explicit BlockedScope(std::atomic<std::int64_t>* counter)
      : counter_(counter) {
    if (counter_ != nullptr) counter_->fetch_add(1);
  }
  ~BlockedScope() {
    if (counter_ != nullptr) counter_->fetch_sub(1);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  std::atomic<std::int64_t>* counter_;
};

}  // namespace

void FrameChannelInput::ensure_connected() {
  if (reader_) return;
  stream_ = promise_->wait();
  // The producer's HELLO told us its rendezvous; its credit waiter is
  // registered under the token it dialed with -- exactly what an early
  // close() needs to deliver the out-of-band CLOSE.
  producer_addr_ = promise_->dialer();
  close_token_ = pending_token_;
  promise_.reset();
  if (node_) node_->register_remote_stream(stream_);
  reader_.emplace(std::make_shared<net::StreamInput>(stream_));
}

std::size_t FrameChannelInput::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  if (closed_.load()) throw IoError{"read from closed remote channel"};
  for (;;) {
    if (position_ < buffer_.size()) {
      const std::size_t n = std::min(out.size(), buffer_.size() - position_);
      std::memcpy(out.data(), buffer_.data() + position_, n);
      position_ += n;
      // Consumption frees window.  Small grants coalesce instead of
      // costing a credit frame (header + syscall) each; they travel once
      // they amount to a useful batch, or -- below -- just before this
      // consumer blocks on the stream.
      pending_credit_ += static_cast<std::uint32_t>(n);
      if (pending_credit_ >= credit_batch_) {
        send_credit(pending_credit_);
        pending_credit_ = 0;
      }
      return n;
    }
    if (eof_) return 0;
    // About to block for the next frame: flush withheld credits first.
    // The producer may need them to make the very progress we wait for
    // (windows as small as one byte are legal), so nothing may be held
    // back past this point.
    if (pending_credit_ > 0) {
      send_credit(pending_credit_);
      pending_credit_ = 0;
    }
    TrafficStats* stats = node_ ? node_->traffic().get() : nullptr;
    net::Frame frame = [&] {
      // Waiting for the next frame is this node "blocked on a remote
      // read" for the distributed deadlock detector.
      BlockedScope blocked{stats ? &stats->blocked_remote_readers : nullptr};
      ensure_connected();
      try {
        return reader_->read_frame();
      } catch (const IoError& e) {
        // A producer that finishes sends FIN before its transport goes
        // away, so a stream dying mid-frame means the producer was
        // *lost*, not done.  Locally-closed reads (our own close()/abort
        // woke us via shutdown) keep the quiet IoError stop; everything
        // else surfaces as WorkerLost, which IterativeProcess::run does
        // NOT swallow -- the application sees the fault instead of a
        // silently truncated history (docs/FAULTS.md).
        if (closed_.load() || (node_ && node_->aborting())) throw;
        throw WorkerLost{std::string{"remote producer lost mid-stream: "} +
                         e.what()};
      }
    }();
    switch (frame.type) {
      case net::FrameType::kData:
        if (stats != nullptr) {
          stats->bytes_received.fetch_add(frame.payload.size());
        }
        buffer_ = std::move(frame.payload);
        position_ = 0;
        break;
      case net::FrameType::kDataTraced: {
        // Data frame carrying the trace-context extension: peel the 17
        // context bytes, adopt the context as this thread's ambient one
        // (spans recorded downstream chain to it), and mark the arrival
        // -- same span id as the producer's kNetSend, which is what the
        // exporter turns into a cross-host flow arrow.
        if (frame.payload.size() < obs::TraceContext::kWireSize) {
          throw IoError{"traced data frame shorter than its context"};
        }
        const auto ctx = obs::TraceContext::decode(frame.payload.data());
        obs::current_trace_context() = ctx;
        DPN_TRACE_EVENT(obs::TraceKind::kNetRecv, "data", ctx.span_id,
                        frame.payload.size() - obs::TraceContext::kWireSize);
        if (stats != nullptr) {
          stats->bytes_received.fetch_add(frame.payload.size() -
                                          obs::TraceContext::kWireSize);
        }
        buffer_.assign(frame.payload.begin() + obs::TraceContext::kWireSize,
                       frame.payload.end());
        position_ = 0;
        break;
      }
      case net::FrameType::kFin:
        eof_ = true;
        return 0;
      case net::FrameType::kRedirect:
        handle_redirect(net::RedirectInfo::decode(
            {frame.payload.data(), frame.payload.size()}));
        break;
      case net::FrameType::kRst:
        throw ChannelClosed{"remote reader reset the channel"};
      case net::FrameType::kCredit:
        // Credits belong to the reverse direction; one arriving here is a
        // protocol violation.
        throw IoError{"credit frame on the data direction"};
    }
  }
}

void FrameChannelInput::handle_redirect(const net::RedirectInfo& info) {
  // The producer moved to a new server; it (or rather its reincarnation)
  // will dial our node's rendezvous with `info.token`.  Splice the
  // successor segment after ourselves so the consumer keeps reading
  // without interruption once this segment's FIN arrives.
  auto parent = parent_.lock();
  if (!parent) {
    throw IoError{"REDIRECT received but the channel sequence is gone"};
  }
  if (info.trace.valid()) {
    obs::current_trace_context() = info.trace;
    DPN_TRACE_EVENT(obs::TraceKind::kShipRecv, "redirect",
                    info.trace.span_id, info.token);
  }
  auto promise = node_->rendezvous().expect(info.token);
  auto successor = std::make_shared<FrameChannelInput>(promise, info.token,
                                                       node_, credit_batch_);
  successor->set_parent_sequence(parent_);
  if (node_) node_->register_remote_input(successor);
  parent->append(successor);
  log::debug("channel segment redirected; awaiting token ", info.token);
}

void FrameChannelInput::send_credit(std::uint32_t bytes) {
  if (bytes == 0) return;
  std::scoped_lock lock{credit_mutex_};
  if (credit_channel_dead_ || !stream_) return;
  try {
    if (!credit_writer_) {
      credit_writer_.emplace(std::make_shared<net::StreamOutput>(stream_));
    }
    credit_writer_->write_credit(bytes);
  } catch (const IoError&) {
    // Producer already gone; it no longer needs credits.
    credit_channel_dead_ = true;
  }
}

void FrameChannelInput::grant_bonus_credits(std::uint32_t bytes) {
  send_credit(bytes);
}

void FrameChannelInput::close() {
  if (closed_.exchange(true)) return;
  if (promise_) {
    node_->rendezvous().forget(pending_token_);
    promise_->cancel();
  }
  if (stream_) {
    // Shutdown, not close: shutdown() wakes a reader currently blocked on
    // this stream (a bare close() would leave it blocked forever -- the
    // abort path closes endpoints from another thread), and it still
    // makes the producer's next write fail with ChannelClosed,
    // propagating termination upstream (Section 3.4).  The underlying
    // connection/stream is released when the last reference drops.
    stream_->shutdown_read();
    stream_->shutdown_write();
    // Closing before the producer's FIN means it may still be running --
    // possibly parked in its credit wait, where the shutdowns above are
    // not guaranteed to reach it: on the blocking backend both TCP
    // directions of this connection can already be wedged (the seed-era
    // teardown gridlock: writer in FIN-WAIT-1 behind ~116 KB we never
    // read), and abandon_read is deliberately a no-op there.  Deliver the
    // news out-of-band instead: a fresh connection to the producer's
    // rendezvous carrying a CLOSE for our token.
    if (!eof_.load() && close_token_ != 0 && producer_addr_.valid() &&
        (!node_ || !node_->aborting())) {
      notify_producer_closed();
    }
  }
}

void FrameChannelInput::notify_producer_closed() noexcept {
  try {
    auto stream = RendezvousService::send_close(
        producer_addr_.host, producer_addr_.port, close_token_);
    // Park the notification stream: dropping it immediately could reset
    // the message away (mux) before the acceptor reads it.
    if (node_) node_->park_stream(std::move(stream));
    log::debug("dist CLOSE sent for token ", close_token_, " to ",
               producer_addr_.host, ":", producer_addr_.port);
  } catch (...) {
    // Producer node already gone; there is nobody left to wake.
    log::debug("dist CLOSE for token ", close_token_, " undeliverable");
  }
}

FrameChannelOutput::FrameChannelOutput(std::shared_ptr<net::Stream> stream,
                                       PeerAddress peer,
                                       std::shared_ptr<NodeContext> node,
                                       std::size_t window_override)
    : node_(std::move(node)), stream_(std::move(stream)),
      peer_(std::move(peer)) {
  window_ = static_cast<std::int64_t>(
      window_override != 0 ? window_override
      : node_               ? node_->remote_window()
                            : (std::size_t{1} << 18));
  if (node_) node_->register_remote_stream(stream_);
  {
    std::scoped_lock wake_lock{wake_mutex_};
    wake_stream_ = stream_;
  }
  writer_.emplace(std::make_shared<net::StreamOutput>(stream_));
}

FrameChannelOutput::FrameChannelOutput(std::shared_ptr<StreamPromise> promise,
                                       std::uint64_t token,
                                       std::shared_ptr<NodeContext> node,
                                       std::size_t window_override)
    : node_(std::move(node)),
      promise_(std::move(promise)),
      pending_token_(token) {
  window_ = static_cast<std::int64_t>(
      window_override != 0 ? window_override
      : node_               ? node_->remote_window()
                            : (std::size_t{1} << 18));
}

void FrameChannelOutput::ensure_connected_locked() {
  if (writer_) return;
  stream_ = promise_->wait();
  peer_ = promise_->dialer();
  promise_.reset();
  if (node_) node_->register_remote_stream(stream_);
  {
    std::scoped_lock wake_lock{wake_mutex_};
    wake_stream_ = stream_;
  }
  writer_.emplace(std::make_shared<net::StreamOutput>(stream_));
}

void FrameChannelOutput::write(ByteSpan data) {
  std::scoped_lock lock{mutex_};
  if (closed_) throw IoError{"write to closed remote channel"};
  TrafficStats* stats = node_ ? node_->traffic().get() : nullptr;
  {
    BlockedScope blocked{stats ? &stats->blocked_remote_writers : nullptr};
    ensure_connected_locked();
    // Bounded remote channel: send at most window_ bytes, then block for
    // consumer credits -- the cross-machine equivalent of a full pipe.
    std::size_t offset = 0;
    while (offset < data.size()) {
      if (peer_closed_.load(std::memory_order_acquire)) {
        // Out-of-band CLOSE already told us the consumer is gone; don't
        // push more bytes at a receive queue nobody will drain.
        throw ChannelClosed{"remote reader closed the channel"};
      }
      while (window_ <= 0) await_credit_locked();
      const std::size_t chunk = std::min<std::size_t>(
          static_cast<std::size_t>(window_), data.size() - offset);
      if (obs::trace_enabled()) {
        // Stamp the frame with a fresh span in this thread's ambient
        // trace (minting the trace lazily): the consumer's kNetRecv of
        // the same span id becomes the flow arrow across the wire.
        obs::TraceContext& ambient = obs::current_trace_context();
        if (!ambient.valid()) {
          ambient.trace_id = obs::new_trace_id();
          ambient.flags = obs::TraceContext::kSampled;
        }
        obs::TraceContext ctx = ambient;
        ctx.span_id = obs::next_span_id();
        writer_->write_data_traced(ctx, data.subspan(offset, chunk));
        DPN_TRACE_EVENT(obs::TraceKind::kNetSend, "data", ctx.span_id, chunk);
      } else {
        writer_->write_data(data.subspan(offset, chunk));
      }
      window_ -= static_cast<std::int64_t>(chunk);
      offset += chunk;
      // A producer whose window outpaces the data volume (large
      // credit_window, short run) can otherwise go the whole stream
      // without ever stalling -- and the stall path above is the only
      // place credits are read.  The consumer's per-token grants then
      // pile up unread until they overflow this end's receive buffer,
      // and on the blocking backend the whole TCP connection collapses
      // into mutual retransmission backoff: our own tail (and FIN!)
      // never delivers, the consumer waits forever (the seed-era
      // teardown gridlock).  Poll the backlog off periodically so the
      // standing credit queue stays bounded regardless of window size.
      since_drain_ += static_cast<std::int64_t>(chunk);
      if (since_drain_ >= kDrainEveryBytes) {
        since_drain_ = 0;
        drain_credits_locked(/*block=*/false);
      }
    }
  }
  if (stats != nullptr) stats->bytes_sent.fetch_add(data.size());
}

void FrameChannelOutput::drain_credits_locked(bool block) {
  if (!credit_reader_) {
    credit_reader_.emplace(std::make_shared<net::StreamInput>(stream_));
  }
  // Block for the grant we need (when the window is exhausted), then
  // DRAIN every credit frame already buffered.  Reading one frame per
  // stall lets unread grants accumulate in the transport (the consumer
  // emits roughly one small credit frame per data frame, so their wire
  // volume rivals the data's): once they fill the receive buffer / mux
  // window of this reverse direction, the consumer's next grant blocks,
  // it stops reading our data, and the connection gridlocks in both
  // directions.  Draining to empty keeps the standing queue near zero,
  // so the credit direction always has room.
  for (;;) {
    if (!block &&
        !stream_->wait_readable(std::chrono::milliseconds{0})) {
      return;
    }
    const net::Frame frame = [&] {
      try {
        return credit_reader_->read_frame();
      } catch (const IoError&) {
        // peer_closed() wakes this read by shutting down our receive
        // side; an end-of-stream that lands mid-frame surfaces as
        // IoError rather than the synthetic FIN.  Either way the meaning
        // is the consumer's: it is gone.
        if (peer_closed_.load(std::memory_order_acquire)) {
          throw ChannelClosed{
              "remote reader closed while writer awaited credit"};
        }
        throw;
      }
    }();
    switch (frame.type) {
      case net::FrameType::kCredit:
        if (frame.payload.size() != 4) {
          throw IoError{"malformed credit frame"};
        }
        window_ += get_u32(frame.payload.data());
        block = false;
        break;
      case net::FrameType::kFin:
        // The consumer is gone (orderly close or synthetic on shutdown):
        // the writer's turn to terminate.
        throw ChannelClosed{
            "remote reader closed while writer awaited credit"};
      default:
        throw IoError{"unexpected frame on the credit channel"};
    }
  }
}

void FrameChannelOutput::close() {
  std::scoped_lock lock{mutex_};
  if (closed_) return;
  closed_ = true;
  try {
    // Deliver FIN even if the consumer has not dialed in yet: the stream
    // contract promises the consumer an explicit end-of-stream.
    ensure_connected_locked();
    // Clear any credit backlog first: unread grants sitting in our
    // receive buffer are exactly what keeps the FIN below from reaching
    // the consumer (see the drain in write()).
    drain_credits_locked(/*block=*/false);
    writer_->write_fin();
    stream_->shutdown_write();
    // We will never read again either: our only inbound traffic is credit
    // frames, and the FIN above promises the consumer no more data, so any
    // credit it sends from here on is void.  Saying so matters on the mux
    // backend: a consumer mid-grant can be parked on this stream's credit
    // window (its grants count against the mux window of the reverse
    // direction, which only our await_credit reads ever replenish).  The
    // per-stream RST that abandon_read emits there fails that write with
    // ChannelClosed -- which FrameChannelInput::send_credit treats as
    // "producer done" -- instead of leaving the consumer wedged until
    // node teardown.  On the blocking backend abandon_read is a no-op
    // (NOT a SHUT_RD: a shut-down TCP receive side answers late credit
    // bytes with a connection-wide RST that would destroy our own
    // undelivered tail and FIN); there the await_credit_locked
    // drain-to-empty keeps the credit backlog from wedging anyone.
    stream_->abandon_read();
    park_stream_locked();
  } catch (const IoError&) {
    // Consumer already gone; nothing to tell it.
  }
}

void FrameChannelOutput::peer_closed() {
  // Out-of-band CLOSE from the consumer's teardown.  mutex_ may be held
  // by a writer parked inside await_credit_locked's blocking credit read,
  // so only the separately-locked wake handle is touched here: shutting
  // down our receive side makes that read return end-of-stream, which the
  // frame reader turns into a synthetic FIN -> ChannelClosed.  The RST
  // hazard that keeps Stream::abandon_read a no-op on the blocking
  // backend does not apply: anything a SHUT_RD here could destroy was
  // addressed to a consumer that already stopped reading for good.
  peer_closed_.store(true, std::memory_order_release);
  std::shared_ptr<net::Stream> stream;
  {
    std::scoped_lock lock{wake_mutex_};
    stream = wake_stream_;
  }
  if (stream) stream->shutdown_read();
}

void FrameChannelOutput::park_stream_locked() {
  // Dropping the stream with unread data (late credit frames) inbound can
  // turn into a connection reset that destroys our own in-flight channel
  // data at the consumer (on the blocking backend a close with unread TCP
  // data sends RST; on the mux backend dropping the handle RSTs the
  // logical stream).  Instead, park the half-closed stream with the node:
  // it stays open (harmless) until the node itself is torn down, long
  // after the consumer has drained our FIN.
  if (node_ && stream_) node_->park_stream(stream_);
}

void FrameChannelOutput::connect_now() {
  std::scoped_lock lock{mutex_};
  ensure_connected_locked();
}

bool FrameChannelOutput::connected() const {
  std::scoped_lock lock{mutex_};
  return writer_.has_value();
}

void FrameChannelOutput::redirect_and_finish(std::uint64_t successor_token) {
  std::scoped_lock lock{mutex_};
  if (closed_) throw IoError{"redirect on closed remote channel"};
  ensure_connected_locked();
  net::RedirectInfo info;
  info.token = successor_token;
  if (obs::trace_enabled()) {
    // The redirect handshake is part of a SHIP lifecycle: stamp it so
    // the consumer's acceptance (kShipRecv) links back to this span.
    info.trace.trace_id = obs::current_trace_context().valid()
                              ? obs::current_trace_context().trace_id
                              : obs::new_trace_id();
    info.trace.span_id = obs::next_span_id();
    info.trace.flags = obs::TraceContext::kSampled;
    DPN_TRACE_EVENT(obs::TraceKind::kShipSend, "redirect",
                    info.trace.span_id, successor_token);
  }
  writer_->write_redirect(info);
  writer_->write_fin();
  stream_->shutdown_write();
  // Same as close(): this segment never reads credits again; where the
  // transport can say so safely (mux), unpark a consumer mid-grant.
  stream_->abandon_read();
  park_stream_locked();
  closed_ = true;
}

}  // namespace dpn::dist
