#pragma once

#include <any>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/data.hpp"
#include "io/stream.hpp"
#include "support/error.hpp"

/// Object serialization, modeled on Java Object Serialization.
///
/// The paper distributes live process graphs by serializing Process
/// objects; the channel endpoints they reference are serialized along with
/// them, and those endpoints' writeReplace/readResolve hooks are where
/// network connections get established automatically (Sections 4.2/4.3).
/// This module supplies the same machinery for C++:
///
///  * Serializable     -- base class with write_fields + the two hooks;
///  * TypeRegistry     -- name -> factory map.  Where the JVM downloads
///                        bytecode via the RMI codebase, a C++ node instead
///                        links the type and registers it by name (see
///                        DESIGN.md, substitutions);
///  * ObjectOutputStream / ObjectInputStream -- graph writer/reader with
///                        back-references so shared objects stay shared.
namespace dpn::serial {

class ObjectOutputStream;
class ObjectInputStream;

class Serializable {
 public:
  virtual ~Serializable() = default;

  /// Registered type name; must match a TypeRegistry entry on every node
  /// that may deserialize this object.
  virtual std::string type_name() const = 0;

  /// Serializes this object's fields (primitives and nested objects).
  virtual void write_fields(ObjectOutputStream& out) const = 0;

  /// Called before serialization; a non-null result is serialized in this
  /// object's place.  The distribution machinery uses this to replace a
  /// live local channel endpoint with a network stub -- with the side
  /// effect of opening a listening socket (paper Section 4.2).
  virtual std::shared_ptr<Serializable> write_replace(ObjectOutputStream&) {
    return nullptr;
  }

  /// Called after deserialization; a non-null result replaces this object.
  /// Network stubs use this to dial back and become live endpoints.
  virtual std::shared_ptr<Serializable> read_resolve(ObjectInputStream&) {
    return nullptr;
  }
};

using Factory =
    std::function<std::shared_ptr<Serializable>(ObjectInputStream&)>;

class TypeRegistry {
 public:
  static TypeRegistry& global();

  /// Registers a factory under `name`; re-registration of the same name is
  /// an error (two types colliding on a wire name would corrupt graphs).
  void register_factory(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;
  const Factory& factory(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Factory> factories_;
};

/// Registers T by calling `T::read_object(ObjectInputStream&)`.
/// Use at namespace scope in the type's .cpp:
///   const bool registered = register_type<Foo>("dpn.Foo");
template <typename T>
bool register_type(const std::string& name) {
  TypeRegistry::global().register_factory(
      name, [](ObjectInputStream& in) -> std::shared_ptr<Serializable> {
        return T::read_object(in);
      });
  return true;
}

/// Writes an object graph to an underlying OutputStream.  Handles are
/// assigned in first-serialization order; a repeated reference is written
/// as a back-reference so object identity survives the round trip.
class ObjectOutputStream {
 public:
  explicit ObjectOutputStream(std::shared_ptr<io::OutputStream> out);

  /// Serializes one object (or nullptr).  Applies write_replace hooks.
  void write_object(const std::shared_ptr<Serializable>& object);

  // Primitive passthroughs for write_fields implementations.
  void write_bool(bool v) { data_.write_bool(v); }
  void write_u8(std::uint8_t v) { data_.write_u8(v); }
  void write_i32(std::int32_t v) { data_.write_i32(v); }
  void write_u32(std::uint32_t v) { data_.write_u32(v); }
  void write_i64(std::int64_t v) { data_.write_i64(v); }
  void write_u64(std::uint64_t v) { data_.write_u64(v); }
  void write_f64(double v) { data_.write_f64(v); }
  void write_varint(std::uint64_t v) { data_.write_varint(v); }
  void write_string(const std::string& s) { data_.write_string(s); }
  void write_bytes(ByteSpan b) { data_.write_bytes(b); }

  void flush() { data_.flush(); }

  /// Per-stream context for serialization hooks (e.g. the dist module
  /// stashes the local node's advertised address here).
  void set_attachment(std::any attachment) {
    attachment_ = std::move(attachment);
  }
  const std::any& attachment() const { return attachment_; }

 private:
  io::DataOutputStream data_;
  std::unordered_map<const Serializable*, std::uint64_t> handles_;
  std::uint64_t next_handle_ = 0;
  // Keeps replaced/original objects alive for the stream's lifetime so
  // handle pointers stay valid.
  std::vector<std::shared_ptr<Serializable>> retained_;
  std::any attachment_;
};

/// Reads an object graph written by ObjectOutputStream.
class ObjectInputStream {
 public:
  explicit ObjectInputStream(std::shared_ptr<io::InputStream> in);

  std::shared_ptr<Serializable> read_object();

  /// Typed convenience; throws SerializationError on type mismatch or null.
  template <typename T>
  std::shared_ptr<T> read_object_as() {
    auto obj = read_object();
    if (!obj) throw SerializationError{"unexpected null object"};
    auto typed = std::dynamic_pointer_cast<T>(obj);
    if (!typed) {
      throw SerializationError{"object of type '" + obj->type_name() +
                               "' is not of the requested type"};
    }
    return typed;
  }

  bool read_bool() { return data_.read_bool(); }
  std::uint8_t read_u8() { return data_.read_u8(); }
  std::int32_t read_i32() { return data_.read_i32(); }
  std::uint32_t read_u32() { return data_.read_u32(); }
  std::int64_t read_i64() { return data_.read_i64(); }
  std::uint64_t read_u64() { return data_.read_u64(); }
  double read_f64() { return data_.read_f64(); }
  std::uint64_t read_varint() { return data_.read_varint(); }
  std::string read_string() { return data_.read_string(); }
  ByteVector read_bytes() { return data_.read_bytes(); }

  void set_attachment(std::any attachment) {
    attachment_ = std::move(attachment);
  }
  const std::any& attachment() const { return attachment_; }

 private:
  io::DataInputStream data_;
  std::vector<std::shared_ptr<Serializable>> objects_;  // handle -> object
  std::any attachment_;
};

/// Serializes a single object graph to bytes (no attachment).
ByteVector to_bytes(const std::shared_ptr<Serializable>& object);

/// Deserializes a single object graph from bytes.
std::shared_ptr<Serializable> from_bytes(ByteSpan bytes);

template <typename T>
std::shared_ptr<T> from_bytes_as(ByteSpan bytes) {
  auto obj = from_bytes(bytes);
  if (!obj) throw SerializationError{"unexpected null object"};
  auto typed = std::dynamic_pointer_cast<T>(obj);
  if (!typed) {
    throw SerializationError{"object of type '" + obj->type_name() +
                             "' is not of the requested type"};
  }
  return typed;
}

}  // namespace dpn::serial
