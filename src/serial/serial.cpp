#include "serial/serial.hpp"

#include <mutex>

#include "io/memory.hpp"

namespace dpn::serial {

namespace {
// Wire tags for write_object / read_object.
constexpr std::uint8_t kTagNull = 0;
constexpr std::uint8_t kTagReference = 1;
constexpr std::uint8_t kTagObject = 2;
}  // namespace

TypeRegistry& TypeRegistry::global() {
  static TypeRegistry* registry = new TypeRegistry;  // immortal
  return *registry;
}

void TypeRegistry::register_factory(const std::string& name, Factory factory) {
  std::scoped_lock lock{mutex_};
  const auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    throw UsageError{"serializable type '" + name + "' registered twice"};
  }
}

bool TypeRegistry::contains(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  return factories_.count(name) > 0;
}

const Factory& TypeRegistry::factory(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw SerializationError{
        "unknown serializable type '" + name +
        "' (the receiving node must link and register this type)"};
  }
  return it->second;
}

std::vector<std::string> TypeRegistry::names() const {
  std::scoped_lock lock{mutex_};
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

ObjectOutputStream::ObjectOutputStream(std::shared_ptr<io::OutputStream> out)
    : data_(std::move(out)) {}

void ObjectOutputStream::write_object(
    const std::shared_ptr<Serializable>& object) {
  if (!object) {
    data_.write_u8(kTagNull);
    return;
  }
  if (const auto it = handles_.find(object.get()); it != handles_.end()) {
    data_.write_u8(kTagReference);
    data_.write_varint(it->second);
    return;
  }
  // Apply write_replace to a fixpoint (bounded, as in Java, to catch
  // accidental replacement cycles).
  std::shared_ptr<Serializable> actual = object;
  for (int depth = 0; depth < 8; ++depth) {
    auto replacement = actual->write_replace(*this);
    if (!replacement || replacement == actual) break;
    actual = std::move(replacement);
  }
  if (actual != object) {
    if (const auto it = handles_.find(actual.get()); it != handles_.end()) {
      handles_.emplace(object.get(), it->second);
      retained_.push_back(object);
      data_.write_u8(kTagReference);
      data_.write_varint(it->second);
      return;
    }
  }
  const std::uint64_t handle = next_handle_++;
  handles_.emplace(object.get(), handle);
  retained_.push_back(object);
  if (actual != object) {
    handles_.emplace(actual.get(), handle);
    retained_.push_back(actual);
  }
  data_.write_u8(kTagObject);
  data_.write_string(actual->type_name());
  actual->write_fields(*this);
}

ObjectInputStream::ObjectInputStream(std::shared_ptr<io::InputStream> in)
    : data_(std::move(in)) {}

std::shared_ptr<Serializable> ObjectInputStream::read_object() {
  const std::uint8_t tag = data_.read_u8();
  switch (tag) {
    case kTagNull:
      return nullptr;
    case kTagReference: {
      const std::uint64_t handle = data_.read_varint();
      if (handle >= objects_.size()) {
        throw SerializationError{"back-reference to unknown handle " +
                                 std::to_string(handle)};
      }
      auto object = objects_[handle];
      if (!object) {
        throw SerializationError{
            "circular object reference (handle " + std::to_string(handle) +
            " referenced while still being constructed)"};
      }
      return object;
    }
    case kTagObject: {
      const std::string name = data_.read_string();
      const Factory& factory = TypeRegistry::global().factory(name);
      // Reserve the handle slot before reading fields so nested objects
      // get the same numbering the writer used.
      const std::size_t slot = objects_.size();
      objects_.push_back(nullptr);
      auto object = factory(*this);
      if (!object) {
        throw SerializationError{"factory for '" + name + "' returned null"};
      }
      if (auto resolved = object->read_resolve(*this)) object = resolved;
      objects_[slot] = object;
      return object;
    }
    default:
      throw SerializationError{"corrupt object stream: bad tag " +
                               std::to_string(tag)};
  }
}

ByteVector to_bytes(const std::shared_ptr<Serializable>& object) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  ObjectOutputStream out{sink};
  out.write_object(object);
  return sink->take();
}

std::shared_ptr<Serializable> from_bytes(ByteSpan bytes) {
  auto source =
      std::make_shared<io::MemoryInputStream>(ByteVector{bytes.begin(), bytes.end()});
  ObjectInputStream in{source};
  return in.read_object();
}

}  // namespace dpn::serial
