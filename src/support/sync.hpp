#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/error.hpp"

/// Small synchronization helpers built on mutex + condition_variable.
/// (Per CP.42, every wait has a predicate; per CP.20, locks are RAII.)
namespace dpn {

/// One-shot event: set() releases every current and future wait().
class Event {
 public:
  void set() {
    {
      std::scoped_lock lock{mutex_};
      set_ = true;
    }
    cv_.notify_all();
  }

  bool is_set() const {
    std::scoped_lock lock{mutex_};
    return set_;
  }

  void wait() const {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return set_; });
  }

  /// Returns false on timeout.
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> d) const {
    std::unique_lock lock{mutex_};
    return cv_.wait_for(lock, d, [&] { return set_; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool set_ = false;
};

/// Unbounded multi-producer multi-consumer queue with close semantics.
/// pop() blocks until an item is available or the queue is closed *and*
/// drained, in which case it returns nullopt.  Used by the Turnstile
/// process to merge worker results in arrival order.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue was already closed (item dropped).
  bool push(T item) {
    {
      std::scoped_lock lock{mutex_};
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock{mutex_};
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock{mutex_};
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock{mutex_};
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dpn
