#pragma once

#include <condition_variable>
#include <mutex>

#include "support/error.hpp"

/// Small synchronization helpers built on mutex + condition_variable.
/// (Per CP.42, every wait has a predicate; per CP.20, locks are RAII.)
namespace dpn {

/// One-shot event: set() releases every current and future wait().
class Event {
 public:
  void set() {
    {
      std::scoped_lock lock{mutex_};
      set_ = true;
    }
    cv_.notify_all();
  }

  bool is_set() const {
    std::scoped_lock lock{mutex_};
    return set_;
  }

  void wait() const {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [&] { return set_; });
  }

  /// Returns false on timeout.
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> d) const {
    std::unique_lock lock{mutex_};
    return cv_.wait_for(lock, d, [&] { return set_; });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool set_ = false;
};

// BlockingQueue lives in sched/queue.hpp: its pop() must suspend the
// calling *fiber* under the M:N scheduler, which puts it above the
// scheduler in the layering.

}  // namespace dpn
