#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

/// Fixed-bucket log2 latency histograms (dpn::obs v2).
///
/// Scalar blocked-ns totals hide multimodality: a channel that blocks a
/// million times for 2us looks identical to one that blocked once for
/// 2s, yet the scheduling story (steady backpressure vs a single stall)
/// is opposite.  A histogram with power-of-two microsecond buckets keeps
/// the shape at a fixed, tiny cost: 24 buckets cover <1us .. >4.2s, and
/// recording is a bit-scan plus one relaxed store.
///
/// This lives in dpn::support (not dpn::obs) because io::Pipe -- below
/// obs in the library stack -- records into it directly at its wait
/// sites; obs aggregates, encodes and renders the snapshots.
namespace dpn {

/// A copied, mergeable view of a histogram: plain integers, no atomics.
/// This is what travels in NetworkSnapshot and what percentile queries
/// run on.
struct HistogramSnapshot {
  /// Bucket 0 holds waits under 1us; bucket i (1..22) holds
  /// [2^(i-1), 2^i) us; the last bucket holds everything >= ~4.2s.
  static constexpr std::size_t kBuckets = 24;

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t count = 0;    // total samples
  std::uint64_t sum_ns = 0;   // total recorded time

  bool empty() const { return count == 0; }

  void merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts[i] += other.counts[i];
    count += other.count;
    sum_ns += other.sum_ns;
  }

  /// Bucket index for a nanosecond sample.
  static std::size_t bucket_of(std::uint64_t ns) {
    const std::uint64_t us = ns / 1000;
    if (us == 0) return 0;
    const auto bit = static_cast<std::size_t>(std::bit_width(us));
    return bit < kBuckets ? bit : kBuckets - 1;
  }

  /// Inclusive upper bound of a bucket, in nanoseconds (the value a
  /// percentile query reports).  The last bucket is open-ended; its
  /// bound is the start of the bucket, the most honest single number.
  static std::uint64_t bucket_bound_ns(std::size_t bucket) {
    if (bucket == 0) return 1000;
    return (std::uint64_t{1} << bucket) * 1000;
  }

  /// Upper-bound estimate of the p-quantile (p in [0,1]): the bound of
  /// the first bucket whose cumulative count reaches p * count.
  /// Returns 0 when empty.
  std::uint64_t percentile_ns(double p) const {
    if (count == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target) return bucket_bound_ns(i);
    }
    return bucket_bound_ns(kBuckets - 1);
  }

  std::uint64_t p50_ns() const { return percentile_ns(0.50); }
  std::uint64_t p95_ns() const { return percentile_ns(0.95); }
  std::uint64_t p99_ns() const { return percentile_ns(0.99); }
};

/// The live, writable histogram: atomic buckets so concurrent snapshot
/// readers never see torn counters.
///
/// record() uses the single-writer idiom of obs::bump (a plain add, no
/// lock-prefixed RMW); it is correct when writes are serialized -- which
/// they are at every channel-level call site, because io::Pipe records
/// under its mutex.  Multi-writer sites (the process-wide task-RTT and
/// connect histograms) use record_shared(), a fetch_add: those paths
/// just paid a network round-trip, so an RMW is immaterial.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t ns) {
    auto& slot = counts_[HistogramSnapshot::bucket_of(ns)];
    slot.store(slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    sum_ns_.store(sum_ns_.load(std::memory_order_relaxed) + ns,
                  std::memory_order_relaxed);
  }

  void record_shared(std::uint64_t ns) {
    counts_[HistogramSnapshot::bucket_of(ns)].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.count += s.counts[i];
    }
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace dpn
