#pragma once

#include <atomic>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

/// Asymmetric memory barriers (the sys_membarrier / folly-asymmetric
/// technique): a hot path that must publish-then-check against a rare
/// path pays only compiler ordering, while the rare side issues a
/// process-wide barrier syscall that interrupts every running thread of
/// the process, squashing speculative loads and draining store buffers.
/// The classic Dekker guarantee (light: W(a); R(b) vs heavy: W(b);
/// heavy_barrier(); R(a) -- at least one side sees the other's write)
/// holds without any fence instruction on the light side.
///
/// The typed ring's fast path uses this twice per operation: the
/// transition gate handshake and the sleeper wake-up check.  When the
/// syscall is unavailable (non-Linux, old kernel, seccomp) -- or under
/// TSan, which models neither membarrier nor its effects -- both sides
/// degrade to symmetric seq_cst fences, which is the textbook-correct
/// slow form.
namespace dpn::support {

#if defined(__SANITIZE_THREAD__)
#define DPN_ASYM_BARRIER_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPN_ASYM_BARRIER_DISABLED 1
#endif
#endif

namespace detail {

#if defined(__linux__) && defined(SYS_membarrier) && \
    !defined(DPN_ASYM_BARRIER_DISABLED)
// From linux/membarrier.h, spelled out so the header is not a build
// dependency (the values are kernel ABI, fixed forever).
inline constexpr int kMembarrierRegisterPrivateExpedited = 1 << 4;
inline constexpr int kMembarrierPrivateExpedited = 1 << 3;

inline bool register_membarrier() {
  return syscall(SYS_membarrier, kMembarrierRegisterPrivateExpedited, 0, 0) ==
         0;
}

inline void membarrier() {
  syscall(SYS_membarrier, kMembarrierPrivateExpedited, 0, 0);
}
#else
inline bool register_membarrier() { return false; }
inline void membarrier() {}
#endif

}  // namespace detail

/// True once the process is registered for expedited membarrier;
/// registration happens on the first call, so the first ring construction
/// pays it, not process start-up.
inline bool asym_barrier_available() {
  static const bool available = detail::register_membarrier();
  return available;
}

/// Light side: between a relaxed store and the relaxed load that must
/// not pass it.  Free at run time when the heavy side uses
/// heavy_barrier(); a full fence otherwise.
inline void light_barrier() {
  if (asym_barrier_available()) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

/// Heavy side: a full barrier on every thread of the process.  Microsecond
/// cost (IPI round); callers are rare paths -- parking a waiter, gating a
/// ring transition.
inline void heavy_barrier() {
  if (asym_barrier_available()) {
    detail::membarrier();
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

}  // namespace dpn::support
