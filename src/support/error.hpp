#pragma once

#include <stdexcept>
#include <string>

/// Exception hierarchy used throughout dpn.
///
/// The paper's Java implementation drives process termination through
/// java.io.IOException: closing an InputStream makes the corresponding
/// OutputStream's next write throw, and exhausting a closed stream makes
/// reads throw EOFException.  IterativeProcess::run catches IoError and
/// converts it into a clean stop (see dpn::core::IterativeProcess), so the
/// distinctions below matter:
///
///  * EndOfStream   -- the writer closed and all data has been drained
///                     (Java: EOFException).  Reads past this point throw.
///  * ChannelClosed -- the *reader* closed; the writer's next write throws
///                     (Java: "Pipe broken" IOException).
///  * NetError      -- socket-level failure (connection reset, bind failure).
///  * Interrupted   -- a blocking operation was cancelled because the
///                     surrounding network is shutting down abnormally.
namespace dpn {

/// Base class for all I/O failures; analogous to java.io.IOException.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when reading past the end of a drained, writer-closed stream.
class EndOfStream : public IoError {
 public:
  EndOfStream() : IoError("end of stream") {}
  explicit EndOfStream(const std::string& what) : IoError(what) {}
};

/// Thrown when writing to a channel whose reader has closed.
class ChannelClosed : public IoError {
 public:
  ChannelClosed() : IoError("channel closed by reader") {}
  explicit ChannelClosed(const std::string& what) : IoError(what) {}
};

/// Socket-level failure.
class NetError : public IoError {
 public:
  explicit NetError(const std::string& what) : IoError(what) {}
};

/// A blocking operation was cancelled (network shutdown, monitor abort).
class Interrupted : public IoError {
 public:
  Interrupted() : IoError("interrupted") {}
  explicit Interrupted(const std::string& what) : IoError(what) {}
};

/// Malformed or unknown data in an object stream.
class SerializationError : public IoError {
 public:
  explicit SerializationError(const std::string& what) : IoError(what) {}
};

/// A worker (process or compute server) died and its work could not be
/// recovered.  Deliberately *not* an IoError: IoError means "a stream
/// ended, stop cleanly", which IterativeProcess::run swallows.  Losing a
/// worker with no survivor to re-issue its tasks to is a real failure
/// the application must see, so it propagates out of run() and out of
/// CompositeProcess like any other error.
class WorkerLost : public std::runtime_error {
 public:
  explicit WorkerLost(const std::string& what) : std::runtime_error(what) {}
};

/// Misuse of an API (programming error, not an I/O condition).
class UsageError : public std::logic_error {
 public:
  explicit UsageError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace dpn
