#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

/// Byte-span aliases and big-endian (network order) packing helpers.
///
/// All multi-byte values that cross a channel or a socket in dpn are
/// big-endian, matching java.io.DataOutputStream, so a process graph's
/// byte-level history is identical whether a channel is a local pipe or a
/// socket.
namespace dpn {

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;
using ByteVector = std::vector<std::uint8_t>;

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v >> 32));
  put_u32(p + 4, static_cast<std::uint32_t>(v));
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | get_u32(p + 4);
}

/// Bit-exact float<->integer conversions for wire encoding.
inline std::uint64_t double_to_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

inline double bits_to_double(std::uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

inline std::uint32_t float_to_bits(float f) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

inline float bits_to_float(std::uint32_t bits) {
  float f = 0;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

inline ByteSpan as_bytes(const std::string& s) {
  return ByteSpan{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string to_string(ByteSpan b) {
  return std::string{reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Hex dump used by error messages and tests.
std::string to_hex(ByteSpan bytes);

}  // namespace dpn
