#pragma once

#include <sstream>
#include <string>

/// Minimal thread-safe logging.
///
/// Disabled by default; the runtime and the distributed machinery log at
/// kDebug, test utilities at kInfo.  Enable with
/// `dpn::log::set_level(dpn::log::Level::kDebug)` or the DPN_LOG
/// environment variable (error|warn|info|debug).
namespace dpn::log {

enum class Level { kOff = 0, kError, kWarn, kInfo, kDebug };

void set_level(Level level);
Level level();

/// True when messages at `lvl` would be emitted.
bool enabled(Level lvl);

/// Emit one line (timestamp, level, thread tag, message) to stderr.
void write(Level lvl, const std::string& message);

namespace detail {
template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (!enabled(lvl)) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void error(const Args&... args) {
  detail::emit(Level::kError, args...);
}
template <typename... Args>
void warn(const Args&... args) {
  detail::emit(Level::kWarn, args...);
}
template <typename... Args>
void info(const Args&... args) {
  detail::emit(Level::kInfo, args...);
}
template <typename... Args>
void debug(const Args&... args) {
  detail::emit(Level::kDebug, args...);
}

}  // namespace dpn::log
