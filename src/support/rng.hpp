#pragma once

#include <cstdint>

/// Deterministic pseudo-random generators.
///
/// Experiments and property tests need reproducible randomness that is
/// independent of the standard library implementation, so dpn carries its
/// own SplitMix64 (seed expansion) and xoshiro256** (bulk generation).
namespace dpn {

/// SplitMix64: tiny, full-period seed expander (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna 2018).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be nonzero. Uses rejection sampling
  /// so the distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dpn
