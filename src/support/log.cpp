#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace dpn::log {
namespace {

Level level_from_env() {
  const char* env = std::getenv("DPN_LOG");
  if (env == nullptr) return Level::kOff;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  return Level::kOff;
}

std::atomic<Level> g_level{level_from_env()};
std::mutex g_write_mutex;

const char* name(Level lvl) {
  switch (lvl) {
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN ";
    case Level::kInfo:
      return "INFO ";
    case Level::kDebug:
      return "DEBUG";
    default:
      return "?";
  }
}

}  // namespace

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) {
  return static_cast<int>(lvl) <= static_cast<int>(level());
}

void write(Level lvl, const std::string& message) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  const auto tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
  std::scoped_lock lock{g_write_mutex};
  std::fprintf(stderr, "[%12.6f %s %04zx] %s\n", secs, name(lvl), tid,
               message.c_str());
}

}  // namespace dpn::log
