#include "io/pipe.hpp"

#include <algorithm>
#include <cstring>

namespace dpn::io {

Pipe::Pipe(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.resize(capacity_);
}

std::size_t Pipe::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  std::unique_lock lock{mutex_};
  ++blocked_readers_;
  readable_.wait(lock, [&] {
    return count_ > 0 || write_closed_ || read_closed_ || aborted_;
  });
  --blocked_readers_;
  if (aborted_) throw Interrupted{"pipe aborted during read"};
  if (read_closed_) throw IoError{"read from closed pipe"};
  if (count_ == 0) return 0;  // write end closed and drained
  const std::size_t n = take_locked(out);
  lock.unlock();
  writable_.notify_all();
  return n;
}

void Pipe::write(ByteSpan data) {
  std::unique_lock lock{mutex_};
  while (!data.empty()) {
    ++blocked_writers_;
    writable_.wait(lock, [&] {
      return read_closed_ || aborted_ || write_closed_ || unbounded_ ||
             count_ < capacity_;
    });
    --blocked_writers_;
    if (aborted_) throw Interrupted{"pipe aborted during write"};
    if (read_closed_) throw ChannelClosed{};
    if (write_closed_) throw IoError{"write to closed pipe"};
    const std::size_t room = unbounded_ ? data.size() : capacity_ - count_;
    const std::size_t n = std::min(room, data.size());
    put_locked(data.first(n));
    data = data.subspan(n);
    readable_.notify_all();
  }
}

void Pipe::close_write() {
  {
    std::scoped_lock lock{mutex_};
    write_closed_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::close_read() {
  {
    std::scoped_lock lock{mutex_};
    read_closed_ = true;
    // Data still buffered is discarded: the reader is gone.
    count_ = 0;
    head_ = 0;
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::abort() {
  {
    std::scoped_lock lock{mutex_};
    aborted_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::grow(std::size_t new_capacity) {
  {
    std::scoped_lock lock{mutex_};
    if (new_capacity <= capacity_) return;
    ensure_storage_locked(new_capacity);
    capacity_ = new_capacity;
  }
  writable_.notify_all();
}

void Pipe::set_unbounded() {
  {
    std::scoped_lock lock{mutex_};
    unbounded_ = true;
  }
  writable_.notify_all();
}

ByteVector Pipe::steal_buffer() {
  ByteVector out;
  {
    std::scoped_lock lock{mutex_};
    out.resize(count_);
    take_locked({out.data(), out.size()});
  }
  writable_.notify_all();
  return out;
}

std::size_t Pipe::capacity() const {
  std::scoped_lock lock{mutex_};
  return capacity_;
}

std::size_t Pipe::size() const {
  std::scoped_lock lock{mutex_};
  return count_;
}

bool Pipe::write_closed() const {
  std::scoped_lock lock{mutex_};
  return write_closed_;
}

bool Pipe::read_closed() const {
  std::scoped_lock lock{mutex_};
  return read_closed_;
}

std::size_t Pipe::blocked_readers() const {
  std::scoped_lock lock{mutex_};
  return blocked_readers_;
}

std::size_t Pipe::blocked_writers() const {
  std::scoped_lock lock{mutex_};
  return blocked_writers_;
}

std::size_t Pipe::take_locked(MutableByteSpan out) {
  const std::size_t n = std::min(out.size(), count_);
  const std::size_t cap = buffer_.size();
  const std::size_t first = std::min(n, cap - head_);
  std::memcpy(out.data(), buffer_.data() + head_, first);
  if (n > first) std::memcpy(out.data() + first, buffer_.data(), n - first);
  head_ = (head_ + n) % cap;
  count_ -= n;
  if (count_ == 0) head_ = 0;
  return n;
}

void Pipe::put_locked(ByteSpan data) {
  ensure_storage_locked(count_ + data.size());
  const std::size_t cap = buffer_.size();
  const std::size_t tail = (head_ + count_) % cap;
  const std::size_t first = std::min(data.size(), cap - tail);
  std::memcpy(buffer_.data() + tail, data.data(), first);
  if (data.size() > first) {
    std::memcpy(buffer_.data(), data.data() + first, data.size() - first);
  }
  count_ += data.size();
}

void Pipe::ensure_storage_locked(std::size_t needed) {
  if (needed <= buffer_.size()) return;
  std::size_t new_size = std::max<std::size_t>(buffer_.size() * 2, 16);
  while (new_size < needed) new_size *= 2;
  ByteVector fresh(new_size);
  // Linearize existing contents at offset 0.
  const std::size_t cap = buffer_.size();
  const std::size_t first = std::min(count_, cap - head_);
  std::memcpy(fresh.data(), buffer_.data() + head_, first);
  if (count_ > first) {
    std::memcpy(fresh.data() + first, buffer_.data(), count_ - first);
  }
  buffer_ = std::move(fresh);
  head_ = 0;
}

}  // namespace dpn::io
