#include "io/pipe.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace dpn::io {

Pipe::Pipe(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.resize(capacity_);
}

void Pipe::notify_readers_locked() {
  // Wakeup elision: the counters are exact under mutex_, so when nobody is
  // waiting the (potentially syscall-priced) notify is skipped entirely,
  // and a single waiter gets notify_one instead of a broadcast.
  if (blocked_readers_ == 0) return;
  // Fiber waiters first: requeueing on the waker's own deque is the M:N
  // fast path (the bytes just written are cache-hot right here).  A
  // popped fiber stays counted in blocked_readers_ until it resumes, so
  // the cv arithmetic below can only over-notify, never lose a waiter.
  std::size_t fibers = 0;
  while (sched::Fiber* fiber = reader_fibers_.pop()) {
    sched::make_runnable(fiber);
    ++fibers;
  }
  const std::size_t cv_waiters = blocked_readers_ - fibers;
  if (cv_waiters == 1) {
    readable_.notify_one();
  } else if (cv_waiters > 1) {
    readable_.notify_all();
  }
}

void Pipe::notify_writers_locked() {
  if (blocked_writers_ == 0) return;
  std::size_t fibers = 0;
  while (sched::Fiber* fiber = writer_fibers_.pop()) {
    sched::make_runnable(fiber);
    ++fibers;
  }
  const std::size_t cv_waiters = blocked_writers_ - fibers;
  if (cv_waiters == 1) {
    writable_.notify_one();
  } else if (cv_waiters > 1) {
    writable_.notify_all();
  }
}

void Pipe::wake_all_fibers_locked() {
  while (sched::Fiber* fiber = reader_fibers_.pop()) {
    sched::make_runnable(fiber);
  }
  while (sched::Fiber* fiber = writer_fibers_.pop()) {
    sched::make_runnable(fiber);
  }
}

std::size_t Pipe::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  std::unique_lock lock{mutex_};
  while (count_ == 0 && !write_closed_ && !read_closed_ && !aborted_) {
    ++blocked_readers_;
    // The clock is only consulted when actually parking; unblocked reads
    // never pay for it.
    const auto wait_start = std::chrono::steady_clock::now();
    if (sched::on_fiber()) {
      // Run-to-block: park the fiber, freeing this worker thread for
      // other processes.  One wakeup per suspension; the outer while
      // re-checks the predicate exactly like a cv wait would.
      sched::suspend_current(reader_fibers_, lock);
      lock.lock();
    } else {
      readable_.wait(lock, [&] {
        return count_ > 0 || write_closed_ || read_closed_ || aborted_;
      });
    }
    const auto waited = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    blocked_read_ns_ += waited;
    read_block_hist_.record(waited);
    ++reader_wakeups_;
    --blocked_readers_;
  }
  if (aborted_) throw Interrupted{"pipe aborted during read"};
  if (read_closed_) throw IoError{"read from closed pipe"};
  if (count_ == 0) return 0;  // write end closed and drained
  const std::size_t n = take_locked(out);
  notify_writers_locked();
  return n;
}

void Pipe::write(ByteSpan data) { write_vectored(data, {}); }

void Pipe::write_vectored(ByteSpan a, ByteSpan b) {
  std::unique_lock lock{mutex_};
  for (ByteSpan data : {a, b}) {
    while (!data.empty()) {
      if (aborted_) throw Interrupted{"pipe aborted during write"};
      if (read_closed_) throw ChannelClosed{};
      if (write_closed_) throw IoError{"write to closed pipe"};
      // Room is computed once per loop pass; when the pipe is full we wait
      // (the reader was already woken by the previous pass's notify, so no
      // extra notify is issued before sleeping) and re-enter the loop.
      const std::size_t room = unbounded_ ? data.size() : capacity_ - count_;
      if (room == 0) {
        ++blocked_writers_;
        const auto wait_start = std::chrono::steady_clock::now();
        if (sched::on_fiber()) {
          sched::suspend_current(writer_fibers_, lock);
          lock.lock();
        } else {
          writable_.wait(lock, [&] {
            return read_closed_ || aborted_ || write_closed_ || unbounded_ ||
                   count_ < capacity_;
          });
        }
        const auto waited = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wait_start)
                .count());
        blocked_write_ns_ += waited;
        write_block_hist_.record(waited);
        ++writer_wakeups_;
        --blocked_writers_;
        continue;
      }
      const std::size_t n = std::min(room, data.size());
      put_locked(data.first(n));
      data = data.subspan(n);
      notify_readers_locked();
    }
  }
}

void Pipe::close_write() {
  {
    std::scoped_lock lock{mutex_};
    write_closed_ = true;
    wake_all_fibers_locked();
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::close_read() {
  {
    std::scoped_lock lock{mutex_};
    read_closed_ = true;
    // Data still buffered is discarded: the reader is gone.  The storage is
    // released too -- the pipe can never carry bytes again, and a shipped
    // endpoint's steal_buffer must deterministically find it empty.
    count_ = 0;
    head_ = 0;
    ByteVector{}.swap(buffer_);
    wake_all_fibers_locked();
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::abort() {
  {
    std::scoped_lock lock{mutex_};
    aborted_ = true;
    wake_all_fibers_locked();
  }
  readable_.notify_all();
  writable_.notify_all();
}

void Pipe::grow(std::size_t new_capacity) {
  std::scoped_lock lock{mutex_};
  if (new_capacity <= capacity_) return;
  ensure_storage_locked(new_capacity);
  capacity_ = new_capacity;
  notify_writers_locked();
}

void Pipe::set_unbounded() {
  std::scoped_lock lock{mutex_};
  unbounded_ = true;
  notify_writers_locked();
}

ByteVector Pipe::steal_buffer() {
  ByteVector out;
  std::scoped_lock lock{mutex_};
  out.resize(count_);
  take_locked({out.data(), out.size()});
  notify_writers_locked();
  return out;
}

std::size_t Pipe::capacity() const {
  std::scoped_lock lock{mutex_};
  return capacity_;
}

std::size_t Pipe::size() const {
  std::scoped_lock lock{mutex_};
  return count_;
}

bool Pipe::write_closed() const {
  std::scoped_lock lock{mutex_};
  return write_closed_;
}

bool Pipe::read_closed() const {
  std::scoped_lock lock{mutex_};
  return read_closed_;
}

std::size_t Pipe::blocked_readers() const {
  std::scoped_lock lock{mutex_};
  return blocked_readers_;
}

std::size_t Pipe::blocked_writers() const {
  std::scoped_lock lock{mutex_};
  return blocked_writers_;
}

Pipe::Stats Pipe::stats() const {
  std::scoped_lock lock{mutex_};
  Stats s;
  s.size = count_;
  s.capacity = capacity_;
  s.occupancy_hwm = occupancy_hwm_;
  s.blocked_read_ns = blocked_read_ns_;
  s.blocked_write_ns = blocked_write_ns_;
  s.reader_wakeups = reader_wakeups_;
  s.writer_wakeups = writer_wakeups_;
  s.blocked_readers = blocked_readers_;
  s.blocked_writers = blocked_writers_;
  s.write_closed = write_closed_;
  s.read_closed = read_closed_;
  s.read_block = read_block_hist_.snapshot();
  s.write_block = write_block_hist_.snapshot();
  return s;
}

std::size_t Pipe::take_locked(MutableByteSpan out) {
  const std::size_t n = std::min(out.size(), count_);
  if (n == 0) return 0;  // also guards % by zero once storage is released
  // Bulk ring copy: at most two memcpys, split exactly at the wrap point.
  const std::size_t cap = buffer_.size();
  const std::size_t first = std::min(n, cap - head_);
  std::memcpy(out.data(), buffer_.data() + head_, first);
  if (n > first) std::memcpy(out.data() + first, buffer_.data(), n - first);
  head_ = (head_ + n) % cap;
  count_ -= n;
  if (count_ == 0) head_ = 0;
  return n;
}

void Pipe::put_locked(ByteSpan data) {
  ensure_storage_locked(count_ + data.size());
  // Bulk ring copy, mirror of take_locked: one memcpy up to the wrap point,
  // one for the remainder at offset 0.
  const std::size_t cap = buffer_.size();
  const std::size_t tail = (head_ + count_) % cap;
  const std::size_t first = std::min(data.size(), cap - tail);
  std::memcpy(buffer_.data() + tail, data.data(), first);
  if (data.size() > first) {
    std::memcpy(buffer_.data(), data.data() + first, data.size() - first);
  }
  count_ += data.size();
  if (count_ > occupancy_hwm_) occupancy_hwm_ = count_;
}

void Pipe::ensure_storage_locked(std::size_t needed) {
  if (needed <= buffer_.size()) return;
  std::size_t new_size = std::max<std::size_t>(buffer_.size() * 2, 16);
  while (new_size < needed) new_size *= 2;
  ByteVector fresh(new_size);
  // Linearize existing contents at offset 0.
  const std::size_t cap = buffer_.size();
  if (count_ > 0) {
    const std::size_t first = std::min(count_, cap - head_);
    std::memcpy(fresh.data(), buffer_.data() + head_, first);
    if (count_ > first) {
      std::memcpy(fresh.data() + first, buffer_.data(), count_ - first);
    }
  }
  buffer_ = std::move(fresh);
  head_ = 0;
}

}  // namespace dpn::io
