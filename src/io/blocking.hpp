#pragma once

#include <memory>

#include "io/stream.hpp"

namespace dpn::io {

/// Enforces Kahn's blocking-read discipline on top of any InputStream:
/// multi-byte reads either return the full request or throw EndOfStream.
///
/// java.io.InputStream allows short reads; the paper's BlockingInputStream
/// exists precisely to forbid them (Section 3.1), since a process that
/// could observe a short read could detect the *absence* of data and break
/// determinacy.
class BlockingInputStream final : public InputStream {
 public:
  explicit BlockingInputStream(std::shared_ptr<InputStream> in)
      : in_(std::move(in)) {}

  /// Returns out.size() or throws EndOfStream; never a short read.
  std::size_t read_some(MutableByteSpan out) override {
    read_fully(*in_, out);
    return out.size();
  }

  /// Single-byte read still reports end-of-stream as -1 so that byte-copy
  /// processes (Duplicate, Cons) can terminate gracefully.
  int read() override { return in_->read(); }

  void close() override { in_->close(); }

  const std::shared_ptr<InputStream>& underlying() const { return in_; }

 private:
  std::shared_ptr<InputStream> in_;
};

}  // namespace dpn::io
