#include "io/stream.hpp"

#include <vector>

namespace dpn::io {

void read_fully(InputStream& in, MutableByteSpan out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::size_t n = in.read_some(out.subspan(got));
    if (n == 0) {
      throw EndOfStream{"read_fully: stream ended after " +
                        std::to_string(got) + " of " +
                        std::to_string(out.size()) + " bytes"};
    }
    got += n;
  }
}

std::size_t pump(InputStream& in, OutputStream& out, std::size_t chunk_size) {
  std::vector<std::uint8_t> buffer(chunk_size);
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = in.read_some({buffer.data(), buffer.size()});
    if (n == 0) return total;
    out.write({buffer.data(), n});
    total += n;
  }
}

}  // namespace dpn::io
