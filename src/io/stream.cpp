#include "io/stream.hpp"

#include <vector>

namespace dpn::io {

void OutputStream::write_vectored(ByteSpan a, ByteSpan b) {
  if (a.empty()) return write(b);
  if (b.empty()) return write(a);
  // One coalesced write(), not two: callers (the frame codec above all)
  // rely on the two parts being un-tearable on shared streams.
  ByteVector joined;
  joined.reserve(a.size() + b.size());
  joined.insert(joined.end(), a.begin(), a.end());
  joined.insert(joined.end(), b.begin(), b.end());
  write({joined.data(), joined.size()});
}

void read_fully(InputStream& in, MutableByteSpan out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::size_t n = in.read_some(out.subspan(got));
    if (n == 0) {
      throw EndOfStream{"read_fully: stream ended after " +
                        std::to_string(got) + " of " +
                        std::to_string(out.size()) + " bytes"};
    }
    got += n;
  }
}

std::size_t pump(InputStream& in, OutputStream& out, std::size_t chunk_size) {
  std::vector<std::uint8_t> buffer(chunk_size);
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = in.read_some({buffer.data(), buffer.size()});
    if (n == 0) return total;
    out.write({buffer.data(), n});
    total += n;
  }
}

}  // namespace dpn::io
