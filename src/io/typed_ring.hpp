#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <thread>
#include <type_traits>

#include "io/memory.hpp"
#include "io/stream.hpp"
#include "sched/fiber.hpp"
#include "support/asym_barrier.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

/// Typed zero-copy fast path for in-process channels.
///
/// While both endpoints of a channel live in the same address space there
/// is no reason to serialize every token into the byte pipe and parse it
/// back out: a TypedRing<T> moves the values themselves through a bounded
/// SPSC ring, preserving the channel contract exactly -- reads block while
/// empty, writes block while full (Parks' rule; the ring is growable by
/// the deadlock monitor), closing the read end fails the writer with
/// ChannelClosed, closing the write end drains to end-of-stream.
///
/// The moment an endpoint is shipped to another server the fast path must
/// end: the wire carries bytes.  The cut-point machinery *demotes* the
/// ring -- every buffered value is encoded through the channel's Codec
/// into the byte pipe, in order, and the ring permanently reports
/// kDemoted.  Both typed endpoints then fall back to the byte-stream
/// layers underneath them, which the ship protocols already know how to
/// cut, so a typed channel ships exactly like a byte channel.  The Codec
/// produces the same bytes the endpoint would have written without the
/// fast path, so the consumer-visible history is identical either way
/// (the determinacy matrix asserts this).
namespace dpn::io {

/// Type-erased handle on a TypedRing<T>, held by core::ChannelState and
/// used by the ship cut points, the deadlock monitor and the snapshot
/// code, none of which know T.
class TypedRingBase {
 public:
  enum class PushResult : std::uint8_t {
    kOk,       // value is in the ring
    kDemoted,  // fast path over; encode to the byte stream instead
  };
  enum class PopResult : std::uint8_t {
    kOk,       // a value was produced
    kDemoted,  // fast path over; decode from the byte stream instead
    kEof,      // write end closed and every value consumed
  };

  struct Stats {
    std::size_t size = 0;      // values currently buffered
    std::size_t capacity = 0;  // slots
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::size_t blocked_readers = 0;
    std::size_t blocked_writers = 0;
    bool demoted = false;
    bool write_closed = false;
    bool read_closed = false;
  };

  virtual ~TypedRingBase() = default;

  virtual Stats stats() const = 0;
  virtual std::size_t blocked_readers() const = 0;
  virtual std::size_t blocked_writers() const = 0;
  /// Capacity in slots (values, not bytes).
  virtual std::size_t capacity() const = 0;
  /// Wire bytes one value encodes to; the monitor uses it to compare ring
  /// and pipe capacities in one unit and obs to keep byte totals
  /// meaningful.
  virtual std::size_t value_bytes() const = 0;
  /// Grows to `new_slots` (never shrinks); wakes blocked writers.
  virtual void grow(std::size_t new_slots) = 0;
  /// Wakes every waiter with Interrupted; abnormal shutdown.
  virtual void abort() = 0;
  virtual bool demoted() const = 0;
  /// True when a demotion lost buffered values (throwing encode).  A
  /// poisoned ring stays attached to new typed readers so their pop can
  /// raise WorkerLost -- the byte plane has no record of the hole.
  virtual bool poisoned() const = 0;
  /// Consumer endpoint closed: discard buffered values and fail the
  /// producer's next push with ChannelClosed (cascading termination).
  virtual void close_read() = 0;
  /// Producer endpoint closed: remaining values drain, then pops kEof.
  virtual void close_write() = 0;

  /// The ship cut: encodes every buffered value into `sink` in FIFO order
  /// and flips the ring into the demoted state.  All-or-nothing: the
  /// values are staged through a scratch buffer, so a throwing encode
  /// puts nothing on the wire -- the ring drops its values, poisons
  /// itself (the consumer's next pop throws WorkerLost: its history has a
  /// hole, which must not be mistaken for clean end-of-stream), and the
  /// exception propagates to the shipper.  `sink` must not block: the
  /// callers unbound the pipe first.
  virtual void demote_into(OutputStream& sink) = 0;
};

/// The SPSC ring.  Codec provides
///   static constexpr std::size_t kWireSize;
///   static void encode(const T&, OutputStream&);
/// and must write exactly the bytes the typed endpoint would have written
/// on the byte path (core/typed.hpp's Codec<T> is the canonical one).
///
/// Concurrency design: one producer, one consumer (Kahn discipline), both
/// lock-free while the ring is neither empty nor full.  head_/tail_ are
/// monotonic counters; a slot is counter & mask_.  The rare transitions
/// (demote/grow/abort/close) must observe a quiescent ring: they set
/// gate_ and spin until the in_push_/in_pop_ in-flight flags clear --
/// Dekker-style -- while fast-path entries that see gate_ back off onto
/// the mutex.  Empty/full parking uses the mutex + cv, or the scheduler's
/// WaitQueue on an M:N fiber (same protocol as io::Pipe).  Both Dekker
/// pairs (gate handshake, sleeper wake-up check) are asymmetric: the
/// per-token side runs with compiler-only ordering and the rare side
/// (transition, park) issues a process-wide membarrier -- see
/// support/asym_barrier.hpp for the scheme and its fence fallback.
template <typename T, typename Codec>
class TypedRing final : public TypedRingBase {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "ring transit requires a nothrow move");
  static_assert(std::is_nothrow_move_assignable_v<T>,
                "ring transit requires a nothrow move");

 public:
  explicit TypedRing(std::size_t slots) {
    std::size_t cap = 16;
    while (cap < slots) cap *= 2;
    storage_ = std::allocator<T>{}.allocate(cap);
    mask_ = cap - 1;
  }

  TypedRing(const TypedRing&) = delete;
  TypedRing& operator=(const TypedRing&) = delete;

  ~TypedRing() override {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = h; i != t; ++i) slot(i)->~T();
    std::allocator<T>{}.deallocate(storage_, mask_ + 1);
  }

  /// Blocks while full.  Throws ChannelClosed once the read end closed,
  /// Interrupted on abort.
  PushResult push(T&& value) {
    for (;;) {
      in_push_.store(true, std::memory_order_relaxed);
      support::light_barrier();
      if (gate_.load(std::memory_order_relaxed)) {
        in_push_.store(false, std::memory_order_release);
        wait_gate();
        continue;
      }
      if (flags_.load(std::memory_order_acquire) != 0) {
        in_push_.store(false, std::memory_order_release);
        if (const auto r = push_edge()) return *r;
        continue;
      }
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      // head_cache_ is a stale lower bound of head_ (it only grows), so a
      // pass on the cached value is always safe; reload only when the
      // ring looks full.  This keeps the consumer's head_ line out of the
      // producer's steady-state loop -- the classic SPSC anti-ping-pong.
      if (t - head_cache_ > mask_) {
        head_cache_ = head_.load(std::memory_order_acquire);
      }
      if (t - head_cache_ <= mask_) {
        new (slot(t)) T(std::move(value));
        tail_.store(t + 1, std::memory_order_release);
        in_push_.store(false, std::memory_order_release);
        support::light_barrier();
        if (sleeping_readers_.load(std::memory_order_relaxed) != 0) {
          wake_readers();
        }
        return PushResult::kOk;
      }
      in_push_.store(false, std::memory_order_release);
      park_writer();
    }
  }

  /// Blocks while empty.  Throws Interrupted on abort, WorkerLost if a
  /// demotion failed mid-encode (the stream has a hole, not an end).
  PopResult pop(T& out) {
    for (;;) {
      in_pop_.store(true, std::memory_order_relaxed);
      support::light_barrier();
      if (gate_.load(std::memory_order_relaxed)) {
        in_pop_.store(false, std::memory_order_release);
        wait_gate();
        continue;
      }
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      // Mirror of head_cache_: slots below a previously acquired tail_
      // are already visible, so the cached bound needs no fresh acquire.
      // Compare as a bound, not for equality -- a demotion can advance
      // head_ past a stale cache, which must read as empty, never as a
      // ring full of destroyed slots.
      if (tail_cache_ <= h) {
        tail_cache_ = tail_.load(std::memory_order_acquire);
      }
      if (tail_cache_ > h) {
        T* s = slot(h);
        out = std::move(*s);
        s->~T();
        head_.store(h + 1, std::memory_order_release);
        in_pop_.store(false, std::memory_order_release);
        support::light_barrier();
        if (sleeping_writers_.load(std::memory_order_relaxed) != 0) {
          wake_writers();
        }
        return PopResult::kOk;
      }
      in_pop_.store(false, std::memory_order_release);
      const std::uint8_t flags = flags_.load(std::memory_order_acquire);
      if ((flags & kPoisoned) != 0) {
        throw WorkerLost{
            "typed ring demotion failed; buffered values were lost"};
      }
      if ((flags & kAborted) != 0) {
        throw Interrupted{"typed ring aborted during pop"};
      }
      if ((flags & kDemoted) != 0) return PopResult::kDemoted;
      if ((flags & kWriteClosed) != 0) return PopResult::kEof;
      park_reader();
    }
  }

  // --- TypedRingBase ---

  Stats stats() const override {
    Stats s;
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    s.size = static_cast<std::size_t>(t - h);
    s.capacity = mask_ + 1;
    s.pushed = t;
    s.popped = h;
    const std::uint8_t flags = flags_.load(std::memory_order_relaxed);
    s.demoted = (flags & (kDemoted | kPoisoned)) != 0;
    s.write_closed = (flags & kWriteClosed) != 0;
    s.read_closed = (flags & kReadClosed) != 0;
    std::scoped_lock lock{mutex_};
    s.blocked_readers = blocked_readers_;
    s.blocked_writers = blocked_writers_;
    return s;
  }

  std::size_t blocked_readers() const override {
    std::scoped_lock lock{mutex_};
    return blocked_readers_;
  }

  std::size_t blocked_writers() const override {
    std::scoped_lock lock{mutex_};
    return blocked_writers_;
  }

  std::size_t capacity() const override {
    std::scoped_lock lock{mutex_};
    return mask_ + 1;
  }

  std::size_t value_bytes() const override { return Codec::kWireSize; }

  void grow(std::size_t new_slots) override {
    transition([&] {
      std::size_t cap = mask_ + 1;
      if (new_slots <= cap) return;
      while (cap < new_slots) cap *= 2;
      T* fresh = std::allocator<T>{}.allocate(cap);
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      const std::size_t new_mask = cap - 1;
      for (std::uint64_t i = h; i != t; ++i) {
        new (fresh + static_cast<std::size_t>(i & new_mask))
            T(std::move(*slot(i)));
        slot(i)->~T();
      }
      std::allocator<T>{}.deallocate(storage_, mask_ + 1);
      storage_ = fresh;
      mask_ = new_mask;
    });
  }

  void abort() override {
    transition([&] { set_flag(kAborted); });
  }

  bool demoted() const override {
    return (flags_.load(std::memory_order_acquire) &
            (kDemoted | kPoisoned)) != 0;
  }

  bool poisoned() const override {
    return (flags_.load(std::memory_order_acquire) & kPoisoned) != 0;
  }

  void demote_into(OutputStream& sink) override {
    transition([&] {
      if ((flags_.load(std::memory_order_relaxed) &
           (kDemoted | kPoisoned)) != 0) {
        return;
      }
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      ByteVector staged;
      try {
        MemoryOutputStream scratch;
        for (std::uint64_t i = h; i != t; ++i) Codec::encode(*slot(i), scratch);
        staged = std::move(scratch).take();
      } catch (...) {
        // Defined state on a throwing encode: nothing partial reached the
        // sink (all staging), the values are gone, and the consumer sees
        // WorkerLost instead of a silently truncated history.
        for (std::uint64_t i = h; i != t; ++i) slot(i)->~T();
        head_.store(t, std::memory_order_release);
        set_flag(kPoisoned);
        throw;
      }
      for (std::uint64_t i = h; i != t; ++i) slot(i)->~T();
      head_.store(t, std::memory_order_release);
      // Publish the bytes while the ring is still gated: once kDemoted is
      // visible the producer may encode new values straight to the byte
      // stream, and those must land *after* the ring's backlog.
      if (!staged.empty()) sink.write({staged.data(), staged.size()});
      set_flag(kDemoted);
    });
  }

  /// The consumer closed its endpoint: discard buffered values (the
  /// reader is gone) and fail the producer's next push with
  /// ChannelClosed -- cascading termination, same as Pipe::close_read.
  void close_read() override {
    transition([&] {
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      const std::uint64_t t = tail_.load(std::memory_order_relaxed);
      for (std::uint64_t i = h; i != t; ++i) slot(i)->~T();
      head_.store(t, std::memory_order_release);
      set_flag(kReadClosed);
    });
  }

  /// The producer closed: remaining values drain, then pops report kEof.
  void close_write() override {
    transition([&] { set_flag(kWriteClosed); });
  }

 private:
  static constexpr std::uint8_t kDemoted = 1;
  static constexpr std::uint8_t kPoisoned = 2;
  static constexpr std::uint8_t kWriteClosed = 4;
  static constexpr std::uint8_t kReadClosed = 8;
  static constexpr std::uint8_t kAborted = 16;

  T* slot(std::uint64_t i) {
    return storage_ + static_cast<std::size_t>(i & mask_);
  }

  void set_flag(std::uint8_t flag) {
    flags_.store(
        static_cast<std::uint8_t>(flags_.load(std::memory_order_relaxed) |
                                  flag),
        std::memory_order_release);
  }

  /// Handles a push that found a state flag set.  Returns the result to
  /// surface, or nullopt to retry the fast path (flag turned out to be
  /// one that does not affect writers).
  std::optional<PushResult> push_edge() {
    const std::uint8_t flags = flags_.load(std::memory_order_acquire);
    if ((flags & kAborted) != 0) {
      throw Interrupted{"typed ring aborted during push"};
    }
    if ((flags & kReadClosed) != 0) throw ChannelClosed{};
    if ((flags & (kDemoted | kPoisoned)) != 0) return PushResult::kDemoted;
    if ((flags & kWriteClosed) != 0) {
      throw IoError{"push to closed typed ring"};
    }
    return std::nullopt;
  }

  /// A fast-path entry saw gate_: a transition is in progress.  Block on
  /// the mutex until it finishes (the transition holds it throughout).
  void wait_gate() {
    std::scoped_lock lock{mutex_};
  }

  /// Runs f with the ring quiescent: mutex held (no parked waiter races,
  /// no concurrent transition), gate up, and both in-flight flags drained.
  /// Always lowers the gate and wakes every waiter, even when f throws --
  /// waiters must re-check the flags f just set.
  template <typename F>
  void transition(F&& f) {
    std::unique_lock lock{mutex_};
    gate_.store(true, std::memory_order_relaxed);
    // Heavy half of the gate handshake: after this barrier every thread
    // has either retired its in_push_/in_pop_ store (we will see it
    // below) or will see gate_ and back off.  The acquire loads in the
    // spin also pull in the slot writes of any push we waited out.
    support::heavy_barrier();
    while (in_push_.load(std::memory_order_acquire) ||
           in_pop_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    try {
      f();
    } catch (...) {
      gate_.store(false, std::memory_order_release);
      wake_all_locked();
      lock.unlock();
      readable_.notify_all();
      writable_.notify_all();
      throw;
    }
    gate_.store(false, std::memory_order_release);
    wake_all_locked();
    lock.unlock();
    readable_.notify_all();
    writable_.notify_all();
  }

  void park_reader() {
    std::unique_lock lock{mutex_};
    // Re-check under the lock: a push, close or transition may have
    // slipped in between the fast-path probe and this acquire.
    if (head_.load(std::memory_order_relaxed) !=
            tail_.load(std::memory_order_relaxed) ||
        flags_.load(std::memory_order_relaxed) != 0 ||
        gate_.load(std::memory_order_relaxed)) {
      return;
    }
    ++blocked_readers_;
    sleeping_readers_.store(static_cast<std::uint32_t>(blocked_readers_),
                            std::memory_order_relaxed);
    support::heavy_barrier();
    if (head_.load(std::memory_order_relaxed) !=
        tail_.load(std::memory_order_relaxed)) {
      // The producer published between our registration and the fence;
      // its wake check may have missed us.
      --blocked_readers_;
      sleeping_readers_.store(static_cast<std::uint32_t>(blocked_readers_),
                              std::memory_order_relaxed);
      return;
    }
    if (sched::on_fiber()) {
      sched::suspend_current(reader_fibers_, lock);
      lock.lock();
    } else {
      readable_.wait(lock, [&] {
        return head_.load(std::memory_order_relaxed) !=
                   tail_.load(std::memory_order_relaxed) ||
               flags_.load(std::memory_order_relaxed) != 0 ||
               gate_.load(std::memory_order_relaxed);
      });
    }
    --blocked_readers_;
    sleeping_readers_.store(static_cast<std::uint32_t>(blocked_readers_),
                            std::memory_order_relaxed);
  }

  void park_writer() {
    std::unique_lock lock{mutex_};
    if (tail_.load(std::memory_order_relaxed) -
                head_.load(std::memory_order_relaxed) <=
            mask_ ||
        flags_.load(std::memory_order_relaxed) != 0 ||
        gate_.load(std::memory_order_relaxed)) {
      return;
    }
    ++blocked_writers_;
    sleeping_writers_.store(static_cast<std::uint32_t>(blocked_writers_),
                            std::memory_order_relaxed);
    support::heavy_barrier();
    if (tail_.load(std::memory_order_relaxed) -
            head_.load(std::memory_order_relaxed) <=
        mask_) {
      --blocked_writers_;
      sleeping_writers_.store(static_cast<std::uint32_t>(blocked_writers_),
                              std::memory_order_relaxed);
      return;
    }
    if (sched::on_fiber()) {
      sched::suspend_current(writer_fibers_, lock);
      lock.lock();
    } else {
      writable_.wait(lock, [&] {
        return tail_.load(std::memory_order_relaxed) -
                       head_.load(std::memory_order_relaxed) <=
                   mask_ ||
               flags_.load(std::memory_order_relaxed) != 0 ||
               gate_.load(std::memory_order_relaxed);
      });
    }
    --blocked_writers_;
    sleeping_writers_.store(static_cast<std::uint32_t>(blocked_writers_),
                            std::memory_order_relaxed);
  }

  void wake_readers() {
    std::scoped_lock lock{mutex_};
    while (sched::Fiber* fiber = reader_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
    readable_.notify_all();
  }

  void wake_writers() {
    std::scoped_lock lock{mutex_};
    while (sched::Fiber* fiber = writer_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
    writable_.notify_all();
  }

  void wake_all_locked() {
    while (sched::Fiber* fiber = reader_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
    while (sched::Fiber* fiber = writer_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
  }

  T* storage_ = nullptr;
  std::size_t mask_ = 0;

  // Hot indices on their own cache lines: the producer writes tail_, the
  // consumer writes head_, and each polls the other's with acquire --
  // through a same-side cached lower bound, so the steady-state loop
  // touches the other side's line only at the empty/full boundary.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;  // consumer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;  // producer-owned
  // In-flight flags for the transition gate (see class comment).  Each is
  // written by exactly one side; sharing a line with that side's index
  // keeps the fast path to two hot lines.
  alignas(64) std::atomic<bool> in_push_{false};
  std::atomic<bool> in_pop_{false};
  std::atomic<bool> gate_{false};
  std::atomic<std::uint8_t> flags_{0};
  std::atomic<std::uint32_t> sleeping_readers_{0};
  std::atomic<std::uint32_t> sleeping_writers_{0};

  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  sched::WaitQueue reader_fibers_;
  sched::WaitQueue writer_fibers_;
  std::size_t blocked_readers_ = 0;
  std::size_t blocked_writers_ = 0;
};

}  // namespace dpn::io
