#include "io/buffered.hpp"

#include <algorithm>
#include <cstring>

namespace dpn::io {

BufferedOutputStream::BufferedOutputStream(std::shared_ptr<OutputStream> out,
                                           std::size_t buffer_size)
    : out_(std::move(out)),
      capacity_(std::max<std::size_t>(buffer_size, 1)) {
  buffer_.resize(capacity_);
}

void BufferedOutputStream::flush_buffer_locked() {
  if (size_ == 0) return;
  // Reset before writing: if the write throws (reader gone), the bytes are
  // discarded -- the same outcome a dead reader gives an unbuffered writer.
  const std::size_t n = size_;
  size_ = 0;
  ++flushes_;
  out_->write({buffer_.data(), n});
}

void BufferedOutputStream::write(ByteSpan data) {
  std::scoped_lock lock{mutex_};
  if (closed_) throw IoError{"write to closed BufferedOutputStream"};
  if (data.empty()) return;
  if (data.size() >= capacity_) {
    // Oversized write: pass through (one underlying write, no extra copy),
    // after draining the buffer to keep byte order.
    flush_buffer_locked();
    out_->write(data);
    return;
  }
  if (size_ + data.size() > capacity_) flush_buffer_locked();
  std::memcpy(buffer_.data() + size_, data.data(), data.size());
  size_ += data.size();
  ++coalesced_;
}

void BufferedOutputStream::write_byte(std::uint8_t b) {
  std::scoped_lock lock{mutex_};
  if (closed_) throw IoError{"write to closed BufferedOutputStream"};
  if (size_ == capacity_) flush_buffer_locked();
  buffer_[size_++] = b;
  ++coalesced_;
}

void BufferedOutputStream::write_vectored(ByteSpan a, ByteSpan b) {
  std::scoped_lock lock{mutex_};
  if (closed_) throw IoError{"write to closed BufferedOutputStream"};
  const std::size_t total = a.size() + b.size();
  if (total >= capacity_) {
    flush_buffer_locked();
    out_->write_vectored(a, b);
    return;
  }
  if (size_ + total > capacity_) flush_buffer_locked();
  if (!a.empty()) std::memcpy(buffer_.data() + size_, a.data(), a.size());
  if (!b.empty()) {
    std::memcpy(buffer_.data() + size_ + a.size(), b.data(), b.size());
  }
  size_ += total;
  ++coalesced_;
}

void BufferedOutputStream::flush() {
  std::scoped_lock lock{mutex_};
  if (closed_) return;
  flush_buffer_locked();
  out_->flush();
}

void BufferedOutputStream::close() {
  std::scoped_lock lock{mutex_};
  if (closed_) return;
  closed_ = true;
  try {
    flush_buffer_locked();
  } catch (const IoError&) {
    // Reader already gone (ChannelClosed included); remaining bytes are
    // discarded, as they would be from the pipe of an unbuffered channel.
  }
  out_->close();
}

std::size_t BufferedOutputStream::buffered() const {
  std::scoped_lock lock{mutex_};
  return size_;
}

std::uint64_t BufferedOutputStream::flush_count() const {
  std::scoped_lock lock{mutex_};
  return flushes_;
}

std::uint64_t BufferedOutputStream::coalesced_writes() const {
  std::scoped_lock lock{mutex_};
  return coalesced_;
}

BufferedInputStream::BufferedInputStream(std::shared_ptr<InputStream> in,
                                         std::size_t buffer_size)
    : in_(std::move(in)) {
  buffer_.resize(std::max<std::size_t>(buffer_size, 1));
}

std::size_t BufferedInputStream::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  std::scoped_lock lock{mutex_};
  if (closed_.load()) throw IoError{"read from closed BufferedInputStream"};
  if (pos_ >= limit_) {
    if (out.size() >= buffer_.size()) {
      // Large read: bypass the buffer entirely.
      return in_->read_some(out);
    }
    const std::size_t n = in_->read_some({buffer_.data(), buffer_.size()});
    if (n == 0) return 0;  // end-of-stream surfaces unbuffered
    pos_ = 0;
    limit_ = n;
  }
  const std::size_t n = std::min(out.size(), limit_ - pos_);
  std::memcpy(out.data(), buffer_.data() + pos_, n);
  pos_ += n;
  return n;
}

int BufferedInputStream::read() {
  {
    std::scoped_lock lock{mutex_};
    if (closed_.load()) throw IoError{"read from closed BufferedInputStream"};
    if (pos_ < limit_) return buffer_[pos_++];
  }
  std::uint8_t b = 0;
  return read_some({&b, 1}) == 0 ? -1 : static_cast<int>(b);
}

void BufferedInputStream::close() {
  // No mutex: the reader may be blocked inside a refill holding it; the
  // underlying close (pipe close_read, socket shutdown, ...) is what wakes
  // it.  Idempotent via the atomic flag.
  if (closed_.exchange(true)) return;
  in_->close();
}

std::size_t BufferedInputStream::buffered() const {
  std::scoped_lock lock{mutex_};
  return limit_ - pos_;
}

ByteVector BufferedInputStream::take_buffered() {
  std::scoped_lock lock{mutex_};
  ByteVector out{buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
                 buffer_.begin() + static_cast<std::ptrdiff_t>(limit_)};
  pos_ = limit_ = 0;
  return out;
}

}  // namespace dpn::io
