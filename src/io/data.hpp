#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "io/stream.hpp"
#include "support/bytes.hpp"

/// Typed primitives over byte streams, mirroring java.io.DataInputStream /
/// DataOutputStream.  All encodings are big-endian so a channel's byte
/// history is identical across transports and hosts.
///
/// In the paper's architecture this layering happens *inside* a process:
/// channels only ever carry bytes, which is what lets type-agnostic
/// processes (Duplicate, Cons, the splicing machinery) handle any traffic.
namespace dpn::io {

class DataOutputStream final : public OutputStream {
 public:
  explicit DataOutputStream(std::shared_ptr<OutputStream> out)
      : out_(std::move(out)) {}

  void write(ByteSpan data) override { out_->write(data); }
  void write_byte(std::uint8_t b) override { out_->write_byte(b); }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    out_->write_vectored(a, b);
  }
  void flush() override { out_->flush(); }
  void close() override { out_->close(); }

  void write_u8(std::uint8_t v) { out_->write_byte(v); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i8(std::int8_t v) { write_u8(static_cast<std::uint8_t>(v)); }
  void write_i16(std::int16_t v) { write_u16(static_cast<std::uint16_t>(v)); }
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f32(float v) { write_u32(float_to_bits(v)); }
  void write_f64(double v) { write_u64(double_to_bits(v)); }

  /// Unsigned LEB128.
  void write_varint(std::uint64_t v);

  /// varint length followed by raw bytes.
  void write_bytes(ByteSpan data);
  void write_string(const std::string& s) { write_bytes(as_bytes(s)); }

  const std::shared_ptr<OutputStream>& underlying() const { return out_; }

 private:
  std::shared_ptr<OutputStream> out_;
};

class DataInputStream final : public InputStream {
 public:
  explicit DataInputStream(std::shared_ptr<InputStream> in)
      : in_(std::move(in)) {}

  std::size_t read_some(MutableByteSpan out) override {
    return in_->read_some(out);
  }
  int read() override { return in_->read(); }
  void close() override { in_->close(); }

  // All typed reads block until complete and throw EndOfStream if the
  // stream ends mid-value (Kahn's blocking-read rule).
  std::uint8_t read_u8();
  bool read_bool() { return read_u8() != 0; }
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int8_t read_i8() { return static_cast<std::int8_t>(read_u8()); }
  std::int16_t read_i16() { return static_cast<std::int16_t>(read_u16()); }
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  float read_f32() { return bits_to_float(read_u32()); }
  double read_f64() { return bits_to_double(read_u64()); }

  std::uint64_t read_varint();

  ByteVector read_bytes();
  std::string read_string() { return dpn::to_string(read_bytes()); }

  void read_fully(MutableByteSpan out) { io::read_fully(*in_, out); }

  const std::shared_ptr<InputStream>& underlying() const { return in_; }

 private:
  std::shared_ptr<InputStream> in_;
};

}  // namespace dpn::io
