#pragma once

#include <cstdint>
#include <memory>

#include "support/bytes.hpp"
#include "support/error.hpp"

/// Abstract byte streams, mirroring java.io.InputStream/OutputStream.
///
/// These are the building blocks of the paper's Figure 3 layer diagram:
/// every Kahn channel is ultimately a pair of these, and every layer
/// (blocking, sequence, local pipe, socket) is a decorator or leaf in this
/// hierarchy.
namespace dpn::io {

class InputStream {
 public:
  virtual ~InputStream() = default;

  /// Reads up to `out.size()` bytes.  Blocks until at least one byte is
  /// available or end-of-stream.  Returns the number of bytes read; returns
  /// 0 (for a non-empty `out`) only at end-of-stream.
  virtual std::size_t read_some(MutableByteSpan out) = 0;

  /// Reads a single byte, or returns -1 at end-of-stream.
  virtual int read() {
    std::uint8_t b = 0;
    return read_some({&b, 1}) == 0 ? -1 : static_cast<int>(b);
  }

  /// Reader abandons the stream.  For a channel this makes the producer's
  /// next write throw ChannelClosed (the paper's cascading-termination
  /// trigger).  Idempotent.
  virtual void close() = 0;
};

class OutputStream {
 public:
  virtual ~OutputStream() = default;

  /// Writes all of `data`, blocking while the destination is full.  Throws
  /// ChannelClosed if the reader has closed.
  virtual void write(ByteSpan data) = 0;

  virtual void write_byte(std::uint8_t b) { write({&b, 1}); }

  /// Writes `a` immediately followed by `b` as one atomic write: the two
  /// parts cannot be torn apart by other writers on the same stream, and
  /// leaf transports collapse them into a single operation (one pipe-mutex
  /// crossing, one ::writev syscall).  The default implementation coalesces
  /// into a temporary buffer; override where gathering is cheaper.
  virtual void write_vectored(ByteSpan a, ByteSpan b);

  /// Pushes buffered bytes toward the reader.  Most dpn streams are
  /// unbuffered; this is a hook for buffered decorators.
  virtual void flush() {}

  /// Writer is done: end-of-stream is delivered to the reader once all
  /// buffered data has been drained.  Idempotent.
  virtual void close() = 0;
};

/// Reads exactly `out.size()` bytes or throws EndOfStream.  This is the
/// blocking-read guarantee Kahn's model requires; BlockingInputStream wraps
/// it as a stream layer and DataInputStream uses it for primitives.
void read_fully(InputStream& in, MutableByteSpan out);

/// Copies everything from `in` to `out` until end-of-stream; returns the
/// number of bytes moved.
std::size_t pump(InputStream& in, OutputStream& out,
                 std::size_t chunk_size = 4096);

/// Discards all writes; used for detached/abandoned endpoints.
class NullOutputStream final : public OutputStream {
 public:
  void write(ByteSpan) override {}
  void write_vectored(ByteSpan, ByteSpan) override {}
  void close() override {}
};

/// Always at end-of-stream.
class EmptyInputStream final : public InputStream {
 public:
  std::size_t read_some(MutableByteSpan) override { return 0; }
  void close() override {}
};

}  // namespace dpn::io
