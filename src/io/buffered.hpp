#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "io/stream.hpp"
#include "support/bytes.hpp"

/// Buffered stream decorators: the batched fast path through the channel
/// stack.
///
/// Every layer under a channel endpoint (Sequence gate, Pipe mutex, socket
/// syscall) charges per *call*, not per byte, so element-granular writers
/// (DataOutputStream::write_u32 and friends) pay the full stack price per
/// token.  These decorators coalesce small operations into buffer-sized
/// batches.  KPN semantics make this safe: consumers use blocking reads and
/// cannot observe the *absence* of data, so delaying when buffered bytes
/// become visible never changes a channel's byte history -- only when it is
/// produced (cf. DESIGN.md "Performance architecture").
///
/// The reconfiguration/migration protocols (SequenceOutputStream::switch_to,
/// endpoint serialization, Pipe::steal_buffer) need exact byte positions;
/// they call flush() / take_buffered() at their cut points, which is why
/// both classes are internally synchronized: the flushing thread is not the
/// writing thread.
namespace dpn::io {

/// Coalesces writes into a fixed-size buffer; the underlying stream sees
/// one write per buffer-full (or per oversized write).  flush() makes all
/// buffered bytes visible downstream; close() flushes first (flush-on-close)
/// and then closes the underlying stream.
class BufferedOutputStream final : public OutputStream {
 public:
  static constexpr std::size_t kDefaultBufferSize = 8192;

  explicit BufferedOutputStream(std::shared_ptr<OutputStream> out,
                                std::size_t buffer_size = kDefaultBufferSize);

  void write(ByteSpan data) override;
  void write_byte(std::uint8_t b) override;
  void write_vectored(ByteSpan a, ByteSpan b) override;

  /// Drains the buffer into the underlying stream and flushes it too.
  /// Safe to call from a thread other than the writer (migration cut
  /// points); if the writer is blocked inside the underlying stream the
  /// caller must unblock it first (e.g. Pipe::set_unbounded), exactly as
  /// for SequenceOutputStream::switch_to.
  void flush() override;

  /// Flush-on-close, then closes the underlying stream.  If the reader is
  /// already gone (ChannelClosed/IoError from the flush) the remaining
  /// bytes are discarded, matching the unbuffered endpoint's behaviour
  /// where a dead reader discards pipe contents.
  void close() override;

  std::size_t buffered() const;
  std::size_t buffer_size() const { return capacity_; }
  const std::shared_ptr<OutputStream>& underlying() const { return out_; }

  /// Number of non-empty buffer drains into the underlying stream.
  std::uint64_t flush_count() const;
  /// Number of write calls fully absorbed by the buffer (no underlying
  /// write).  flush_count vs coalesced_writes is the batching ratio the
  /// observability layer reports per channel.
  std::uint64_t coalesced_writes() const;

 private:
  void flush_buffer_locked();

  mutable std::mutex mutex_;
  std::shared_ptr<OutputStream> out_;
  ByteVector buffer_;
  std::size_t size_ = 0;  // bytes pending in buffer_
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t flushes_ = 0;
  std::uint64_t coalesced_ = 0;
};

/// Reads ahead into a fixed-size buffer so element-granular readers cross
/// the underlying stream (and its locks) once per buffer-full.  Never
/// blocks for more than the underlying stream's own blocking rule: one
/// read_some refill per empty buffer, so short reads and end-of-stream
/// surface exactly as they would unbuffered.
class BufferedInputStream final : public InputStream {
 public:
  static constexpr std::size_t kDefaultBufferSize = 8192;

  explicit BufferedInputStream(std::shared_ptr<InputStream> in,
                               std::size_t buffer_size = kDefaultBufferSize);

  std::size_t read_some(MutableByteSpan out) override;
  int read() override;

  /// Closes the underlying stream.  Deliberately lock-free: cascading
  /// termination closes an input endpoint from another thread while the
  /// reader may be blocked inside a refill (holding the buffer mutex), and
  /// the wakeup comes from closing the underlying stream, not from us.
  void close() override;

  /// Unconsumed read-ahead bytes currently buffered.
  std::size_t buffered() const;

  /// Atomically removes and returns the unconsumed read-ahead bytes.  The
  /// migration protocol ships these ahead of Pipe::steal_buffer's bytes:
  /// they were read from the transport first, so they are the older prefix
  /// of the channel history.  Requires the owning reader to be quiescent
  /// (the same precondition as serializing the endpoint at all).
  ByteVector take_buffered();

  const std::shared_ptr<InputStream>& underlying() const { return in_; }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<InputStream> in_;
  ByteVector buffer_;
  std::size_t pos_ = 0;    // next unread byte in buffer_
  std::size_t limit_ = 0;  // bytes valid in buffer_
  std::atomic<bool> closed_{false};
};

}  // namespace dpn::io
