#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "io/stream.hpp"

/// Sequence streams: the layer that makes live reconfiguration and
/// redistribution possible (paper Sections 3.1, 3.3, 4.2, 4.3).
///
/// Every ChannelInputStream contains a SequenceInputStream and every
/// ChannelOutputStream contains a SequenceOutputStream, so the transport
/// underneath a channel can be swapped -- local pipe to socket, old socket
/// to redirected socket, upstream channel spliced in when a process removes
/// itself -- without the communicating processes noticing and without
/// reordering or losing a single byte.
namespace dpn::io {

/// Reads a succession of InputStreams as one continuous stream.  When the
/// current stream reaches end-of-stream it is closed and the next queued
/// stream becomes current.  End-of-stream of the whole sequence is reported
/// when the last queued stream ends (sticky; later appends do not revive a
/// finished sequence).
class SequenceInputStream final : public InputStream {
 public:
  SequenceInputStream() = default;
  explicit SequenceInputStream(std::shared_ptr<InputStream> first) {
    append(std::move(first));
  }

  std::size_t read_some(MutableByteSpan out) override;
  int read() override;
  void close() override;

  /// Splices `next` after everything currently queued.  Must happen before
  /// the preceding stream delivers end-of-stream (the reconfiguration
  /// protocols guarantee this ordering: append first, then stop producing).
  void append(std::shared_ptr<InputStream> next);

  /// Number of streams not yet exhausted (including current).
  std::size_t pending() const;

  /// True once end-of-stream has been delivered to the reader.
  bool finished() const;

 private:
  std::shared_ptr<InputStream> advance_locked();

  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<InputStream>> queue_;
  std::shared_ptr<InputStream> current_;
  bool done_ = false;
  bool closed_ = false;
};

/// Writes to a switchable underlying OutputStream.  switch_to() waits for
/// any in-flight write to finish, flushes the old stream, and installs the
/// new one, so the byte sequence observed downstream is a clean
/// concatenation.
class SequenceOutputStream final : public OutputStream {
 public:
  explicit SequenceOutputStream(std::shared_ptr<OutputStream> initial)
      : current_(std::move(initial)) {}

  void write(ByteSpan data) override;
  void write_byte(std::uint8_t b) override;
  void write_vectored(ByteSpan a, ByteSpan b) override;
  void flush() override;
  void close() override;

  /// Replaces the underlying stream.  Blocks until in-flight writes
  /// complete.  If the in-flight write could itself be blocked on a full
  /// pipe, the caller must first unblock it (e.g. Pipe::set_unbounded) --
  /// the distribution machinery in dpn::dist does exactly that.
  void switch_to(std::shared_ptr<OutputStream> next, bool close_old);

  /// The current underlying stream (for inspection/serialization).
  std::shared_ptr<OutputStream> current() const;

 private:
  mutable std::shared_mutex gate_;
  std::shared_ptr<OutputStream> current_;
  bool closed_ = false;
};

}  // namespace dpn::io
