#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "io/stream.hpp"
#include "sched/fiber.hpp"
#include "support/bytes.hpp"
#include "support/histogram.hpp"

/// Bounded in-memory pipe: the "lowest layer" of a local channel
/// (the paper's LocalInputStream/LocalOutputStream over
/// java.io.PipedInput/OutputStream).
///
/// Semantics required by the paper:
///  * reads block while the buffer is empty (Kahn's blocking read);
///  * writes block while the buffer is full (Section 3.5 — bounded
///    channels enforce fair scheduling);
///  * closing the write end delivers end-of-stream after the buffer
///    drains; closing the read end makes subsequent writes throw
///    ChannelClosed (Section 3.4 — cascading termination);
///  * capacity can be grown while blocked writers wait (the
///    deadlock-resolution rule of Parks' bounded scheduling), and the
///    buffer can be atomically stolen/made unbounded while a process
///    graph is being redistributed (Section 4.2).
namespace dpn::io {

class Pipe {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Pipe(std::size_t capacity = kDefaultCapacity);

  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  /// Blocks until >=1 byte available or end-of-stream (returns 0).
  /// Throws Interrupted if the pipe is aborted while waiting.
  std::size_t read_some(MutableByteSpan out);

  /// Blocks while full (unless unbounded).  Throws ChannelClosed if the
  /// read end is closed, Interrupted if aborted while waiting.
  void write(ByteSpan data);

  /// Writes `a` then `b` under a single mutex acquisition (one blocking
  /// protocol pass instead of two); the gather path for length-prefixed
  /// payloads and frame headers.
  void write_vectored(ByteSpan a, ByteSpan b);

  void close_write();
  void close_read();

  /// Wakes every waiter with Interrupted; used for abnormal shutdown.
  void abort();

  /// Grows capacity (never shrinks).  Wakes blocked writers.
  void grow(std::size_t new_capacity);

  /// Removes the write bound entirely (writes never block again).  Used
  /// while an endpoint is being serialized for shipment so the producer
  /// cannot be wedged mid-switch.
  void set_unbounded();

  /// Atomically removes and returns all buffered bytes.  Used to ship a
  /// channel's unconsumed data along with a migrating endpoint.
  ByteVector steal_buffer();

  std::size_t capacity() const;
  std::size_t size() const;
  bool write_closed() const;
  bool read_closed() const;

  /// Instrumentation for the deadlock monitor (Section 3.5 / [13]).
  std::size_t blocked_readers() const;
  std::size_t blocked_writers() const;

  /// One consistent view of the pipe's occupancy and pressure counters
  /// (dpn::obs feeds channel snapshots from this).  Blocked time is only
  /// accumulated while a caller actually waits, so the fast path never
  /// touches a clock.  Each wait also lands in a log2 histogram
  /// (read_block / write_block) so the snapshot can report wait-time
  /// percentiles, not just totals.
  struct Stats {
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::size_t occupancy_hwm = 0;
    std::uint64_t blocked_read_ns = 0;
    std::uint64_t blocked_write_ns = 0;
    std::uint64_t reader_wakeups = 0;
    std::uint64_t writer_wakeups = 0;
    std::size_t blocked_readers = 0;
    std::size_t blocked_writers = 0;
    bool write_closed = false;
    bool read_closed = false;
    HistogramSnapshot read_block;
    HistogramSnapshot write_block;
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  // Fibers suspended on this pipe (M:N scheduler).  A blocked read/write
  // on a scheduler worker parks here instead of on the cv; the
  // counterpart operation requeues the fiber on the waker's deque.  Both
  // kinds of waiter are counted in blocked_readers_/blocked_writers_, so
  // the deadlock monitor sees one unified picture.  Non-worker threads
  // (socket relays, tests) keep using the cvs -- the two coexist.
  sched::WaitQueue reader_fibers_;
  sched::WaitQueue writer_fibers_;
  ByteVector buffer_;      // ring storage
  std::size_t head_ = 0;   // index of first unread byte
  std::size_t count_ = 0;  // bytes stored
  std::size_t capacity_;
  bool unbounded_ = false;
  bool write_closed_ = false;
  bool read_closed_ = false;
  bool aborted_ = false;
  std::size_t blocked_readers_ = 0;
  std::size_t blocked_writers_ = 0;
  std::size_t occupancy_hwm_ = 0;
  std::uint64_t blocked_read_ns_ = 0;
  std::uint64_t blocked_write_ns_ = 0;
  std::uint64_t reader_wakeups_ = 0;
  std::uint64_t writer_wakeups_ = 0;
  // Written only under mutex_ (single-writer record()); atomic buckets so
  // stats() copies are tear-free even if a reader ever goes lock-free.
  LatencyHistogram read_block_hist_;
  LatencyHistogram write_block_hist_;

  // All private helpers assume mutex_ is held.
  std::size_t take_locked(MutableByteSpan out);
  void put_locked(ByteSpan data);
  void ensure_storage_locked(std::size_t needed);
  // Condition notification with wakeup elision: no-ops when the exact
  // waiter counters (valid under mutex_) say nobody is blocked, and uses
  // notify_one for a single waiter.  Callers may hold mutex_; a waiter
  // woken before we release it just blocks briefly on the mutex.
  void notify_readers_locked();
  void notify_writers_locked();
  // Requeues every suspended fiber (both directions); the close/abort
  // paths use it because a state flip can unblock either side.
  void wake_all_fibers_locked();
};

/// Read end of a Pipe as an InputStream.
class LocalInputStream final : public InputStream {
 public:
  explicit LocalInputStream(std::shared_ptr<Pipe> pipe)
      : pipe_(std::move(pipe)) {}

  std::size_t read_some(MutableByteSpan out) override {
    return pipe_->read_some(out);
  }
  void close() override { pipe_->close_read(); }

  const std::shared_ptr<Pipe>& pipe() const { return pipe_; }

 private:
  std::shared_ptr<Pipe> pipe_;
};

/// Write end of a Pipe as an OutputStream.
class LocalOutputStream final : public OutputStream {
 public:
  explicit LocalOutputStream(std::shared_ptr<Pipe> pipe)
      : pipe_(std::move(pipe)) {}

  void write(ByteSpan data) override { pipe_->write(data); }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    pipe_->write_vectored(a, b);
  }
  void close() override { pipe_->close_write(); }

  const std::shared_ptr<Pipe>& pipe() const { return pipe_; }

 private:
  std::shared_ptr<Pipe> pipe_;
};

}  // namespace dpn::io
