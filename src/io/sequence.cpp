#include "io/sequence.hpp"

namespace dpn::io {

std::size_t SequenceInputStream::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  for (;;) {
    std::shared_ptr<InputStream> stream;
    {
      std::scoped_lock lock{mutex_};
      if (closed_) throw IoError{"read from closed SequenceInputStream"};
      if (done_) return 0;
      if (!current_) {
        current_ = advance_locked();
        if (!current_) {
          done_ = true;
          return 0;
        }
      }
      stream = current_;
    }
    // Read outside the lock so append() can splice while we block.
    const std::size_t n = stream->read_some(out);
    if (n > 0) return n;
    // Current stream exhausted: close it and advance.
    stream->close();
    std::scoped_lock lock{mutex_};
    if (current_ == stream) current_.reset();
  }
}

int SequenceInputStream::read() {
  std::uint8_t b = 0;
  return read_some({&b, 1}) == 0 ? -1 : static_cast<int>(b);
}

void SequenceInputStream::close() {
  std::deque<std::shared_ptr<InputStream>> to_close;
  std::shared_ptr<InputStream> current;
  {
    std::scoped_lock lock{mutex_};
    closed_ = true;
    done_ = true;
    to_close.swap(queue_);
    current = std::move(current_);
  }
  if (current) current->close();
  for (auto& s : to_close) s->close();
}

void SequenceInputStream::append(std::shared_ptr<InputStream> next) {
  bool close_it = false;
  {
    std::scoped_lock lock{mutex_};
    if (closed_ || done_) {
      close_it = true;  // sequence over; drop the late splice
    } else {
      queue_.push_back(std::move(next));
    }
  }
  if (close_it && next) next->close();
}

std::size_t SequenceInputStream::pending() const {
  std::scoped_lock lock{mutex_};
  return queue_.size() + (current_ ? 1 : 0);
}

bool SequenceInputStream::finished() const {
  std::scoped_lock lock{mutex_};
  return done_;
}

std::shared_ptr<InputStream> SequenceInputStream::advance_locked() {
  if (queue_.empty()) return nullptr;
  auto next = std::move(queue_.front());
  queue_.pop_front();
  return next;
}

void SequenceOutputStream::write(ByteSpan data) {
  std::shared_lock gate{gate_};
  if (closed_) throw IoError{"write to closed SequenceOutputStream"};
  current_->write(data);
}

void SequenceOutputStream::write_byte(std::uint8_t b) {
  std::shared_lock gate{gate_};
  if (closed_) throw IoError{"write to closed SequenceOutputStream"};
  current_->write_byte(b);
}

void SequenceOutputStream::write_vectored(ByteSpan a, ByteSpan b) {
  std::shared_lock gate{gate_};
  if (closed_) throw IoError{"write to closed SequenceOutputStream"};
  current_->write_vectored(a, b);
}

void SequenceOutputStream::flush() {
  std::shared_lock gate{gate_};
  if (!closed_) current_->flush();
}

void SequenceOutputStream::close() {
  std::unique_lock gate{gate_};
  if (closed_) return;
  closed_ = true;
  current_->close();
}

void SequenceOutputStream::switch_to(std::shared_ptr<OutputStream> next,
                                     bool close_old) {
  std::unique_lock gate{gate_};
  if (closed_) throw IoError{"switch_to on closed SequenceOutputStream"};
  current_->flush();
  if (close_old) current_->close();
  current_ = std::move(next);
}

std::shared_ptr<OutputStream> SequenceOutputStream::current() const {
  std::shared_lock gate{gate_};
  return current_;
}

}  // namespace dpn::io
