#pragma once

#include <algorithm>
#include <cstring>

#include "io/stream.hpp"
#include "support/bytes.hpp"

namespace dpn::io {

/// Reads from an owned byte buffer; end-of-stream when exhausted.  Used to
/// carry a channel's unconsumed bytes along with a migrating endpoint
/// (prepended to the endpoint's SequenceInputStream on arrival).
class MemoryInputStream final : public InputStream {
 public:
  explicit MemoryInputStream(ByteVector data) : data_(std::move(data)) {}

  std::size_t read_some(MutableByteSpan out) override {
    const std::size_t n = std::min(out.size(), data_.size() - pos_);
    std::memcpy(out.data(), data_.data() + pos_, n);
    pos_ += n;
    return n;
  }

  void close() override { pos_ = data_.size(); }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteVector data_;
  std::size_t pos_ = 0;
};

/// Appends to a growable byte buffer.
class MemoryOutputStream final : public OutputStream {
 public:
  void write(ByteSpan data) override {
    if (closed_) throw IoError{"write to closed MemoryOutputStream"};
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  void write_vectored(ByteSpan a, ByteSpan b) override {
    if (closed_) throw IoError{"write to closed MemoryOutputStream"};
    // No exact-fit reserve here: pinning capacity to size+needed makes
    // every subsequent append reallocate and copy the whole buffer
    // (quadratic); insert's geometric growth amortizes to O(1).
    buffer_.insert(buffer_.end(), a.begin(), a.end());
    buffer_.insert(buffer_.end(), b.begin(), b.end());
  }

  void close() override { closed_ = true; }

  const ByteVector& data() const { return buffer_; }
  ByteVector take() { return std::move(buffer_); }

 private:
  ByteVector buffer_;
  bool closed_ = false;
};

}  // namespace dpn::io
