#include "io/data.hpp"

namespace dpn::io {

void DataOutputStream::write_u16(std::uint16_t v) {
  std::uint8_t buf[2];
  put_u16(buf, v);
  out_->write({buf, sizeof buf});
}

void DataOutputStream::write_u32(std::uint32_t v) {
  std::uint8_t buf[4];
  put_u32(buf, v);
  out_->write({buf, sizeof buf});
}

void DataOutputStream::write_u64(std::uint64_t v) {
  std::uint8_t buf[8];
  put_u64(buf, v);
  out_->write({buf, sizeof buf});
}

void DataOutputStream::write_varint(std::uint64_t v) {
  std::uint8_t buf[10];
  std::size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<std::uint8_t>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<std::uint8_t>(v);
  out_->write({buf, n});
}

void DataOutputStream::write_bytes(ByteSpan data) {
  // Length prefix and payload travel as one vectored write: one pipe-mutex
  // crossing (or one syscall) per blob instead of two.
  std::uint8_t prefix[10];
  std::size_t n = 0;
  std::uint64_t v = data.size();
  while (v >= 0x80) {
    prefix[n++] = static_cast<std::uint8_t>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  prefix[n++] = static_cast<std::uint8_t>(v);
  out_->write_vectored({prefix, n}, data);
}

std::uint8_t DataInputStream::read_u8() {
  std::uint8_t b = 0;
  io::read_fully(*in_, {&b, 1});
  return b;
}

std::uint16_t DataInputStream::read_u16() {
  std::uint8_t buf[2];
  io::read_fully(*in_, {buf, sizeof buf});
  return get_u16(buf);
}

std::uint32_t DataInputStream::read_u32() {
  std::uint8_t buf[4];
  io::read_fully(*in_, {buf, sizeof buf});
  return get_u32(buf);
}

std::uint64_t DataInputStream::read_u64() {
  std::uint8_t buf[8];
  io::read_fully(*in_, {buf, sizeof buf});
  return get_u64(buf);
}

std::uint64_t DataInputStream::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = read_u8();
    if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0)) {
      throw SerializationError{"varint overflow"};
    }
    v |= std::uint64_t{static_cast<std::uint8_t>(b & 0x7f)} << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

ByteVector DataInputStream::read_bytes() {
  const std::uint64_t len = read_varint();
  constexpr std::uint64_t kSanityLimit = 1ULL << 31;
  if (len > kSanityLimit) {
    throw SerializationError{"byte blob length " + std::to_string(len) +
                             " exceeds sanity limit"};
  }
  ByteVector data(static_cast<std::size_t>(len));
  if (len > 0) io::read_fully(*in_, {data.data(), data.size()});
  return data;
}

}  // namespace dpn::io
