#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

namespace dpn::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_tag() {
  // A stable small tag per thread; the hash is computed once per thread.
  static thread_local const std::uint32_t tag = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return tag;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void append_json_escaped(std::string& out, const char* s, std::size_t max) {
  for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

}  // namespace

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kChannelWrite: return "channel.write";
    case TraceKind::kChannelRead: return "channel.read";
    case TraceKind::kChannelFlush: return "channel.flush";
    case TraceKind::kChannelClose: return "channel.close";
    case TraceKind::kShip: return "dist.ship";
    case TraceKind::kRedirect: return "dist.redirect";
    case TraceKind::kMigrate: return "dist.migrate";
    case TraceKind::kMonitorGrow: return "monitor.grow";
    case TraceKind::kMonitorDeadlock: return "monitor.deadlock";
    case TraceKind::kTaskDispatch: return "par.dispatch";
    case TraceKind::kTaskComplete: return "par.complete";
    case TraceKind::kProcessStart: return "process.start";
    case TraceKind::kProcessStop: return "process.stop";
  }
  return "unknown";
}

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  disable();
  const std::size_t size = round_up_pow2(std::max<std::size_t>(capacity, 2));
  ring_.assign(size, TraceEvent{});
  mask_ = size - 1;
  next_.store(0, std::memory_order_relaxed);
  epoch_ns_ = now_ns();
  enabled_.store(true, std::memory_order_release);
  detail::g_trace_on.store(true, std::memory_order_release);
}

void Tracer::disable() {
  detail::g_trace_on.store(false, std::memory_order_release);
  enabled_.store(false, std::memory_order_release);
}

void Tracer::record(TraceKind kind, std::string_view name, std::uint64_t arg0,
                    std::uint64_t arg1) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& event = ring_[slot & mask_];
  event.ts_ns = now_ns() - epoch_ns_;
  event.tid = thread_tag();
  event.kind = kind;
  const std::size_t n = std::min(name.size(), sizeof(event.name) - 1);
  std::memcpy(event.name, name.data(), n);
  event.name[n] = '\0';
  event.arg0 = arg0;
  event.arg1 = arg1;
}

std::vector<TraceEvent> Tracer::drain() const {
  std::vector<TraceEvent> out;
  if (ring_.empty()) return out;
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t kept = std::min<std::uint64_t>(total, ring_.size());
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest surviving slot first: when the ring wrapped, that is the slot
  // the *next* record would overwrite.
  const std::uint64_t first = total - kept;
  for (std::uint64_t i = first; i < total; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> events = drain();
  std::string out = "{\"traceEvents\":[";
  bool comma = false;
  for (const TraceEvent& event : events) {
    if (comma) out += ',';
    comma = true;
    out += "{\"name\":\"";
    out += to_string(event.kind);
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    // Chrome expects microseconds; keep sub-microsecond as a fraction.
    out += std::to_string(event.ts_ns / 1000);
    out += '.';
    out += std::to_string(event.ts_ns % 1000);
    out += ",\"args\":{\"label\":\"";
    append_json_escaped(out, event.name, sizeof(event.name));
    out += "\",\"arg0\":";
    out += std::to_string(event.arg0);
    out += ",\"arg1\":";
    out += std::to_string(event.arg1);
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace dpn::obs
