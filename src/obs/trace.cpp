#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "io/data.hpp"
#include "io/memory.hpp"
#include "support/bytes.hpp"

namespace dpn::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_tag() {
  // A stable small tag per thread; the hash is computed once per thread.
  static thread_local const std::uint32_t tag = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return tag;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void append_json_escaped(std::string& out, const char* s, std::size_t max) {
  for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

/// Span/trace ids: one process-wide counter, seeded from the wall clock
/// so two real hosts allocating independently are unlikely to collide
/// (collision cost: a spurious flow arrow in a merged trace, nothing
/// functional).  Never returns 0 -- 0 means "no context".
std::atomic<std::uint64_t>& id_counter() {
  static std::atomic<std::uint64_t> counter{
      (now_ns() << 16) | 1};
  return counter;
}

thread_local TraceContext t_context;
thread_local std::uint32_t t_node_tag = 0;

void append_event_fields(std::string& out, const TraceEvent& event,
                         const char* ph, std::uint32_t pid) {
  out += "{\"name\":\"";
  out += to_string(event.kind);
  out += "\",\"ph\":\"";
  out += ph;
  out += '"';
  if (ph[0] == 'i') out += ",\"s\":\"t\"";
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(event.tid);
  out += ",\"ts\":";
  // Chrome expects microseconds; keep sub-microsecond as a fraction.
  out += std::to_string(event.ts_ns / 1000);
  out += '.';
  out += std::to_string(event.ts_ns % 1000);
}

}  // namespace

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kChannelWrite: return "channel.write";
    case TraceKind::kChannelRead: return "channel.read";
    case TraceKind::kChannelFlush: return "channel.flush";
    case TraceKind::kChannelClose: return "channel.close";
    case TraceKind::kShip: return "dist.ship";
    case TraceKind::kRedirect: return "dist.redirect";
    case TraceKind::kMigrate: return "dist.migrate";
    case TraceKind::kMonitorGrow: return "monitor.grow";
    case TraceKind::kMonitorDeadlock: return "monitor.deadlock";
    case TraceKind::kTaskDispatch: return "par.dispatch";
    case TraceKind::kTaskComplete: return "par.complete";
    case TraceKind::kProcessStart: return "process.start";
    case TraceKind::kProcessStop: return "process.stop";
    case TraceKind::kNetSend: return "net.send";
    case TraceKind::kNetRecv: return "net.recv";
    case TraceKind::kShipSend: return "ship.send";
    case TraceKind::kShipRecv: return "ship.recv";
  }
  return "unknown";
}

void TraceContext::encode(std::uint8_t out[kWireSize]) const {
  put_u64(out, trace_id);
  put_u64(out + 8, span_id);
  out[16] = flags;
}

TraceContext TraceContext::decode(const std::uint8_t in[kWireSize]) {
  TraceContext ctx;
  ctx.trace_id = get_u64(in);
  ctx.span_id = get_u64(in + 8);
  ctx.flags = in[16];
  return ctx;
}

TraceContext& current_trace_context() { return t_context; }

std::uint64_t next_span_id() {
  // Spans are minted once per traced frame on the channel hot path, so
  // amortize the shared fetch_add over thread-local blocks.  Ids stay
  // unique (blocks never overlap); only ordering across threads is
  // sacrificed, and span ids carry no ordering meaning.
  constexpr std::uint64_t kBlock = 256;
  thread_local std::uint64_t next = 0;
  thread_local std::uint64_t end = 0;
  if (next == end) {
    next = id_counter().fetch_add(kBlock, std::memory_order_relaxed);
    end = next + kBlock;
  }
  return next++;
}

std::uint64_t new_trace_id() {
  return id_counter().fetch_add(1, std::memory_order_relaxed);
}

void set_node_tag(std::uint32_t tag) { t_node_tag = tag; }

std::uint32_t node_tag() { return t_node_tag; }

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t capacity) {
  disable();
  const std::size_t size = round_up_pow2(std::max<std::size_t>(capacity, 2));
  ring_.assign(size, TraceEvent{});
  mask_ = size - 1;
  next_.store(0, std::memory_order_relaxed);
  epoch_ns_ = now_ns();
  enabled_.store(true, std::memory_order_release);
  detail::g_trace_on.store(true, std::memory_order_release);
}

void Tracer::disable() {
  detail::g_trace_on.store(false, std::memory_order_release);
  enabled_.store(false, std::memory_order_release);
}

void Tracer::record(TraceKind kind, std::string_view name, std::uint64_t arg0,
                    std::uint64_t arg1) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  const std::uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& event = ring_[slot & mask_];
  event.ts_ns = now_ns() - epoch_ns_;
  event.tid = thread_tag();
  event.node = t_node_tag;
  event.kind = kind;
  const std::size_t n = std::min(name.size(), sizeof(event.name) - 1);
  std::memcpy(event.name, name.data(), n);
  event.name[n] = '\0';
  event.arg0 = arg0;
  event.arg1 = arg1;
}

std::vector<TraceEvent> Tracer::drain() const {
  std::vector<TraceEvent> out;
  if (ring_.empty()) return out;
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t kept = std::min<std::uint64_t>(total, ring_.size());
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest surviving slot first: when the ring wrapped, that is the slot
  // the *next* record would overwrite.
  const std::uint64_t first = total - kept;
  for (std::uint64_t i = first; i < total; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

TraceExport Tracer::export_events(std::int64_t node_filter) const {
  TraceExport exp;
  exp.node = node_filter < 0 ? 0 : static_cast<std::uint32_t>(node_filter);
  exp.epoch_ns = epoch_ns_;
  exp.recorded = recorded();
  exp.dropped = dropped();
  for (TraceEvent& event : drain()) {
    if (node_filter >= 0 &&
        event.node != static_cast<std::uint32_t>(node_filter)) {
      continue;
    }
    exp.events.push_back(event);
  }
  return exp;
}

ByteVector TraceExport::encode() const {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream out{sink};
  out.write_u32(node);
  out.write_u64(epoch_ns);
  out.write_u64(recorded);
  out.write_u64(dropped);
  out.write_varint(events.size());
  for (const TraceEvent& event : events) {
    out.write_u64(event.ts_ns);
    out.write_u32(event.tid);
    out.write_u32(event.node);
    out.write_u8(static_cast<std::uint8_t>(event.kind));
    out.write_string(event.name);
    out.write_u64(event.arg0);
    out.write_u64(event.arg1);
  }
  return sink->take();
}

TraceExport TraceExport::decode(ByteSpan bytes) {
  io::DataInputStream in{std::make_shared<io::MemoryInputStream>(
      ByteVector{bytes.begin(), bytes.end()})};
  TraceExport exp;
  exp.node = in.read_u32();
  exp.epoch_ns = in.read_u64();
  exp.recorded = in.read_u64();
  exp.dropped = in.read_u64();
  const std::uint64_t n = in.read_varint();
  exp.events.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent event;
    event.ts_ns = in.read_u64();
    event.tid = in.read_u32();
    event.node = in.read_u32();
    event.kind = static_cast<TraceKind>(in.read_u8());
    const std::string name = in.read_string();
    const std::size_t len = std::min(name.size(), sizeof(event.name) - 1);
    std::memcpy(event.name, name.data(), len);
    event.name[len] = '\0';
    event.arg0 = in.read_u64();
    event.arg1 = in.read_u64();
    exp.events.push_back(event);
  }
  return exp;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::uint64_t recorded, std::uint64_t dropped) {
  std::string out = "{\"traceEvents\":[";
  bool comma = false;
  const auto emit = [&](const std::string& piece) {
    if (comma) out += ',';
    comma = true;
    out += piece;
  };
  // One Chrome "process" row per node tag, labelled so a merged fleet
  // trace reads host-by-host.
  std::vector<std::uint32_t> nodes;
  for (const TraceEvent& event : events) {
    if (std::find(nodes.begin(), nodes.end(), event.node) == nodes.end()) {
      nodes.push_back(event.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  for (const std::uint32_t node : nodes) {
    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    meta += std::to_string(node);
    meta += ",\"args\":{\"name\":\"";
    meta += node == 0 ? "dpn host 0 (local)" : "dpn host " + std::to_string(node);
    meta += "\"}}";
    emit(meta);
  }
  for (const TraceEvent& event : events) {
    std::string piece;
    append_event_fields(piece, event, "i", event.node);
    piece += ",\"args\":{\"label\":\"";
    append_json_escaped(piece, event.name, sizeof(event.name));
    piece += "\",\"arg0\":";
    piece += std::to_string(event.arg0);
    piece += ",\"arg1\":";
    piece += std::to_string(event.arg1);
    piece += "}}";
    emit(piece);
    // Causal kinds additionally carry a flow arrow: the span id stamped
    // on the wire is the arrow id, so a kNetSend on one pid and the
    // kNetRecv that consumed the same frame on another pid are joined.
    if (is_flow_start(event.kind) || is_flow_finish(event.kind)) {
      // Chrome binds flow begin/finish by category + name + id, so both
      // ends use the same name; the span id from the wire is the id.
      std::string flow = "{\"name\":\"dpn.flow\",\"cat\":\"dpn.flow\",\"ph\":\"";
      flow += is_flow_start(event.kind) ? 's' : 'f';
      flow += '"';
      if (is_flow_finish(event.kind)) flow += ",\"bp\":\"e\"";
      flow += ",\"id\":";
      flow += std::to_string(event.arg0);
      flow += ",\"pid\":";
      flow += std::to_string(event.node);
      flow += ",\"tid\":";
      flow += std::to_string(event.tid);
      flow += ",\"ts\":";
      flow += std::to_string(event.ts_ns / 1000);
      flow += '.';
      flow += std::to_string(event.ts_ns % 1000);
      flow += '}';
      emit(flow);
    }
  }
  out += "],\"metadata\":{\"recorded\":";
  out += std::to_string(recorded);
  out += ",\"dropped\":";
  out += std::to_string(dropped);
  out += "}}";
  return out;
}

std::string Tracer::chrome_trace_json() const {
  return obs::chrome_trace_json(drain(), recorded(), dropped());
}

}  // namespace dpn::obs
