#include "obs/metrics.hpp"

namespace dpn::obs {

const char* to_string(ProcessState state) {
  switch (state) {
    case ProcessState::kIdle: return "idle";
    case ProcessState::kRunning: return "running";
    case ProcessState::kBlockedReading: return "blocked-reading";
    case ProcessState::kBlockedWriting: return "blocked-writing";
    case ProcessState::kPaused: return "paused";
    case ProcessState::kFinished: return "finished";
    case ProcessState::kRunnable: return "runnable";
  }
  return "unknown";
}

RuntimeHistograms& runtime_histograms() {
  static RuntimeHistograms histograms;
  return histograms;
}

}  // namespace dpn::obs
