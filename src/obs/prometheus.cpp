#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cstdio>

namespace dpn::obs {
namespace {

void append_line(std::string& out, const char* name, std::uint64_t value) {
  char line[160];
  std::snprintf(line, sizeof line, "%s %" PRIu64 "\n", name, value);
  out += line;
}

void append_help(std::string& out, const char* name, const char* type,
                 const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

std::string escape_label(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      escaped += '\\';
      escaped += c;
    } else if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

/// One histogram in native Prometheus form: cumulative `le` buckets in
/// seconds, then `_sum` and `_count`.  `labels` is either empty or a
/// pre-rendered `{key="value"}` fragment without the closing brace, so
/// the `le` label can be appended.
void append_histogram(std::string& out, const char* name,
                      const std::string& labels, const HistogramSnapshot& h) {
  char line[224];
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    cumulative += h.counts[i];
    if (h.counts[i] == 0 && i + 1 != HistogramSnapshot::kBuckets) {
      continue;  // sparse output; cumulative buckets stay correct
    }
    const double le =
        static_cast<double>(HistogramSnapshot::bucket_bound_ns(i)) / 1e9;
    if (i + 1 == HistogramSnapshot::kBuckets) {
      std::snprintf(line, sizeof line, "%s_bucket%s%sle=\"+Inf\"} %" PRIu64
                    "\n",
                    name, labels.empty() ? "{" : labels.c_str(),
                    labels.empty() ? "" : ",", h.count);
    } else {
      std::snprintf(line, sizeof line, "%s_bucket%s%sle=\"%g\"} %" PRIu64
                    "\n",
                    name, labels.empty() ? "{" : labels.c_str(),
                    labels.empty() ? "" : ",", le, cumulative);
    }
    out += line;
  }
  const std::string close = labels.empty() ? "" : labels + "}";
  std::snprintf(line, sizeof line, "%s_sum%s %.9f\n", name, close.c_str(),
                static_cast<double>(h.sum_ns) / 1e9);
  out += line;
  std::snprintf(line, sizeof line, "%s_count%s %" PRIu64 "\n", name,
                close.c_str(), h.count);
  out += line;
}

}  // namespace

std::string render_prometheus(const NetworkSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  append_help(out, "dpn_processes_live", "gauge",
              "Unfinished processes at snapshot time");
  append_line(out, "dpn_processes_live", snapshot.live);
  append_help(out, "dpn_growth_events_total", "counter",
              "Deadlock-monitor channel growths (Parks' algorithm)");
  append_line(out, "dpn_growth_events_total", snapshot.growth_events);
  append_help(out, "dpn_remote_bytes_sent_total", "counter",
              "Bytes sent over remote channels");
  append_line(out, "dpn_remote_bytes_sent_total", snapshot.remote_bytes_sent);
  append_help(out, "dpn_remote_bytes_received_total", "counter",
              "Bytes received over remote channels");
  append_line(out, "dpn_remote_bytes_received_total",
              snapshot.remote_bytes_received);

  append_help(out, "dpn_connect_retries_total", "counter",
              "Connect attempts retried after failure");
  append_line(out, "dpn_connect_retries_total", snapshot.connect_retries);
  append_help(out, "dpn_connect_failures_total", "counter",
              "Connects that exhausted their retry budget");
  append_line(out, "dpn_connect_failures_total", snapshot.connect_failures);
  append_help(out, "dpn_tasks_reissued_total", "counter",
              "Tasks re-dispatched after worker loss");
  append_line(out, "dpn_tasks_reissued_total", snapshot.tasks_reissued);
  append_help(out, "dpn_workers_lost_total", "counter",
              "Workers declared lost");
  append_line(out, "dpn_workers_lost_total", snapshot.workers_lost);
  append_help(out, "dpn_lease_expiries_total", "counter",
              "Synchronous calls abandoned after lease expiry");
  append_line(out, "dpn_lease_expiries_total", snapshot.lease_expiries);
  append_help(out, "dpn_registry_evictions_total", "counter",
              "Registry entries evicted after NACKs");
  append_line(out, "dpn_registry_evictions_total",
              snapshot.registry_evictions);
  append_help(out, "dpn_faults_injected_total", "counter",
              "Faults injected by the test harness");
  append_line(out, "dpn_faults_injected_total", snapshot.faults_injected);

  append_help(out, "dpn_trace_events_recorded_total", "counter",
              "Trace events recorded since enable()");
  append_line(out, "dpn_trace_events_recorded_total",
              snapshot.trace_recorded);
  append_help(out, "dpn_trace_events_dropped_total", "counter",
              "Trace events lost to ring wraparound");
  append_line(out, "dpn_trace_events_dropped_total", snapshot.trace_dropped);

  append_help(out, "dpn_task_rtt_seconds", "histogram",
              "Task dispatch-to-result round trip");
  append_histogram(out, "dpn_task_rtt_seconds", "", snapshot.task_rtt);
  append_help(out, "dpn_connect_seconds", "histogram",
              "Connect latency including retries");
  append_histogram(out, "dpn_connect_seconds", "", snapshot.connect_latency);

  append_help(out, "dpn_channel_buffered_bytes", "gauge",
              "Bytes currently buffered in a channel's pipe");
  append_help(out, "dpn_channel_bytes_written_total", "counter",
              "Bytes written into a channel");
  append_help(out, "dpn_channel_bytes_read_total", "counter",
              "Bytes read out of a channel");
  append_help(out, "dpn_channel_read_block_seconds", "histogram",
              "Per-wait reader blocking time");
  append_help(out, "dpn_channel_write_block_seconds", "histogram",
              "Per-wait writer blocking time");
  char line[224];
  for (const ChannelSnapshot& channel : snapshot.channels) {
    const std::string label =
        channel.label.empty() ? ("#" + std::to_string(channel.id))
                              : channel.label;
    const std::string tag = "{channel=\"" + escape_label(label) + "\"";
    std::snprintf(line, sizeof line,
                  "dpn_channel_buffered_bytes%s} %" PRIu64 "\n", tag.c_str(),
                  channel.buffered);
    out += line;
    std::snprintf(line, sizeof line,
                  "dpn_channel_bytes_written_total%s} %" PRIu64 "\n",
                  tag.c_str(), channel.bytes_written);
    out += line;
    std::snprintf(line, sizeof line,
                  "dpn_channel_bytes_read_total%s} %" PRIu64 "\n", tag.c_str(),
                  channel.bytes_read);
    out += line;
    if (channel.read_block.count > 0) {
      append_histogram(out, "dpn_channel_read_block_seconds", tag,
                       channel.read_block);
    }
    if (channel.write_block.count > 0) {
      append_histogram(out, "dpn_channel_write_block_seconds", tag,
                       channel.write_block);
    }
  }
  return out;
}

}  // namespace dpn::obs
