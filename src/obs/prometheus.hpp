#pragma once

#include <string>

#include "obs/snapshot.hpp"

/// Prometheus text exposition (version 0.0.4) of a NetworkSnapshot: the
/// bridge between the snapshot plane and a scrape-based monitoring stack.
/// rmi::PrometheusExporter serves this over HTTP; render_prometheus is
/// separately callable so tests and CLI tools can print the same payload
/// without a listener.
namespace dpn::obs {

/// Renders `snapshot` in Prometheus text format: counters and gauges for
/// the scalar fields, native histogram series (cumulative `le` buckets in
/// seconds, `_sum`, `_count`) for the task-RTT / connect-latency / per-
/// channel wait distributions.  Channel series carry a `channel` label.
std::string render_prometheus(const NetworkSnapshot& snapshot);

}  // namespace dpn::obs
