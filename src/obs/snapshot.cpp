#include "obs/snapshot.hpp"

#include <memory>

#include "fault/fault.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"

namespace dpn::obs {

namespace {
// Version 2 appends the fault counters after the channel list; version-1
// decoders stop before them, version-2 decoders of version-1 payloads
// leave them zero.
constexpr std::uint8_t kSnapshotVersion = 2;
}  // namespace

void NetworkSnapshot::fill_fault_counters() {
  const fault::FaultStats& stats = fault::stats();
  connect_retries = stats.connect_retries.load(std::memory_order_relaxed);
  connect_failures = stats.connect_failures.load(std::memory_order_relaxed);
  tasks_reissued = stats.tasks_reissued.load(std::memory_order_relaxed);
  workers_lost = stats.workers_lost.load(std::memory_order_relaxed);
  lease_expiries = stats.lease_expiries.load(std::memory_order_relaxed);
  registry_evictions =
      stats.registry_evictions.load(std::memory_order_relaxed);
  faults_injected = stats.faults_injected.load(std::memory_order_relaxed);
}

std::uint64_t NetworkSnapshot::blocked_readers() const {
  std::uint64_t n = 0;
  for (const ChannelSnapshot& c : channels) n += c.blocked_readers;
  return n;
}

std::uint64_t NetworkSnapshot::blocked_writers() const {
  std::uint64_t n = 0;
  for (const ChannelSnapshot& c : channels) n += c.blocked_writers;
  return n;
}

const ChannelSnapshot* NetworkSnapshot::smallest_write_blocked() const {
  const ChannelSnapshot* victim = nullptr;
  for (const ChannelSnapshot& c : channels) {
    if (!c.has_pipe || c.blocked_writers == 0) continue;
    if (victim == nullptr || c.capacity < victim->capacity) victim = &c;
  }
  return victim;
}

ByteVector NetworkSnapshot::encode() const {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream out{sink};
  out.write_u8(kSnapshotVersion);
  out.write_u64(live);
  out.write_u8(outcome);
  out.write_u64(growth_events);
  out.write_u64(remote_bytes_sent);
  out.write_u64(remote_bytes_received);

  out.write_varint(processes.size());
  for (const ProcessSnapshot& p : processes) {
    out.write_string(p.name);
    out.write_u8(static_cast<std::uint8_t>(p.state));
    out.write_u64(p.steps);
  }

  out.write_varint(channels.size());
  for (const ChannelSnapshot& c : channels) {
    out.write_u64(c.id);
    out.write_string(c.label);
    out.write_bool(c.has_pipe);
    out.write_bool(c.input_remote);
    out.write_bool(c.output_remote);
    out.write_bool(c.write_closed);
    out.write_bool(c.read_closed);
    out.write_u64(c.capacity);
    out.write_u64(c.buffered);
    out.write_u64(c.occupancy_hwm);
    out.write_u64(c.bytes_written);
    out.write_u64(c.tokens_written);
    out.write_u64(c.bytes_read);
    out.write_u64(c.tokens_read);
    out.write_u64(c.blocked_read_ns);
    out.write_u64(c.blocked_write_ns);
    out.write_u64(c.reader_wakeups);
    out.write_u64(c.writer_wakeups);
    out.write_u32(c.blocked_readers);
    out.write_u32(c.blocked_writers);
    out.write_u64(c.flushes);
    out.write_u64(c.coalesced_writes);
    out.write_u64(c.write_buffered);
    out.write_u64(c.read_buffered);
  }

  // Version 2: fault counters, appended so version-1 decoders still parse
  // their prefix of the payload.
  out.write_u64(connect_retries);
  out.write_u64(connect_failures);
  out.write_u64(tasks_reissued);
  out.write_u64(workers_lost);
  out.write_u64(lease_expiries);
  out.write_u64(registry_evictions);
  out.write_u64(faults_injected);
  return sink->take();
}

NetworkSnapshot NetworkSnapshot::decode(ByteSpan bytes) {
  io::DataInputStream in{std::make_shared<io::MemoryInputStream>(
      ByteVector{bytes.begin(), bytes.end()})};
  const std::uint8_t version = in.read_u8();
  if (version == 0 || version > kSnapshotVersion) {
    throw SerializationError{"unsupported NetworkSnapshot version " +
                             std::to_string(version)};
  }
  NetworkSnapshot snapshot;
  snapshot.live = in.read_u64();
  snapshot.outcome = in.read_u8();
  snapshot.growth_events = in.read_u64();
  snapshot.remote_bytes_sent = in.read_u64();
  snapshot.remote_bytes_received = in.read_u64();

  const std::uint64_t n_processes = in.read_varint();
  snapshot.processes.reserve(n_processes);
  for (std::uint64_t i = 0; i < n_processes; ++i) {
    ProcessSnapshot p;
    p.name = in.read_string();
    p.state = static_cast<ProcessState>(in.read_u8());
    p.steps = in.read_u64();
    snapshot.processes.push_back(std::move(p));
  }

  const std::uint64_t n_channels = in.read_varint();
  snapshot.channels.reserve(n_channels);
  for (std::uint64_t i = 0; i < n_channels; ++i) {
    ChannelSnapshot c;
    c.id = in.read_u64();
    c.label = in.read_string();
    c.has_pipe = in.read_bool();
    c.input_remote = in.read_bool();
    c.output_remote = in.read_bool();
    c.write_closed = in.read_bool();
    c.read_closed = in.read_bool();
    c.capacity = in.read_u64();
    c.buffered = in.read_u64();
    c.occupancy_hwm = in.read_u64();
    c.bytes_written = in.read_u64();
    c.tokens_written = in.read_u64();
    c.bytes_read = in.read_u64();
    c.tokens_read = in.read_u64();
    c.blocked_read_ns = in.read_u64();
    c.blocked_write_ns = in.read_u64();
    c.reader_wakeups = in.read_u64();
    c.writer_wakeups = in.read_u64();
    c.blocked_readers = in.read_u32();
    c.blocked_writers = in.read_u32();
    c.flushes = in.read_u64();
    c.coalesced_writes = in.read_u64();
    c.write_buffered = in.read_u64();
    c.read_buffered = in.read_u64();
    snapshot.channels.push_back(std::move(c));
  }

  if (version >= 2) {
    snapshot.connect_retries = in.read_u64();
    snapshot.connect_failures = in.read_u64();
    snapshot.tasks_reissued = in.read_u64();
    snapshot.workers_lost = in.read_u64();
    snapshot.lease_expiries = in.read_u64();
    snapshot.registry_evictions = in.read_u64();
    snapshot.faults_injected = in.read_u64();
  }
  return snapshot;
}

std::string NetworkSnapshot::to_string() const {
  std::string out;
  out += "live=" + std::to_string(live) +
         " growth_events=" + std::to_string(growth_events) + "\n";
  if (connect_retries > 0 || connect_failures > 0 || tasks_reissued > 0 ||
      workers_lost > 0 || lease_expiries > 0 || registry_evictions > 0 ||
      faults_injected > 0) {
    out += "faults: retries=" + std::to_string(connect_retries) +
           " connect_failures=" + std::to_string(connect_failures) +
           " reissued=" + std::to_string(tasks_reissued) +
           " workers_lost=" + std::to_string(workers_lost) +
           " lease_expiries=" + std::to_string(lease_expiries) +
           " evictions=" + std::to_string(registry_evictions) +
           " injected=" + std::to_string(faults_injected) + "\n";
  }
  for (const ProcessSnapshot& p : processes) {
    out += "process ";
    out += p.name.empty() ? "<unnamed>" : p.name;
    out += ": ";
    out += obs::to_string(p.state);
    out += ", " + std::to_string(p.steps) + " steps\n";
  }
  for (const ChannelSnapshot& c : channels) {
    out += c.label.empty() ? "<unnamed>" : c.label;
    out += ":";
    if (!c.has_pipe) {
      out += " remote";
    } else {
      out += " ";
      out += std::to_string(c.buffered) + "/" + std::to_string(c.capacity);
      out += " bytes (hwm " + std::to_string(c.occupancy_hwm) + ")";
    }
    out += ", ";
    out += std::to_string(c.bytes_written) + "B/" +
           std::to_string(c.tokens_written) + " tokens out, " +
           std::to_string(c.bytes_read) + "B/" +
           std::to_string(c.tokens_read) + " tokens in";
    if (c.blocked_read_ns > 0 || c.blocked_write_ns > 0) {
      out += ", waited r=";
      out += std::to_string(c.blocked_read_ns / 1000) + "us w=" +
             std::to_string(c.blocked_write_ns / 1000) + "us";
    }
    if (c.blocked_readers > 0) {
      out += ", ";
      out += std::to_string(c.blocked_readers) + " blocked reader(s)";
    }
    if (c.blocked_writers > 0) {
      out += ", ";
      out += std::to_string(c.blocked_writers) + " blocked writer(s)";
    }
    if (c.flushes > 0 || c.coalesced_writes > 0) {
      out += ", ";
      out += std::to_string(c.flushes) + " flushes/" +
             std::to_string(c.coalesced_writes) + " coalesced";
    }
    if (c.write_closed) out += ", writer closed";
    if (c.read_closed) out += ", reader closed";
    if (c.output_remote) out += ", producer remote";
    if (c.input_remote) out += ", consumer remote";
    out += "\n";
  }
  return out;
}

}  // namespace dpn::obs
