#include "obs/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "fault/fault.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "obs/trace.hpp"

namespace dpn::obs {

namespace {

void write_histogram(io::DataOutputStream& out, const HistogramSnapshot& h) {
  out.write_varint(h.count);
  out.write_varint(h.sum_ns);
  // Bucket count on the wire, so a future layout change (more buckets)
  // stays decodable: a short reader folds the excess into its last
  // bucket, a long reader leaves its tail zero.
  out.write_varint(HistogramSnapshot::kBuckets);
  for (const std::uint64_t c : h.counts) out.write_varint(c);
}

HistogramSnapshot read_histogram(io::DataInputStream& in) {
  HistogramSnapshot h;
  h.count = in.read_varint();
  h.sum_ns = in.read_varint();
  const std::uint64_t buckets = in.read_varint();
  for (std::uint64_t i = 0; i < buckets; ++i) {
    const std::uint64_t c = in.read_varint();
    const std::size_t slot = std::min<std::size_t>(
        static_cast<std::size_t>(i), HistogramSnapshot::kBuckets - 1);
    h.counts[slot] += c;
  }
  return h;
}

std::string us_string(std::uint64_t ns) { return std::to_string(ns / 1000); }

std::atomic<TransportStats (*)()> g_transport_stats_source{nullptr};

}  // namespace

void set_transport_stats_source(TransportStats (*source)()) {
  g_transport_stats_source.store(source, std::memory_order_release);
}

void NetworkSnapshot::fill_fault_counters() {
  const fault::FaultStats& stats = fault::stats();
  connect_retries = stats.connect_retries.load(std::memory_order_relaxed);
  connect_failures = stats.connect_failures.load(std::memory_order_relaxed);
  tasks_reissued = stats.tasks_reissued.load(std::memory_order_relaxed);
  workers_lost = stats.workers_lost.load(std::memory_order_relaxed);
  lease_expiries = stats.lease_expiries.load(std::memory_order_relaxed);
  registry_evictions =
      stats.registry_evictions.load(std::memory_order_relaxed);
  faults_injected = stats.faults_injected.load(std::memory_order_relaxed);
}

void NetworkSnapshot::fill_runtime_counters() {
  const Tracer& tracer = Tracer::instance();
  trace_recorded = tracer.recorded();
  trace_dropped = tracer.dropped();
  task_rtt = runtime_histograms().task_rtt.snapshot();
  connect_latency = runtime_histograms().connect.snapshot();
}

void NetworkSnapshot::fill_transport_counters() {
  const auto source = g_transport_stats_source.load(std::memory_order_acquire);
  if (source == nullptr) return;
  const TransportStats stats = source();
  mux_connections = stats.mux_connections;
  mux_streams_active = stats.mux_streams_active;
  mux_streams_total = stats.mux_streams_total;
  mux_credit_stalls = stats.mux_credit_stalls;
  mux_credit_stall_ns = stats.mux_credit_stall_ns;
}

std::uint64_t NetworkSnapshot::blocked_readers() const {
  std::uint64_t n = 0;
  for (const ChannelSnapshot& c : channels) n += c.blocked_readers;
  return n;
}

std::uint64_t NetworkSnapshot::blocked_writers() const {
  std::uint64_t n = 0;
  for (const ChannelSnapshot& c : channels) n += c.blocked_writers;
  return n;
}

const ChannelSnapshot* NetworkSnapshot::smallest_write_blocked() const {
  const ChannelSnapshot* victim = nullptr;
  for (const ChannelSnapshot& c : channels) {
    if (!c.has_pipe || c.blocked_writers == 0) continue;
    if (victim == nullptr || c.capacity < victim->capacity) victim = &c;
  }
  return victim;
}

ByteVector NetworkSnapshot::encode() const { return encode_as(kVersion); }

ByteVector NetworkSnapshot::encode_as(std::uint8_t want_version) const {
  const std::uint8_t v = std::clamp<std::uint8_t>(want_version, 1, kVersion);
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream out{sink};
  out.write_u8(v);
  out.write_u64(live);
  out.write_u8(outcome);
  out.write_u64(growth_events);
  out.write_u64(remote_bytes_sent);
  out.write_u64(remote_bytes_received);

  out.write_varint(processes.size());
  for (const ProcessSnapshot& p : processes) {
    out.write_string(p.name);
    out.write_u8(static_cast<std::uint8_t>(p.state));
    out.write_u64(p.steps);
  }

  out.write_varint(channels.size());
  for (const ChannelSnapshot& c : channels) {
    out.write_u64(c.id);
    out.write_string(c.label);
    out.write_bool(c.has_pipe);
    out.write_bool(c.input_remote);
    out.write_bool(c.output_remote);
    out.write_bool(c.write_closed);
    out.write_bool(c.read_closed);
    out.write_u64(c.capacity);
    out.write_u64(c.buffered);
    out.write_u64(c.occupancy_hwm);
    out.write_u64(c.bytes_written);
    out.write_u64(c.tokens_written);
    out.write_u64(c.bytes_read);
    out.write_u64(c.tokens_read);
    out.write_u64(c.blocked_read_ns);
    out.write_u64(c.blocked_write_ns);
    out.write_u64(c.reader_wakeups);
    out.write_u64(c.writer_wakeups);
    out.write_u32(c.blocked_readers);
    out.write_u32(c.blocked_writers);
    out.write_u64(c.flushes);
    out.write_u64(c.coalesced_writes);
    out.write_u64(c.write_buffered);
    out.write_u64(c.read_buffered);
  }

  // Version 2: fault counters, appended so version-1 decoders still parse
  // their prefix of the payload.
  if (v >= 2) {
    out.write_u64(connect_retries);
    out.write_u64(connect_failures);
    out.write_u64(tasks_reissued);
    out.write_u64(workers_lost);
    out.write_u64(lease_expiries);
    out.write_u64(registry_evictions);
    out.write_u64(faults_injected);
  }

  // Version 3: trace accounting, process-wide histograms, then one
  // read/write histogram pair per channel -- aligned by channel index,
  // because splicing them into the per-channel records above would have
  // broken version-1/2 prefix parsing.
  if (v >= 3) {
    out.write_u64(trace_recorded);
    out.write_u64(trace_dropped);
    write_histogram(out, task_rtt);
    write_histogram(out, connect_latency);
    for (const ChannelSnapshot& c : channels) {
      write_histogram(out, c.read_block);
      write_histogram(out, c.write_block);
    }
  }

  // Version 4: M:N scheduler counters, appended like the rest.
  if (v >= 4) {
    out.write_u64(sched_workers);
    out.write_u64(sched_spawned);
    out.write_u64(sched_completed);
    out.write_u64(sched_steals);
    out.write_u64(sched_dispatches);
    out.write_u64(sched_parks);
  }

  // Version 5: mux transport counters, appended like the rest.
  if (v >= 5) {
    out.write_u64(mux_connections);
    out.write_u64(mux_streams_active);
    out.write_u64(mux_streams_total);
    out.write_u64(mux_credit_stalls);
    out.write_u64(mux_credit_stall_ns);
  }

  // Version 6: per-channel typed fast-path records, aligned by channel
  // index like the version-3 histograms.
  if (v >= 6) {
    for (const ChannelSnapshot& c : channels) {
      out.write_bool(c.has_typed);
      out.write_bool(c.typed_demoted);
      out.write_varint(c.typed_pushed);
      out.write_varint(c.typed_popped);
      out.write_varint(c.typed_buffered);
      out.write_varint(c.typed_capacity);
    }
  }
  return sink->take();
}

NetworkSnapshot NetworkSnapshot::decode(ByteSpan bytes) {
  return decode_prefix(bytes, kVersion);
}

NetworkSnapshot NetworkSnapshot::decode_prefix(ByteSpan bytes,
                                               std::uint8_t max_version) {
  io::DataInputStream in{std::make_shared<io::MemoryInputStream>(
      ByteVector{bytes.begin(), bytes.end()})};
  const std::uint8_t advertised = in.read_u8();
  if (advertised == 0) {
    throw SerializationError{"malformed NetworkSnapshot: version 0"};
  }
  // Every version is an append-only extension of the previous one, so the
  // decodable part is whatever both sides know about; the rest of the
  // payload is ignored (newer writer) or left default (older writer).
  const std::uint8_t version = std::min(advertised, max_version);
  NetworkSnapshot snapshot;
  snapshot.version = version;
  snapshot.live = in.read_u64();
  snapshot.outcome = in.read_u8();
  snapshot.growth_events = in.read_u64();
  snapshot.remote_bytes_sent = in.read_u64();
  snapshot.remote_bytes_received = in.read_u64();

  const std::uint64_t n_processes = in.read_varint();
  snapshot.processes.reserve(n_processes);
  for (std::uint64_t i = 0; i < n_processes; ++i) {
    ProcessSnapshot p;
    p.name = in.read_string();
    p.state = static_cast<ProcessState>(in.read_u8());
    p.steps = in.read_u64();
    snapshot.processes.push_back(std::move(p));
  }

  const std::uint64_t n_channels = in.read_varint();
  snapshot.channels.reserve(n_channels);
  for (std::uint64_t i = 0; i < n_channels; ++i) {
    ChannelSnapshot c;
    c.id = in.read_u64();
    c.label = in.read_string();
    c.has_pipe = in.read_bool();
    c.input_remote = in.read_bool();
    c.output_remote = in.read_bool();
    c.write_closed = in.read_bool();
    c.read_closed = in.read_bool();
    c.capacity = in.read_u64();
    c.buffered = in.read_u64();
    c.occupancy_hwm = in.read_u64();
    c.bytes_written = in.read_u64();
    c.tokens_written = in.read_u64();
    c.bytes_read = in.read_u64();
    c.tokens_read = in.read_u64();
    c.blocked_read_ns = in.read_u64();
    c.blocked_write_ns = in.read_u64();
    c.reader_wakeups = in.read_u64();
    c.writer_wakeups = in.read_u64();
    c.blocked_readers = in.read_u32();
    c.blocked_writers = in.read_u32();
    c.flushes = in.read_u64();
    c.coalesced_writes = in.read_u64();
    c.write_buffered = in.read_u64();
    c.read_buffered = in.read_u64();
    snapshot.channels.push_back(std::move(c));
  }

  if (version >= 2) {
    snapshot.connect_retries = in.read_u64();
    snapshot.connect_failures = in.read_u64();
    snapshot.tasks_reissued = in.read_u64();
    snapshot.workers_lost = in.read_u64();
    snapshot.lease_expiries = in.read_u64();
    snapshot.registry_evictions = in.read_u64();
    snapshot.faults_injected = in.read_u64();
  }
  if (version >= 3) {
    snapshot.trace_recorded = in.read_u64();
    snapshot.trace_dropped = in.read_u64();
    snapshot.task_rtt = read_histogram(in);
    snapshot.connect_latency = read_histogram(in);
    for (ChannelSnapshot& c : snapshot.channels) {
      c.read_block = read_histogram(in);
      c.write_block = read_histogram(in);
    }
  }
  if (version >= 4) {
    snapshot.sched_workers = in.read_u64();
    snapshot.sched_spawned = in.read_u64();
    snapshot.sched_completed = in.read_u64();
    snapshot.sched_steals = in.read_u64();
    snapshot.sched_dispatches = in.read_u64();
    snapshot.sched_parks = in.read_u64();
  }
  if (version >= 5) {
    snapshot.mux_connections = in.read_u64();
    snapshot.mux_streams_active = in.read_u64();
    snapshot.mux_streams_total = in.read_u64();
    snapshot.mux_credit_stalls = in.read_u64();
    snapshot.mux_credit_stall_ns = in.read_u64();
  }
  if (version >= 6) {
    for (ChannelSnapshot& c : snapshot.channels) {
      c.has_typed = in.read_bool();
      c.typed_demoted = in.read_bool();
      c.typed_pushed = in.read_varint();
      c.typed_popped = in.read_varint();
      c.typed_buffered = in.read_varint();
      c.typed_capacity = in.read_varint();
    }
  }
  return snapshot;
}

void NetworkSnapshot::merge_from(NetworkSnapshot&& other) {
  version = std::min(version, other.version);
  live += other.live;
  growth_events += other.growth_events;
  remote_bytes_sent += other.remote_bytes_sent;
  remote_bytes_received += other.remote_bytes_received;
  connect_retries += other.connect_retries;
  connect_failures += other.connect_failures;
  tasks_reissued += other.tasks_reissued;
  workers_lost += other.workers_lost;
  lease_expiries += other.lease_expiries;
  registry_evictions += other.registry_evictions;
  faults_injected += other.faults_injected;
  trace_recorded += other.trace_recorded;
  trace_dropped += other.trace_dropped;
  sched_workers += other.sched_workers;
  sched_spawned += other.sched_spawned;
  sched_completed += other.sched_completed;
  sched_steals += other.sched_steals;
  sched_dispatches += other.sched_dispatches;
  sched_parks += other.sched_parks;
  mux_connections += other.mux_connections;
  mux_streams_active += other.mux_streams_active;
  mux_streams_total += other.mux_streams_total;
  mux_credit_stalls += other.mux_credit_stalls;
  mux_credit_stall_ns += other.mux_credit_stall_ns;
  task_rtt.merge(other.task_rtt);
  connect_latency.merge(other.connect_latency);
  for (auto& p : other.processes) processes.push_back(std::move(p));
  for (auto& c : other.channels) channels.push_back(std::move(c));
}

std::string NetworkSnapshot::to_string() const {
  std::string out;
  out += "live=" + std::to_string(live) +
         " growth_events=" + std::to_string(growth_events) + "\n";
  if (connect_retries > 0 || connect_failures > 0 || tasks_reissued > 0 ||
      workers_lost > 0 || lease_expiries > 0 || registry_evictions > 0 ||
      faults_injected > 0) {
    out += "faults: retries=" + std::to_string(connect_retries) +
           " connect_failures=" + std::to_string(connect_failures) +
           " reissued=" + std::to_string(tasks_reissued) +
           " workers_lost=" + std::to_string(workers_lost) +
           " lease_expiries=" + std::to_string(lease_expiries) +
           " evictions=" + std::to_string(registry_evictions) +
           " injected=" + std::to_string(faults_injected) + "\n";
  }
  if (trace_recorded > 0) {
    out += "trace: recorded=" + std::to_string(trace_recorded) +
           " dropped=" + std::to_string(trace_dropped) + "\n";
  }
  if (sched_workers > 0) {
    out += "sched: workers=" + std::to_string(sched_workers) +
           " spawned=" + std::to_string(sched_spawned) +
           " completed=" + std::to_string(sched_completed) +
           " steals=" + std::to_string(sched_steals) +
           " dispatches=" + std::to_string(sched_dispatches) +
           " parks=" + std::to_string(sched_parks) + "\n";
  }
  if (mux_connections > 0) {
    out += "mux: connections=" + std::to_string(mux_connections) +
           " streams=" + std::to_string(mux_streams_active) + "/" +
           std::to_string(mux_streams_total) +
           " credit_stalls=" + std::to_string(mux_credit_stalls) +
           " stall_time=" + us_string(mux_credit_stall_ns) + "us\n";
  }
  if (!task_rtt.empty()) {
    out += "task rtt: n=" + std::to_string(task_rtt.count) +
           " p50=" + us_string(task_rtt.p50_ns()) +
           "us p95=" + us_string(task_rtt.p95_ns()) +
           "us p99=" + us_string(task_rtt.p99_ns()) + "us\n";
  }
  if (!connect_latency.empty()) {
    out += "connect: n=" + std::to_string(connect_latency.count) +
           " p50=" + us_string(connect_latency.p50_ns()) +
           "us p95=" + us_string(connect_latency.p95_ns()) +
           "us p99=" + us_string(connect_latency.p99_ns()) + "us\n";
  }
  for (const ProcessSnapshot& p : processes) {
    out += "process ";
    out += p.name.empty() ? "<unnamed>" : p.name;
    out += ": ";
    out += obs::to_string(p.state);
    out += ", " + std::to_string(p.steps) + " steps\n";
  }
  for (const ChannelSnapshot& c : channels) {
    out += c.label.empty() ? "<unnamed>" : c.label;
    out += ":";
    if (!c.has_pipe) {
      out += " remote";
    } else {
      out += " ";
      out += std::to_string(c.buffered) + "/" + std::to_string(c.capacity);
      out += " bytes (hwm " + std::to_string(c.occupancy_hwm) + ")";
    }
    out += ", ";
    out += std::to_string(c.bytes_written) + "B/" +
           std::to_string(c.tokens_written) + " tokens out, " +
           std::to_string(c.bytes_read) + "B/" +
           std::to_string(c.tokens_read) + " tokens in";
    if (c.blocked_read_ns > 0 || c.blocked_write_ns > 0) {
      out += ", waited r=";
      out += std::to_string(c.blocked_read_ns / 1000) + "us w=" +
             std::to_string(c.blocked_write_ns / 1000) + "us";
    }
    if (!c.read_block.empty()) {
      out += ", r-wait p50/p95/p99=" + us_string(c.read_block.p50_ns()) +
             "/" + us_string(c.read_block.p95_ns()) + "/" +
             us_string(c.read_block.p99_ns()) + "us";
    }
    if (!c.write_block.empty()) {
      out += ", w-wait p50/p95/p99=" + us_string(c.write_block.p50_ns()) +
             "/" + us_string(c.write_block.p95_ns()) + "/" +
             us_string(c.write_block.p99_ns()) + "us";
    }
    if (c.blocked_readers > 0) {
      out += ", ";
      out += std::to_string(c.blocked_readers) + " blocked reader(s)";
    }
    if (c.blocked_writers > 0) {
      out += ", ";
      out += std::to_string(c.blocked_writers) + " blocked writer(s)";
    }
    if (c.flushes > 0 || c.coalesced_writes > 0) {
      out += ", ";
      out += std::to_string(c.flushes) + " flushes/" +
             std::to_string(c.coalesced_writes) + " coalesced";
    }
    if (c.has_typed) {
      out += c.typed_demoted ? ", typed (demoted)" : ", typed";
      out += " " + std::to_string(c.typed_buffered) + "/" +
             std::to_string(c.typed_capacity) + " values, " +
             std::to_string(c.typed_pushed) + " pushed/" +
             std::to_string(c.typed_popped) + " popped";
    }
    if (c.write_closed) out += ", writer closed";
    if (c.read_closed) out += ", reader closed";
    if (c.output_remote) out += ", producer remote";
    if (c.input_remote) out += ", consumer remote";
    out += "\n";
  }
  return out;
}

}  // namespace dpn::obs
