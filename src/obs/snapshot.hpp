#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/bytes.hpp"

/// Structured introspection of a process network.
///
/// A NetworkSnapshot is the one representation of "what is this graph
/// doing" shared by every consumer: Network::snapshot() produces it, the
/// deadlock monitor decides on it, tests assert on it, operators print
/// it, and the compute-server STATS request serializes it across the wire
/// so a distributed graph is observable per node (docs/OBSERVABILITY.md
/// documents the schema, docs/PROTOCOLS.md the frame).
///
/// The encoding is the project-standard Data-stream format (big-endian
/// primitives, varint lengths) with a leading version byte, so STATS
/// replies survive mixed-revision fleets: unknown newer fields are
/// appended, old decoders stop at what they know.
namespace dpn::obs {

/// One channel, merged from its ChannelMetrics, its local pipe (if any),
/// and its buffered-endpoint counters (if configured).
struct ChannelSnapshot {
  /// Stable identity of the ChannelState (process-wide monotonic id);
  /// lets a monitor correlate snapshots over time and re-find the live
  /// channel a stall snapshot named.
  std::uint64_t id = 0;
  std::string label;

  // --- topology flags ---
  bool has_pipe = false;       // both endpoints local: a pipe exists here
  bool input_remote = false;   // consuming endpoint shipped away
  bool output_remote = false;  // producing endpoint shipped away
  bool write_closed = false;
  bool read_closed = false;

  // --- occupancy (local pipe only) ---
  std::uint64_t capacity = 0;
  std::uint64_t buffered = 0;       // bytes currently in the pipe
  std::uint64_t occupancy_hwm = 0;  // high-water mark of `buffered`

  // --- traffic (endpoint counters; survive transport swaps) ---
  std::uint64_t bytes_written = 0;
  std::uint64_t tokens_written = 0;  // endpoint write calls
  std::uint64_t bytes_read = 0;
  std::uint64_t tokens_read = 0;  // endpoint read calls

  // --- pressure (local pipe only) ---
  std::uint64_t blocked_read_ns = 0;   // total time readers waited
  std::uint64_t blocked_write_ns = 0;  // total time writers waited
  std::uint64_t reader_wakeups = 0;
  std::uint64_t writer_wakeups = 0;
  std::uint32_t blocked_readers = 0;  // blocked right now
  std::uint32_t blocked_writers = 0;

  // --- fast path (buffered endpoints only) ---
  std::uint64_t flushes = 0;           // buffer drains into the transport
  std::uint64_t coalesced_writes = 0;  // writes absorbed without a drain
  std::uint64_t write_buffered = 0;    // bytes pending in the write buffer
  std::uint64_t read_buffered = 0;     // unconsumed read-ahead bytes
};

struct ProcessSnapshot {
  std::string name;
  ProcessState state = ProcessState::kIdle;
  std::uint64_t steps = 0;
};

struct NetworkSnapshot {
  /// Unfinished processes at snapshot time.
  std::uint64_t live = 0;
  /// Deadlock-monitor state (mirrors core::DeadlockOutcome's values).
  std::uint8_t outcome = 0;
  std::uint64_t growth_events = 0;
  /// Remote-channel traffic of the hosting node, when one is attached
  /// (compute servers fill these in for STATS replies).
  std::uint64_t remote_bytes_sent = 0;
  std::uint64_t remote_bytes_received = 0;

  // --- fault counters (version >= 2; mirrors fault::FaultStats, filled
  // from the producing process's fault::stats() so degradation shows up
  // in fleet_stats) ---
  std::uint64_t connect_retries = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t tasks_reissued = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t registry_evictions = 0;
  std::uint64_t faults_injected = 0;

  std::vector<ProcessSnapshot> processes;
  std::vector<ChannelSnapshot> channels;

  /// Copies the process-wide fault counters into this snapshot.
  void fill_fault_counters();

  // --- derived queries (used by the monitor and tests) ---
  std::uint64_t blocked_readers() const;
  std::uint64_t blocked_writers() const;
  bool has_write_blocked() const { return blocked_writers() > 0; }
  /// The write-blocked channel with the smallest capacity (Parks' growth
  /// victim), or nullptr when none is write-blocked.
  const ChannelSnapshot* smallest_write_blocked() const;

  ByteVector encode() const;
  static NetworkSnapshot decode(ByteSpan bytes);

  /// Multi-line human-readable rendering (the successor of the old
  /// Network::channel_report()).
  std::string to_string() const;
};

}  // namespace dpn::obs
