#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "support/histogram.hpp"

/// Structured introspection of a process network.
///
/// A NetworkSnapshot is the one representation of "what is this graph
/// doing" shared by every consumer: Network::snapshot() produces it, the
/// deadlock monitor decides on it, tests assert on it, operators print
/// it, and the compute-server STATS request serializes it across the wire
/// so a distributed graph is observable per node (docs/OBSERVABILITY.md
/// documents the schema, docs/PROTOCOLS.md the frame).
///
/// The encoding is the project-standard Data-stream format (big-endian
/// primitives, varint lengths) with a leading version byte, so STATS
/// replies survive mixed-revision fleets: unknown newer fields are
/// appended, old decoders stop at what they know.
namespace dpn::obs {

/// One channel, merged from its ChannelMetrics, its local pipe (if any),
/// and its buffered-endpoint counters (if configured).
struct ChannelSnapshot {
  /// Stable identity of the ChannelState (process-wide monotonic id);
  /// lets a monitor correlate snapshots over time and re-find the live
  /// channel a stall snapshot named.
  std::uint64_t id = 0;
  std::string label;

  // --- topology flags ---
  bool has_pipe = false;       // both endpoints local: a pipe exists here
  bool input_remote = false;   // consuming endpoint shipped away
  bool output_remote = false;  // producing endpoint shipped away
  bool write_closed = false;
  bool read_closed = false;

  // --- occupancy (local pipe only) ---
  std::uint64_t capacity = 0;
  std::uint64_t buffered = 0;       // bytes currently in the pipe
  std::uint64_t occupancy_hwm = 0;  // high-water mark of `buffered`

  // --- traffic (endpoint counters; survive transport swaps) ---
  std::uint64_t bytes_written = 0;
  std::uint64_t tokens_written = 0;  // endpoint write calls
  std::uint64_t bytes_read = 0;
  std::uint64_t tokens_read = 0;  // endpoint read calls

  // --- pressure (local pipe only) ---
  std::uint64_t blocked_read_ns = 0;   // total time readers waited
  std::uint64_t blocked_write_ns = 0;  // total time writers waited
  std::uint64_t reader_wakeups = 0;
  std::uint64_t writer_wakeups = 0;
  std::uint32_t blocked_readers = 0;  // blocked right now
  std::uint32_t blocked_writers = 0;

  // --- fast path (buffered endpoints only) ---
  std::uint64_t flushes = 0;           // buffer drains into the transport
  std::uint64_t coalesced_writes = 0;  // writes absorbed without a drain
  std::uint64_t write_buffered = 0;    // bytes pending in the write buffer
  std::uint64_t read_buffered = 0;     // unconsumed read-ahead bytes

  // --- wait-time distributions (version >= 3; local pipe only) ---
  // The scalar blocked_*_ns totals above stay for old readers; these
  // log2 histograms add the shape, so p50/p95/p99 are reportable.
  HistogramSnapshot read_block;
  HistogramSnapshot write_block;

  // --- typed fast path (version >= 6; channels built with
  // make_typed_channel only).  While the ring is live the byte pipe is
  // empty, so occupancy/pressure above describe the ring (merged in by
  // snapshot_channel); these add the ring's own accounting.  After a
  // demotion typed_demoted flips and the byte-plane fields take over. ---
  bool has_typed = false;
  bool typed_demoted = false;
  std::uint64_t typed_pushed = 0;    // values that entered the ring
  std::uint64_t typed_popped = 0;    // values that left the ring
  std::uint64_t typed_buffered = 0;  // values in the ring right now
  std::uint64_t typed_capacity = 0;  // ring capacity, in values
};

struct ProcessSnapshot {
  std::string name;
  ProcessState state = ProcessState::kIdle;
  std::uint64_t steps = 0;
};

/// Transport-plane counters for the version-5 snapshot suffix.  The obs
/// library sits below net in the dependency order, so it cannot read
/// net::mux_stats() directly; the net library registers a source with
/// set_transport_stats_source() instead, and fill_transport_counters()
/// reads through it (zeros when no transport has been used).
struct TransportStats {
  std::uint64_t mux_connections = 0;
  std::uint64_t mux_streams_active = 0;
  std::uint64_t mux_streams_total = 0;
  std::uint64_t mux_credit_stalls = 0;
  std::uint64_t mux_credit_stall_ns = 0;
};

void set_transport_stats_source(TransportStats (*source)());

struct NetworkSnapshot {
  /// Current wire-format version.  v2 appended the fault counters, v3
  /// appended the trace accounting, the runtime histograms and the
  /// per-channel wait histograms, v4 appended the M:N scheduler counters,
  /// v5 appended the mux transport counters, v6 appends the per-channel
  /// typed fast-path records -- all at top level, after everything the
  /// previous version wrote, so old readers prefix-parse newer payloads.
  static constexpr std::uint8_t kVersion = 6;

  /// The version this snapshot was decoded from (kVersion for locally
  /// built ones).  fleet_stats logs it per peer and merges the common
  /// prefix instead of dropping mixed-version peers.
  std::uint8_t version = kVersion;

  /// Unfinished processes at snapshot time.
  std::uint64_t live = 0;
  /// Deadlock-monitor state (mirrors core::DeadlockOutcome's values).
  std::uint8_t outcome = 0;
  std::uint64_t growth_events = 0;
  /// Remote-channel traffic of the hosting node, when one is attached
  /// (compute servers fill these in for STATS replies).
  std::uint64_t remote_bytes_sent = 0;
  std::uint64_t remote_bytes_received = 0;

  // --- fault counters (version >= 2; mirrors fault::FaultStats, filled
  // from the producing process's fault::stats() so degradation shows up
  // in fleet_stats) ---
  std::uint64_t connect_retries = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t tasks_reissued = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t registry_evictions = 0;
  std::uint64_t faults_injected = 0;

  // --- trace + latency plane (version >= 3) ---
  /// Tracer ring accounting of the producing host: total events recorded
  /// and how many the ring overwrote (a wrapped ring is not a complete
  /// record -- surfaced so nobody mistakes it for one).
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  /// Process-wide distributions (obs::runtime_histograms()).
  HistogramSnapshot task_rtt;
  HistogramSnapshot connect_latency;

  // --- M:N scheduler counters (version >= 4; zero in thread-per-process
  // mode, filled from sched::Scheduler::counters() otherwise) ---
  std::uint64_t sched_workers = 0;
  std::uint64_t sched_spawned = 0;
  std::uint64_t sched_completed = 0;
  std::uint64_t sched_steals = 0;
  std::uint64_t sched_dispatches = 0;
  std::uint64_t sched_parks = 0;

  // --- mux transport counters (version >= 5; zero on the blocking
  // transport, filled from net::mux_stats() through the registered
  // transport-stats source otherwise) ---
  std::uint64_t mux_connections = 0;
  std::uint64_t mux_streams_active = 0;
  std::uint64_t mux_streams_total = 0;
  std::uint64_t mux_credit_stalls = 0;
  std::uint64_t mux_credit_stall_ns = 0;

  std::vector<ProcessSnapshot> processes;
  std::vector<ChannelSnapshot> channels;

  /// Copies the process-wide fault counters into this snapshot.
  void fill_fault_counters();

  /// Copies the tracer accounting and the process-wide runtime
  /// histograms into this snapshot (the version-3 fields).
  void fill_runtime_counters();

  /// Copies the process-wide transport counters (the version-5 fields)
  /// from the registered source; no-op when none is registered.
  void fill_transport_counters();

  // --- derived queries (used by the monitor and tests) ---
  std::uint64_t blocked_readers() const;
  std::uint64_t blocked_writers() const;
  bool has_write_blocked() const { return blocked_writers() > 0; }
  /// The write-blocked channel with the smallest capacity (Parks' growth
  /// victim), or nullptr when none is write-blocked.
  const ChannelSnapshot* smallest_write_blocked() const;

  ByteVector encode() const;
  /// Encodes the wire layout of an older version (clamped to
  /// [1, kVersion]); the compat test matrix and mixed-fleet simulations
  /// use it to produce genuine old-writer payloads.
  ByteVector encode_as(std::uint8_t version) const;
  static NetworkSnapshot decode(ByteSpan bytes);
  /// Decodes as a reader that only knows formats up to `max_version`
  /// would: fields beyond it stay default, trailing bytes are ignored.
  /// Payloads *newer* than the reader are handled the same way -- the
  /// append-only guarantee makes the known prefix parseable -- so a
  /// mixed-version fleet degrades to partial data, never to an error.
  static NetworkSnapshot decode_prefix(ByteSpan bytes,
                                       std::uint8_t max_version);

  /// Folds another node's snapshot into this one: counters summed,
  /// histograms merged, processes/channels concatenated, version set to
  /// the common (minimum) version.  fleet_stats is built on this.
  void merge_from(NetworkSnapshot&& other);

  /// Multi-line human-readable rendering (the successor of the old
  /// Network::channel_report()).
  std::string to_string() const;
};

}  // namespace dpn::obs
