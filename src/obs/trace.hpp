#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// Event tracing: an opt-in, lock-free ring buffer of fixed-size events,
/// exportable as Chrome trace_event JSON (chrome://tracing, Perfetto).
///
/// Design constraints, in order:
///  1. when tracing is disabled the per-event cost is one relaxed atomic
///     load and a predictable branch (and with DPN_TRACE=0 the calls
///     compile out entirely);
///  2. when enabled, recording never blocks and never allocates: events
///     are POD slots claimed with one fetch_add, and the ring overwrites
///     its oldest entries when full (tracing favours the recent past);
///  3. events carry enough to reconstruct what the runtime did: channel
///     operations, endpoint migrations/redirections, deadlock-monitor
///     growth decisions, and par-framework task dispatch.
///
/// Concurrency note: drain() and chrome_trace_json() are meant to be
/// called after disable() (or at quiescence).  Draining while writers are
/// active cannot crash -- slots are PODs -- but racing slots may surface
/// torn (mixed old/new) events.
#ifndef DPN_TRACE
#define DPN_TRACE 1
#endif

namespace dpn::obs {

enum class TraceKind : std::uint8_t {
  kChannelWrite = 0,   // arg0 = bytes
  kChannelRead = 1,    // arg0 = bytes
  kChannelFlush = 2,   // arg0 = bytes published
  kChannelClose = 3,
  kShip = 4,           // endpoint/process shipped to another node
  kRedirect = 5,       // producer redirected (paper Section 4.3)
  kMigrate = 6,        // running process migrated (Section 6.1)
  kMonitorGrow = 7,    // arg0 = old capacity, arg1 = new capacity
  kMonitorDeadlock = 8,
  kTaskDispatch = 9,   // par framework: task blob written to a worker
  kTaskComplete = 10,  // par framework: result blob produced
  kProcessStart = 11,
  kProcessStop = 12,   // arg0 = steps completed
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  std::uint64_t ts_ns = 0;  // nanoseconds since enable()
  std::uint32_t tid = 0;    // hashed thread id
  TraceKind kind = TraceKind::kChannelWrite;
  char name[23] = {};  // truncated label (channel label, process name, ...)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// The process-wide tracer.  All methods are thread-safe.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static Tracer& instance();

  /// Starts recording into a fresh ring of `capacity` events (rounded up
  /// to a power of two).  Discards anything previously recorded.
  void enable(std::size_t capacity = kDefaultCapacity);

  /// Stops recording.  Recorded events stay available for drain/export.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event (no-op when disabled).
  void record(TraceKind kind, std::string_view name, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0);

  /// Events currently held, oldest first.  When the ring wrapped, only the
  /// newest `capacity` events survive.
  std::vector<TraceEvent> drain() const;

  /// Total record() calls since enable() -- minus drained ring size, the
  /// number of events lost to wraparound.
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return ring_.size(); }

  /// Chrome trace_event JSON ("traceEvents" array form): one instant
  /// event per slot, with kind/args attached.  Load in chrome://tracing
  /// or ui.perfetto.dev.
  std::string chrome_trace_json() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin of ts_ns
};

namespace detail {
/// Mirror of Tracer::enabled_, readable without going through
/// Tracer::instance(): the singleton's static-local guard would put a
/// call + acquire check on every channel op.  This keeps the disabled
/// fast path at one relaxed load of a namespace-scope atomic.
extern std::atomic<bool> g_trace_on;
}  // namespace detail

inline bool trace_enabled() {
#if DPN_TRACE
  return detail::g_trace_on.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

#if DPN_TRACE
#define DPN_TRACE_EVENT(kind, name, ...)                                   \
  do {                                                                     \
    if (::dpn::obs::trace_enabled()) {                                     \
      ::dpn::obs::Tracer::instance().record((kind), (name), ##__VA_ARGS__); \
    }                                                                      \
  } while (0)
#else
#define DPN_TRACE_EVENT(kind, name, ...) \
  do {                                   \
  } while (0)
#endif

}  // namespace dpn::obs
