#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"

/// Event tracing: an opt-in, lock-free ring buffer of fixed-size events,
/// exportable as Chrome trace_event JSON (chrome://tracing, Perfetto).
///
/// Design constraints, in order:
///  1. when tracing is disabled the per-event cost is one relaxed atomic
///     load and a predictable branch (and with DPN_TRACE=0 the calls
///     compile out entirely);
///  2. when enabled, recording never blocks and never allocates: events
///     are POD slots claimed with one fetch_add, and the ring overwrites
///     its oldest entries when full (tracing favours the recent past);
///  3. events carry enough to reconstruct what the runtime did: channel
///     operations, endpoint migrations/redirections, deadlock-monitor
///     growth decisions, par-framework task dispatch -- and, since obs
///     v2, *cross-host causality*: a TraceContext (trace_id, span_id,
///     flags) rides DATA frames and ship/submit handshakes, so one
///     token's journey producer -> socket -> consumer appears as a
///     kNetSend/kNetRecv span pair sharing a span id, which the exporter
///     turns into a Chrome flow arrow.
///
/// Node tags: in-process "hosts" (ComputeServers sharing one address
/// space, and therefore one Tracer singleton) tag their handler threads
/// with a small integer; every event records the tag of the thread that
/// produced it, the exporter maps tags to Chrome pid rows, and the TRACE
/// wire op filters by tag so each simulated host exports only its own
/// ring.  Tag 0 is the default ("the local/client host").
///
/// Concurrency note: drain() and chrome_trace_json() are meant to be
/// called after disable() (or at quiescence).  Draining while writers are
/// active cannot crash -- slots are PODs -- but racing slots may surface
/// torn (mixed old/new) events.
#ifndef DPN_TRACE
#define DPN_TRACE 1
#endif

namespace dpn::obs {

enum class TraceKind : std::uint8_t {
  kChannelWrite = 0,   // arg0 = bytes
  kChannelRead = 1,    // arg0 = bytes
  kChannelFlush = 2,   // arg0 = bytes published
  kChannelClose = 3,
  kShip = 4,           // endpoint/process shipped to another node
  kRedirect = 5,       // producer redirected (paper Section 4.3)
  kMigrate = 6,        // running process migrated (Section 6.1)
  kMonitorGrow = 7,    // arg0 = old capacity, arg1 = new capacity
  kMonitorDeadlock = 8,
  kTaskDispatch = 9,   // par framework: task blob written to a worker
  kTaskComplete = 10,  // par framework: result blob produced
  kProcessStart = 11,
  kProcessStop = 12,   // arg0 = steps completed
  // --- causal (flow) kinds; arg0 = span id, arg1 = payload bytes ---
  kNetSend = 13,   // DATA frame stamped with a TraceContext left this host
  kNetRecv = 14,   // ...and arrived at the consuming host
  kShipSend = 15,  // process/redirect handshake sent with a TraceContext
  kShipRecv = 16,  // ...and accepted by the destination host
};

const char* to_string(TraceKind kind);

/// True for the kinds whose arg0 is a span id matched across hosts; the
/// exporter emits flow-arrow begin/finish events for them.
constexpr bool is_flow_start(TraceKind kind) {
  return kind == TraceKind::kNetSend || kind == TraceKind::kShipSend;
}
constexpr bool is_flow_finish(TraceKind kind) {
  return kind == TraceKind::kNetRecv || kind == TraceKind::kShipRecv;
}

/// The compact causal context stamped onto DATA frames and ship/submit
/// handshakes (docs/PROTOCOLS.md Section 6).  17 bytes on the wire:
/// trace_id:u64 span_id:u64 flags:u8, big-endian, appended as an
/// optional frame extension -- absent entirely when tracing is off.
struct TraceContext {
  static constexpr std::size_t kWireSize = 17;
  static constexpr std::uint8_t kSampled = 0x01;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }

  void encode(std::uint8_t out[kWireSize]) const;
  static TraceContext decode(const std::uint8_t in[kWireSize]);
};

/// The thread's ambient trace context: set by the frame/ship receive
/// paths, propagated by the send paths (a send reuses the ambient
/// trace_id and mints a fresh span_id, so spans chain causally).
TraceContext& current_trace_context();

/// Process-unique, never-zero span/trace ids.  Seeded per process from
/// the clock so two hosts (real ones) are unlikely to collide.
std::uint64_t next_span_id();
std::uint64_t new_trace_id();

/// This thread's host tag (see file comment).  ComputeServer handler
/// threads set it to the server's tag; everything else stays 0.
void set_node_tag(std::uint32_t tag);
std::uint32_t node_tag();

struct TraceEvent {
  std::uint64_t ts_ns = 0;  // nanoseconds since enable()
  std::uint32_t tid = 0;    // hashed thread id
  std::uint32_t node = 0;   // host tag of the recording thread
  TraceKind kind = TraceKind::kChannelWrite;
  char name[23] = {};  // truncated label (channel label, process name, ...)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// A host's drained ring plus the clock facts fleet_trace needs to merge
/// it into another host's timeline (docs/OBSERVABILITY.md).
struct TraceExport {
  std::uint32_t node = 0;      // the exporting host's tag
  std::uint64_t epoch_ns = 0;  // steady-clock origin of the events' ts_ns
  std::uint64_t recorded = 0;  // total record() calls since enable()
  std::uint64_t dropped = 0;   // events lost to ring wraparound
  std::vector<TraceEvent> events;

  ByteVector encode() const;
  static TraceExport decode(ByteSpan bytes);
};

/// The process-wide tracer.  All methods are thread-safe.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static Tracer& instance();

  /// Starts recording into a fresh ring of `capacity` events (rounded up
  /// to a power of two).  Discards anything previously recorded.
  void enable(std::size_t capacity = kDefaultCapacity);

  /// Stops recording.  Recorded events stay available for drain/export.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event (no-op when disabled).
  void record(TraceKind kind, std::string_view name, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0);

  /// Events currently held, oldest first.  When the ring wrapped, only the
  /// newest `capacity` events survive.
  std::vector<TraceEvent> drain() const;

  /// Total record() calls since enable().
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound since enable() -- recorded() minus
  /// what drain() can still return.  Surfaced in NetworkSnapshot and in
  /// the exported trace metadata so a wrapped ring is never mistaken for
  /// a complete record.
  std::uint64_t dropped() const {
    const std::uint64_t total = recorded();
    return total > ring_.size() ? total - ring_.size() : 0;
  }
  std::size_t capacity() const { return ring_.size(); }
  /// Steady-clock origin of ts_ns (for cross-host timeline merges).
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  /// This host's ring packaged for the TRACE wire op; when `node_filter`
  /// is non-negative only events with that node tag are included.
  TraceExport export_events(std::int64_t node_filter = -1) const;

  /// Chrome trace_event JSON ("traceEvents" array form): instant events
  /// per slot, flow-arrow begin/finish pairs for the causal kinds, one
  /// pid row per node tag, and a "metadata" object carrying the
  /// recorded/dropped accounting.  Load in chrome://tracing or
  /// ui.perfetto.dev.
  std::string chrome_trace_json() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::vector<TraceEvent> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin of ts_ns
};

/// Renders merged, clock-aligned events (fleet_trace's output) as Chrome
/// trace JSON; `dropped` is the fleet-wide drop count for the metadata
/// block.  Events must already share one timeline.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::uint64_t recorded, std::uint64_t dropped);

namespace detail {
/// Mirror of Tracer::enabled_, readable without going through
/// Tracer::instance(): the singleton's static-local guard would put a
/// call + acquire check on every channel op.  This keeps the disabled
/// fast path at one relaxed load of a namespace-scope atomic.
extern std::atomic<bool> g_trace_on;
}  // namespace detail

inline bool trace_enabled() {
#if DPN_TRACE
  return detail::g_trace_on.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

#if DPN_TRACE
#define DPN_TRACE_EVENT(kind, name, ...)                                   \
  do {                                                                     \
    if (::dpn::obs::trace_enabled()) {                                     \
      ::dpn::obs::Tracer::instance().record((kind), (name), ##__VA_ARGS__); \
    }                                                                      \
  } while (0)
#else
#define DPN_TRACE_EVENT(kind, name, ...) \
  do {                                   \
  } while (0)
#endif

}  // namespace dpn::obs
