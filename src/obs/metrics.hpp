#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/histogram.hpp"

/// Runtime observability: the counters every channel and process carries.
///
/// The paper evaluates its runtime with hand-rolled external timing
/// (Section 5.2); dpn::obs instead builds measurement into the runtime, in
/// the spirit of AstraKahn's pressure/progress signals (PAPERS.md): a
/// streaming network scheduler -- and a human debugging one -- needs to see
/// where bytes flow and where processes wait without stopping the world.
///
/// All counters are plain atomics updated with relaxed ordering: they are
/// statistics, not synchronization.  A snapshot reader may observe counts
/// from slightly different instants; what it can never do is block a
/// channel operation.
///
/// Hot-path cost: each counter has exactly ONE writing thread (a channel
/// endpoint belongs to one process -- Kahn discipline; a process's stats
/// belong to its own thread), so increments use the single-writer idiom
/// `store(load(relaxed) + n, relaxed)`, which compiles to a plain add --
/// no lock-prefixed RMW.  Concurrent readers (monitor, snapshot, STATS)
/// just see a slightly stale value.  Measured in bench/obs_overhead.cpp
/// and held under the 3% budget.
namespace dpn::obs {

/// Single-writer relaxed increment: a plain add on the owning thread,
/// atomic visibility for concurrent snapshot readers.
inline void bump(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  counter.store(counter.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
}

/// Per-channel counters, shared by the two endpoints of a channel (they
/// live in core::ChannelState) and updated by whichever endpoints are
/// local.  The blocked-time and wakeup numbers are fed from io::Pipe,
/// flush/coalesce numbers from the buffered fast-path endpoints.
struct ChannelMetrics {
  /// Payload bytes / endpoint write calls on the producing endpoint.
  /// The producer's and consumer's counters sit on separate cache lines:
  /// the two endpoint threads bump them concurrently every token.
  alignas(64) std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> tokens_written{0};
  /// Payload bytes / endpoint read calls on the consuming endpoint.
  alignas(64) std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> tokens_read{0};

  void on_write(std::size_t bytes) {
    bump(bytes_written, bytes);
    bump(tokens_written, 1);
  }
  void on_read(std::size_t bytes) {
    bump(bytes_read, bytes);
    bump(tokens_read, 1);
  }
};

/// What a process is doing right now.  "Blocked" here means "inside a
/// channel operation": Kahn processes either compute or wait on a channel,
/// so the instant a read/write call returns the process is computing
/// again.  Updated with relaxed stores from the process's own thread.
enum class ProcessState : std::uint8_t {
  kIdle = 0,            // constructed, run() not entered
  kRunning = 1,         // computing between channel operations
  kBlockedReading = 2,  // inside a channel read
  kBlockedWriting = 3,  // inside a channel write
  kPaused = 4,          // parked at a step boundary (migration)
  kFinished = 5,        // run() returned
  kRunnable = 6,        // M:N scheduler: ready on a deque, awaiting a worker
};

const char* to_string(ProcessState state);

/// Per-process observable state.  Owned (shared_ptr) by the Process; the
/// channel endpoints the process registers also hold a reference so they
/// can flip the blocked states around their blocking calls.
struct ProcessStats {
  std::atomic<ProcessState> state{ProcessState::kIdle};
  /// Completed IterativeProcess::step() calls.
  std::atomic<std::uint64_t> steps{0};
  /// M:N scheduler only: dispatches of this process's fiber on a
  /// different worker than the previous one (work migrations).  A fiber
  /// is dispatched by one worker at a time, so the single-writer idiom
  /// holds here too -- the writer just changes identity between runs.
  std::atomic<std::uint64_t> stolen{0};

  void set_state(ProcessState s) { state.store(s, std::memory_order_relaxed); }
  ProcessState get_state() const {
    return state.load(std::memory_order_relaxed);
  }
};

/// Process-wide latency histograms that are not per-channel: task
/// round-trips (recorded by the par router's ledger and by TaskFuture)
/// and connect/retry wall time (recorded by net::connect_with_retry).
/// Multi-writer, hence record_shared() at every site; mirrored into
/// NetworkSnapshot v3 like fault::stats() is into v2.
struct RuntimeHistograms {
  LatencyHistogram task_rtt;
  LatencyHistogram connect;
};

RuntimeHistograms& runtime_histograms();

}  // namespace dpn::obs
