#include "dsp/beam.hpp"

#include <cmath>
#include <numbers>

#include "io/data.hpp"

namespace dpn::dsp {

PlaneWaveSource::PlaneWaveSource(std::shared_ptr<ChannelOutputStream> out,
                                 double frequency, double delay_samples,
                                 double noise_amplitude, std::uint64_t seed,
                                 long iterations)
    : IterativeProcess(iterations),
      frequency_(frequency),
      delay_samples_(delay_samples),
      noise_amplitude_(noise_amplitude),
      seed_(seed) {
  track_output(std::move(out));
}

void PlaneWaveSource::step() {
  if (!rng_) {
    // (Re)derive the noise stream deterministically: one draw per sample,
    // so a source serialized mid-run resumes with identical output.
    rng_ = std::make_unique<dpn::Xoshiro256>(seed_);
    for (std::uint64_t i = 0; i < t_; ++i) rng_->next();
  }
  const double phase = 2.0 * std::numbers::pi * frequency_ *
                       (static_cast<double>(t_) - delay_samples_);
  const double noise =
      noise_amplitude_ *
      (static_cast<double>(rng_->next() >> 11) * 0x1.0p-53 - 0.5) * 2.0;
  io::DataOutputStream out{output(0)};
  out.write_f64(std::sin(phase) + noise);
  ++t_;
}

void PlaneWaveSource::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_f64(frequency_);
  out.write_f64(delay_samples_);
  out.write_f64(noise_amplitude_);
  out.write_u64(seed_);
  out.write_u64(t_);
}

std::shared_ptr<PlaneWaveSource> PlaneWaveSource::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<PlaneWaveSource>(new PlaneWaveSource);
  process->read_base(in);
  process->frequency_ = in.read_f64();
  process->delay_samples_ = in.read_f64();
  process->noise_amplitude_ = in.read_f64();
  process->seed_ = in.read_u64();
  process->t_ = in.read_u64();
  return process;
}

DelaySum::DelaySum(std::vector<std::shared_ptr<ChannelInputStream>> ins,
                   std::shared_ptr<ChannelOutputStream> out,
                   std::vector<std::uint32_t> delays, long iterations)
    : IterativeProcess(iterations), delays_(std::move(delays)) {
  if (ins.empty()) throw UsageError{"DelaySum needs at least one input"};
  if (ins.size() != delays_.size()) {
    throw UsageError{"DelaySum needs one delay per input"};
  }
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(out));
}

void DelaySum::on_start() {
  if (aligned_) return;
  // Kahn-style delay: consume and discard each sensor's steering prefix.
  for (std::size_t i = 0; i < input_count(); ++i) {
    io::DataInputStream in{input(i)};
    for (std::uint32_t k = 0; k < delays_[i]; ++k) in.read_f64();
  }
  aligned_ = true;
}

void DelaySum::step() {
  double sum = 0.0;
  for (std::size_t i = 0; i < input_count(); ++i) {
    io::DataInputStream in{input(i)};
    sum += in.read_f64();
  }
  io::DataOutputStream out{output(0)};
  out.write_f64(sum);
}

void DelaySum::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_varint(delays_.size());
  for (const std::uint32_t d : delays_) out.write_u32(d);
  out.write_bool(aligned_);
}

std::shared_ptr<DelaySum> DelaySum::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<DelaySum>(new DelaySum);
  process->read_base(in);
  const std::uint64_t n = in.read_varint();
  process->delays_.resize(n);
  for (auto& d : process->delays_) d = in.read_u32();
  process->aligned_ = in.read_bool();
  return process;
}

SpectralPower::SpectralPower(std::shared_ptr<ChannelInputStream> in,
                             std::shared_ptr<ChannelOutputStream> out,
                             std::size_t frame_size, std::size_t bin,
                             long iterations)
    : IterativeProcess(iterations), frame_size_(frame_size), bin_(bin) {
  if (!is_power_of_two(frame_size)) {
    throw UsageError{"SpectralPower frame size must be a power of two"};
  }
  if (bin >= frame_size) throw UsageError{"bin outside the frame spectrum"};
  track_input(std::move(in));
  track_output(std::move(out));
}

void SpectralPower::step() {
  if (window_.size() != frame_size_) window_ = hann_window(frame_size_);
  io::DataInputStream in{input(0)};
  std::vector<double> frame(frame_size_);
  for (double& sample : frame) sample = in.read_f64();
  io::DataOutputStream out{output(0)};
  out.write_f64(bin_power(frame, bin_, window_));
}

void SpectralPower::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_varint(frame_size_);
  out.write_varint(bin_);
}

std::shared_ptr<SpectralPower> SpectralPower::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<SpectralPower>(new SpectralPower);
  process->read_base(in);
  process->frame_size_ = static_cast<std::size_t>(in.read_varint());
  process->bin_ = static_cast<std::size_t>(in.read_varint());
  return process;
}

std::vector<double> arrival_delays(std::size_t sensors,
                                   double spacing_samples, double bearing) {
  std::vector<double> delays(sensors);
  for (std::size_t i = 0; i < sensors; ++i) {
    delays[i] = static_cast<double>(i) * spacing_samples * std::sin(bearing);
  }
  return delays;
}

std::vector<std::uint32_t> steering_delays(std::size_t sensors,
                                           double spacing_samples,
                                           double bearing) {
  const std::vector<double> raw =
      arrival_delays(sensors, spacing_samples, bearing);
  // A sensor the wave reaches later carries a *delayed* copy of the
  // signal; discarding that many samples advances its stream back into
  // alignment.  Shift so the earliest sensor discards zero.
  double min_raw = raw.front();
  for (const double d : raw) min_raw = std::min(min_raw, d);
  std::vector<std::uint32_t> out(sensors);
  for (std::size_t i = 0; i < sensors; ++i) {
    out[i] = static_cast<std::uint32_t>(std::llround(raw[i] - min_raw));
  }
  return out;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<PlaneWaveSource>("dpn.dsp.PlaneWaveSource") &&
    serial::register_type<DelaySum>("dpn.dsp.DelaySum") &&
    serial::register_type<SpectralPower>("dpn.dsp.SpectralPower");
}

}  // namespace dpn::dsp
