#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "support/error.hpp"

/// Small DSP substrate for the signal-processing applications the paper
/// motivates (Section 1: "well suited to a variety of signal processing
/// ... applications such as embedded signal processing, sonar beam
/// forming"): an iterative radix-2 FFT, window functions, and spectral
/// helpers.
namespace dpn::dsp {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT; size must be a power of two.
void fft(std::vector<Complex>& data);

/// Inverse FFT (normalized by 1/N).
void ifft(std::vector<Complex>& data);

/// Reference O(N^2) DFT, for testing.
std::vector<Complex> naive_dft(const std::vector<Complex>& data);

/// Hann window coefficients of the given length.
std::vector<double> hann_window(std::size_t length);

/// Power (|X_k|^2) of one bin of the windowed FFT of a real frame.
double bin_power(const std::vector<double>& frame, std::size_t bin,
                 const std::vector<double>& window);

/// Index of the strongest bin in the first half of the spectrum
/// (excluding DC) of a real frame.
std::size_t peak_bin(const std::vector<double>& frame);

bool is_power_of_two(std::size_t n);

}  // namespace dpn::dsp
