#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

namespace dpn::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

/// Bit-reversal permutation.
void bit_reverse(std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    while (j & bit) {
      j ^= bit;
      bit >>= 1;
    }
    j |= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw UsageError{"FFT size must be a power of two"};
  }
  bit_reverse(data);
  for (std::size_t length = 2; length <= n; length <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(length);
    const Complex w_len{std::cos(angle), std::sin(angle)};
    for (std::size_t start = 0; start < n; start += length) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < length / 2; ++k) {
        const Complex even = data[start + k];
        const Complex odd = data[start + k + length / 2] * w;
        data[start + k] = even + odd;
        data[start + k + length / 2] = even - odd;
        w *= w_len;
      }
    }
  }
  if (inverse) {
    for (Complex& value : data) value /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<Complex>& data) { transform(data, false); }

void ifft(std::vector<Complex>& data) { transform(data, true); }

std::vector<Complex> naive_dft(const std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      sum += data[t] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = sum;
  }
  return out;
}

std::vector<double> hann_window(std::size_t length) {
  std::vector<double> window(length);
  for (std::size_t i = 0; i < length; ++i) {
    window[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                     static_cast<double>(i) /
                                     static_cast<double>(length));
  }
  return window;
}

double bin_power(const std::vector<double>& frame, std::size_t bin,
                 const std::vector<double>& window) {
  if (window.size() != frame.size()) {
    throw UsageError{"window length must match frame length"};
  }
  std::vector<Complex> data(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    data[i] = Complex{frame[i] * window[i], 0.0};
  }
  fft(data);
  if (bin >= data.size()) throw UsageError{"bin out of range"};
  return std::norm(data[bin]);
}

std::size_t peak_bin(const std::vector<double>& frame) {
  std::vector<Complex> data(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    data[i] = Complex{frame[i], 0.0};
  }
  fft(data);
  std::size_t best = 1;
  double best_power = 0.0;
  for (std::size_t k = 1; k < data.size() / 2; ++k) {
    const double power = std::norm(data[k]);
    if (power > best_power) {
      best_power = power;
      best = k;
    }
  }
  return best;
}

}  // namespace dpn::dsp
