#pragma once

#include <memory>
#include <vector>

#include "core/process.hpp"
#include "dsp/fft.hpp"
#include "support/rng.hpp"

/// Streaming delay-and-sum beamforming as a process network -- the sonar
/// application the paper points to (reference [1], Allen et al.: real-time
/// sonar beamforming with process networks and POSIX threads).
///
/// A linear array of sensors receives a plane wave; each sensor's stream
/// is duplicated to a bank of beams, each beam delays the sensor streams
/// by its steering vector and sums them, and a spectral-power stage scores
/// each beam.  The beam whose steering matches the source bearing adds the
/// sensor signals coherently and wins.
///
/// Everything is an ordinary dpn process over f64 element streams;
/// steering delays are whole samples, applied Kahn-style by discarding a
/// per-sensor prefix (no timing, no shared state -- determinate by
/// construction).
namespace dpn::dsp {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// One sensor of a linear array observing a noisy plane wave.  The
/// per-sensor arrival delay (in samples, possibly fractional) is folded
/// into the phase of the narrowband source.
class PlaneWaveSource final : public IterativeProcess {
 public:
  /// frequency is in cycles/sample; delay_samples shifts the waveform as
  /// the wavefront reaches this sensor later/earlier.
  PlaneWaveSource(std::shared_ptr<ChannelOutputStream> out, double frequency,
                  double delay_samples, double noise_amplitude,
                  std::uint64_t seed, long iterations);

  std::string type_name() const override { return "dpn.dsp.PlaneWaveSource"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<PlaneWaveSource> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  PlaneWaveSource() = default;
  double frequency_ = 0.1;
  double delay_samples_ = 0.0;
  double noise_amplitude_ = 0.0;
  std::uint64_t seed_ = 0;
  std::uint64_t t_ = 0;
  std::unique_ptr<dpn::Xoshiro256> rng_;  // rebuilt from seed_+t_ on arrival
};

/// Delay-and-sum: discards delay[i] samples from input i once at start
/// (aligning the wavefronts for its steering direction), then emits the
/// sum of one sample from every input per step.
class DelaySum final : public IterativeProcess {
 public:
  DelaySum(std::vector<std::shared_ptr<ChannelInputStream>> ins,
           std::shared_ptr<ChannelOutputStream> out,
           std::vector<std::uint32_t> delays, long iterations = 0);

  std::string type_name() const override { return "dpn.dsp.DelaySum"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<DelaySum> read_object(serial::ObjectInputStream& in);

 protected:
  void on_start() override;
  void step() override;

 private:
  DelaySum() = default;
  std::vector<std::uint32_t> delays_;
  bool aligned_ = false;
};

/// Reads frames of `frame_size` samples and emits the signal power in the
/// given FFT bin (Hann-windowed) -- one f64 per frame.
class SpectralPower final : public IterativeProcess {
 public:
  SpectralPower(std::shared_ptr<ChannelInputStream> in,
                std::shared_ptr<ChannelOutputStream> out,
                std::size_t frame_size, std::size_t bin, long iterations = 0);

  std::string type_name() const override { return "dpn.dsp.SpectralPower"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<SpectralPower> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  SpectralPower() = default;
  std::size_t frame_size_ = 64;
  std::size_t bin_ = 1;
  std::vector<double> window_;
};

/// Steering delays (whole samples, all >= 0) for a linear array of
/// `sensors` elements with `spacing_samples` inter-sensor wave travel
/// time, steered to `bearing` radians off broadside.
std::vector<std::uint32_t> steering_delays(std::size_t sensors,
                                           double spacing_samples,
                                           double bearing);

/// Per-sensor *source* delays for a plane wave arriving from `bearing`.
std::vector<double> arrival_delays(std::size_t sensors,
                                   double spacing_samples, double bearing);

}  // namespace dpn::dsp
