#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "io/stream.hpp"
#include "net/socket.hpp"
#include "support/bytes.hpp"

/// The transport abstraction: every wire conversation in dpn -- remote
/// channel segments, rendezvous handshakes, compute-server and registry
/// requests -- runs over a `Stream` obtained from a `Transport`, never
/// over a raw Socket.  Two backends implement the interface:
///
///   * kMux      -- the event-loop backend (net/mux.hpp) and the
///     compiled-in DEFAULT: all streams to the same host:port share one
///     TCP connection, multiplexed as stream-id-tagged frames with
///     per-stream credit windows, driven by the per-core epoll reactor
///     pool (net/reactor.hpp).  Connection count is O(hosts), so 50k
///     logical channels do not need 50k descriptors.
///
///   * kBlocking -- the classic one-TCP-connection-per-stream backend
///     (DPN_TRANSPORT=blocking opts back into it): dial() is
///     Socket::connect, listen() wraps a ServerSocket, and every Stream
///     owns its own descriptor.  Simple and debuggable; its raw socket
///     waits are fiber-aware (they park on the reactor), so it composes
///     with the M:N scheduler too -- it just spends O(channels) fds.
///
/// The backend is selected process-wide via NetworkOptions::transport
/// (env: DPN_TRANSPORT=blocking|mux); both ends of a conversation must
/// agree, exactly like they must agree on the frame protocol version.
namespace dpn::net {

/// A bidirectional byte stream between two endpoints.  The semantics
/// mirror Socket (the blocking backend is a 1:1 wrapper): reads block for
/// at least one byte and return 0 only at end-of-stream, writes block for
/// flow control and throw ChannelClosed once the peer is gone, and the
/// two directions shut down independently.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads up to out.size() bytes; 0 means the peer finished the stream.
  virtual std::size_t read_some(MutableByteSpan out) = 0;

  /// Writes all bytes; throws ChannelClosed when the peer is gone,
  /// NetError on hard transport failure.
  virtual void write_all(ByteSpan data) = 0;

  /// Writes `a` then `b` as one unit (frame header + payload); leaf
  /// transports gather instead of copying.
  virtual void write_vectored(ByteSpan a, ByteSpan b);

  /// Blocks until a read would make progress (data, EOF or error pending)
  /// or the timeout elapses; false on timeout.
  virtual bool wait_readable(std::chrono::milliseconds timeout) = 0;

  /// Half-close of the send direction: the peer reads EOF after the
  /// buffered bytes drain.
  virtual void shutdown_write() = 0;
  /// Half-close of the receive direction: local reads end, the peer's
  /// next write fails with ChannelClosed.
  virtual void shutdown_read() = 0;

  /// "I will never read again, but everything I wrote must still be
  /// delivered."  Where the transport can fail the peer's future writes
  /// in this direction without endangering our own outbound bytes, it
  /// does (mux: a per-stream RST frame, which unparks a peer stalled on
  /// this direction's credit window); where it cannot, this is a no-op.
  /// The default no-op is correct for TCP-per-stream: a SHUT_RD socket
  /// answers later-arriving bytes with a connection-wide RST, which
  /// would destroy our undelivered tail and FIN along with the peer's
  /// void bytes.
  virtual void abandon_read() {}

  /// Full close (both directions).  Idempotent.
  virtual void close() = 0;

  virtual std::string peer_description() const = 0;
};

/// The blocking backend's Stream: one connected socket per stream.
class SocketStream final : public Stream {
 public:
  explicit SocketStream(std::shared_ptr<Socket> socket)
      : socket_(std::move(socket)) {}
  explicit SocketStream(Socket socket)
      : socket_(std::make_shared<Socket>(std::move(socket))) {}

  std::size_t read_some(MutableByteSpan out) override {
    return socket_->read_some(out);
  }
  void write_all(ByteSpan data) override { socket_->write_all(data); }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    socket_->write_vectored(a, b);
  }
  bool wait_readable(std::chrono::milliseconds timeout) override {
    return socket_->wait_readable(timeout);
  }
  void shutdown_write() override { socket_->shutdown_write(); }
  void shutdown_read() override { socket_->shutdown_read(); }
  void close() override {
    // Shutdown, not descriptor close: a concurrently blocked read on
    // another thread must wake instead of racing descriptor reuse.  The
    // fd is released when the last reference drops.
    socket_->shutdown_read();
    socket_->shutdown_write();
  }
  std::string peer_description() const override {
    return socket_->peer_description();
  }

  const std::shared_ptr<Socket>& socket() const { return socket_; }

 private:
  std::shared_ptr<Socket> socket_;
};

/// InputStream adapter over a shared Stream (the receive direction).
class StreamInput final : public io::InputStream {
 public:
  explicit StreamInput(std::shared_ptr<Stream> stream)
      : stream_(std::move(stream)) {}

  std::size_t read_some(MutableByteSpan out) override {
    return stream_->read_some(out);
  }
  void close() override { stream_->shutdown_read(); }

  const std::shared_ptr<Stream>& stream() const { return stream_; }

 private:
  std::shared_ptr<Stream> stream_;
};

/// OutputStream adapter over a shared Stream (the send direction).
class StreamOutput final : public io::OutputStream {
 public:
  explicit StreamOutput(std::shared_ptr<Stream> stream)
      : stream_(std::move(stream)) {}

  void write(ByteSpan data) override { stream_->write_all(data); }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    stream_->write_vectored(a, b);
  }
  void close() override { stream_->shutdown_write(); }

  const std::shared_ptr<Stream>& stream() const { return stream_; }

 private:
  std::shared_ptr<Stream> stream_;
};

/// An accepting endpoint: one bound port yielding inbound Streams.  On
/// the blocking backend every accept is a fresh TCP connection; on the
/// mux backend it is a logical stream opened over a shared connection.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound stream.  Throws NetError once the
  /// listener is closed (the accept loop's shutdown path).
  virtual std::shared_ptr<Stream> accept() = 0;

  virtual std::uint16_t port() const = 0;

  virtual void close() = 0;
  virtual bool closed() const = 0;
};

enum class TransportKind : std::uint8_t {
  kBlocking = 0,  // thread-per-connection, one socket per stream
  kMux = 1,       // event loop, one connection per host pair
};

const char* to_string(TransportKind kind);

/// Per-dial tuning (all optional; zero means "transport default").
struct DialOptions {
  std::chrono::milliseconds timeout = Socket::kDefaultConnectTimeout;
  /// Mux only: initial credit window granted to the *peer* for data it
  /// sends back on this stream (a consumer dialing a producer sizes the
  /// producer's window with this).  0 = NetworkOptions::stream_window.
  std::size_t stream_window = 0;
};

/// Process-wide network configuration, read once from the environment and
/// adjustable in code before the first transport use.
struct NetworkOptions {
  TransportKind transport = TransportKind::kMux;
  /// Mux: default per-stream credit window (bytes a peer may send on one
  /// logical stream before the receiver's consumption grants more).
  std::size_t stream_window = std::size_t{1} << 18;
  /// Mux: round-robin flush quantum -- bytes one stream may put on the
  /// wire per turn while siblings wait (fairness granularity), and the
  /// coalescing target for small writes.
  std::size_t coalesce_bytes = std::size_t{16} << 10;

  /// DPN_TRANSPORT=blocking|mux (unset or anything else: mux, the
  /// default; unknown values log a warning).
  static NetworkOptions from_env();
};

/// The mutable process-wide options (initialized from from_env()).
/// Mutate before creating listeners/nodes; a Transport already
/// constructed keeps the settings it captured.
NetworkOptions& network_options();

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  /// Opens a stream to host:port.  On the mux backend this reuses (or
  /// establishes) the one shared connection to that host:port and opens a
  /// logical stream over it.  Throws NetError on failure or timeout.
  virtual std::shared_ptr<Stream> dial(const std::string& host,
                                       std::uint16_t port,
                                       const DialOptions& options = {}) = 0;

  /// Binds a listening endpoint; port 0 picks an ephemeral port.
  virtual std::shared_ptr<Listener> listen(std::uint16_t port = 0) = 0;
};

/// The process-wide Transport singleton of a given kind (constructed on
/// first use; the mux kind owns the process's EventLoop).
Transport& transport_for(TransportKind kind);

/// transport_for(network_options().transport): what call sites use unless
/// they have a reason to pin a backend.
Transport& default_transport();

/// Transport::dial wrapped in fault::with_retry, recording the whole
/// retry loop into the connect-latency histogram -- the Stream-level
/// successor of connect_with_retry.
std::shared_ptr<Stream> dial_with_retry(Transport& transport,
                                        const std::string& host,
                                        std::uint16_t port,
                                        const fault::RetryPolicy& policy = {},
                                        std::size_t stream_window = 0);

}  // namespace dpn::net
