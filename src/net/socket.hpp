#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "io/stream.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

/// Thin RAII wrappers over BSD TCP sockets (IPv4).  These are the
/// transport under remote channels (dpn::dist) and the compute-server /
/// registry protocols (dpn::rmi).
namespace dpn::net {

/// A connected TCP socket.  Move-only; the descriptor closes on
/// destruction.
class Socket {
 public:
  /// Default per-connect deadline.  Finite on purpose: a blackholed peer
  /// (SYN never answered) must surface as NetError, never as an
  /// indefinite hang.
  static constexpr std::chrono::milliseconds kDefaultConnectTimeout{10000};

  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), kill_after_(other.kill_after_) {
    other.fd_ = -1;
    other.kill_after_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port within `timeout` (non-blocking connect + poll);
  /// throws NetError on failure or deadline expiry.  Consults the
  /// installed fault::Plan (drop/delay rules, kill-after-bytes arming).
  /// Fiber-aware: from a fiber the in-progress wait parks on the reactor
  /// instead of pinning the OS worker in poll().
  static Socket connect(const std::string& host, std::uint16_t port,
                        std::chrono::milliseconds timeout =
                            kDefaultConnectTimeout);

  bool valid() const { return fd_ >= 0; }

  /// Reads up to out.size() bytes; 0 means orderly shutdown by the peer.
  /// Throws NetError on hard failure.  Fiber-aware: a read that would
  /// block suspends the calling fiber on the reactor (freeing its OS
  /// worker for other processes); plain threads block in recv as ever.
  std::size_t read_some(MutableByteSpan out);

  /// Writes all bytes; throws ChannelClosed on EPIPE/ECONNRESET (the
  /// remote reader is gone -- maps onto channel close semantics), NetError
  /// otherwise.
  void write_all(ByteSpan data);

  /// Writes `a` then `b` via ::writev -- normally one syscall for both
  /// parts (frame header + payload).  Error mapping as write_all.
  void write_vectored(ByteSpan a, ByteSpan b);

  /// Blocks until the socket is readable (data or EOF pending) or the
  /// timeout elapses; returns false on timeout.  The lease layer polls
  /// this between heartbeats.  Fiber-aware: fibers park on the reactor
  /// for the timeout instead of occupying a worker in poll().
  bool wait_readable(std::chrono::milliseconds timeout) const;

  /// Half-close of the send direction (delivers EOF to the peer).
  void shutdown_write();
  /// Half-close of the receive direction.
  void shutdown_read();

  /// Abortive close: SO_LINGER{0} + close emits RST instead of FIN, so
  /// the peer sees a crashed endpoint, not an orderly shutdown.  Used by
  /// fault injection to simulate a killed node.
  void hard_reset();

  void close();

  std::uint16_t local_port() const;
  std::string peer_description() const;

  /// Disables Nagle; remote channels are latency-sensitive.
  void set_no_delay(bool on);

  /// Switches the descriptor in/out of O_NONBLOCK.  The event-loop
  /// backend runs its connections nonblocking; everything else stays
  /// blocking.
  void set_nonblocking(bool on);

  /// Nonblocking single read attempt (fd must be in O_NONBLOCK):
  /// nullopt when the operation would block, 0 at end-of-stream, else
  /// bytes read.  Error mapping as read_some.
  std::optional<std::size_t> try_read_some(MutableByteSpan out);

  /// Nonblocking single write attempt: nullopt when the send buffer is
  /// full, else bytes accepted (possibly fewer than data.size()).
  /// Honours the fault-injection kill-after-bytes budget exactly like
  /// write_all -- the metered path is what makes "kill the shared mux
  /// connection after N bytes" deterministic.
  std::optional<std::size_t> try_write_some(ByteSpan data);

  /// The raw descriptor, for epoll registration.  -1 when closed.
  int fd() const { return fd_; }

 private:
  void write_metered(ByteSpan data);

  int fd_ = -1;
  /// Fault-injection byte budget: >= 0 means the socket hard-resets once
  /// this many more bytes have been sent (-1 = disarmed).
  std::int64_t kill_after_ = -1;
};

/// Socket::connect wrapped in fault::with_retry: transient NetErrors are
/// retried with the policy's backoff, each attempt bounded by
/// policy.connect_timeout.
Socket connect_with_retry(const std::string& host, std::uint16_t port,
                          const fault::RetryPolicy& policy = {});

/// A listening TCP socket.  Binds to all interfaces; port 0 picks an
/// ephemeral port (the usual case for automatically established channels).
class ServerSocket {
 public:
  explicit ServerSocket(std::uint16_t port = 0);
  ~ServerSocket() { close(); }

  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Blocks for the next connection.  Throws NetError if the socket is
  /// closed while waiting (the accept loop's shutdown path).
  Socket accept();

  std::uint16_t port() const { return port_; }

  void close();
  bool closed() const;

 private:
  /// Atomic because close() races with a blocked accept(): the accept
  /// loop thread reads the descriptor while the owner shuts it down.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// InputStream over a shared connected socket (the receive direction).
class SocketInputStream final : public io::InputStream {
 public:
  explicit SocketInputStream(std::shared_ptr<Socket> socket)
      : socket_(std::move(socket)) {}

  std::size_t read_some(MutableByteSpan out) override {
    return socket_->read_some(out);
  }

  void close() override { socket_->shutdown_read(); }

  const std::shared_ptr<Socket>& socket() const { return socket_; }

 private:
  std::shared_ptr<Socket> socket_;
};

/// OutputStream over a shared connected socket (the send direction).
class SocketOutputStream final : public io::OutputStream {
 public:
  explicit SocketOutputStream(std::shared_ptr<Socket> socket)
      : socket_(std::move(socket)) {}

  void write(ByteSpan data) override { socket_->write_all(data); }

  void write_vectored(ByteSpan a, ByteSpan b) override {
    socket_->write_vectored(a, b);
  }

  void close() override { socket_->shutdown_write(); }

  const std::shared_ptr<Socket>& socket() const { return socket_; }

 private:
  std::shared_ptr<Socket> socket_;
};

}  // namespace dpn::net
