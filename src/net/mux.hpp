#pragma once

#include <cstdint>

#include "net/transport.hpp"

/// The multiplexed transport backend (TransportKind::kMux) -- the
/// compiled-in default transport (DPN_TRANSPORT=blocking opts out).
///
/// All logical streams between one pair of hosts share ONE TCP
/// connection, driven by the per-core edge-triggered EventLoop pool
/// (net/reactor.hpp): each connection is pinned to one loop of the pool
/// at establishment (round-robin), its timers and posts stay
/// loop-local, and separate connections scale across cores instead of
/// serializing behind a single reactor thread.  Connection count is
/// O(host pairs), not O(channels): 50k channels between two nodes cost
/// two descriptors, one per direction of dialing.
///
/// Wire format (docs/PROTOCOLS.md Section 8).  Each side sends a preface
/// immediately after connect:
///
///   preface := magic:u32 'DPNM' version:u8 default_window:u32
///
/// then the connection carries frames:
///
///   frame := stream_id:u32 type:u8 length:u32 payload[length]
///
///   OPEN(0)        payload = window:u32 -- dialer opens stream_id and
///                  grants the acceptor `window` bytes of send credit
///   DATA(1)        payload = stream bytes (counted against the window)
///   DATA_TRACED(2) payload = TraceContext(17B) + stream bytes; the
///                  context bytes are NOT counted against the window
///   CREDIT(3)      payload = bytes:u32 -- receiver consumed, send more
///   FIN(4)         sender finished writing (ordered after its data)
///   RST(5)         sender stopped reading; peer writes fail
///
/// Stream ids are allocated by the dialer only, so the two directions of
/// dialing between a host pair can never collide.  The dialer's initial
/// send window comes from the acceptor's preface default_window; the
/// acceptor's from the OPEN frame (DialOptions::stream_window).  Credit
/// is granted by the consuming side as it reads, mirroring the channel
/// layer's remote-credit machinery one level down.
///
/// Fairness: each connection flushes its ready streams round-robin, one
/// chunk (<= NetworkOptions::coalesce_bytes) per turn, so one hot stream
/// cannot starve its siblings on the shared connection.
namespace dpn::net {

/// Aggregate counters of the mux backend (all zero when it is unused).
/// Mirrored into NetworkSnapshot so dpn_top can show streams/connection.
struct MuxStats {
  /// Live mux connections (both dialed and accepted).
  std::uint64_t connections = 0;
  /// Logical streams currently open across all connections.
  std::uint64_t streams_active = 0;
  /// Logical streams ever opened.
  std::uint64_t streams_total = 0;
  /// Times a writer blocked with an exhausted per-stream credit window.
  std::uint64_t credit_stalls = 0;
  /// Total nanoseconds spent in those stalls.
  std::uint64_t credit_stall_ns = 0;
};

MuxStats mux_stats();

/// The process-wide mux Transport singleton (drives its connections on
/// the per-core reactor() pool; prefer transport_for(TransportKind::kMux)).
Transport& mux_transport();

}  // namespace dpn::net
