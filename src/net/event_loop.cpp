#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"
#include "support/log.hpp"

namespace dpn::net {

namespace {
/// The loop the calling thread is running, if any.  A thread-local (not a
/// stored thread::id) so on_loop() never races the constructor's thread
/// startup.
thread_local EventLoop* t_current_loop = nullptr;
}  // namespace

bool EventLoop::on_loop() const { return t_current_loop == this; }

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw NetError{std::string{"epoll_create1: "} + std::strerror(errno)};
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int err = errno;
    ::close(epoll_fd_);
    throw NetError{std::string{"eventfd: "} + std::strerror(err)};
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered on purpose: never miss a wake
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw NetError{std::string{"epoll_ctl(wakeup): "} + std::strerror(err)};
  }
  wheel_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread{[this] { run(); }};
}

EventLoop::~EventLoop() {
  stopping_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::post(std::function<void()> fn) {
  if (on_loop()) {
    fn();
    return;
  }
  {
    std::scoped_lock lock{post_mutex_};
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::add(int fd, Handler* handler) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw NetError{std::string{"epoll_ctl(add): "} + std::strerror(errno)};
  }
  handlers_[fd] = handler;
}

void EventLoop::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::add_timer(std::chrono::milliseconds delay,
                                        std::function<void()> fn) {
  // An idle wheel's anchor is stale by however long epoll_wait slept
  // (unbounded when nothing was armed).  Re-anchor on the 0->1
  // transition, or the end-of-iteration advance_wheel() "catches up" the
  // whole idle gap and sweeps past this entry's slot, firing it
  // instantly instead of `delay` from now.
  if (armed_.load(std::memory_order_relaxed) == 0) {
    wheel_time_ = std::chrono::steady_clock::now();
  }
  // Round up: a timer must never fire early.
  const std::uint64_t ticks = static_cast<std::uint64_t>(
      (delay.count() + kTick.count() - 1) / kTick.count());
  const std::uint64_t ahead = ticks == 0 ? 1 : ticks;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  // ahead >= 1, so (ahead - 1) / kWheelSlots counts only *full* extra
  // revolutions; plain ahead / kWheelSlots would overshoot by a whole
  // revolution whenever ahead is an exact multiple of the slot count.
  entry.rounds = static_cast<std::uint32_t>((ahead - 1) / kWheelSlots);
  entry.fn = std::move(fn);
  const std::size_t slot = (wheel_pos_ + ahead) % kWheelSlots;
  const TimerId id = entry.id;
  wheel_[slot].push_back(std::move(entry));
  ++armed_;
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --armed_;
        return;
      }
    }
  }
}

int EventLoop::next_timeout_ms() const {
  if (armed_ == 0) return -1;  // sleep until a descriptor or post() wakes us
  const auto next_tick = wheel_time_ + kTick;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      next_tick - std::chrono::steady_clock::now());
  return remaining.count() <= 0
             ? 0
             : static_cast<int>(remaining.count());
}

void EventLoop::advance_wheel() {
  // Fire every tick the wall clock has crossed; a late wakeup (busy loop
  // iteration) catches up instead of silently stretching deadlines.
  const auto now = std::chrono::steady_clock::now();
  while (armed_ > 0 && now - wheel_time_ >= kTick) {
    wheel_time_ += kTick;
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    auto& slot = wheel_[wheel_pos_];
    std::vector<TimerEntry> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds == 0) {
        due.push_back(std::move(*it));
        it = slot.erase(it);
        --armed_;
      } else {
        --it->rounds;
        ++it;
      }
    }
    for (auto& entry : due) {
      try {
        entry.fn();
      } catch (const std::exception& e) {
        log::warn("event loop: timer callback failed: ", e.what());
      }
    }
  }
  if (armed_ == 0) wheel_time_ = now;  // idle wheel re-anchors lazily
}

void EventLoop::run() {
  t_current_loop = this;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                               next_timeout_ms());
    if (n < 0 && errno != EINTR) {
      log::warn("event loop: epoll_wait: ", std::strerror(errno));
      return;
    }
    // Reset the wake counter BEFORE draining the post queue.  The other
    // order loses wakeups: a post() that lands between the queue drain
    // and the eventfd read has its wake consumed with nothing left in
    // the queue for it, and the loop re-enters an unbounded epoll_wait
    // with the function still queued.  One shared loop gets re-woken by
    // unrelated traffic soon enough to hide that; a per-connection loop
    // whose only work arrives via post() sleeps forever.  Resetting
    // first makes any concurrent post's wake stick to the next
    // epoll_wait (worst case one spurious wakeup).
    for (int i = 0; i < std::max(n, 0); ++i) {
      if (events[i].data.fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        break;
      }
    }
    // Drain posts before handler dispatch: add()/remove() posted from
    // other threads must apply before dispatch sees stale registrations.
    std::vector<std::function<void()>> posted;
    {
      std::scoped_lock lock{post_mutex_};
      posted.swap(posted_);
    }
    for (auto& fn : posted) {
      try {
        fn();
      } catch (const std::exception& e) {
        log::warn("event loop: posted function failed: ", e.what());
      }
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      try {
        it->second->on_io(events[i].events);
      } catch (const std::exception& e) {
        log::warn("event loop: handler failed: ", e.what());
      }
    }
    advance_wheel();
  }
}

}  // namespace dpn::net
