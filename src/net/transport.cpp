#include "net/transport.hpp"

#include <cstdlib>
#include <mutex>

#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "support/log.hpp"

namespace dpn::net {

void Stream::write_vectored(ByteSpan a, ByteSpan b) {
  // Generic gather: one temporary so the two parts stay one unit even on
  // transports without a native scatter write.
  ByteVector merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  write_all({merged.data(), merged.size()});
}

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kBlocking:
      return "blocking";
    case TransportKind::kMux:
      return "mux";
  }
  return "?";
}

NetworkOptions NetworkOptions::from_env() {
  NetworkOptions options;  // mux is the compiled-in default
  if (const char* env = std::getenv("DPN_TRANSPORT")) {
    const std::string value{env};
    if (value == "blocking") {
      options.transport = TransportKind::kBlocking;
    } else if (value != "mux") {
      log::warn("DPN_TRANSPORT='", value,
                "' not recognized (blocking|mux); keeping mux");
    }
  }
  return options;
}

NetworkOptions& network_options() {
  static NetworkOptions* options = new NetworkOptions{NetworkOptions::from_env()};
  return *options;
}

namespace {

/// The classic backend: one TCP connection per stream, blocking reads and
/// writes on the caller's thread (fiber callers park on the reactor via
/// the Socket layer).  Everything PR 0-6 did, behind the new interface;
/// opt back in with DPN_TRANSPORT=blocking.
class BlockingListener final : public Listener {
 public:
  explicit BlockingListener(std::uint16_t port) : server_(port) {}

  std::shared_ptr<Stream> accept() override {
    return std::make_shared<SocketStream>(server_.accept());
  }

  std::uint16_t port() const override { return server_.port(); }
  void close() override { server_.close(); }
  bool closed() const override { return server_.closed(); }

 private:
  ServerSocket server_;
};

class BlockingTransport final : public Transport {
 public:
  TransportKind kind() const override { return TransportKind::kBlocking; }

  std::shared_ptr<Stream> dial(const std::string& host, std::uint16_t port,
                               const DialOptions& options) override {
    return std::make_shared<SocketStream>(
        Socket::connect(host, port, options.timeout));
  }

  std::shared_ptr<Listener> listen(std::uint16_t port) override {
    return std::make_shared<BlockingListener>(port);
  }
};

}  // namespace

// Defined in net/mux.cpp; declared here so transport.cpp stays the only
// registry of backends.
Transport& mux_transport();

Transport& transport_for(TransportKind kind) {
  switch (kind) {
    case TransportKind::kMux:
      return mux_transport();
    case TransportKind::kBlocking:
      break;
  }
  static BlockingTransport* blocking = new BlockingTransport;
  return *blocking;
}

Transport& default_transport() {
  return transport_for(network_options().transport);
}

std::shared_ptr<Stream> dial_with_retry(Transport& transport,
                                        const std::string& host,
                                        std::uint16_t port,
                                        const fault::RetryPolicy& policy,
                                        std::size_t stream_window) {
  // The whole retry loop is one histogram sample: what the caller
  // experienced, backoff included (same accounting as connect_with_retry).
  const auto start = std::chrono::steady_clock::now();
  DialOptions options;
  options.timeout = policy.connect_timeout;
  options.stream_window = stream_window;
  auto stream = fault::with_retry(
      policy, "dial " + host + ":" + std::to_string(port),
      [&] { return transport.dial(host, port, options); });
  obs::runtime_histograms().connect.record_shared(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return stream;
}

}  // namespace dpn::net
