#include "net/reactor.hpp"

#include <poll.h>
#include <sys/epoll.h>

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <thread>

#include "sched/fiber.hpp"
#include "support/log.hpp"

namespace dpn::net {

EventLoopPool::EventLoopPool(std::size_t size)
    : slots_(size == 0 ? 1 : size) {}

EventLoopPool::~EventLoopPool() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_acquire);
  }
}

EventLoop& EventLoopPool::at(std::size_t index) {
  auto& slot = slots_[index % slots_.size()];
  EventLoop* loop = slot.load(std::memory_order_acquire);
  if (loop != nullptr) return *loop;
  std::scoped_lock lock{create_mutex_};
  loop = slot.load(std::memory_order_relaxed);
  if (loop == nullptr) {
    loop = new EventLoop;
    slot.store(loop, std::memory_order_release);
  }
  return *loop;
}

EventLoop& EventLoopPool::next() {
  return at(cursor_.fetch_add(1, std::memory_order_relaxed));
}

EventLoop& EventLoopPool::loop_for(int fd) {
  return at(static_cast<std::size_t>(fd < 0 ? 0 : fd));
}

std::size_t EventLoopPool::live_loops() const {
  std::size_t live = 0;
  for (const auto& slot : slots_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++live;
  }
  return live;
}

std::size_t default_reactor_loops() {
  if (const char* env = std::getenv("DPN_NET_LOOPS")) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
    log::warn("DPN_NET_LOOPS='", env, "' not a positive count; ",
              "using one loop per core");
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

EventLoopPool& reactor() {
  static EventLoopPool* pool = new EventLoopPool{default_reactor_loops()};
  return *pool;
}

namespace {

/// One in-flight fd wait: registered with a loop as an epoll handler,
/// woken by an edge (or a timer for bounded waits).  Heap-allocated and
/// kept alive by the posted closures, so the loop's raw Handler* can
/// never dangle -- the unregister post holds the last reference.
struct FdWaiter final : EventLoop::Handler {
  explicit FdWaiter(std::uint32_t want_mask) : want(want_mask) {}

  void on_io(std::uint32_t events) override {  // loop thread
    // Error/hangup always count as ready: the caller's next non-blocking
    // probe is what surfaces the actual condition.
    if ((events & (want | EPOLLERR | EPOLLHUP)) == 0) return;
    std::scoped_lock lock{mutex};
    ready = true;
    wake_locked();
  }

  void force_ready() {
    std::scoped_lock lock{mutex};
    ready = true;
    wake_locked();
  }

  void expire() {
    std::scoped_lock lock{mutex};
    expired = true;
    wake_locked();
  }

  void wake_locked() {
    while (sched::Fiber* fiber = fibers.pop()) {
      sched::make_runnable(fiber);
    }
    cv.notify_all();
  }

  const std::uint32_t want;

  std::mutex mutex;
  std::condition_variable cv;
  sched::WaitQueue fibers;
  bool ready = false;
  bool expired = false;

  // Loop-thread-only state (written by the registration post, read by
  // the unregister post; the loop serializes them).
  bool registered = false;
  EventLoop::TimerId timer = 0;
};

}  // namespace

bool wait_fd_ready(int fd, bool want_write,
                   std::optional<std::chrono::milliseconds> timeout) {
  EventLoop& loop = reactor().loop_for(fd);
  const std::uint32_t want =
      want_write ? static_cast<std::uint32_t>(EPOLLOUT)
                 : static_cast<std::uint32_t>(EPOLLIN | EPOLLRDHUP);
  auto waiter = std::make_shared<FdWaiter>(want);
  loop.post([&loop, waiter, fd, want_write, timeout] {
    try {
      loop.add(fd, waiter.get());
      waiter->registered = true;
    } catch (const std::exception& e) {
      // Could not register (most likely the fd is already in this
      // loop's epoll set from a concurrent wait).  Report spurious
      // readiness: the caller re-probes and either proceeds or waits
      // again, so nothing hangs.
      log::debug("reactor: fd ", fd, " wait registration failed: ", e.what());
      waiter->force_ready();
      return;
    }
    if (timeout) {
      waiter->timer =
          loop.add_timer(*timeout, [waiter] { waiter->expire(); });
    }
    // Readiness that predates the registration produces no further
    // edge; probe once now that the registration is in place (any later
    // arrival is covered by epoll).
    pollfd probe{};
    probe.fd = fd;
    probe.events = static_cast<short>(want_write ? POLLOUT : POLLIN);
    if (::poll(&probe, 1, 0) != 0) waiter->force_ready();
  });

  bool ready;
  {
    std::unique_lock lock{waiter->mutex};
    while (!waiter->ready && !waiter->expired) {
      if (sched::on_fiber()) {
        sched::suspend_current(waiter->fibers, lock);
        lock.lock();
      } else {
        waiter->cv.wait(lock);
      }
    }
    ready = waiter->ready;
  }
  loop.post([&loop, waiter, fd] {
    if (waiter->timer != 0) loop.cancel_timer(waiter->timer);
    if (waiter->registered) loop.remove(fd);
  });
  return ready;
}

}  // namespace dpn::net
