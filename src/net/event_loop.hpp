#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

/// A single-threaded edge-triggered epoll reactor: the engine under the
/// mux transport (net/mux.hpp).
///
/// One EventLoop drives every mux connection of the process: descriptors
/// are registered edge-triggered (EPOLLIN | EPOLLOUT | EPOLLET), so a
/// handler must drain reads to EAGAIN and retry writes on the next
/// writable edge -- level-triggered wakeup storms are avoided by design.
/// All handler callbacks, posted functions and timer expirations run on
/// the loop thread; handlers therefore never race each other, which is
/// what keeps the mux frame codec lock-light.
///
/// Cross-thread interaction is post(): an eventfd wakes the loop, the
/// function runs on the loop thread.  Timers live in a hashed timer wheel
/// (fixed tick, ring of slots, rounds counter per entry) -- O(1) arm and
/// cancel, which matters when every accepted connection arms a
/// handshake deadline (the PR 3 rule: half-open must die by timeout,
/// never hang).
namespace dpn::net {

class EventLoop {
 public:
  /// Timer-wheel granularity.  Deadlines round up to the next tick;
  /// handshake/connect deadlines are hundreds of milliseconds, so a
  /// coarse tick keeps the wheel cheap without hurting anyone.
  static constexpr std::chrono::milliseconds kTick{10};
  static constexpr std::size_t kWheelSlots = 256;

  /// Edge-notification callback for one registered descriptor.  `events`
  /// is the raw epoll bitmask (EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP/...).
  /// Runs on the loop thread.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void on_io(std::uint32_t events) = 0;
  };

  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// True on the loop thread (handlers may call add/remove directly).
  bool on_loop() const;

  /// Runs `fn` on the loop thread (immediately when already there,
  /// else queued and the loop woken).  Functions run in post order.
  void post(std::function<void()> fn);

  /// Registers `fd` edge-triggered for read+write readiness.  The
  /// handler must outlive the registration.  Must run on the loop thread
  /// (post() from elsewhere).
  void add(int fd, Handler* handler);

  /// Unregisters `fd`; no further callbacks after this returns.  Must
  /// run on the loop thread.
  void remove(int fd);

  /// Arms a one-shot timer ~`delay` from now (rounded up to a tick);
  /// `fn` runs on the loop thread.  Returns an id for cancel_timer.
  /// Must run on the loop thread.
  TimerId add_timer(std::chrono::milliseconds delay, std::function<void()> fn);

  /// Cancels a pending timer; harmless if already fired.  Must run on
  /// the loop thread.
  void cancel_timer(TimerId id);

  /// Timers currently armed (tests; safe from any thread).
  std::size_t armed_timers() const {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  struct TimerEntry {
    TimerId id = 0;
    std::uint32_t rounds = 0;  // full wheel revolutions still to wait
    std::function<void()> fn;
  };

  void run();
  void wake();
  void advance_wheel();
  int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;

  // Timer wheel: loop-thread-only state.
  std::vector<std::vector<TimerEntry>> wheel_{kWheelSlots};
  std::size_t wheel_pos_ = 0;
  std::chrono::steady_clock::time_point wheel_time_;
  TimerId next_timer_id_ = 1;
  std::atomic<std::size_t> armed_{0};

  std::unordered_map<int, Handler*> handlers_;
};

}  // namespace dpn::net
