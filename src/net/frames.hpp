#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "io/stream.hpp"
#include "obs/trace.hpp"
#include "support/bytes.hpp"

/// Frame codec for remote channels.
///
/// A raw TCP byte stream cannot express the channel events the paper's
/// termination and redirection protocols need (Sections 3.4, 4.3), so a
/// remote channel segment carries framed traffic:
///
///   frame := type:u8 length:u32 payload[length]
///
///   kData     -- channel payload bytes
///   kFin      -- writer closed; reader sees end-of-stream after draining
///   kRst      -- sent on the *reverse* direction: reader closed, make the
///                writer's next write throw ChannelClosed
///   kRedirect -- "the rest of this stream continues at host:port, token T"
///                (decentralized reconnection, paper Figure 15)
///
/// The codec is transport-agnostic (it reads/writes io streams) so it is
/// unit-testable without sockets.
namespace dpn::net {

enum class FrameType : std::uint8_t {
  kData = 0,
  kFin = 1,
  kRst = 2,
  kRedirect = 3,
  /// Reverse-direction flow control: the consumer grants the producer
  /// this many more payload bytes.  Remote channels are *bounded* (the
  /// paper's Section 3.5 fairness argument must hold across machines);
  /// the producer blocks when its window is exhausted, exactly like a
  /// local writer on a full pipe.
  kCredit = 4,
  /// kData with a 17-byte TraceContext prefix (trace_id:u64 span_id:u64
  /// flags:u8) ahead of the channel bytes -- the frame extension of
  /// docs/PROTOCOLS.md Section 6.  Emitted only while tracing is
  /// enabled, so the wire format is byte-identical to the untraced
  /// protocol otherwise; both ends must know the extension to use it.
  kDataTraced = 5,
};

struct Frame {
  FrameType type = FrameType::kData;
  ByteVector payload;
};

/// Payload of a kRedirect frame.
struct RedirectInfo {
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t token = 0;
  /// Optional causal context for the redirect handshake, appended after
  /// `token` only when valid: decoders that predate it stop at the token
  /// (payload decoding ignores trailing bytes), new decoders of old
  /// payloads leave it invalid.
  obs::TraceContext trace;

  ByteVector encode() const;
  static RedirectInfo decode(ByteSpan payload);
};

class FrameWriter {
 public:
  explicit FrameWriter(std::shared_ptr<io::OutputStream> out)
      : out_(std::move(out)) {}

  void write_data(ByteSpan data);
  /// write_data with the trace-context frame extension: the 17 context
  /// bytes ride in the same single vectored transport write as the
  /// header and payload, so enabling tracing adds no extra syscall.
  void write_data_traced(const obs::TraceContext& ctx, ByteSpan data);
  void write_fin();
  void write_rst();
  void write_redirect(const RedirectInfo& info);
  void write_credit(std::uint32_t bytes);

  void flush() { out_->flush(); }
  void close() { out_->close(); }

 private:
  void write_frame(FrameType type, ByteSpan payload);

  std::shared_ptr<io::OutputStream> out_;
};

class FrameReader {
 public:
  explicit FrameReader(std::shared_ptr<io::InputStream> in)
      : in_(std::move(in)) {}

  /// Reads the next frame.  Transport end-of-stream (peer vanished without
  /// a kFin) is reported as a synthetic kFin so channel draining still
  /// terminates cleanly.
  Frame read_frame();

  void close() { in_->close(); }

 private:
  std::shared_ptr<io::InputStream> in_;
};

}  // namespace dpn::net
