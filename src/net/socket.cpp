#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/reactor.hpp"
#include "obs/metrics.hpp"
#include "sched/fiber.hpp"

namespace dpn::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError{what + ": " + std::strerror(errno)};
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Loopback-by-name is the only hostname we resolve without a resolver
    // library; distributed tests run on localhost.
    if (host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      throw NetError{"cannot parse IPv4 address '" + host + "'"};
    }
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    kill_after_ = other.kill_after_;
    other.fd_ = -1;
    other.kill_after_ = -1;
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout) {
  const auto plan = fault::Plan::current();
  if (plan) plan->apply_connect(host, port, timeout);
  const auto deadline = std::chrono::steady_clock::now() + timeout;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock{fd};
  const sockaddr_in addr = make_address(host, port);
  const std::string where = host + ":" + std::to_string(port);

  // Non-blocking connect + poll: a blackholed address (SYN never answered)
  // otherwise blocks for the kernel's minutes-long SYN retry cycle.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) {
      throw NetError{"connect to " + where + ": " + std::strerror(errno)};
    }
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        throw NetError{"connect to " + where + " timed out after " +
                       std::to_string(timeout.count()) + "ms"};
      }
      if (sched::on_fiber()) {
        // Run-to-block: a fiber must not pin its OS worker in poll() for
        // up to the connect timeout (a blackholed peer would starve every
        // sibling process on this worker).  Probe non-blocking, then park
        // on the reactor until the descriptor turns writable.  The wait
        // may report ready spuriously, so the probe re-runs on wake.
        pollfd probe{};
        probe.fd = fd;
        probe.events = POLLOUT;
        const int n = ::poll(&probe, 1, 0);
        if (n < 0) {
          if (errno == EINTR) continue;
          throw_errno("poll");
        }
        if (n > 0) break;
        wait_fd_ready(fd, /*want_write=*/true, remaining);
        continue;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int n = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll");
      }
      if (n == 0) {
        throw NetError{"connect to " + where + " timed out after " +
                       std::to_string(timeout.count()) + "ms"};
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw NetError{"connect to " + where + ": " + std::strerror(err)};
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) throw_errno("fcntl(F_SETFL)");

  sock.set_no_delay(true);
  if (plan) {
    if (const auto budget = plan->take_kill_budget(host, port)) {
      sock.kill_after_ = static_cast<std::int64_t>(*budget);
    }
  }
  return sock;
}

Socket connect_with_retry(const std::string& host, std::uint16_t port,
                          const fault::RetryPolicy& policy) {
  // The whole retry loop is one sample: what the caller experienced,
  // backoff included, not the kernel's view of a single attempt.
  const auto start = std::chrono::steady_clock::now();
  Socket socket = fault::with_retry(
      policy, "connect to " + host + ":" + std::to_string(port),
      [&] { return Socket::connect(host, port, policy.connect_timeout); });
  obs::runtime_histograms().connect.record_shared(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return socket;
}

std::size_t Socket::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  for (;;) {
    // On a fiber the receive is non-blocking and a would-block parks the
    // *fiber* on the reactor (run-to-block): a raw blocking recv would
    // wedge the OS worker and starve every other process scheduled on
    // it.  Plain threads keep the classic blocking recv.
    const bool fiber = sched::on_fiber();
    const ssize_t n =
        ::recv(fd_, out.data(), out.size(), fiber ? MSG_DONTWAIT : 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (fiber && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_fd_ready(fd_, /*want_write=*/false, std::nullopt);
      continue;
    }
    if (errno == ECONNRESET || errno == EBADF || errno == ENOTCONN) {
      // Peer vanished or we shut down locally: treat as end-of-stream so
      // the cascading-termination path runs instead of a hard error.
      return 0;
    }
    throw_errno("recv");
  }
}

void Socket::write_all(ByteSpan data) {
  if (kill_after_ >= 0) return write_metered(data);
  while (!data.empty()) {
    // Mirror of read_some: on a fiber the send is non-blocking and a full
    // send buffer parks the *fiber* on the reactor's writable edge
    // (run-to-block) -- a raw blocking send would pin the OS worker and
    // starve every other process scheduled on it.
    const bool fiber = sched::on_fiber();
    const ssize_t n = ::send(fd_, data.data(), data.size(),
                             MSG_NOSIGNAL | (fiber ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (fiber && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_fd_ready(fd_, /*want_write=*/true, std::nullopt);
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) throw ChannelClosed{};
      throw_errno("send");
    }
    data = data.subspan(static_cast<std::size_t>(n));
  }
}

/// Kill-after-bytes slow path: send up to the remaining budget, then
/// simulate the node crashing mid-stream (RST, then ChannelClosed -- the
/// same thing a writer sees when a real peer dies).
void Socket::write_metered(ByteSpan data) {
  while (!data.empty()) {
    if (kill_after_ == 0) {
      hard_reset();
      throw ChannelClosed{"socket killed after byte budget (fault injection)"};
    }
    const std::size_t chunk = std::min<std::size_t>(
        data.size(), static_cast<std::size_t>(kill_after_));
    ByteSpan head = data.subspan(0, chunk);
    while (!head.empty()) {
      const bool fiber = sched::on_fiber();
      const ssize_t n = ::send(fd_, head.data(), head.size(),
                               MSG_NOSIGNAL | (fiber ? MSG_DONTWAIT : 0));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (fiber && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          wait_fd_ready(fd_, /*want_write=*/true, std::nullopt);
          continue;
        }
        if (errno == EPIPE || errno == ECONNRESET) throw ChannelClosed{};
        throw_errno("send");
      }
      kill_after_ -= n;
      head = head.subspan(static_cast<std::size_t>(n));
    }
    data = data.subspan(chunk);
  }
}

void Socket::write_vectored(ByteSpan a, ByteSpan b) {
  if (kill_after_ >= 0) {
    write_metered(a);
    write_metered(b);
    return;
  }
  if (a.empty()) return write_all(b);
  if (b.empty()) return write_all(a);
  // Common case: the whole frame leaves in one ::writev.  A short write
  // (send buffer full) falls back to advancing the iovecs.
  iovec iov[2];
  iov[0].iov_base = const_cast<std::uint8_t*>(a.data());
  iov[0].iov_len = a.size();
  iov[1].iov_base = const_cast<std::uint8_t*>(b.data());
  iov[1].iov_len = b.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  std::size_t skip = 0;  // bytes of `a` already sent
  for (;;) {
    const bool fiber = sched::on_fiber();
    const ssize_t n =
        ::sendmsg(fd_, &msg, MSG_NOSIGNAL | (fiber ? MSG_DONTWAIT : 0));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (fiber && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        wait_fd_ready(fd_, /*want_write=*/true, std::nullopt);
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) throw ChannelClosed{};
      throw_errno("sendmsg");
    }
    std::size_t sent = static_cast<std::size_t>(n);
    if (skip + sent >= a.size() + b.size()) return;
    skip += sent;
    if (skip >= a.size()) {
      return write_all(b.subspan(skip - a.size()));
    }
    iov[0].iov_base = const_cast<std::uint8_t*>(a.data() + skip);
    iov[0].iov_len = a.size() - skip;
  }
}

bool Socket::wait_readable(std::chrono::milliseconds timeout) const {
  if (fd_ < 0) return true;  // a read will fail immediately; don't block
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const bool fiber = sched::on_fiber();
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    // Instantaneous probe before the deadline check, so a zero timeout
    // means "already readable?" rather than an unconditional false (the
    // credit-drain path in dist relies on that).
    int n = ::poll(&pfd, 1, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // let the read surface the error
    }
    if (n > 0) return true;  // readable, EOF, or error -- all "readable"
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    if (fiber) {
      // Fibers park on the reactor for the wait (the RMI lease layer
      // polls with patience-scale timeouts -- pinning a worker in poll()
      // for seconds would starve the M:N pool).
      wait_fd_ready(fd_, /*want_write=*/false, remaining);
      continue;  // re-probe: the reactor wakeup may be spurious
    }
    n = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (n < 0 && errno != EINTR) return true;
  }
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::hard_reset() {
  if (fd_ < 0) return;
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof lin);
  ::close(fd_);
  fd_ = -1;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint16_t Socket::local_port() const {
  if (fd_ < 0) return 0;  // closed: don't hand -1 to getsockname
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

std::string Socket::peer_description() const {
  if (fd_ < 0) return "<disconnected>";  // closed: don't query -1
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "<disconnected>";
  }
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
  return std::string{buf} + ":" + std::to_string(ntohs(addr.sin_port));
}

void Socket::set_no_delay(bool on) {
  const int flag = on ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof flag);
}

void Socket::set_nonblocking(bool on) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

std::optional<std::size_t> Socket::try_read_some(MutableByteSpan out) {
  if (out.empty()) return std::size_t{0};
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    if (errno == ECONNRESET || errno == ENOTCONN) {
      return std::size_t{0};  // end-of-stream, as in read_some
    }
    // EBADF deliberately NOT mapped to end-of-stream here: the mux
    // reactor only calls this on a descriptor it believes is registered,
    // so a bad fd is a double-close or fd-recycle bug that must be loud,
    // not a silent eof.
    throw_errno("recv");
  }
}

std::optional<std::size_t> Socket::try_write_some(ByteSpan data) {
  if (data.empty()) return std::size_t{0};
  // Metered (fault-injected) sockets cap each attempt to the remaining
  // byte budget and crash the connection when it runs out -- the shared
  // mux connection dies mid-stream exactly like a per-channel socket.
  if (kill_after_ == 0) {
    hard_reset();
    throw ChannelClosed{"socket killed after byte budget (fault injection)"};
  }
  if (kill_after_ > 0) {
    data = data.subspan(
        0, std::min<std::size_t>(data.size(),
                                 static_cast<std::size_t>(kill_after_)));
  }
  for (;;) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      if (kill_after_ > 0) kill_after_ -= n;
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    if (errno == EPIPE || errno == ECONNRESET) throw ChannelClosed{};
    throw_errno("send");
  }
}

ServerSocket::ServerSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_address("*", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw NetError{"bind port " + std::to_string(port) + ": " +
                   std::strerror(err)};
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw NetError{std::string{"listen: "} + std::strerror(err)};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw NetError{std::string{"getsockname: "} + std::strerror(err)};
  }
  port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
}

Socket ServerSocket::accept() {
  for (;;) {
    const int fd = ::accept(fd_.load(std::memory_order_acquire), nullptr,
                            nullptr);
    if (fd >= 0) {
      Socket sock{fd};
      if (const auto plan = fault::Plan::current();
          plan && plan->take_refuse_accept(port_)) {
        sock.hard_reset();  // the dialer sees a refused/reset connection
        continue;
      }
      sock.set_no_delay(true);
      return sock;
    }
    if (errno == EINTR) continue;
    throw NetError{std::string{"accept: "} + std::strerror(errno)};
  }
}

void ServerSocket::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() first so a concurrent accept() wakes with an error.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

bool ServerSocket::closed() const {
  return fd_.load(std::memory_order_acquire) < 0;
}

}  // namespace dpn::net
