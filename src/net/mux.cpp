#include "net/mux.hpp"

#include <sys/epoll.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/reactor.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sched/fiber.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/sync.hpp"

namespace dpn::net {
namespace {

// ---------------------------------------------------------------------------
// Wire constants (docs/PROTOCOLS.md Section 8).

constexpr std::uint32_t kMuxMagic = 0x44504E4D;  // 'DPNM'
constexpr std::uint8_t kMuxVersion = 1;
constexpr std::size_t kPrefaceSize = 9;  // magic:u32 version:u8 window:u32
constexpr std::size_t kHeaderSize = 9;   // stream:u32 type:u8 length:u32
/// Upper bound on a peer's advertised frame length: anything larger is a
/// corrupt or hostile stream, not flow control (chunks are cut at
/// coalesce_bytes, far below this).
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 24;
/// An accepted connection must deliver its preface within this budget or
/// the timer wheel kills it -- half-open connections die by deadline,
/// never hang (the PR 3 rule, enforced by the acceptor's EventLoop timer).
constexpr std::chrono::milliseconds kHandshakeTimeout{10000};

enum class MuxFrame : std::uint8_t {
  kOpen = 0,
  kData = 1,
  kDataTraced = 2,
  kCredit = 3,
  kFin = 4,
  kRst = 5,
};

void append_u32(ByteVector& out, std::uint32_t v) {
  std::uint8_t buf[4];
  put_u32(buf, v);
  out.insert(out.end(), buf, buf + 4);
}

void append_header(ByteVector& out, std::uint32_t stream_id, MuxFrame type,
                   std::uint32_t length) {
  append_u32(out, stream_id);
  out.push_back(static_cast<std::uint8_t>(type));
  append_u32(out, length);
}

ByteVector encode_preface(std::uint32_t default_window) {
  ByteVector out;
  out.reserve(kPrefaceSize);
  append_u32(out, kMuxMagic);
  out.push_back(kMuxVersion);
  append_u32(out, default_window);
  return out;
}

// ---------------------------------------------------------------------------
// Process-wide counters (read by mux_stats()/NetworkSnapshot).  Multi-writer
// cold paths, so plain fetch_add -- the single-writer bump() idiom does not
// apply here.

struct MuxCounters {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> streams_active{0};
  std::atomic<std::uint64_t> streams_total{0};
  std::atomic<std::uint64_t> credit_stalls{0};
  std::atomic<std::uint64_t> credit_stall_ns{0};
};

MuxCounters& counters() {
  static MuxCounters c;
  return c;
}

class MuxConnection;
class MuxListener;
class MuxTransport;

// ---------------------------------------------------------------------------
// MuxStream: one logical bidirectional stream over a shared connection.
//
// Lock discipline (deadlock-free by ordering):
//   * user threads:   stream.mutex_  ->  connection.send_mutex_
//   * loop dispatch:  connection.table_mutex_ released BEFORE stream.mutex_
//   * loop flusher:   connection.send_mutex_ released BEFORE stream.mutex_
// and no stream method calls into the connection while holding mutex_
// when the call could re-enter a stream lock (mark_ready/enqueue_* are
// called after unlocking).

class MuxStream final : public Stream,
                        public std::enable_shared_from_this<MuxStream> {
 public:
  /// One outbound unit: bytes already approved against the send window,
  /// waiting for the flusher.  `fin` chunks carry no bytes and serialize
  /// as a FIN frame, which is how FIN stays ordered after the data.
  struct Chunk {
    ByteVector bytes;
    obs::TraceContext ctx;
    bool traced = false;
    bool fin = false;
  };

  MuxStream(std::shared_ptr<MuxConnection> conn, std::uint32_t id,
            std::size_t send_window, std::size_t recv_window,
            std::size_t coalesce);
  ~MuxStream() override;

  // Stream interface -------------------------------------------------------
  std::size_t read_some(MutableByteSpan out) override;
  void write_all(ByteSpan data) override;
  bool wait_readable(std::chrono::milliseconds timeout) override;
  void shutdown_write() override;
  void shutdown_read() override;
  // A mux RST is scoped to this logical stream's receive direction: our
  // queued outbound chunks and FIN still flush in order, so abandoning
  // the read side is safe here (and unparks a peer stalled mid-grant on
  // this direction's credit window).
  void abandon_read() override { shutdown_read(); }
  void close() override {
    // Same shape as SocketStream::close: both half-closes, idempotent.
    shutdown_read();
    shutdown_write();
  }
  std::string peer_description() const override;

  // Loop-side entry points (called by MuxConnection with no locks held).
  void on_data(ByteSpan payload, const obs::TraceContext* ctx);
  void on_credit(std::uint32_t bytes);
  void on_fin();
  void on_rst();
  void on_connection_dead(const std::string& why);

  // Flusher side: pops the next approved chunk; `more` reports whether
  // the stream should stay in the ready ring.
  bool take_chunk(Chunk& out, bool& more);

  std::uint32_t id() const { return id_; }

 private:
  /// One inbound frame's payload, consumed front-to-back; `eof` marks the
  /// peer's FIN (or connection death), ordered after all data.
  struct InSeg {
    ByteVector bytes;
    std::size_t pos = 0;
    obs::TraceContext ctx;
    bool traced = false;
    bool eof = false;
  };

  void wake_readers_locked() {
    while (sched::Fiber* fiber = recv_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
    recv_cv_.notify_all();
  }
  void wake_writers_locked() {
    while (sched::Fiber* fiber = send_fibers_.pop()) {
      sched::make_runnable(fiber);
    }
    send_cv_.notify_all();
  }

  /// Removes the stream from the connection's table once both directions
  /// are finished (no lock held on entry).
  void maybe_retire();

  std::shared_ptr<MuxConnection> conn_;
  const std::uint32_t id_;
  const std::size_t recv_window_;
  const std::size_t coalesce_;

  mutable std::mutex mutex_;
  std::condition_variable recv_cv_;
  std::condition_variable send_cv_;
  sched::WaitQueue recv_fibers_;
  sched::WaitQueue send_fibers_;

  // Inbound (loop thread appends, reader consumes).
  std::deque<InSeg> inbound_;
  std::size_t inbound_bytes_ = 0;
  /// Bytes consumed but not yet granted back to the peer.
  std::size_t unacked_ = 0;
  bool remote_fin_ = false;
  bool read_shutdown_ = false;

  // Outbound (writer appends under mutex_, flusher pops via take_chunk).
  std::deque<Chunk> pending_;
  std::int64_t send_window_;
  bool write_closed_ = false;  // FIN queued; further writes are a bug
  bool write_broken_ = false;  // peer RST: writes throw ChannelClosed
  bool dead_ = false;          // connection died under us
  bool retired_ = false;
  std::string death_reason_;
};

// ---------------------------------------------------------------------------
// MuxConnection: one shared TCP connection, registered with the EventLoop.

class MuxConnection final : public EventLoop::Handler,
                            public std::enable_shared_from_this<MuxConnection> {
 public:
  MuxConnection(MuxTransport& transport, EventLoop& loop,
                std::shared_ptr<Socket> socket, bool dialer, std::string peer,
                std::weak_ptr<MuxListener> listener)
      : transport_(transport),
        loop_(loop),
        socket_(std::move(socket)),
        dialer_(dialer),
        peer_(std::move(peer)),
        listener_(std::move(listener)) {}

  /// Dialer side: preface already exchanged synchronously; `peer_window`
  /// is the acceptor's preface default_window.
  void start_dialer(std::size_t peer_window);
  /// Acceptor side: registers and arms the handshake deadline; the
  /// dialer's preface arrives through the loop.
  void start_acceptor();

  /// Dialer only: allocates a stream id, registers the stream and queues
  /// its OPEN frame.  `open_window` is the credit granted to the peer.
  std::shared_ptr<MuxStream> open_stream(std::size_t open_window,
                                         std::size_t coalesce);

  void on_io(std::uint32_t events) override;

  // Stream-side entry points (no stream lock may be held by the caller).
  void mark_ready(std::shared_ptr<MuxStream> stream);
  void enqueue_credit(std::uint32_t stream_id, std::size_t bytes);
  void enqueue_rst(std::uint32_t stream_id);
  void note_stream_closed(std::uint32_t stream_id);

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  const std::string& peer() const { return peer_; }
  EventLoop& loop() { return loop_; }

 private:
  void register_with_loop();
  void request_flush();
  void flush();            // loop thread
  void handle_readable();  // loop thread
  void parse_frames();     // loop thread
  void dispatch_frame(std::uint32_t stream_id, MuxFrame type, ByteSpan payload);
  void die(const std::string& why);  // loop thread

  void push_control(ByteVector frame);

  MuxTransport& transport_;
  EventLoop& loop_;
  std::shared_ptr<Socket> socket_;
  const bool dialer_;
  const std::string peer_;
  std::weak_ptr<MuxListener> listener_;

  std::mutex table_mutex_;
  std::unordered_map<std::uint32_t, std::shared_ptr<MuxStream>> streams_;
  std::uint32_t next_stream_id_ = 1;
  std::atomic<bool> dead_{false};
  /// Peer's preface default_window: the initial send window of every
  /// dialer-opened stream (meaningful on the dialer side only).
  std::size_t peer_default_window_ = 0;

  // Send queue (send_mutex_): tiny control frames jump ahead of data; the
  // ready ring round-robins streams so one hot channel cannot starve its
  // siblings on the shared connection.
  std::mutex send_mutex_;
  std::deque<ByteVector> control_;
  std::deque<std::shared_ptr<MuxStream>> ready_;
  std::unordered_set<std::uint32_t> ready_ids_;
  bool flush_scheduled_ = false;

  // Loop-thread-only I/O state.
  ByteVector out_buf_;
  std::size_t out_pos_ = 0;
  bool can_write_ = true;
  /// Re-entrancy guard: mark_ready() during a flush posts an inline
  /// flush on the loop thread; the outer loop already covers it.
  bool in_flush_ = false;
  ByteVector in_buf_;
  bool preface_done_ = false;
  EventLoop::TimerId handshake_timer_ = 0;
};

// ---------------------------------------------------------------------------
// MuxListener: blocking accept loop feeding the loop-side handshakes.

class MuxListener final : public Listener,
                          public std::enable_shared_from_this<MuxListener> {
 public:
  MuxListener(MuxTransport& transport, std::uint16_t port);
  ~MuxListener() override { close(); }

  std::shared_ptr<Stream> accept() override;
  std::uint16_t port() const override { return server_.port(); }
  void close() override;
  bool closed() const override { return server_.closed(); }

  /// Called by connection dispatch when the peer OPENs a stream.
  void deliver(std::shared_ptr<Stream> stream);

  /// Arms the accept loop; must run after the listener is owned by a
  /// shared_ptr (the loop hands connections weak_from_this()).
  void start() { started_.set(); }

 private:
  void accept_loop(const std::stop_token& stop);

  MuxTransport& transport_;
  ServerSocket server_;
  Event started_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Stream>> pending_;
  bool closed_ = false;

  std::jthread acceptor_;
};

// ---------------------------------------------------------------------------
// MuxTransport: the backend singleton -- owns the dial cache (one
// connection per dialed host:port) and the keep-alive registry for
// accepted connections.  Connections are driven by the process-wide
// per-core reactor() pool: each connection is assigned one loop
// round-robin at establishment and keeps it for life, so one hot
// connection cannot serialize every other connection's reactor work.

class MuxTransport final : public Transport {
 public:
  MuxTransport()
      : stream_window_(network_options().stream_window),
        coalesce_(network_options().coalesce_bytes) {}

  TransportKind kind() const override { return TransportKind::kMux; }

  std::shared_ptr<Stream> dial(const std::string& host, std::uint16_t port,
                               const DialOptions& options) override;
  std::shared_ptr<Listener> listen(std::uint16_t port) override;

  /// The reactor loop the next established connection is pinned to.
  EventLoop& next_loop() { return reactor().next(); }
  std::size_t stream_window() const { return stream_window_; }
  std::size_t coalesce() const { return coalesce_; }

  /// Keeps an accepted connection alive while it is registered with the
  /// loop (the loop holds only a raw Handler*).
  void adopt(std::shared_ptr<MuxConnection> conn);
  /// Drops a dead connection from the registry and the dial cache, so the
  /// next dial to that host establishes a fresh connection.
  void forget(const std::shared_ptr<MuxConnection>& conn);

 private:
  std::shared_ptr<MuxConnection> establish(const std::string& host,
                                           std::uint16_t port,
                                           std::chrono::milliseconds timeout);

  const std::size_t stream_window_;
  const std::size_t coalesce_;

  /// Guards dial_locks_ only -- never held across I/O.
  std::mutex dial_mutex_;
  /// One establishment lock per host:port, so a slow or unreachable host
  /// cannot head-of-line-block dials to healthy hosts.  Entries are never
  /// erased: bounded by the number of distinct peers ever dialed.
  std::map<std::pair<std::string, std::uint16_t>, std::shared_ptr<std::mutex>>
      dial_locks_;
  std::mutex conns_mutex_;
  std::map<std::pair<std::string, std::uint16_t>,
           std::shared_ptr<MuxConnection>>
      dialed_;
  std::unordered_set<std::shared_ptr<MuxConnection>> all_;
};

/// Streams are handed out behind a close-on-last-ref wrapper, mirroring
/// how the blocking backend's descriptor closes when the last
/// shared_ptr<Socket> drops: a caller that forgets close() cannot leak a
/// table entry forever.
std::shared_ptr<Stream> public_handle(std::shared_ptr<MuxStream> stream) {
  Stream* raw = stream.get();
  return std::shared_ptr<Stream>(
      raw, [owned = std::move(stream)](Stream*) mutable { owned->close(); });
}

// ---------------------------------------------------------------------------
// MuxStream implementation.

MuxStream::MuxStream(std::shared_ptr<MuxConnection> conn, std::uint32_t id,
                     std::size_t send_window, std::size_t recv_window,
                     std::size_t coalesce)
    : conn_(std::move(conn)),
      id_(id),
      recv_window_(recv_window),
      coalesce_(coalesce == 0 ? 1 : coalesce),
      send_window_(static_cast<std::int64_t>(send_window)) {
  counters().streams_total.fetch_add(1, std::memory_order_relaxed);
  counters().streams_active.fetch_add(1, std::memory_order_relaxed);
}

MuxStream::~MuxStream() = default;

std::size_t MuxStream::read_some(MutableByteSpan out) {
  if (out.empty()) return 0;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (read_shutdown_) return 0;
    if (!inbound_.empty()) break;
    if (dead_) {  // defensive: death always queues an eof marker
      if (!remote_fin_) {
        throw NetError{"mux connection lost: " + death_reason_};
      }
      return 0;
    }
    if (sched::on_fiber()) {
      // Run-to-block: park the fiber, freeing the worker for other
      // processes; the loop thread's wakeup re-injects it.
      sched::suspend_current(recv_fibers_, lock);
      lock.lock();
    } else {
      recv_cv_.wait(lock);
    }
  }
  InSeg& front = inbound_.front();
  if (front.eof) {
    // A peer's FIN parks this marker with remote_fin_ set; a connection
    // that died under us parks one without.  The stream-level FIN frame
    // is the *only* graceful end of a mux stream -- a connection that
    // goes away first (RST, fault injection, protocol violation, or
    // even a clean TCP close) took this stream's producer with it, so
    // the loss must be loud, not a truncation dressed up as eof.
    if (dead_ && !remote_fin_) {
      throw NetError{"mux connection lost: " + death_reason_};
    }
    return 0;  // marker stays: every later read is also 0
  }
  const std::size_t n = std::min(out.size(), front.bytes.size() - front.pos);
  std::memcpy(out.data(), front.bytes.data() + front.pos, n);
  front.pos += n;
  if (front.traced && front.ctx.valid()) {
    // Context propagation only: the consuming thread adopts the sender's
    // ambient context.  Span events stay the channel layer's job -- a
    // mux-level event pair here would double every flow arrow.
    obs::current_trace_context() = front.ctx;
  }
  if (front.pos == front.bytes.size()) inbound_.pop_front();
  inbound_bytes_ -= n;
  unacked_ += n;
  // Grant credit at consumption: at half the window (amortized) and
  // whenever the inbound buffer empties (liveness at window=1 -- the
  // sender must never starve waiting for a grant we are sitting on).
  std::size_t grant = 0;
  if (!dead_ && !remote_fin_ && unacked_ > 0 &&
      (unacked_ >= std::max<std::size_t>(1, recv_window_ / 2) ||
       inbound_bytes_ == 0)) {
    grant = unacked_;
    unacked_ = 0;
  }
  lock.unlock();
  if (grant > 0) conn_->enqueue_credit(id_, grant);
  return n;
}

void MuxStream::write_all(ByteSpan data) {
  while (!data.empty()) {
    std::size_t take = 0;
    {
      std::unique_lock lock{mutex_};
      for (;;) {
        if (dead_) {
          throw ChannelClosed{"mux connection lost: " + death_reason_};
        }
        if (write_broken_) throw ChannelClosed{};
        if (write_closed_) throw IoError{"write on closed mux stream"};
        if (send_window_ > 0) break;
        // Credit stall: the peer has not consumed what we already sent.
        counters().credit_stalls.fetch_add(1, std::memory_order_relaxed);
        const auto stall_start = std::chrono::steady_clock::now();
        while (send_window_ <= 0 && !dead_ && !write_broken_ &&
               !write_closed_) {
          if (sched::on_fiber()) {
            sched::suspend_current(send_fibers_, lock);
            lock.lock();
          } else {
            send_cv_.wait(lock);
          }
        }
        counters().credit_stall_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - stall_start)
                    .count()),
            std::memory_order_relaxed);
      }
      take = std::min({data.size(),
                       static_cast<std::size_t>(send_window_), coalesce_});
      send_window_ -= static_cast<std::int64_t>(take);
      const bool traced =
          obs::trace_enabled() && obs::current_trace_context().valid();
      Chunk* tail = pending_.empty() ? nullptr : &pending_.back();
      if (!traced && tail != nullptr && !tail->fin && !tail->traced &&
          tail->bytes.size() < coalesce_) {
        // Coalesce small untraced writes: the window was already claimed,
        // so merging buffers only reduces frame count.
        const std::size_t room = coalesce_ - tail->bytes.size();
        const std::size_t merged = std::min(room, take);
        tail->bytes.insert(tail->bytes.end(), data.begin(),
                           data.begin() + static_cast<std::ptrdiff_t>(merged));
        if (merged < take) {
          Chunk chunk;
          chunk.bytes.assign(data.begin() + static_cast<std::ptrdiff_t>(merged),
                             data.begin() + static_cast<std::ptrdiff_t>(take));
          pending_.push_back(std::move(chunk));
        }
      } else {
        Chunk chunk;
        chunk.bytes.assign(data.begin(),
                           data.begin() + static_cast<std::ptrdiff_t>(take));
        if (traced) {
          chunk.traced = true;
          chunk.ctx = obs::current_trace_context();
        }
        pending_.push_back(std::move(chunk));
      }
      data = data.subspan(take);
    }
    // Outside mutex_: mark_ready may flush inline on the loop thread and
    // re-enter take_chunk, which locks mutex_.
    conn_->mark_ready(shared_from_this());
  }
}

bool MuxStream::wait_readable(std::chrono::milliseconds timeout) {
  const auto ready = [this] {
    return !inbound_.empty() || dead_ || read_shutdown_;
  };
  if (!sched::on_fiber()) {
    std::unique_lock lock{mutex_};
    return recv_cv_.wait_for(lock, timeout, ready);
  }
  // Run-to-block, like read_some: a cv wait here would pin an OS worker
  // for the whole timeout (RMI clients poll with lease.patience), which
  // starves the M:N pool.  Park on the scheduler WaitQueue instead and
  // arm one loop timer that kicks the readers at the deadline.  The kick
  // runs under mutex_, so either this fiber is already parked when it
  // fires (the kick wakes it) or the fiber's next deadline check is
  // ordered after the kick and observes the expiry -- no lost wakeup.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  conn_->loop().post([self = shared_from_this(), timeout] {
    self->conn_->loop().add_timer(timeout, [self] {
      std::scoped_lock lock{self->mutex_};
      self->wake_readers_locked();
    });
  });
  std::unique_lock lock{mutex_};
  for (;;) {
    if (ready()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    sched::suspend_current(recv_fibers_, lock);
    lock.lock();
  }
}

void MuxStream::shutdown_write() {
  {
    std::unique_lock lock{mutex_};
    if (write_closed_) return;
    write_closed_ = true;
    wake_writers_locked();  // a concurrently stalled writer must throw
    if (!dead_) {
      Chunk fin;
      fin.fin = true;
      pending_.push_back(std::move(fin));
    }
  }
  conn_->mark_ready(shared_from_this());
  maybe_retire();
}

void MuxStream::shutdown_read() {
  bool send_rst = false;
  {
    std::unique_lock lock{mutex_};
    if (read_shutdown_) return;
    read_shutdown_ = true;
    inbound_.clear();
    inbound_bytes_ = 0;
    unacked_ = 0;
    wake_readers_locked();
    send_rst = !dead_ && !remote_fin_;
  }
  if (send_rst) conn_->enqueue_rst(id_);
  maybe_retire();
}

std::string MuxStream::peer_description() const {
  return conn_->peer() + "/mux#" + std::to_string(id_);
}

void MuxStream::on_data(ByteSpan payload, const obs::TraceContext* ctx) {
  std::unique_lock lock{mutex_};
  if (read_shutdown_ || dead_) return;  // already RST'd; drop in-flight data
  InSeg seg;
  seg.bytes.assign(payload.begin(), payload.end());
  if (ctx != nullptr) {
    seg.traced = true;
    seg.ctx = *ctx;
  }
  inbound_bytes_ += seg.bytes.size();
  inbound_.push_back(std::move(seg));
  wake_readers_locked();
}

void MuxStream::on_credit(std::uint32_t bytes) {
  std::unique_lock lock{mutex_};
  send_window_ += bytes;
  wake_writers_locked();
}

void MuxStream::on_fin() {
  {
    std::unique_lock lock{mutex_};
    if (remote_fin_ || dead_) return;
    remote_fin_ = true;
    InSeg eof;
    eof.eof = true;
    inbound_.push_back(std::move(eof));
    wake_readers_locked();
  }
  maybe_retire();
}

void MuxStream::on_rst() {
  std::unique_lock lock{mutex_};
  write_broken_ = true;
  pending_.clear();  // the peer stopped reading; flushing more is waste
  wake_writers_locked();
}

void MuxStream::on_connection_dead(const std::string& why) {
  std::unique_lock lock{mutex_};
  if (dead_) return;
  dead_ = true;
  death_reason_ = why;
  pending_.clear();
  // Reads drain what already arrived; then a stream that never saw its
  // FIN throws NetError from read_some (producer lost mid-stream).
  InSeg eof;
  eof.eof = true;
  inbound_.push_back(std::move(eof));
  wake_readers_locked();
  wake_writers_locked();
}

bool MuxStream::take_chunk(Chunk& out, bool& more) {
  std::unique_lock lock{mutex_};
  if (pending_.empty()) {
    more = false;
    return false;
  }
  out = std::move(pending_.front());
  pending_.pop_front();
  more = !pending_.empty();
  return true;
}

void MuxStream::maybe_retire() {
  {
    std::unique_lock lock{mutex_};
    const bool read_done = read_shutdown_ || remote_fin_;
    if (!read_done || !write_closed_ || retired_ || dead_) return;
    retired_ = true;
  }
  conn_->note_stream_closed(id_);
}

// ---------------------------------------------------------------------------
// MuxConnection implementation.

void MuxConnection::start_dialer(std::size_t peer_window) {
  peer_default_window_ = peer_window;
  preface_done_ = true;  // exchanged synchronously by the dialing thread
  counters().connections.fetch_add(1, std::memory_order_relaxed);
  loop_.post([self = shared_from_this()] { self->register_with_loop(); });
}

void MuxConnection::start_acceptor() {
  counters().connections.fetch_add(1, std::memory_order_relaxed);
  loop_.post([self = shared_from_this()] {
    self->register_with_loop();
    if (self->dead()) return;
    if (!self->preface_done_) {
      self->handshake_timer_ = self->loop_.add_timer(kHandshakeTimeout, [self] {
        self->handshake_timer_ = 0;
        if (!self->preface_done_) self->die("mux preface timeout");
      });
    }
  });
}

void MuxConnection::register_with_loop() {
  if (dead()) return;
  try {
    loop_.add(socket_->fd(), this);
  } catch (const std::exception& e) {
    die(std::string{"epoll registration failed: "} + e.what());
    return;
  }
  // Edge-triggered: bytes that arrived before registration produce no
  // further edge, so probe both directions once.
  handle_readable();
  if (!dead()) flush();
}

std::shared_ptr<MuxStream> MuxConnection::open_stream(std::size_t open_window,
                                                      std::size_t coalesce) {
  std::shared_ptr<MuxStream> stream;
  {
    std::scoped_lock lock{table_mutex_};
    if (dead()) throw NetError{"mux connection to " + peer_ + " is down"};
    const std::uint32_t id = next_stream_id_++;
    stream = std::make_shared<MuxStream>(shared_from_this(), id,
                                         peer_default_window_, open_window,
                                         coalesce);
    streams_.emplace(id, stream);
  }
  ByteVector frame;
  append_header(frame, stream->id(), MuxFrame::kOpen, 4);
  append_u32(frame, static_cast<std::uint32_t>(
                        std::min<std::size_t>(open_window, UINT32_MAX)));
  push_control(std::move(frame));
  request_flush();
  return stream;
}

void MuxConnection::mark_ready(std::shared_ptr<MuxStream> stream) {
  {
    std::scoped_lock lock{send_mutex_};
    if (ready_ids_.insert(stream->id()).second) {
      ready_.push_back(std::move(stream));
    }
  }
  request_flush();
}

void MuxConnection::push_control(ByteVector frame) {
  std::scoped_lock lock{send_mutex_};
  control_.push_back(std::move(frame));
}

void MuxConnection::enqueue_credit(std::uint32_t stream_id, std::size_t bytes) {
  while (bytes > 0) {
    const std::uint32_t grant =
        static_cast<std::uint32_t>(std::min<std::size_t>(bytes, UINT32_MAX));
    ByteVector frame;
    append_header(frame, stream_id, MuxFrame::kCredit, 4);
    append_u32(frame, grant);
    push_control(std::move(frame));
    bytes -= grant;
  }
  request_flush();
}

void MuxConnection::enqueue_rst(std::uint32_t stream_id) {
  ByteVector frame;
  append_header(frame, stream_id, MuxFrame::kRst, 0);
  push_control(std::move(frame));
  request_flush();
}

void MuxConnection::note_stream_closed(std::uint32_t stream_id) {
  std::size_t erased = 0;
  {
    std::scoped_lock lock{table_mutex_};
    erased = streams_.erase(stream_id);
  }
  if (erased > 0) {
    counters().streams_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void MuxConnection::request_flush() {
  bool post = false;
  {
    std::scoped_lock lock{send_mutex_};
    if (!flush_scheduled_) {
      flush_scheduled_ = true;
      post = true;
    }
  }
  if (post) {
    loop_.post([self = shared_from_this()] {
      {
        std::scoped_lock lock{self->send_mutex_};
        self->flush_scheduled_ = false;
      }
      self->flush();
    });
  }
}

void MuxConnection::on_io(std::uint32_t events) {
  if (dead()) return;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0) {
    handle_readable();
  }
  if (dead()) return;
  if ((events & EPOLLOUT) != 0) {
    can_write_ = true;
    flush();
  }
}

void MuxConnection::flush() {
  if (dead() || in_flush_) return;
  in_flush_ = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{in_flush_};
  for (;;) {
    if (out_pos_ < out_buf_.size()) {
      if (!can_write_) return;  // awaiting the next EPOLLOUT edge
      std::optional<std::size_t> n;
      try {
        n = socket_->try_write_some(
            {out_buf_.data() + out_pos_, out_buf_.size() - out_pos_});
      } catch (const IoError& e) {
        die(e.what());
        return;
      }
      if (!n) {
        can_write_ = false;
        return;
      }
      out_pos_ += *n;
      continue;
    }
    out_buf_.clear();
    out_pos_ = 0;
    // Refill: control frames first (credits/RSTs are tiny and latency
    // sensitive), then one chunk from the next ready stream -- the
    // round-robin quantum that keeps the shared connection fair.
    std::shared_ptr<MuxStream> stream;
    {
      std::scoped_lock lock{send_mutex_};
      if (!control_.empty()) {
        out_buf_ = std::move(control_.front());
        control_.pop_front();
        continue;
      }
      if (!ready_.empty()) {
        stream = std::move(ready_.front());
        ready_.pop_front();
        ready_ids_.erase(stream->id());
      }
    }
    if (!stream) return;  // nothing left to send
    MuxStream::Chunk chunk;
    bool more = false;
    const bool got = stream->take_chunk(chunk, more);
    if (more) mark_ready(stream);
    if (!got) continue;
    if (chunk.fin) {
      append_header(out_buf_, stream->id(), MuxFrame::kFin, 0);
    } else if (chunk.traced) {
      append_header(
          out_buf_, stream->id(), MuxFrame::kDataTraced,
          static_cast<std::uint32_t>(chunk.bytes.size() +
                                     obs::TraceContext::kWireSize));
      std::uint8_t ctx[obs::TraceContext::kWireSize];
      chunk.ctx.encode(ctx);
      out_buf_.insert(out_buf_.end(), ctx, ctx + sizeof ctx);
      out_buf_.insert(out_buf_.end(), chunk.bytes.begin(), chunk.bytes.end());
    } else {
      append_header(out_buf_, stream->id(), MuxFrame::kData,
                    static_cast<std::uint32_t>(chunk.bytes.size()));
      out_buf_.insert(out_buf_.end(), chunk.bytes.begin(), chunk.bytes.end());
    }
  }
}

void MuxConnection::handle_readable() {
  if (dead()) return;
  std::array<std::uint8_t, 64 * 1024> scratch;
  for (;;) {
    std::optional<std::size_t> n;
    try {
      n = socket_->try_read_some({scratch.data(), scratch.size()});
    } catch (const IoError& e) {
      die(e.what());
      return;
    }
    if (!n) return;  // drained to EAGAIN (edge-triggered requirement)
    if (*n == 0) {
      die("peer closed mux connection");
      return;
    }
    in_buf_.insert(in_buf_.end(), scratch.data(), scratch.data() + *n);
    parse_frames();
    if (dead()) return;
  }
}

void MuxConnection::parse_frames() {
  std::size_t pos = 0;
  if (!preface_done_) {
    if (in_buf_.size() < kPrefaceSize) return;
    if (get_u32(in_buf_.data()) != kMuxMagic || in_buf_[4] != kMuxVersion) {
      die("bad mux preface");
      return;
    }
    // The dialer's default_window is informational on this side: each
    // stream's real window arrives with its OPEN frame.
    preface_done_ = true;
    pos = kPrefaceSize;
    if (handshake_timer_ != 0) {
      loop_.cancel_timer(handshake_timer_);
      handshake_timer_ = 0;
    }
  }
  while (in_buf_.size() - pos >= kHeaderSize) {
    const std::uint8_t* header = in_buf_.data() + pos;
    const std::uint32_t stream_id = get_u32(header);
    const std::uint8_t type = header[4];
    const std::size_t length = get_u32(header + 5);
    if (length > kMaxFrameBytes) {
      die("oversized mux frame");
      return;
    }
    if (in_buf_.size() - pos < kHeaderSize + length) break;
    dispatch_frame(stream_id, static_cast<MuxFrame>(type),
                   {in_buf_.data() + pos + kHeaderSize, length});
    if (dead()) return;
    pos += kHeaderSize + length;
  }
  in_buf_.erase(in_buf_.begin(),
                in_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void MuxConnection::dispatch_frame(std::uint32_t stream_id, MuxFrame type,
                                   ByteSpan payload) {
  if (type == MuxFrame::kOpen) {
    if (dialer_ || payload.size() != 4) {
      die("unexpected OPEN frame");
      return;
    }
    auto listener = listener_.lock();
    const std::size_t window = get_u32(payload.data());
    std::shared_ptr<MuxStream> stream;
    {
      std::scoped_lock lock{table_mutex_};
      if (streams_.count(stream_id) != 0) {
        die("duplicate mux stream id");
        return;
      }
      stream = std::make_shared<MuxStream>(shared_from_this(), stream_id,
                                           window, transport_.stream_window(),
                                           transport_.coalesce());
      streams_.emplace(stream_id, stream);
    }
    if (listener) {
      listener->deliver(public_handle(std::move(stream)));
    } else {
      // Listener gone: dropping the handle closes the stream, which RSTs
      // the dialer's writes -- the mux analogue of connection refused.
      public_handle(std::move(stream));
    }
    return;
  }
  std::shared_ptr<MuxStream> stream;
  {
    std::scoped_lock lock{table_mutex_};
    const auto it = streams_.find(stream_id);
    if (it != streams_.end()) stream = it->second;
  }
  if (!stream) {  // closed locally; in-flight frames drop harmlessly
    return;
  }
  switch (type) {
    case MuxFrame::kData:
      stream->on_data(payload, nullptr);
      return;
    case MuxFrame::kDataTraced: {
      if (payload.size() < obs::TraceContext::kWireSize) {
        die("short DATA_TRACED frame");
        return;
      }
      const obs::TraceContext ctx =
          obs::TraceContext::decode(payload.data());
      stream->on_data(payload.subspan(obs::TraceContext::kWireSize), &ctx);
      return;
    }
    case MuxFrame::kCredit:
      if (payload.size() != 4) {
        die("malformed CREDIT frame");
        return;
      }
      stream->on_credit(get_u32(payload.data()));
      return;
    case MuxFrame::kFin:
      stream->on_fin();
      return;
    case MuxFrame::kRst:
      stream->on_rst();
      return;
    case MuxFrame::kOpen:
      return;  // handled above
  }
  die("unknown mux frame type");
}

void MuxConnection::die(const std::string& why) {
  if (dead_.exchange(true, std::memory_order_acq_rel)) return;
  log::debug("mux connection ", peer_, " down: ", why);
  if (handshake_timer_ != 0) {
    loop_.cancel_timer(handshake_timer_);
    handshake_timer_ = 0;
  }
  loop_.remove(socket_->fd());
  socket_->close();
  std::unordered_map<std::uint32_t, std::shared_ptr<MuxStream>> orphans;
  {
    std::scoped_lock lock{table_mutex_};
    orphans.swap(streams_);
  }
  for (auto& [id, stream] : orphans) {
    stream->on_connection_dead(why);
    counters().streams_active.fetch_sub(1, std::memory_order_relaxed);
  }
  {
    std::scoped_lock lock{send_mutex_};
    control_.clear();
    ready_.clear();
    ready_ids_.clear();
  }
  counters().connections.fetch_sub(1, std::memory_order_relaxed);
  transport_.forget(shared_from_this());
}

// ---------------------------------------------------------------------------
// MuxListener implementation.

MuxListener::MuxListener(MuxTransport& transport, std::uint16_t port)
    : transport_(transport),
      server_(port),
      acceptor_([this](const std::stop_token& stop) { accept_loop(stop); }) {}

void MuxListener::accept_loop(const std::stop_token& stop) {
  started_.wait();  // shared ownership established; weak_from_this works
  while (!stop.stop_requested()) {
    Socket raw;
    try {
      raw = server_.accept();
    } catch (const NetError&) {
      break;  // listener closed
    }
    try {
      // Our preface goes out before the socket turns nonblocking: 9 bytes
      // always fit the send buffer, and the dialer is waiting for them.
      const ByteVector preface =
          encode_preface(static_cast<std::uint32_t>(std::min<std::size_t>(
              transport_.stream_window(), UINT32_MAX)));
      raw.write_all(preface);
    } catch (const IoError& e) {
      log::debug("mux accept: preface write failed: ", e.what());
      continue;
    }
    auto socket = std::make_shared<Socket>(std::move(raw));
    socket->set_nonblocking(true);
    std::string peer = socket->peer_description();
    auto conn = std::make_shared<MuxConnection>(
        transport_, transport_.next_loop(), std::move(socket),
        /*dialer=*/false, std::move(peer), weak_from_this());
    transport_.adopt(conn);
    conn->start_acceptor();
  }
}

std::shared_ptr<Stream> MuxListener::accept() {
  std::unique_lock lock{mutex_};
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (!pending_.empty()) {
    auto stream = std::move(pending_.front());
    pending_.pop_front();
    return stream;
  }
  throw NetError{"mux listener closed"};
}

void MuxListener::close() {
  server_.close();   // unblocks the accept loop
  started_.set();    // in case close() wins the race with start()
  std::deque<std::shared_ptr<Stream>> drop;
  {
    std::scoped_lock lock{mutex_};
    if (closed_) return;
    closed_ = true;
    drop.swap(pending_);  // dropping the handles closes (RSTs) the streams
  }
  cv_.notify_all();
  acceptor_.request_stop();
}

void MuxListener::deliver(std::shared_ptr<Stream> stream) {
  {
    std::scoped_lock lock{mutex_};
    if (closed_) return;  // handle drops; the stream closes itself
    pending_.push_back(std::move(stream));
  }
  cv_.notify_one();
}

// ---------------------------------------------------------------------------
// MuxTransport implementation.

std::shared_ptr<Stream> MuxTransport::dial(const std::string& host,
                                           std::uint16_t port,
                                           const DialOptions& options) {
  const auto key = std::make_pair(host, port);
  // Establishment is serialized *per host:port*: two threads dialing the
  // same host must not race a duplicate connection into the epoll handler
  // table, but establish() blocks for up to the connect timeout, so dials
  // to different hosts must not queue behind one unreachable peer.
  // forget() takes neither dial lock, so a dying connection cannot
  // deadlock against a dial in flight.
  std::shared_ptr<std::mutex> key_mutex;
  {
    std::scoped_lock lock{dial_mutex_};
    auto& slot = dial_locks_[key];
    if (!slot) slot = std::make_shared<std::mutex>();
    key_mutex = slot;
  }
  std::shared_ptr<MuxConnection> conn;
  {
    std::scoped_lock dial_lock{*key_mutex};
    {
      std::scoped_lock lock{conns_mutex_};
      const auto it = dialed_.find(key);
      if (it != dialed_.end() && !it->second->dead()) conn = it->second;
    }
    if (!conn) {
      conn = establish(host, port, options.timeout);
      std::scoped_lock lock{conns_mutex_};
      dialed_[key] = conn;
      all_.insert(conn);
    }
  }
  const std::size_t window =
      options.stream_window != 0 ? options.stream_window : stream_window_;
  return public_handle(conn->open_stream(window, coalesce_));
}

std::shared_ptr<MuxConnection> MuxTransport::establish(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout) {
  Socket raw = Socket::connect(host, port, timeout);
  raw.write_all(encode_preface(static_cast<std::uint32_t>(
      std::min<std::size_t>(stream_window_, UINT32_MAX))));
  // Read the acceptor's preface synchronously: the dialer must know its
  // default send window before the first stream writes.
  std::uint8_t preface[kPrefaceSize];
  std::size_t got = 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (got < kPrefaceSize) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0 || !raw.wait_readable(remaining)) {
      throw NetError{"mux preface timeout dialing " + host + ":" +
                     std::to_string(port)};
    }
    const std::size_t n = raw.read_some({preface + got, kPrefaceSize - got});
    if (n == 0) {
      throw NetError{"mux connection closed during preface from " + host +
                     ":" + std::to_string(port)};
    }
    got += n;
  }
  if (get_u32(preface) != kMuxMagic || preface[4] != kMuxVersion) {
    throw NetError{"bad mux preface from " + host + ":" +
                   std::to_string(port) +
                   " (is the peer running the blocking transport?)"};
  }
  const std::size_t peer_window = get_u32(preface + 5);
  auto socket = std::make_shared<Socket>(std::move(raw));
  socket->set_nonblocking(true);
  auto conn = std::make_shared<MuxConnection>(
      *this, next_loop(), std::move(socket), /*dialer=*/true,
      host + ":" + std::to_string(port), std::weak_ptr<MuxListener>{});
  conn->start_dialer(peer_window);
  return conn;
}

std::shared_ptr<Listener> MuxTransport::listen(std::uint16_t port) {
  auto listener = std::make_shared<MuxListener>(*this, port);
  listener->start();
  return listener;
}

void MuxTransport::adopt(std::shared_ptr<MuxConnection> conn) {
  std::scoped_lock lock{conns_mutex_};
  all_.insert(std::move(conn));
}

void MuxTransport::forget(const std::shared_ptr<MuxConnection>& conn) {
  std::scoped_lock lock{conns_mutex_};
  all_.erase(conn);
  for (auto it = dialed_.begin(); it != dialed_.end(); ++it) {
    if (it->second == conn) {
      dialed_.erase(it);
      break;
    }
  }
}

}  // namespace

/// Registers mux_stats() as the snapshot transport-stats source.  Runs at
/// static init of this translation unit, which the linker pulls in for
/// every binary that touches a Transport (transport_for references
/// mux_transport); binaries that never do report zeros, correctly.
const bool g_snapshot_source_registered = [] {
  obs::set_transport_stats_source([]() -> obs::TransportStats {
    const MuxStats stats = mux_stats();
    obs::TransportStats out;
    out.mux_connections = stats.connections;
    out.mux_streams_active = stats.streams_active;
    out.mux_streams_total = stats.streams_total;
    out.mux_credit_stalls = stats.credit_stalls;
    out.mux_credit_stall_ns = stats.credit_stall_ns;
    return out;
  });
  return true;
}();

MuxStats mux_stats() {
  MuxStats stats;
  stats.connections = counters().connections.load(std::memory_order_relaxed);
  stats.streams_active =
      counters().streams_active.load(std::memory_order_relaxed);
  stats.streams_total =
      counters().streams_total.load(std::memory_order_relaxed);
  stats.credit_stalls =
      counters().credit_stalls.load(std::memory_order_relaxed);
  stats.credit_stall_ns =
      counters().credit_stall_ns.load(std::memory_order_relaxed);
  return stats;
}

Transport& mux_transport() {
  // Leaked on purpose (matches the blocking singleton and the reactor
  // pool): loop threads must not be torn down by static destruction
  // order.
  static MuxTransport* transport = new MuxTransport;
  return *transport;
}

}  // namespace dpn::net
