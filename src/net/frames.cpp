#include "net/frames.hpp"

#include "io/data.hpp"
#include "io/memory.hpp"

namespace dpn::net {

namespace {
constexpr std::size_t kMaxFramePayload = 1u << 26;  // 64 MiB sanity bound
}

ByteVector RedirectInfo::encode() const {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream data{sink};
  data.write_string(host);
  data.write_u16(port);
  data.write_u64(token);
  // Optional trace-context extension: appended only when set, so a
  // pre-extension decoder (which stops at the token) still parses the
  // payload, and an untraced redirect is byte-identical to before.
  if (trace.valid()) {
    std::uint8_t ctx[obs::TraceContext::kWireSize];
    trace.encode(ctx);
    data.write({ctx, sizeof ctx});
  }
  return sink->take();
}

RedirectInfo RedirectInfo::decode(ByteSpan payload) {
  auto source = std::make_shared<io::MemoryInputStream>(
      ByteVector{payload.begin(), payload.end()});
  io::DataInputStream data{source};
  RedirectInfo info;
  info.host = data.read_string();
  info.port = data.read_u16();
  info.token = data.read_u64();
  std::uint8_t ctx[obs::TraceContext::kWireSize];
  try {
    data.read_fully({ctx, sizeof ctx});
    info.trace = obs::TraceContext::decode(ctx);
  } catch (const EndOfStream&) {
    // Pre-extension sender: no context appended.
  }
  return info;
}

void FrameWriter::write_data(ByteSpan data) {
  // Zero-length data frames are legal no-ops but never emitted.
  if (!data.empty()) write_frame(FrameType::kData, data);
}

void FrameWriter::write_data_traced(const obs::TraceContext& ctx,
                                    ByteSpan data) {
  if (data.empty()) return;
  // Header and context share one stack buffer so the traced frame is
  // still a single vectored transport write (same syscall count as
  // write_data; the extension costs 17 payload bytes, nothing else).
  std::uint8_t head[5 + obs::TraceContext::kWireSize];
  head[0] = static_cast<std::uint8_t>(FrameType::kDataTraced);
  put_u32(head + 1, static_cast<std::uint32_t>(
                        data.size() + obs::TraceContext::kWireSize));
  ctx.encode(head + 5);
  out_->write_vectored({head, sizeof head}, data);
}

void FrameWriter::write_fin() { write_frame(FrameType::kFin, {}); }

void FrameWriter::write_rst() { write_frame(FrameType::kRst, {}); }

void FrameWriter::write_credit(std::uint32_t bytes) {
  std::uint8_t payload[4];
  put_u32(payload, bytes);
  write_frame(FrameType::kCredit, {payload, sizeof payload});
}

void FrameWriter::write_redirect(const RedirectInfo& info) {
  const ByteVector payload = info.encode();
  write_frame(FrameType::kRedirect, {payload.data(), payload.size()});
}

void FrameWriter::write_frame(FrameType type, ByteSpan payload) {
  std::uint8_t header[5];
  header[0] = static_cast<std::uint8_t>(type);
  put_u32(header + 1, static_cast<std::uint32_t>(payload.size()));
  // Header and payload travel as ONE vectored write per frame: a kData
  // frame is a single ::writev on a socket (no per-frame allocation or
  // copy), and the un-tearable write keeps concurrent framing layers on
  // the same stream from interleaving (writers serialize in the stream
  // below us, but a torn frame must be impossible).
  if (payload.empty()) {
    out_->write({header, sizeof header});
  } else {
    out_->write_vectored({header, sizeof header}, payload);
  }
}

Frame FrameReader::read_frame() {
  std::uint8_t header[5];
  std::size_t got = 0;
  while (got < sizeof header) {
    const std::size_t n = in_->read_some({header + got, sizeof header - got});
    if (n == 0) {
      if (got == 0) {
        // Transport ended cleanly between frames: synthesize FIN.
        return Frame{FrameType::kFin, {}};
      }
      throw EndOfStream{"transport ended mid-frame"};
    }
    got += n;
  }
  const auto type = static_cast<FrameType>(header[0]);
  const std::uint32_t length = get_u32(header + 1);
  if (length > kMaxFramePayload) {
    throw IoError{"frame payload of " + std::to_string(length) +
                  " bytes exceeds limit"};
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0) io::read_fully(*in_, {frame.payload.data(), length});
  return frame;
}

}  // namespace dpn::net
