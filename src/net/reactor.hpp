#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "net/event_loop.hpp"

/// The process-wide reactor: a pool of EventLoops, one per core (the
/// ponyc-asio shape), replacing the single loop the mux transport used
/// to own.  Two kinds of work ride on it:
///
///   * mux connections -- each accepted/dialed shared connection is
///     assigned one loop round-robin at establishment and keeps it for
///     life (its timers and posts stay loop-local), so one hot
///     connection can no longer serialize every other connection's
///     frames behind its reactor callbacks.
///
///   * fiber fd waits -- a fiber that would block in a *raw* socket
///     operation (the blocking transport's read_some/wait_readable/
///     connect) registers the descriptor here and parks on the
///     scheduler's WaitQueue instead of pinning its OS worker in
///     recv/poll.  The loop's edge notification makes the fiber
///     runnable again.  This is what lets an M:N graph keep executing
///     while some of its processes sit in blocking-transport socket
///     reads.
///
/// Loops are created lazily: a process that never touches the network
/// spawns no reactor threads, and one with a single connection spawns
/// exactly one.
namespace dpn::net {

/// A fixed-size pool of lazily-constructed EventLoops.
class EventLoopPool {
 public:
  explicit EventLoopPool(std::size_t size);
  /// Joins and destroys the loops that were created (test pools; the
  /// process-wide reactor() is leaked and never runs this).
  ~EventLoopPool();

  EventLoopPool(const EventLoopPool&) = delete;
  EventLoopPool& operator=(const EventLoopPool&) = delete;

  std::size_t size() const { return slots_.size(); }

  /// The loop in slot `index % size()`, constructing it on first use.
  EventLoop& at(std::size_t index);

  /// Round-robin assignment: what mux connections use at establishment.
  EventLoop& next();

  /// Stable per-descriptor choice: what fiber fd waits use, so repeated
  /// waits on one socket keep hitting the same epoll instance.
  EventLoop& loop_for(int fd);

  /// Loops actually constructed so far (tests/introspection).
  std::size_t live_loops() const;

 private:
  std::vector<std::atomic<EventLoop*>> slots_;
  std::mutex create_mutex_;
  std::atomic<std::size_t> cursor_{0};
};

/// Pool size the process-wide reactor() is built with: DPN_NET_LOOPS if
/// set (clamped to >= 1), else the hardware concurrency.
std::size_t default_reactor_loops();

/// The process-wide reactor pool.  Constructed on first use and leaked
/// on purpose: loop threads must not be torn down by static destruction
/// order (same rule as the transport singletons).
EventLoopPool& reactor();

/// Blocks the caller until `fd` is ready (readable, or writable when
/// `want_write`) or `timeout` elapses; nullopt means no timeout.
/// Returns false only on timeout.  On a fiber this parks the fiber on a
/// scheduler WaitQueue with the wakeup driven by reactor() -- the OS
/// worker stays free; on a plain thread it falls back to a condition
/// wait.  May report ready spuriously (e.g. when the descriptor could
/// not be registered); callers must re-probe with a non-blocking
/// operation and wait again, condition-variable style.
bool wait_fd_ready(int fd, bool want_write,
                   std::optional<std::chrono::milliseconds> timeout);

}  // namespace dpn::net
