#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "net/socket.hpp"
#include "obs/snapshot.hpp"

/// The opt-in scrape endpoint of the live telemetry plane
/// (docs/OBSERVABILITY.md): a minimal HTTP/1.1 listener that answers
/// every GET with obs::render_prometheus of a freshly taken snapshot.
/// Nothing starts one implicitly -- a node that wants to be scraped
/// constructs an exporter next to its ComputeServer (or Network) and
/// hands it a snapshot source.
namespace dpn::rmi {

class PrometheusExporter {
 public:
  using SnapshotFn = std::function<obs::NetworkSnapshot()>;

  /// Starts listening immediately; `port` 0 picks an ephemeral port.
  /// `source` is called once per scrape, on the exporter's thread -- it
  /// must be safe to call concurrently with the rest of the runtime
  /// (Network::snapshot and ComputeServer::snapshot both are).
  explicit PrometheusExporter(SnapshotFn source, std::uint16_t port = 0);
  ~PrometheusExporter();

  PrometheusExporter(const PrometheusExporter&) = delete;
  PrometheusExporter& operator=(const PrometheusExporter&) = delete;

  std::uint16_t port() const { return server_.port(); }

  void stop();

 private:
  void serve();

  SnapshotFn source_;
  net::ServerSocket server_;
  std::atomic<bool> stopping_{false};
  std::jthread acceptor_;
};

}  // namespace dpn::rmi
