#include "rmi/telemetry.hpp"

#include <string>

#include "obs/prometheus.hpp"
#include "support/log.hpp"

namespace dpn::rmi {

PrometheusExporter::PrometheusExporter(SnapshotFn source, std::uint16_t port)
    : source_(std::move(source)), server_(port) {
  acceptor_ = std::jthread{[this] { serve(); }};
  log::info("prometheus exporter listening on port ", server_.port());
}

PrometheusExporter::~PrometheusExporter() { stop(); }

void PrometheusExporter::stop() {
  if (stopping_.exchange(true)) return;
  server_.close();
  if (acceptor_.joinable()) acceptor_.join();
}

void PrometheusExporter::serve() {
  for (;;) {
    net::Socket socket;
    try {
      socket = server_.accept();
    } catch (const NetError&) {
      return;  // stopped
    }
    try {
      // Drain the request line + headers (best effort; scrapers send one
      // small GET).  The reply is the same whatever the path asked for.
      std::uint8_t request[2048];
      socket.read_some({request, sizeof request});
      const std::string body = obs::render_prometheus(source_());
      std::string response =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
      socket.write_all({reinterpret_cast<const std::uint8_t*>(
                            response.data()),
                        response.size()});
      socket.shutdown_write();
    } catch (const std::exception& e) {
      log::warn("prometheus exporter: scrape failed: ", e.what());
    }
  }
}

}  // namespace dpn::rmi
