#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/process.hpp"
#include "core/task.hpp"
#include "dist/node.hpp"
#include "net/socket.hpp"
#include "rmi/registry.hpp"

/// The generic compute server of paper Section 4.1 and its client stub.
///
/// The Server interface has two remotely invocable methods:
///
///   void run(Runnable)  -- ship a Process; the server starts it on its
///                          own thread and returns immediately;
///   Object run(Task)    -- ship a Task; the server runs it to completion
///                          and returns the (serialized) result.
///
/// Where the paper downloads class files via the RMI codebase, a C++
/// server must already link the process/task types it is asked to run
/// (see DESIGN.md, substitutions) -- an unknown type name is reported back
/// as an error rather than fetched.
namespace dpn::rmi {

class ComputeServer {
 public:
  /// Creates a server listening on an ephemeral port, with its own
  /// NodeContext (rendezvous listener) for the channels of the process
  /// graphs it hosts.
  explicit ComputeServer(std::string name,
                         std::shared_ptr<dist::NodeContext> node = nullptr);
  ~ComputeServer();

  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  const std::string& name() const { return name_; }
  std::uint16_t port() const { return server_.port(); }
  const std::shared_ptr<dist::NodeContext>& node() const { return node_; }

  /// Registers this server's endpoint with a registry.
  void register_with(const std::string& registry_host,
                     std::uint16_t registry_port);

  /// Stops accepting and waits for hosted processes to finish.  Hosted
  /// process graphs are expected to terminate through the cascading-close
  /// protocol; stop() joins them.
  void stop();

  std::size_t processes_hosted() const { return processes_hosted_.load(); }
  std::size_t tasks_run() const { return tasks_run_.load(); }

 private:
  void accept_loop();
  void handle(std::shared_ptr<net::Socket> socket);

  std::string name_;
  std::shared_ptr<dist::NodeContext> node_;
  net::ServerSocket server_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> processes_hosted_{0};
  std::atomic<std::size_t> tasks_run_{0};

  std::mutex workers_mutex_;
  std::vector<std::jthread> workers_;
  std::jthread acceptor_;
};

/// Client stub for a remote ComputeServer.
class ServerHandle {
 public:
  ServerHandle(Endpoint endpoint, std::shared_ptr<dist::NodeContext> local);

  /// Looks a server up in a registry and returns a handle to it.
  static ServerHandle lookup(const std::string& registry_host,
                             std::uint16_t registry_port,
                             const std::string& name,
                             std::shared_ptr<dist::NodeContext> local);

  /// Ships `process` for asynchronous execution (paper: run(Runnable)).
  /// Returns once the server has deserialized and started it -- i.e. once
  /// all cut channels have reconnected.
  void run_async(const std::shared_ptr<core::Process>& process);

  /// Ships `task`, waits for completion, returns its result (paper:
  /// run(Task)).
  std::shared_ptr<core::Task> run(const std::shared_ptr<core::Task>& task);

  /// Round-trip health check.
  void ping();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  std::shared_ptr<dist::NodeContext> local_;
};

}  // namespace dpn::rmi
