#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <thread>
#include <unordered_map>
#include <vector>

#include <chrono>

#include "core/process.hpp"
#include "core/task.hpp"
#include "dist/node.hpp"
#include "fault/fault.hpp"
#include "net/transport.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "rmi/registry.hpp"

/// The generic compute server of paper Section 4.1 and its client stub.
///
/// The Server interface has two remotely invocable methods (paper):
///
///   void run(Runnable)  -- ship a Process; the server starts it on its
///                          own thread and returns immediately;
///   Object run(Task)    -- ship a Task; the server runs it to completion
///                          and returns the (serialized) result.
///
/// The client stub unifies both behind `submit()` overloads that return
/// typed handles: submit(Process) -> ProcessHandle (join/abort the hosted
/// process later), submit(Task) -> TaskFuture (get() blocks for the
/// result).  stats() fetches an obs::NetworkSnapshot of everything the
/// server is hosting.
///
/// Where the paper downloads class files via the RMI codebase, a C++
/// server must already link the process/task types it is asked to run
/// (see DESIGN.md, substitutions) -- an unknown type name is reported back
/// as an error rather than fetched.
namespace dpn::rmi {

class ComputeServer {
 public:
  /// Creates a server listening on an ephemeral port, with its own
  /// NodeContext (rendezvous listener) for the channels of the process
  /// graphs it hosts.  `lease` sets the heartbeat cadence for the
  /// synchronous ops (run(Task), join): while the work runs, the handler
  /// emits a heartbeat byte every `lease.heartbeat_interval` so a client
  /// whose `patience` elapses without one can declare the worker lost
  /// instead of hanging (docs/FAULTS.md).
  explicit ComputeServer(std::string name,
                         std::shared_ptr<dist::NodeContext> node = nullptr,
                         fault::LeaseOptions lease = {});
  ~ComputeServer();

  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  const std::string& name() const { return name_; }
  std::uint16_t port() const { return listener_->port(); }
  const std::shared_ptr<dist::NodeContext>& node() const { return node_; }

  /// This server's trace node tag: every handler thread (and therefore
  /// every hosted process it runs) records trace events under it, so
  /// in-process simulated hosts stay distinguishable in a merged trace.
  std::uint32_t trace_tag() const { return trace_tag_; }

  /// Registers this server's endpoint with a registry.
  void register_with(const std::string& registry_host,
                     std::uint16_t registry_port);

  /// Stops accepting and waits for hosted processes to finish.  Hosted
  /// process graphs are expected to terminate through the cascading-close
  /// protocol; stop() joins them.
  void stop();

  std::size_t processes_hosted() const { return processes_hosted_.load(); }
  std::size_t tasks_run() const { return tasks_run_.load(); }

  /// Everything this server is hosting right now: one ProcessSnapshot per
  /// hosted process (recursing into composites), one ChannelSnapshot per
  /// distinct channel endpoint held by those processes, plus this node's
  /// remote traffic counters.  This is the payload of the STATS request.
  obs::NetworkSnapshot snapshot() const;

 private:
  struct Hosted {
    std::shared_ptr<core::Process> process;
    bool done = false;
    std::string error;  // empty on success
  };

  void accept_loop();
  void handle(std::shared_ptr<net::Stream> stream);
  std::uint64_t host_process(std::shared_ptr<core::Process> process);
  void run_hosted(std::uint64_t id);

  std::string name_;
  std::shared_ptr<dist::NodeContext> node_;
  fault::LeaseOptions lease_;
  std::shared_ptr<net::Listener> listener_;
  std::uint32_t trace_tag_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> processes_hosted_{0};
  std::atomic<std::size_t> tasks_run_{0};

  mutable std::mutex hosted_mutex_;
  std::condition_variable hosted_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Hosted>> hosted_;
  std::uint64_t next_process_id_ = 1;

  std::mutex workers_mutex_;
  std::vector<std::jthread> workers_;
  std::jthread acceptor_;
};

class ServerHandle;

/// Pending result of ServerHandle::submit(Task).  The server runs the task
/// while the caller holds the future; get() blocks for the reply.
class TaskFuture {
 public:
  TaskFuture() = default;

  bool valid() const { return stream_ != nullptr; }

  /// Blocks until the server replies, then deserializes and returns the
  /// completed task.  Throws IoError if the task failed remotely, and
  /// WorkerLost -- fast, after the lease's patience rather than forever --
  /// if the server dies mid-task or stops heartbeating.
  /// Single-shot: the future is invalid afterwards.
  std::shared_ptr<core::Task> get();

 private:
  friend class ServerHandle;
  TaskFuture(std::shared_ptr<net::Stream> stream,
             std::shared_ptr<dist::NodeContext> local,
             fault::LeaseOptions lease)
      : stream_(std::move(stream)),
        local_(std::move(local)),
        lease_(lease),
        submitted_(std::chrono::steady_clock::now()) {}

  std::shared_ptr<net::Stream> stream_;
  std::shared_ptr<dist::NodeContext> local_;
  fault::LeaseOptions lease_;
  /// submit() time; get() records the full round trip into the task-RTT
  /// histogram (obs::runtime_histograms).
  std::chrono::steady_clock::time_point submitted_{};
};

/// Live snapshot stream from a ComputeServer (the STATS_STREAM op):
/// the server pushes one encoded NetworkSnapshot per interval until the
/// requested count is reached or the subscriber goes away.  Dropping the
/// stream object closes the connection, which the server notices on its
/// next push.  examples/dpn_top.cpp is the reference consumer.
class StatsStream {
 public:
  StatsStream() = default;

  bool valid() const { return stream_ != nullptr; }

  /// Blocks for the next pushed snapshot; nullopt when the server ends
  /// the stream (count reached or server stopping).
  std::optional<obs::NetworkSnapshot> next();

 private:
  friend class ServerHandle;
  explicit StatsStream(std::shared_ptr<net::Stream> stream)
      : stream_(std::move(stream)) {}

  std::shared_ptr<net::Stream> stream_;
};

/// Handle to a process hosted by a remote ComputeServer, returned by
/// ServerHandle::submit(Process).  Cheap to copy; all operations open a
/// fresh connection, so a handle can outlive the submitting socket.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return id_ != 0; }
  std::uint64_t id() const { return id_; }

  /// Blocks until the hosted process finishes; throws IoError if it
  /// failed remotely, WorkerLost if the server dies while we wait.
  void join();

  /// Closes the hosted process's channel endpoints, unblocking it so it
  /// stops via the normal end-of-stream / ChannelClosed paths.
  void abort();

 private:
  friend class ServerHandle;
  ProcessHandle(Endpoint endpoint, std::uint64_t id,
                fault::LeaseOptions lease)
      : endpoint_(std::move(endpoint)), id_(id), lease_(lease) {}

  Endpoint endpoint_;
  std::uint64_t id_ = 0;
  fault::LeaseOptions lease_;
};

/// Client stub for a remote ComputeServer.  Connects retry with backoff
/// (`retry`); the synchronous operations bound their wait by the lease's
/// patience (see ComputeServer).  A handle obtained through lookup()
/// remembers its registry provenance and NACKs the entry back to the
/// registry when the server stops answering, so repeated failures evict
/// the stale registration.
class ServerHandle {
 public:
  ServerHandle(Endpoint endpoint, std::shared_ptr<dist::NodeContext> local,
               fault::LeaseOptions lease = {}, fault::RetryPolicy retry = {});

  /// Looks a server up in a registry and returns a handle to it.
  static ServerHandle lookup(const std::string& registry_host,
                             std::uint16_t registry_port,
                             const std::string& name,
                             std::shared_ptr<dist::NodeContext> local,
                             fault::LeaseOptions lease = {},
                             fault::RetryPolicy retry = {});

  /// Ships `process` for asynchronous execution (paper: run(Runnable)).
  /// Returns once the server has deserialized and started it -- i.e. once
  /// all cut channels have reconnected.  The handle can join() the hosted
  /// process or abort() it.
  ProcessHandle submit(const std::shared_ptr<core::Process>& process);

  /// Ships `task` (paper: run(Task)); the returned future's get() blocks
  /// for the result.
  TaskFuture submit(const std::shared_ptr<core::Task>& task);

  /// Fetches a snapshot of everything the server is hosting.
  obs::NetworkSnapshot stats();

  /// Subscribes to periodic snapshot pushes: one every `interval`, at
  /// most `count` of them (0 = until the subscriber hangs up or the
  /// server stops).
  StatsStream stats_stream(std::chrono::milliseconds interval,
                           std::uint32_t count = 0);

  /// Fetches the server's trace ring (only its own node tag's events)
  /// plus the clock facts needed to merge it: fleet_trace's per-peer
  /// ingredient.
  obs::TraceExport trace_export();

  /// One clock probe (Cristian's algorithm): the estimated offset of the
  /// server's steady clock relative to ours (server_now minus the
  /// request's local midpoint, ns) paired with the probe's round-trip
  /// time.  fleet_trace repeats this and keeps the minimum-RTT sample --
  /// the tightest bound on the offset.
  std::pair<std::int64_t, std::uint64_t> probe_clock();

  /// Round-trip health check.
  void ping();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  /// Where lookup() found this server, for NACK reports.
  struct Provenance {
    std::string registry_host;
    std::uint16_t registry_port = 0;
    std::string name;
  };

  /// Connects with retry; on final failure, best-effort NACKs the
  /// registry entry (when lookup provenance is known) before rethrowing.
  std::shared_ptr<net::Stream> connect_();

  Endpoint endpoint_;
  std::shared_ptr<dist::NodeContext> local_;
  fault::LeaseOptions lease_;
  fault::RetryPolicy retry_;
  std::optional<Provenance> provenance_;
};

/// Merged snapshot across several servers: processes and channels are
/// concatenated, counters summed, histograms merged.  The fleet-wide
/// view of paper Section 6.2's global state, assembled from per-node
/// STATS replies.  Mixed-revision fleets degrade gracefully: each
/// peer's snapshot version is logged and its decodable prefix merged;
/// the result's `version` is the fleet's common denominator.
obs::NetworkSnapshot fleet_stats(std::vector<ServerHandle>& servers);

/// Merged causal trace across the local host (node tag 0) and several
/// servers, as one Chrome trace_event JSON: per-host pid rows, flow
/// arrows for spans that crossed hosts, and recorded/dropped accounting
/// in the metadata block.  Per-peer clock offsets are estimated with
/// repeated minimum-RTT probes (probe_clock) so the per-host ring
/// buffers land on one timeline.  Call at quiescence (tracing disabled
/// or the graph drained), like Tracer::drain.
std::string fleet_trace(std::vector<ServerHandle>& servers);

}  // namespace dpn::rmi
