#include "rmi/migrate.hpp"

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace dpn::rmi {

bool migrate(const std::shared_ptr<core::IterativeProcess>& process,
             ServerHandle& destination) {
  process->request_pause();
  if (!process->await_pause()) {
    log::debug("migrate: process ", process->name(),
               " finished before it could be parked");
    return false;
  }
  try {
    destination.submit(process);
    DPN_TRACE_EVENT(obs::TraceKind::kMigrate, process->name());
  } catch (const NetError&) {
    // Could not reach the server: submit connects before it
    // serializes, so the graph is untouched and resuming in place is
    // safe.
    process->resume();
    throw;
  }
  // Any other failure happened after serialization began; the endpoints
  // may already be switched toward the destination, so the local instance
  // must not resume.  The exception reports the torn graph to the caller.
  process->abandon();
  return true;
}

}  // namespace dpn::rmi
