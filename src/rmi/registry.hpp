#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"

/// A small TCP name service standing in for the RMI registry (paper
/// Section 4.1): compute servers register themselves by name, and client
/// applications look them up to obtain host:port endpoints.
namespace dpn::rmi {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// The registry server.  One request per connection:
///   REGISTER name host port | LOOKUP name | LIST | UNREGISTER name
class Registry {
 public:
  explicit Registry(std::uint16_t port = 0);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  std::uint16_t port() const { return server_.port(); }

  /// Entries currently registered (server-side view, for tests/tools).
  std::vector<std::pair<std::string, Endpoint>> entries() const;

  void stop();

 private:
  void accept_loop();
  void handle(net::Socket socket);

  net::ServerSocket server_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Endpoint> names_;
  std::atomic<bool> stopping_{false};
  std::jthread acceptor_;
};

/// Client-side operations against a registry.
class RegistryClient {
 public:
  RegistryClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  void register_name(const std::string& name, const Endpoint& endpoint);
  void unregister_name(const std::string& name);
  std::optional<Endpoint> lookup(const std::string& name);
  std::vector<std::string> list();

 private:
  std::string host_;
  std::uint16_t port_;
};

}  // namespace dpn::rmi
