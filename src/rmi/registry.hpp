#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "net/transport.hpp"

/// A small name service standing in for the RMI registry (paper
/// Section 4.1): compute servers register themselves by name, and client
/// applications look them up to obtain host:port endpoints.
namespace dpn::rmi {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// The registry server.  One request per connection:
///   REGISTER name host port | LOOKUP name | LIST | UNREGISTER name
///   | REPORT name host port (a NACK: "I could not reach this entry")
///
/// Stale-entry eviction: a server that dies without unregistering leaves
/// a dangling name behind.  Clients NACK an entry after failing to
/// connect to it; once kEvictStrikes reports accumulate against the
/// *current* endpoint of a name, the entry is evicted.  A re-register
/// (or a report naming a different endpoint) resets the count, so a
/// restarted server is never penalised for its predecessor's strikes.
class Registry {
 public:
  /// Matching-endpoint NACKs needed to evict an entry.
  static constexpr int kEvictStrikes = 3;

  explicit Registry(std::uint16_t port = 0);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  std::uint16_t port() const { return listener_->port(); }

  /// Entries currently registered (server-side view, for tests/tools).
  std::vector<std::pair<std::string, Endpoint>> entries() const;

  void stop();

 private:
  void accept_loop();
  void handle(std::shared_ptr<net::Stream> stream);

  std::shared_ptr<net::Listener> listener_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Endpoint> names_;
  std::unordered_map<std::string, int> strikes_;
  std::atomic<bool> stopping_{false};
  std::jthread acceptor_;
};

/// Client-side operations against a registry.  Connects use the retry
/// policy (capped exponential backoff), so a registry that is briefly
/// unavailable -- restarting, say -- does not fail the caller.
class RegistryClient {
 public:
  RegistryClient(std::string host, std::uint16_t port,
                 fault::RetryPolicy retry = {})
      : host_(std::move(host)), port_(port), retry_(retry) {}

  void register_name(const std::string& name, const Endpoint& endpoint);
  void unregister_name(const std::string& name);
  std::optional<Endpoint> lookup(const std::string& name);
  std::vector<std::string> list();

  /// NACKs `endpoint` as unreachable under `name`.  Returns true if the
  /// report evicted the entry.
  bool report_unreachable(const std::string& name, const Endpoint& endpoint);

 private:
  std::shared_ptr<net::Stream> connect_();

  std::string host_;
  std::uint16_t port_;
  fault::RetryPolicy retry_;
};

}  // namespace dpn::rmi
