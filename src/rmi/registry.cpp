#include "rmi/registry.hpp"

#include <memory>

#include "io/data.hpp"
#include "support/log.hpp"

namespace dpn::rmi {
namespace {

enum class Op : std::uint8_t {
  kRegister = 1,
  kLookup = 2,
  kList = 3,
  kUnregister = 4,
  kReport = 5,  // NACK: client failed to reach a looked-up endpoint
};

std::pair<io::DataInputStream, io::DataOutputStream> wrap(
    const std::shared_ptr<net::Stream>& stream) {
  return {io::DataInputStream{std::make_shared<net::StreamInput>(stream)},
          io::DataOutputStream{std::make_shared<net::StreamOutput>(stream)}};
}

}  // namespace

Registry::Registry(std::uint16_t port)
    : listener_(net::default_transport().listen(port)) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
}

Registry::~Registry() { stop(); }

void Registry::stop() {
  if (stopping_.exchange(true)) return;
  listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
}

std::vector<std::pair<std::string, Endpoint>> Registry::entries() const {
  std::scoped_lock lock{mutex_};
  return {names_.begin(), names_.end()};
}

void Registry::accept_loop() {
  for (;;) {
    std::shared_ptr<net::Stream> stream;
    try {
      stream = listener_->accept();
    } catch (const NetError&) {
      return;  // stopped
    }
    try {
      handle(std::move(stream));
    } catch (const std::exception& e) {
      log::warn("registry: request failed: ", e.what());
    }
  }
}

void Registry::handle(std::shared_ptr<net::Stream> stream) {
  auto [in, out] = wrap(stream);
  const auto op = static_cast<Op>(in.read_u8());
  switch (op) {
    case Op::kRegister: {
      const std::string name = in.read_string();
      Endpoint endpoint;
      endpoint.host = in.read_string();
      endpoint.port = in.read_u16();
      {
        std::scoped_lock lock{mutex_};
        names_[name] = endpoint;
        strikes_.erase(name);  // a fresh registration starts clean
      }
      out.write_bool(true);
      break;
    }
    case Op::kLookup: {
      const std::string name = in.read_string();
      std::optional<Endpoint> found;
      {
        std::scoped_lock lock{mutex_};
        if (const auto it = names_.find(name); it != names_.end()) {
          found = it->second;
        }
      }
      out.write_bool(found.has_value());
      if (found) {
        out.write_string(found->host);
        out.write_u16(found->port);
      }
      break;
    }
    case Op::kList: {
      std::vector<std::string> names;
      {
        std::scoped_lock lock{mutex_};
        names.reserve(names_.size());
        for (const auto& [name, endpoint] : names_) names.push_back(name);
      }
      out.write_varint(names.size());
      for (const auto& name : names) out.write_string(name);
      break;
    }
    case Op::kUnregister: {
      const std::string name = in.read_string();
      bool erased = false;
      {
        std::scoped_lock lock{mutex_};
        erased = names_.erase(name) > 0;
        strikes_.erase(name);
      }
      out.write_bool(erased);
      break;
    }
    case Op::kReport: {
      const std::string name = in.read_string();
      Endpoint reported;
      reported.host = in.read_string();
      reported.port = in.read_u16();
      bool evicted = false;
      {
        std::scoped_lock lock{mutex_};
        const auto it = names_.find(name);
        // Only strikes against the *current* endpoint count: a report
        // about an endpoint that has since re-registered elsewhere is
        // about the dead predecessor, not the live entry.
        if (it != names_.end() && it->second.host == reported.host &&
            it->second.port == reported.port) {
          if (++strikes_[name] >= kEvictStrikes) {
            names_.erase(it);
            strikes_.erase(name);
            evicted = true;
          }
        }
      }
      if (evicted) {
        fault::stats().registry_evictions.fetch_add(
            1, std::memory_order_relaxed);
        log::warn("registry: evicted '", name, "' at ", reported.host, ":",
                  reported.port, " after ", kEvictStrikes,
                  " unreachable reports");
      }
      out.write_bool(evicted);
      break;
    }
    default:
      throw IoError{"registry: unknown op"};
  }
}

std::shared_ptr<net::Stream> RegistryClient::connect_() {
  return net::dial_with_retry(net::default_transport(), host_, port_, retry_);
}

void RegistryClient::register_name(const std::string& name,
                                   const Endpoint& endpoint) {
  auto socket = connect_();
  auto [in, out] = wrap(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kRegister));
  out.write_string(name);
  out.write_string(endpoint.host);
  out.write_u16(endpoint.port);
  if (!in.read_bool()) throw NetError{"registry refused registration"};
}

void RegistryClient::unregister_name(const std::string& name) {
  auto socket = connect_();
  auto [in, out] = wrap(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kUnregister));
  out.write_string(name);
  in.read_bool();
}

std::optional<Endpoint> RegistryClient::lookup(const std::string& name) {
  auto socket = connect_();
  auto [in, out] = wrap(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kLookup));
  out.write_string(name);
  if (!in.read_bool()) return std::nullopt;
  Endpoint endpoint;
  endpoint.host = in.read_string();
  endpoint.port = in.read_u16();
  return endpoint;
}

std::vector<std::string> RegistryClient::list() {
  auto socket = connect_();
  auto [in, out] = wrap(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kList));
  const std::uint64_t n = in.read_varint();
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) names.push_back(in.read_string());
  return names;
}

bool RegistryClient::report_unreachable(const std::string& name,
                                        const Endpoint& endpoint) {
  auto socket = connect_();
  auto [in, out] = wrap(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kReport));
  out.write_string(name);
  out.write_string(endpoint.host);
  out.write_u16(endpoint.port);
  return in.read_bool();
}

}  // namespace dpn::rmi
