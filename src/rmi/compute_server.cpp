#include "rmi/compute_server.hpp"

#include "dist/ship.hpp"
#include "io/data.hpp"
#include "support/log.hpp"

namespace dpn::rmi {
namespace {

enum class Op : std::uint8_t {
  kRunProcess = 1,  // run(Runnable): async
  kRunTask = 2,     // run(Task): sync, returns result
  kPing = 3,
};

io::DataInputStream make_in(const std::shared_ptr<net::Socket>& socket) {
  return io::DataInputStream{std::make_shared<net::SocketInputStream>(socket)};
}

io::DataOutputStream make_out(const std::shared_ptr<net::Socket>& socket) {
  return io::DataOutputStream{
      std::make_shared<net::SocketOutputStream>(socket)};
}

}  // namespace

ComputeServer::ComputeServer(std::string name,
                             std::shared_ptr<dist::NodeContext> node)
    : name_(std::move(name)),
      node_(node ? std::move(node) : dist::NodeContext::create()),
      server_(0) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
  log::info("compute server '", name_, "' listening on port ", server_.port());
}

ComputeServer::~ComputeServer() { stop(); }

void ComputeServer::register_with(const std::string& registry_host,
                                  std::uint16_t registry_port) {
  RegistryClient client{registry_host, registry_port};
  client.register_name(name_, Endpoint{node_->host(), port()});
}

void ComputeServer::stop() {
  if (stopping_.exchange(true)) return;
  server_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::jthread> workers;
  {
    std::scoped_lock lock{workers_mutex_};
    workers.swap(workers_);
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void ComputeServer::accept_loop() {
  for (;;) {
    net::Socket socket;
    try {
      socket = server_.accept();
    } catch (const NetError&) {
      return;  // stopped
    }
    auto shared = std::make_shared<net::Socket>(std::move(socket));
    // Each request gets its own thread: run(Task) is synchronous and may
    // be long, and deserializing a process graph dials back for channels,
    // which must not block unrelated requests.
    std::scoped_lock lock{workers_mutex_};
    workers_.emplace_back([this, shared] {
      try {
        handle(shared);
      } catch (const std::exception& e) {
        log::warn("compute server '", name_, "': request failed: ", e.what());
      }
    });
  }
}

void ComputeServer::handle(std::shared_ptr<net::Socket> socket) {
  auto in = make_in(socket);
  auto out = make_out(socket);
  const auto op = static_cast<Op>(in.read_u8());
  switch (op) {
    case Op::kRunProcess: {
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Process> process;
      try {
        process = dist::receive_process(node_,
                                        {shipment.data(), shipment.size()});
      } catch (const std::exception& e) {
        out.write_bool(false);
        out.write_string(e.what());
        return;
      }
      processes_hosted_.fetch_add(1);
      out.write_bool(true);
      out.write_string("");
      log::info("compute server '", name_, "' hosting process ",
                process->name());
      // run(Runnable) returns immediately; the process executes here.
      try {
        process->run();
      } catch (const IoError&) {
        // Graceful stop via channel closure.
      } catch (const std::exception& e) {
        log::error("compute server '", name_, "': hosted process ",
                   process->name(), " failed: ", e.what());
      }
      break;
    }
    case Op::kRunTask: {
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Task> result;
      std::string error;
      try {
        auto object =
            dist::receive_object(node_, {shipment.data(), shipment.size()});
        auto task = std::dynamic_pointer_cast<core::Task>(object);
        if (!task) throw SerializationError{"shipment is not a Task"};
        result = task->run();
        tasks_run_.fetch_add(1);
      } catch (const std::exception& e) {
        error = e.what();
        if (error.empty()) error = "task failed";
      }
      if (!error.empty()) {
        out.write_bool(false);
        out.write_string(error);
        return;
      }
      out.write_bool(true);
      const ByteVector reply = dist::ship_object(node_, result);
      out.write_bytes({reply.data(), reply.size()});
      break;
    }
    case Op::kPing: {
      out.write_bool(true);
      out.write_string(name_);
      break;
    }
    default:
      throw IoError{"compute server: unknown op"};
  }
}

ServerHandle::ServerHandle(Endpoint endpoint,
                           std::shared_ptr<dist::NodeContext> local)
    : endpoint_(std::move(endpoint)), local_(std::move(local)) {
  if (!local_) local_ = dist::NodeContext::default_node();
}

ServerHandle ServerHandle::lookup(const std::string& registry_host,
                                  std::uint16_t registry_port,
                                  const std::string& name,
                                  std::shared_ptr<dist::NodeContext> local) {
  RegistryClient client{registry_host, registry_port};
  auto endpoint = client.lookup(name);
  if (!endpoint) {
    throw NetError{"no compute server named '" + name + "' in the registry"};
  }
  return ServerHandle{*endpoint, std::move(local)};
}

void ServerHandle::run_async(const std::shared_ptr<core::Process>& process) {
  // Connect before serializing: shipping has side effects on the live
  // graph (endpoints are switched onto pending sockets), so an
  // unreachable server must fail before any of that happens.
  auto socket = std::make_shared<net::Socket>(
      net::Socket::connect(endpoint_.host, endpoint_.port));
  const ByteVector shipment = dist::ship_process(local_, process);
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kRunProcess));
  out.write_bytes({shipment.data(), shipment.size()});
  const bool ok = in.read_bool();
  const std::string error = in.read_string();
  if (!ok) {
    throw IoError{"compute server rejected process: " + error};
  }
}

std::shared_ptr<core::Task> ServerHandle::run(
    const std::shared_ptr<core::Task>& task) {
  const ByteVector shipment = dist::ship_object(local_, task);
  auto socket = std::make_shared<net::Socket>(
      net::Socket::connect(endpoint_.host, endpoint_.port));
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kRunTask));
  out.write_bytes({shipment.data(), shipment.size()});
  if (!in.read_bool()) {
    throw IoError{"compute server task failed: " + in.read_string()};
  }
  const ByteVector reply = in.read_bytes();
  auto object = dist::receive_object(local_, {reply.data(), reply.size()});
  if (!object) return nullptr;
  auto result = std::dynamic_pointer_cast<core::Task>(object);
  if (!result) {
    throw SerializationError{"compute server returned a non-Task object"};
  }
  return result;
}

void ServerHandle::ping() {
  auto socket = std::make_shared<net::Socket>(
      net::Socket::connect(endpoint_.host, endpoint_.port));
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kPing));
  if (!in.read_bool()) throw NetError{"ping failed"};
  in.read_string();
}

}  // namespace dpn::rmi
