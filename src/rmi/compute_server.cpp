#include "rmi/compute_server.hpp"

#include <set>

#include "core/channel.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "support/log.hpp"

namespace dpn::rmi {
namespace {

enum class Op : std::uint8_t {
  kRunProcess = 1,     // legacy run(Runnable): async, no process id
  kRunTask = 2,        // run(Task) / submit(Task): sync, returns result
  kPing = 3,
  kSubmitProcess = 4,  // submit(Process): replies with a process id
  kJoinProcess = 5,    // block until a hosted process finishes
  kAbortProcess = 6,   // close a hosted process's channel endpoints
  kStats = 7,          // obs::NetworkSnapshot of everything hosted
};

// Reply framing for the synchronous ops (kRunTask, kJoinProcess): the
// server emits zero or more heartbeat bytes while the work runs, then the
// reply marker followed by the op's normal reply.  A client that sees
// nothing for a whole lease patience declares the worker lost.
constexpr std::uint8_t kReplyMarker = 0xB0;
constexpr std::uint8_t kHeartbeatMarker = 0xB1;

io::DataInputStream make_in(const std::shared_ptr<net::Socket>& socket) {
  return io::DataInputStream{std::make_shared<net::SocketInputStream>(socket)};
}

io::DataOutputStream make_out(const std::shared_ptr<net::Socket>& socket) {
  return io::DataOutputStream{
      std::make_shared<net::SocketOutputStream>(socket)};
}

/// Client side of the framing: consumes heartbeats until the reply
/// marker.  Throws WorkerLost on lease expiry (no byte for `patience`)
/// or a dropped connection -- fail fast instead of hanging forever.
void await_reply(net::Socket& socket, const fault::LeaseOptions& lease,
                 const std::string& what) {
  for (;;) {
    if (!socket.wait_readable(lease.patience)) {
      fault::stats().lease_expiries.fetch_add(1, std::memory_order_relaxed);
      throw WorkerLost{what + ": no heartbeat within " +
                       std::to_string(lease.patience.count()) +
                       "ms -- worker lost"};
    }
    std::uint8_t marker = 0;
    if (socket.read_some({&marker, 1}) == 0) {
      throw WorkerLost{what + ": connection lost"};
    }
    if (marker == kHeartbeatMarker) continue;
    if (marker == kReplyMarker) return;
    throw IoError{what + ": unexpected reply marker " +
                  std::to_string(marker)};
  }
}

}  // namespace

ComputeServer::ComputeServer(std::string name,
                             std::shared_ptr<dist::NodeContext> node,
                             fault::LeaseOptions lease)
    : name_(std::move(name)),
      node_(node ? std::move(node) : dist::NodeContext::create()),
      lease_(lease),
      server_(0) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
  log::info("compute server '", name_, "' listening on port ", server_.port());
}

ComputeServer::~ComputeServer() { stop(); }

void ComputeServer::register_with(const std::string& registry_host,
                                  std::uint16_t registry_port) {
  RegistryClient client{registry_host, registry_port};
  client.register_name(name_, Endpoint{node_->host(), port()});
}

void ComputeServer::stop() {
  if (stopping_.exchange(true)) return;
  server_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::jthread> workers;
  {
    std::scoped_lock lock{workers_mutex_};
    workers.swap(workers_);
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

obs::NetworkSnapshot ComputeServer::snapshot() const {
  obs::NetworkSnapshot snap;
  const auto& traffic = *node_->traffic();
  snap.remote_bytes_sent =
      traffic.bytes_sent.load(std::memory_order_relaxed);
  snap.remote_bytes_received =
      traffic.bytes_received.load(std::memory_order_relaxed);
  snap.fill_fault_counters();

  std::scoped_lock lock{hosted_mutex_};
  std::set<const core::ChannelState*> seen;
  for (const auto& [id, hosted] : hosted_) {
    if (!hosted->done) ++snap.live;
    core::append_process_snapshots(*hosted->process, snap.processes);
    for (const auto& in : hosted->process->channel_inputs()) {
      const auto& state = in->state();
      if (seen.insert(state.get()).second) {
        snap.channels.push_back(core::snapshot_channel(*state));
      }
    }
    for (const auto& out : hosted->process->channel_outputs()) {
      const auto& state = out->state();
      if (seen.insert(state.get()).second) {
        snap.channels.push_back(core::snapshot_channel(*state));
      }
    }
  }
  return snap;
}

std::uint64_t ComputeServer::host_process(
    std::shared_ptr<core::Process> process) {
  processes_hosted_.fetch_add(1);
  auto hosted = std::make_shared<Hosted>();
  hosted->process = std::move(process);
  std::scoped_lock lock{hosted_mutex_};
  const std::uint64_t id = next_process_id_++;
  hosted_.emplace(id, std::move(hosted));
  return id;
}

void ComputeServer::run_hosted(std::uint64_t id) {
  std::shared_ptr<Hosted> hosted;
  {
    std::scoped_lock lock{hosted_mutex_};
    hosted = hosted_.at(id);
  }
  log::info("compute server '", name_, "' hosting process ",
            hosted->process->name(), " (id ", id, ")");
  std::string error;
  try {
    hosted->process->run();
  } catch (const IoError&) {
    // Graceful stop via channel closure.
  } catch (const std::exception& e) {
    error = e.what();
    if (error.empty()) error = "hosted process failed";
    log::error("compute server '", name_, "': hosted process ",
               hosted->process->name(), " failed: ", error);
  }
  {
    std::scoped_lock lock{hosted_mutex_};
    hosted->done = true;
    hosted->error = std::move(error);
  }
  hosted_cv_.notify_all();
}

void ComputeServer::accept_loop() {
  for (;;) {
    net::Socket socket;
    try {
      socket = server_.accept();
    } catch (const NetError&) {
      return;  // stopped
    }
    auto shared = std::make_shared<net::Socket>(std::move(socket));
    // Each request gets its own thread: run(Task) is synchronous and may
    // be long, and deserializing a process graph dials back for channels,
    // which must not block unrelated requests.
    std::scoped_lock lock{workers_mutex_};
    workers_.emplace_back([this, shared] {
      try {
        handle(shared);
      } catch (const std::exception& e) {
        log::warn("compute server '", name_, "': request failed: ", e.what());
      }
    });
  }
}

void ComputeServer::handle(std::shared_ptr<net::Socket> socket) {
  auto in = make_in(socket);
  auto out = make_out(socket);
  const auto op = static_cast<Op>(in.read_u8());
  switch (op) {
    case Op::kRunProcess:
    case Op::kSubmitProcess: {
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Process> process;
      try {
        process = dist::receive_process(node_,
                                        {shipment.data(), shipment.size()});
      } catch (const std::exception& e) {
        out.write_bool(false);
        out.write_string(e.what());
        if (op == Op::kSubmitProcess) out.write_u64(0);
        return;
      }
      const std::uint64_t id = host_process(std::move(process));
      out.write_bool(true);
      out.write_string("");
      if (op == Op::kSubmitProcess) out.write_u64(id);
      // submit()/run(Runnable) return immediately; the process runs here.
      run_hosted(id);
      break;
    }
    case Op::kRunTask: {
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Task> result;
      std::string error;
      // The task runs on a helper thread so this handler can heartbeat
      // the connection while it computes.
      std::mutex done_mutex;
      std::condition_variable done_cv;
      bool done = false;
      std::jthread runner{[&] {
        try {
          auto object =
              dist::receive_object(node_, {shipment.data(), shipment.size()});
          auto task = std::dynamic_pointer_cast<core::Task>(object);
          if (!task) throw SerializationError{"shipment is not a Task"};
          result = task->run();
          tasks_run_.fetch_add(1);
        } catch (const std::exception& e) {
          error = e.what();
          if (error.empty()) error = "task failed";
        }
        {
          std::scoped_lock done_lock{done_mutex};
          done = true;
        }
        done_cv.notify_all();
      }};
      bool client_gone = false;
      {
        std::unique_lock lock{done_mutex};
        while (!done_cv.wait_for(lock, lease_.heartbeat_interval,
                                 [&] { return done; })) {
          lock.unlock();
          try {
            out.write_u8(kHeartbeatMarker);
          } catch (const IoError&) {
            client_gone = true;
          }
          lock.lock();
          if (client_gone) break;
        }
      }
      runner.join();
      if (client_gone) return;  // nobody left to read the reply
      out.write_u8(kReplyMarker);
      if (!error.empty()) {
        out.write_bool(false);
        out.write_string(error);
        return;
      }
      out.write_bool(true);
      const ByteVector reply = dist::ship_object(node_, result);
      out.write_bytes({reply.data(), reply.size()});
      break;
    }
    case Op::kJoinProcess: {
      const std::uint64_t id = in.read_u64();
      std::shared_ptr<Hosted> hosted;
      {
        std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(id);
        if (it != hosted_.end()) hosted = it->second;
      }
      if (!hosted) {
        out.write_u8(kReplyMarker);
        out.write_bool(false);
        out.write_string("unknown process id " + std::to_string(id));
        return;
      }
      bool client_gone = false;
      {
        std::unique_lock lock{hosted_mutex_};
        while (!hosted_cv_.wait_for(lock, lease_.heartbeat_interval,
                                    [&] { return hosted->done; })) {
          // Heartbeat outside the lock: a blocked write must not stall
          // every other joiner and run_hosted's completion signal.
          lock.unlock();
          try {
            out.write_u8(kHeartbeatMarker);
          } catch (const IoError&) {
            client_gone = true;
          }
          lock.lock();
          if (client_gone) break;
        }
      }
      if (client_gone) return;
      out.write_u8(kReplyMarker);
      out.write_bool(hosted->error.empty());
      out.write_string(hosted->error);
      break;
    }
    case Op::kAbortProcess: {
      const std::uint64_t id = in.read_u64();
      std::shared_ptr<Hosted> hosted;
      {
        std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(id);
        if (it != hosted_.end()) hosted = it->second;
      }
      if (!hosted) {
        out.write_bool(false);
        out.write_string("unknown process id " + std::to_string(id));
        return;
      }
      // Closing the endpoints wakes the process out of any blocked channel
      // op; it then stops via end-of-stream / ChannelClosed as usual.
      for (const auto& input : hosted->process->channel_inputs()) {
        try {
          input->close();
        } catch (const std::exception&) {
        }
      }
      for (const auto& output : hosted->process->channel_outputs()) {
        try {
          output->close();
        } catch (const std::exception&) {
        }
      }
      out.write_bool(true);
      out.write_string("");
      break;
    }
    case Op::kStats: {
      const ByteVector encoded = snapshot().encode();
      out.write_bool(true);
      out.write_bytes({encoded.data(), encoded.size()});
      break;
    }
    case Op::kPing: {
      out.write_bool(true);
      out.write_string(name_);
      break;
    }
    default:
      throw IoError{"compute server: unknown op"};
  }
}

std::shared_ptr<core::Task> TaskFuture::get() {
  if (!socket_) throw UsageError{"TaskFuture::get on an invalid future"};
  auto socket = std::move(socket_);
  await_reply(*socket, lease_, "compute server task");
  auto in = make_in(socket);
  if (!in.read_bool()) {
    throw IoError{"compute server task failed: " + in.read_string()};
  }
  const ByteVector reply = in.read_bytes();
  auto object = dist::receive_object(local_, {reply.data(), reply.size()});
  if (!object) return nullptr;
  auto result = std::dynamic_pointer_cast<core::Task>(object);
  if (!result) {
    throw SerializationError{"compute server returned a non-Task object"};
  }
  return result;
}

void ProcessHandle::join() {
  if (!valid()) throw UsageError{"ProcessHandle::join on an invalid handle"};
  auto socket = std::make_shared<net::Socket>(
      net::connect_with_retry(endpoint_.host, endpoint_.port));
  auto out = make_out(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kJoinProcess));
  out.write_u64(id_);
  await_reply(*socket, lease_, "hosted process join");
  auto in = make_in(socket);
  if (!in.read_bool()) {
    throw IoError{"hosted process failed: " + in.read_string()};
  }
  in.read_string();
}

void ProcessHandle::abort() {
  if (!valid()) throw UsageError{"ProcessHandle::abort on an invalid handle"};
  auto socket = std::make_shared<net::Socket>(
      net::connect_with_retry(endpoint_.host, endpoint_.port));
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kAbortProcess));
  out.write_u64(id_);
  if (!in.read_bool()) {
    throw IoError{"abort failed: " + in.read_string()};
  }
  in.read_string();
}

ServerHandle::ServerHandle(Endpoint endpoint,
                           std::shared_ptr<dist::NodeContext> local,
                           fault::LeaseOptions lease,
                           fault::RetryPolicy retry)
    : endpoint_(std::move(endpoint)),
      local_(std::move(local)),
      lease_(lease),
      retry_(retry) {
  if (!local_) local_ = dist::NodeContext::default_node();
}

ServerHandle ServerHandle::lookup(const std::string& registry_host,
                                  std::uint16_t registry_port,
                                  const std::string& name,
                                  std::shared_ptr<dist::NodeContext> local,
                                  fault::LeaseOptions lease,
                                  fault::RetryPolicy retry) {
  RegistryClient client{registry_host, registry_port, retry};
  auto endpoint = client.lookup(name);
  if (!endpoint) {
    throw NetError{"no compute server named '" + name + "' in the registry"};
  }
  ServerHandle handle{*endpoint, std::move(local), lease, retry};
  handle.provenance_ =
      Provenance{registry_host, registry_port, name};
  return handle;
}

std::shared_ptr<net::Socket> ServerHandle::connect_() {
  try {
    return std::make_shared<net::Socket>(
        net::connect_with_retry(endpoint_.host, endpoint_.port, retry_));
  } catch (const NetError&) {
    if (provenance_) {
      // NACK the registry entry so repeated failures evict it; best
      // effort -- the original connect failure is what the caller needs.
      try {
        RegistryClient client{provenance_->registry_host,
                              provenance_->registry_port, retry_};
        client.report_unreachable(provenance_->name, endpoint_);
      } catch (const std::exception&) {
      }
    }
    throw;
  }
}

ProcessHandle ServerHandle::submit(
    const std::shared_ptr<core::Process>& process) {
  // Connect before serializing: shipping has side effects on the live
  // graph (endpoints are switched onto pending sockets), so an
  // unreachable server must fail before any of that happens.
  auto socket = connect_();
  const ByteVector shipment = dist::ship_process(local_, process);
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kSubmitProcess));
  out.write_bytes({shipment.data(), shipment.size()});
  const bool ok = in.read_bool();
  const std::string error = in.read_string();
  const std::uint64_t id = in.read_u64();
  if (!ok) {
    throw IoError{"compute server rejected process: " + error};
  }
  return ProcessHandle{endpoint_, id, lease_};
}

TaskFuture ServerHandle::submit(const std::shared_ptr<core::Task>& task) {
  const ByteVector shipment = dist::ship_object(local_, task);
  auto socket = connect_();
  auto out = make_out(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kRunTask));
  out.write_bytes({shipment.data(), shipment.size()});
  return TaskFuture{socket, local_, lease_};
}

obs::NetworkSnapshot ServerHandle::stats() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kStats));
  if (!in.read_bool()) throw IoError{"compute server stats failed"};
  const ByteVector reply = in.read_bytes();
  return obs::NetworkSnapshot::decode({reply.data(), reply.size()});
}

void ServerHandle::run_async(const std::shared_ptr<core::Process>& process) {
  submit(process);
}

std::shared_ptr<core::Task> ServerHandle::run(
    const std::shared_ptr<core::Task>& task) {
  return submit(task).get();
}

void ServerHandle::ping() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kPing));
  if (!in.read_bool()) throw NetError{"ping failed"};
  in.read_string();
}

obs::NetworkSnapshot fleet_stats(std::vector<ServerHandle>& servers) {
  obs::NetworkSnapshot fleet;
  for (ServerHandle& server : servers) {
    obs::NetworkSnapshot snap = server.stats();
    fleet.live += snap.live;
    fleet.growth_events += snap.growth_events;
    fleet.remote_bytes_sent += snap.remote_bytes_sent;
    fleet.remote_bytes_received += snap.remote_bytes_received;
    fleet.connect_retries += snap.connect_retries;
    fleet.connect_failures += snap.connect_failures;
    fleet.tasks_reissued += snap.tasks_reissued;
    fleet.workers_lost += snap.workers_lost;
    fleet.lease_expiries += snap.lease_expiries;
    fleet.registry_evictions += snap.registry_evictions;
    fleet.faults_injected += snap.faults_injected;
    for (auto& p : snap.processes) fleet.processes.push_back(std::move(p));
    for (auto& c : snap.channels) fleet.channels.push_back(std::move(c));
  }
  return fleet;
}

}  // namespace dpn::rmi
