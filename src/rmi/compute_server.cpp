#include "rmi/compute_server.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "core/channel.hpp"
#include "dist/ship.hpp"
#include "io/data.hpp"
#include "obs/metrics.hpp"
#include "support/log.hpp"

namespace dpn::rmi {
namespace {

enum class Op : std::uint8_t {
  kRunProcess = 1,     // legacy run(Runnable): async, no process id
  kRunTask = 2,        // run(Task) / submit(Task): sync, returns result
  kPing = 3,
  kSubmitProcess = 4,  // submit(Process): replies with a process id
  kJoinProcess = 5,    // block until a hosted process finishes
  kAbortProcess = 6,   // close a hosted process's channel endpoints
  kStats = 7,          // obs::NetworkSnapshot of everything hosted
  kStatsStream = 8,    // periodic snapshot pushes (docs/PROTOCOLS.md §6)
  kTrace = 9,          // this host's trace ring, for fleet_trace
  kTimeSync = 10,      // steady-clock probe, for clock-offset estimation
  kSubmitTraced = 11,  // kSubmitProcess with a leading TraceContext
};

/// Node tags for in-process "hosts": each ComputeServer takes the next
/// one, tag 0 stays the client/local host.
std::uint32_t next_trace_tag() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Reply framing for the synchronous ops (kRunTask, kJoinProcess): the
// server emits zero or more heartbeat bytes while the work runs, then the
// reply marker followed by the op's normal reply.  A client that sees
// nothing for a whole lease patience declares the worker lost.
constexpr std::uint8_t kReplyMarker = 0xB0;
constexpr std::uint8_t kHeartbeatMarker = 0xB1;

io::DataInputStream make_in(const std::shared_ptr<net::Stream>& stream) {
  return io::DataInputStream{std::make_shared<net::StreamInput>(stream)};
}

io::DataOutputStream make_out(const std::shared_ptr<net::Stream>& stream) {
  return io::DataOutputStream{std::make_shared<net::StreamOutput>(stream)};
}

/// Client side of the framing: consumes heartbeats until the reply
/// marker.  Throws WorkerLost on lease expiry (no byte for `patience`)
/// or a dropped connection -- fail fast instead of hanging forever.
void await_reply(net::Stream& stream, const fault::LeaseOptions& lease,
                 const std::string& what) {
  for (;;) {
    if (!stream.wait_readable(lease.patience)) {
      fault::stats().lease_expiries.fetch_add(1, std::memory_order_relaxed);
      throw WorkerLost{what + ": no heartbeat within " +
                       std::to_string(lease.patience.count()) +
                       "ms -- worker lost"};
    }
    std::uint8_t marker = 0;
    if (stream.read_some({&marker, 1}) == 0) {
      throw WorkerLost{what + ": connection lost"};
    }
    if (marker == kHeartbeatMarker) continue;
    if (marker == kReplyMarker) return;
    throw IoError{what + ": unexpected reply marker " +
                  std::to_string(marker)};
  }
}

}  // namespace

ComputeServer::ComputeServer(std::string name,
                             std::shared_ptr<dist::NodeContext> node,
                             fault::LeaseOptions lease)
    : name_(std::move(name)),
      node_(node ? std::move(node) : dist::NodeContext::create()),
      lease_(lease),
      listener_(net::default_transport().listen(0)),
      trace_tag_(next_trace_tag()) {
  acceptor_ = std::jthread{[this] { accept_loop(); }};
  log::info("compute server '", name_, "' listening on port ",
            listener_->port());
}

ComputeServer::~ComputeServer() { stop(); }

void ComputeServer::register_with(const std::string& registry_host,
                                  std::uint16_t registry_port) {
  RegistryClient client{registry_host, registry_port};
  client.register_name(name_, Endpoint{node_->host(), port()});
}

void ComputeServer::stop() {
  if (stopping_.exchange(true)) return;
  hosted_cv_.notify_all();  // wake stats streamers so stop() can join them
  listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::jthread> workers;
  {
    std::scoped_lock lock{workers_mutex_};
    workers.swap(workers_);
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

obs::NetworkSnapshot ComputeServer::snapshot() const {
  obs::NetworkSnapshot snap;
  const auto& traffic = *node_->traffic();
  snap.remote_bytes_sent =
      traffic.bytes_sent.load(std::memory_order_relaxed);
  snap.remote_bytes_received =
      traffic.bytes_received.load(std::memory_order_relaxed);
  snap.fill_fault_counters();
  // Trace/task-RTT/connect/mux counters are process-global; in an
  // in-process simulated fleet every server reports the same values
  // (fleet_stats merges are therefore an upper bound there, exact for
  // real fleets).
  snap.fill_runtime_counters();
  snap.fill_transport_counters();

  std::scoped_lock lock{hosted_mutex_};
  std::set<const core::ChannelState*> seen;
  for (const auto& [id, hosted] : hosted_) {
    if (!hosted->done) ++snap.live;
    core::append_process_snapshots(*hosted->process, snap.processes);
    for (const auto& in : hosted->process->channel_inputs()) {
      const auto& state = in->state();
      if (seen.insert(state.get()).second) {
        snap.channels.push_back(core::snapshot_channel(*state));
      }
    }
    for (const auto& out : hosted->process->channel_outputs()) {
      const auto& state = out->state();
      if (seen.insert(state.get()).second) {
        snap.channels.push_back(core::snapshot_channel(*state));
      }
    }
  }
  return snap;
}

std::uint64_t ComputeServer::host_process(
    std::shared_ptr<core::Process> process) {
  processes_hosted_.fetch_add(1);
  auto hosted = std::make_shared<Hosted>();
  hosted->process = std::move(process);
  std::scoped_lock lock{hosted_mutex_};
  const std::uint64_t id = next_process_id_++;
  hosted_.emplace(id, std::move(hosted));
  return id;
}

void ComputeServer::run_hosted(std::uint64_t id) {
  std::shared_ptr<Hosted> hosted;
  {
    std::scoped_lock lock{hosted_mutex_};
    hosted = hosted_.at(id);
  }
  log::info("compute server '", name_, "' hosting process ",
            hosted->process->name(), " (id ", id, ")");
  std::string error;
  try {
    hosted->process->run();
  } catch (const IoError&) {
    // Graceful stop via channel closure.
  } catch (const std::exception& e) {
    error = e.what();
    if (error.empty()) error = "hosted process failed";
    log::error("compute server '", name_, "': hosted process ",
               hosted->process->name(), " failed: ", error);
  }
  {
    std::scoped_lock lock{hosted_mutex_};
    hosted->done = true;
    hosted->error = std::move(error);
  }
  hosted_cv_.notify_all();
}

void ComputeServer::accept_loop() {
  for (;;) {
    std::shared_ptr<net::Stream> stream;
    try {
      stream = listener_->accept();
    } catch (const NetError&) {
      return;  // stopped
    }
    // Each request gets its own thread: run(Task) is synchronous and may
    // be long, and deserializing a process graph dials back for channels,
    // which must not block unrelated requests.
    std::scoped_lock lock{workers_mutex_};
    workers_.emplace_back([this, stream = std::move(stream)] {
      try {
        handle(stream);
      } catch (const std::exception& e) {
        log::warn("compute server '", name_, "': request failed: ", e.what());
      }
    });
  }
}

void ComputeServer::handle(std::shared_ptr<net::Stream> stream) {
  // Everything this thread does -- including running a hosted process,
  // whose spawned threads inherit the tag -- records trace events under
  // this server's host tag.
  obs::set_node_tag(trace_tag_);
  auto in = make_in(stream);
  auto out = make_out(stream);
  const auto op = static_cast<Op>(in.read_u8());
  switch (op) {
    case Op::kRunProcess:
    case Op::kSubmitProcess:
    case Op::kSubmitTraced: {
      if (op == Op::kSubmitTraced) {
        // The submit handshake carries the client's TraceContext; adopt
        // it so the SHIP -> JOIN span pair links causally across hosts.
        std::uint8_t raw[obs::TraceContext::kWireSize];
        in.read_fully({raw, sizeof raw});
        const auto ctx = obs::TraceContext::decode(raw);
        if (ctx.valid()) {
          obs::current_trace_context() = ctx;
          DPN_TRACE_EVENT(obs::TraceKind::kShipRecv, "submit", ctx.span_id);
        }
      }
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Process> process;
      try {
        process = dist::receive_process(node_,
                                        {shipment.data(), shipment.size()});
      } catch (const std::exception& e) {
        out.write_bool(false);
        out.write_string(e.what());
        if (op != Op::kRunProcess) out.write_u64(0);
        return;
      }
      const std::uint64_t id = host_process(std::move(process));
      out.write_bool(true);
      out.write_string("");
      if (op != Op::kRunProcess) out.write_u64(id);
      // submit()/run(Runnable) return immediately; the process runs here.
      run_hosted(id);
      break;
    }
    case Op::kRunTask: {
      const ByteVector shipment = in.read_bytes();
      std::shared_ptr<core::Task> result;
      std::string error;
      // The task runs on a helper thread so this handler can heartbeat
      // the connection while it computes.
      std::mutex done_mutex;
      std::condition_variable done_cv;
      bool done = false;
      std::jthread runner{[&] {
        try {
          auto object =
              dist::receive_object(node_, {shipment.data(), shipment.size()});
          auto task = std::dynamic_pointer_cast<core::Task>(object);
          if (!task) throw SerializationError{"shipment is not a Task"};
          result = task->run();
          tasks_run_.fetch_add(1);
        } catch (const std::exception& e) {
          error = e.what();
          if (error.empty()) error = "task failed";
        }
        {
          std::scoped_lock done_lock{done_mutex};
          done = true;
        }
        done_cv.notify_all();
      }};
      bool client_gone = false;
      {
        std::unique_lock lock{done_mutex};
        while (!done_cv.wait_for(lock, lease_.heartbeat_interval,
                                 [&] { return done; })) {
          lock.unlock();
          try {
            out.write_u8(kHeartbeatMarker);
          } catch (const IoError&) {
            client_gone = true;
          }
          lock.lock();
          if (client_gone) break;
        }
      }
      runner.join();
      if (client_gone) return;  // nobody left to read the reply
      out.write_u8(kReplyMarker);
      if (!error.empty()) {
        out.write_bool(false);
        out.write_string(error);
        return;
      }
      out.write_bool(true);
      const ByteVector reply = dist::ship_object(node_, result);
      out.write_bytes({reply.data(), reply.size()});
      break;
    }
    case Op::kJoinProcess: {
      const std::uint64_t id = in.read_u64();
      std::shared_ptr<Hosted> hosted;
      {
        std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(id);
        if (it != hosted_.end()) hosted = it->second;
      }
      if (!hosted) {
        out.write_u8(kReplyMarker);
        out.write_bool(false);
        out.write_string("unknown process id " + std::to_string(id));
        return;
      }
      bool client_gone = false;
      {
        std::unique_lock lock{hosted_mutex_};
        while (!hosted_cv_.wait_for(lock, lease_.heartbeat_interval,
                                    [&] { return hosted->done; })) {
          // Heartbeat outside the lock: a blocked write must not stall
          // every other joiner and run_hosted's completion signal.
          lock.unlock();
          try {
            out.write_u8(kHeartbeatMarker);
          } catch (const IoError&) {
            client_gone = true;
          }
          lock.lock();
          if (client_gone) break;
        }
      }
      if (client_gone) return;
      out.write_u8(kReplyMarker);
      out.write_bool(hosted->error.empty());
      out.write_string(hosted->error);
      break;
    }
    case Op::kAbortProcess: {
      const std::uint64_t id = in.read_u64();
      std::shared_ptr<Hosted> hosted;
      {
        std::scoped_lock lock{hosted_mutex_};
        const auto it = hosted_.find(id);
        if (it != hosted_.end()) hosted = it->second;
      }
      if (!hosted) {
        out.write_bool(false);
        out.write_string("unknown process id " + std::to_string(id));
        return;
      }
      // Closing the endpoints wakes the process out of any blocked channel
      // op; it then stops via end-of-stream / ChannelClosed as usual.
      for (const auto& input : hosted->process->channel_inputs()) {
        try {
          input->close();
        } catch (const std::exception&) {
        }
      }
      for (const auto& output : hosted->process->channel_outputs()) {
        try {
          output->close();
        } catch (const std::exception&) {
        }
      }
      out.write_bool(true);
      out.write_string("");
      break;
    }
    case Op::kStats: {
      const ByteVector encoded = snapshot().encode();
      out.write_bool(true);
      out.write_bytes({encoded.data(), encoded.size()});
      break;
    }
    case Op::kStatsStream: {
      // Push one encoded snapshot per interval until the requested count
      // is reached, the subscriber hangs up, or the server stops.  Each
      // push is prefixed with a continuation flag so the subscriber can
      // tell a clean end-of-stream from a dropped connection.
      const std::uint32_t interval_ms = std::max<std::uint32_t>(
          in.read_u32(), 1);
      const std::uint32_t count = in.read_u32();
      std::uint32_t sent = 0;
      bool client_gone = false;
      while (!stopping_.load() && (count == 0 || sent < count)) {
        {
          std::unique_lock lock{hosted_mutex_};
          hosted_cv_.wait_for(lock, std::chrono::milliseconds{interval_ms},
                              [this] { return stopping_.load(); });
        }
        if (stopping_.load()) break;
        try {
          const ByteVector encoded = snapshot().encode();
          out.write_bool(true);
          out.write_bytes({encoded.data(), encoded.size()});
          ++sent;
        } catch (const IoError&) {
          client_gone = true;  // subscriber hung up; normal
          break;
        }
      }
      if (!client_gone) {
        try {
          out.write_bool(false);
        } catch (const IoError&) {
        }
      }
      break;
    }
    case Op::kTrace: {
      // Only this host's events: in an in-process fleet every server
      // shares the Tracer singleton, and fleet_trace must not receive the
      // same event from every peer.
      const ByteVector encoded =
          obs::Tracer::instance().export_events(trace_tag_).encode();
      out.write_bool(true);
      out.write_bytes({encoded.data(), encoded.size()});
      break;
    }
    case Op::kTimeSync: {
      out.write_bool(true);
      out.write_u64(steady_now_ns());
      break;
    }
    case Op::kPing: {
      out.write_bool(true);
      out.write_string(name_);
      break;
    }
    default:
      throw IoError{"compute server: unknown op"};
  }
}

std::shared_ptr<core::Task> TaskFuture::get() {
  if (!stream_) throw UsageError{"TaskFuture::get on an invalid future"};
  auto socket = std::move(stream_);
  await_reply(*socket, lease_, "compute server task");
  obs::runtime_histograms().task_rtt.record_shared(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - submitted_)
          .count()));
  auto in = make_in(socket);
  if (!in.read_bool()) {
    throw IoError{"compute server task failed: " + in.read_string()};
  }
  const ByteVector reply = in.read_bytes();
  auto object = dist::receive_object(local_, {reply.data(), reply.size()});
  if (!object) return nullptr;
  auto result = std::dynamic_pointer_cast<core::Task>(object);
  if (!result) {
    throw SerializationError{"compute server returned a non-Task object"};
  }
  return result;
}

void ProcessHandle::join() {
  if (!valid()) throw UsageError{"ProcessHandle::join on an invalid handle"};
  auto socket = net::dial_with_retry(net::default_transport(), endpoint_.host,
                                     endpoint_.port, {});
  auto out = make_out(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kJoinProcess));
  out.write_u64(id_);
  await_reply(*socket, lease_, "hosted process join");
  auto in = make_in(socket);
  if (!in.read_bool()) {
    throw IoError{"hosted process failed: " + in.read_string()};
  }
  in.read_string();
}

void ProcessHandle::abort() {
  if (!valid()) throw UsageError{"ProcessHandle::abort on an invalid handle"};
  auto socket = net::dial_with_retry(net::default_transport(), endpoint_.host,
                                     endpoint_.port, {});
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kAbortProcess));
  out.write_u64(id_);
  if (!in.read_bool()) {
    throw IoError{"abort failed: " + in.read_string()};
  }
  in.read_string();
}

ServerHandle::ServerHandle(Endpoint endpoint,
                           std::shared_ptr<dist::NodeContext> local,
                           fault::LeaseOptions lease,
                           fault::RetryPolicy retry)
    : endpoint_(std::move(endpoint)),
      local_(std::move(local)),
      lease_(lease),
      retry_(retry) {
  if (!local_) local_ = dist::NodeContext::default_node();
}

ServerHandle ServerHandle::lookup(const std::string& registry_host,
                                  std::uint16_t registry_port,
                                  const std::string& name,
                                  std::shared_ptr<dist::NodeContext> local,
                                  fault::LeaseOptions lease,
                                  fault::RetryPolicy retry) {
  RegistryClient client{registry_host, registry_port, retry};
  auto endpoint = client.lookup(name);
  if (!endpoint) {
    throw NetError{"no compute server named '" + name + "' in the registry"};
  }
  ServerHandle handle{*endpoint, std::move(local), lease, retry};
  handle.provenance_ =
      Provenance{registry_host, registry_port, name};
  return handle;
}

std::shared_ptr<net::Stream> ServerHandle::connect_() {
  try {
    return net::dial_with_retry(net::default_transport(), endpoint_.host,
                                endpoint_.port, retry_);
  } catch (const NetError&) {
    if (provenance_) {
      // NACK the registry entry so repeated failures evict it; best
      // effort -- the original connect failure is what the caller needs.
      try {
        RegistryClient client{provenance_->registry_host,
                              provenance_->registry_port, retry_};
        client.report_unreachable(provenance_->name, endpoint_);
      } catch (const std::exception&) {
      }
    }
    throw;
  }
}

ProcessHandle ServerHandle::submit(
    const std::shared_ptr<core::Process>& process) {
  // Connect before serializing: shipping has side effects on the live
  // graph (endpoints are switched onto pending sockets), so an
  // unreachable server must fail before any of that happens.
  auto socket = connect_();
  const ByteVector shipment = dist::ship_process(local_, process);
  auto out = make_out(socket);
  auto in = make_in(socket);
  if (obs::trace_enabled()) {
    // Stamp the handshake so this SHIP and the server's matching receive
    // form a causally-linked span pair in the merged trace.
    auto& ambient = obs::current_trace_context();
    if (!ambient.valid()) {
      ambient.trace_id = obs::new_trace_id();
      ambient.flags = obs::TraceContext::kSampled;
    }
    obs::TraceContext ctx = ambient;
    ctx.span_id = obs::next_span_id();
    std::uint8_t raw[obs::TraceContext::kWireSize];
    ctx.encode(raw);
    out.write_u8(static_cast<std::uint8_t>(Op::kSubmitTraced));
    out.write({raw, sizeof raw});
    DPN_TRACE_EVENT(obs::TraceKind::kShipSend, "submit", ctx.span_id,
                    shipment.size());
  } else {
    out.write_u8(static_cast<std::uint8_t>(Op::kSubmitProcess));
  }
  out.write_bytes({shipment.data(), shipment.size()});
  const bool ok = in.read_bool();
  const std::string error = in.read_string();
  const std::uint64_t id = in.read_u64();
  if (!ok) {
    throw IoError{"compute server rejected process: " + error};
  }
  return ProcessHandle{endpoint_, id, lease_};
}

TaskFuture ServerHandle::submit(const std::shared_ptr<core::Task>& task) {
  const ByteVector shipment = dist::ship_object(local_, task);
  auto socket = connect_();
  auto out = make_out(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kRunTask));
  out.write_bytes({shipment.data(), shipment.size()});
  return TaskFuture{socket, local_, lease_};
}

obs::NetworkSnapshot ServerHandle::stats() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kStats));
  if (!in.read_bool()) throw IoError{"compute server stats failed"};
  const ByteVector reply = in.read_bytes();
  return obs::NetworkSnapshot::decode({reply.data(), reply.size()});
}

std::optional<obs::NetworkSnapshot> StatsStream::next() {
  if (!stream_) return std::nullopt;
  auto in = make_in(stream_);
  try {
    if (!in.read_bool()) {
      stream_.reset();  // clean end-of-stream
      return std::nullopt;
    }
    const ByteVector reply = in.read_bytes();
    return obs::NetworkSnapshot::decode({reply.data(), reply.size()});
  } catch (const IoError&) {
    stream_.reset();  // server went away mid-stream
    return std::nullopt;
  }
}

StatsStream ServerHandle::stats_stream(std::chrono::milliseconds interval,
                                       std::uint32_t count) {
  auto socket = connect_();
  auto out = make_out(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kStatsStream));
  out.write_u32(static_cast<std::uint32_t>(
      std::max<std::chrono::milliseconds::rep>(interval.count(), 1)));
  out.write_u32(count);
  return StatsStream{std::move(socket)};
}

obs::TraceExport ServerHandle::trace_export() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kTrace));
  if (!in.read_bool()) throw IoError{"compute server trace failed"};
  const ByteVector reply = in.read_bytes();
  return obs::TraceExport::decode({reply.data(), reply.size()});
}

std::pair<std::int64_t, std::uint64_t> ServerHandle::probe_clock() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  const std::uint64_t t0 = steady_now_ns();
  out.write_u8(static_cast<std::uint8_t>(Op::kTimeSync));
  if (!in.read_bool()) throw IoError{"compute server time sync failed"};
  const std::uint64_t server_now = in.read_u64();
  const std::uint64_t t1 = steady_now_ns();
  const std::uint64_t midpoint = t0 + (t1 - t0) / 2;
  return {static_cast<std::int64_t>(server_now) -
              static_cast<std::int64_t>(midpoint),
          t1 - t0};
}

void ServerHandle::ping() {
  auto socket = connect_();
  auto out = make_out(socket);
  auto in = make_in(socket);
  out.write_u8(static_cast<std::uint8_t>(Op::kPing));
  if (!in.read_bool()) throw NetError{"ping failed"};
  in.read_string();
}

obs::NetworkSnapshot fleet_stats(std::vector<ServerHandle>& servers) {
  obs::NetworkSnapshot fleet;
  bool first = true;
  for (ServerHandle& server : servers) {
    obs::NetworkSnapshot snap = server.stats();
    log::info("fleet_stats: peer ", server.endpoint().host, ":",
              server.endpoint().port, " snapshot v",
              static_cast<unsigned>(snap.version));
    if (first) {
      fleet = std::move(snap);
      first = false;
    } else {
      // Mixed-revision fleets merge on the common version prefix rather
      // than dropping old peers; the result's version records the fleet's
      // common denominator.
      fleet.merge_from(std::move(snap));
    }
  }
  return fleet;
}

std::string fleet_trace(std::vector<ServerHandle>& servers) {
  // The local host's own events (node tag 0) anchor the timeline.
  const obs::Tracer& tracer = obs::Tracer::instance();
  obs::TraceExport local = tracer.export_events(0);
  std::vector<obs::TraceEvent> merged;
  std::uint64_t recorded = local.recorded;
  std::uint64_t dropped = local.dropped;
  // Work on one absolute (local steady-clock) timeline first; shifted to
  // zero at the end so the JSON's microsecond timestamps stay small.
  std::vector<std::pair<obs::TraceEvent, std::int64_t>> absolute;
  for (const auto& event : local.events) {
    absolute.emplace_back(event, static_cast<std::int64_t>(event.ts_ns) +
                                     static_cast<std::int64_t>(local.epoch_ns));
  }
  for (ServerHandle& server : servers) {
    obs::TraceExport remote = server.trace_export();
    // recorded/dropped are Tracer-wide; in-process fleets share one
    // Tracer, so take the max rather than summing the same ring N times.
    recorded = std::max(recorded, remote.recorded);
    dropped = std::max(dropped, remote.dropped);
    // Cristian's algorithm: repeat the probe, keep the minimum-RTT
    // sample -- the tightest bound on the peer's clock offset.  (For an
    // in-process fleet the true offset is 0; the estimate's error is
    // bounded by the best half-RTT either way.)
    std::int64_t offset = 0;
    std::uint64_t best_rtt = ~std::uint64_t{0};
    for (int i = 0; i < 5; ++i) {
      const auto [sample, rtt] = server.probe_clock();
      if (rtt < best_rtt) {
        best_rtt = rtt;
        offset = sample;
      }
    }
    for (const auto& event : remote.events) {
      absolute.emplace_back(
          event, static_cast<std::int64_t>(event.ts_ns) +
                     static_cast<std::int64_t>(remote.epoch_ns) - offset);
    }
  }
  if (absolute.empty()) return obs::chrome_trace_json({}, recorded, dropped);
  std::int64_t origin = absolute.front().second;
  for (const auto& [event, ts] : absolute) origin = std::min(origin, ts);
  std::sort(absolute.begin(), absolute.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  merged.reserve(absolute.size());
  for (auto& [event, ts] : absolute) {
    event.ts_ns = static_cast<std::uint64_t>(ts - origin);
    merged.push_back(event);
  }
  return obs::chrome_trace_json(merged, recorded, dropped);
}

}  // namespace dpn::rmi
