#pragma once

#include <memory>

#include "core/process.hpp"
#include "rmi/compute_server.hpp"

namespace dpn::rmi {

/// Moves a *running* iterative process to a compute server -- the
/// re-distribution-after-execution-has-begun of the paper's Section 6.1:
///
///  1. parks the process at its next step boundary (its in-flight channel
///     I/O completes first, so no element is torn);
///  2. ships it -- remaining iteration budget, mutable state, channel
///     endpoints and the unconsumed bytes inside them travel along, and
///     the cut channels reconnect to the new host automatically
///     (Section 4.2/4.3);
///  3. abandons the local instance, whose run() returns without touching
///     the endpoints it no longer owns.
///
/// Returns false if the process finished before it could be parked (there
/// was nothing left to migrate).  If the server rejects the shipment the
/// process is resumed in place and the error rethrown, so a failed
/// migration never loses work.
bool migrate(const std::shared_ptr<core::IterativeProcess>& process,
             ServerHandle& destination);

}  // namespace dpn::rmi
