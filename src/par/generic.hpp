#pragma once

#include <functional>
#include <memory>

#include "core/process.hpp"
#include "core/task.hpp"
#include "io/data.hpp"

/// Generic computing with active objects (paper Section 5.1).
///
/// Tasks travel through channels as *blobs* (length-prefixed serialized
/// objects), so the Producer, Worker, and Consumer processes are fully
/// application-independent: the computation lives in the Task objects.
/// A producer Task's run() yields a worker Task; a worker Task's run()
/// yields a consumer Task; a consumer Task's run() absorbs the result.
namespace dpn::par {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;
using core::Task;

/// Returned by a consumer Task's run() to request data-dependent
/// termination of the whole network (e.g. "factor found, stop searching").
class StopSignal final : public Task {
 public:
  std::shared_ptr<Task> run() override { return nullptr; }
  std::string type_name() const override { return "dpn.par.StopSignal"; }
  void write_fields(serial::ObjectOutputStream&) const override {}
  static std::shared_ptr<StopSignal> read_object(serial::ObjectInputStream&) {
    return std::make_shared<StopSignal>();
  }
};

/// Serializes `task` into a channel as one blob.
void write_task(io::DataOutputStream& out, const std::shared_ptr<Task>& task);

/// Reads one task blob from a channel; throws EndOfStream at end.
std::shared_ptr<Task> read_task(io::DataInputStream& in);

/// Repeatedly invokes run() on its producer task and writes each yielded
/// task downstream.  Stops when the producer task yields null (or at its
/// iteration limit).
class Producer final : public IterativeProcess {
 public:
  Producer(std::shared_ptr<Task> task, std::shared_ptr<ChannelOutputStream> out,
           long iterations = 0);

  std::string type_name() const override { return "dpn.par.Producer"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Producer> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Producer() = default;
  std::shared_ptr<Task> task_;
};

/// Reads a task, runs it, writes the result.
class Worker final : public IterativeProcess {
 public:
  Worker(std::shared_ptr<ChannelInputStream> in,
         std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.par.Worker"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Worker> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Worker() = default;
};

/// Reads a task, runs it, discards the result -- unless the result is a
/// StopSignal, in which case the Consumer stops, closing its input and
/// triggering the cascading termination of the upstream network.
///
/// An optional local observer sees every task before it runs (used by
/// tests and benchmarks to collect results); a Consumer with an observer
/// cannot be shipped.
class Consumer final : public IterativeProcess {
 public:
  using Observer = std::function<void(const std::shared_ptr<Task>&)>;

  explicit Consumer(std::shared_ptr<ChannelInputStream> in,
                    long iterations = 0, Observer observer = {});

  std::string type_name() const override { return "dpn.par.Consumer"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Consumer> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Consumer() = default;
  Observer observer_;
};

}  // namespace dpn::par
