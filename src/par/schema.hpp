#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/network.hpp"
#include "core/process.hpp"
#include "par/generic.hpp"

/// The parallel-worker schemas of paper Section 5.
///
/// Both schemas replace the single worker of the Figure 1 pipeline with N
/// parallel workers, and both present *identical* results in *identical*
/// order to the consumer:
///
///  * meta_static  (Figure 16): Scatter and Gather move tasks round-robin,
///    so every worker gets the same number of tasks.  Throughput is gated
///    by the slowest worker.
///  * meta_dynamic (Figures 17/18): a Direct process routes each task to
///    the worker named by the index stream; the indexed merge (Turnstile +
///    Select, with an initial 0..N-1 prefix spliced in by a Cons) emits
///    that index stream in completion order, so each completed task pulls
///    the next task to the worker that finished it -- on-demand load
///    balancing.  The Turnstile is non-determinate, but the schema is well
///    behaved: its input-output relation does not depend on arrival order.
namespace dpn::par {

/// Builds the worker process for slot `index` reading tasks from `in` and
/// writing results to `out`.  The default factory creates the generic
/// par::Worker; the cluster simulation substitutes throttled workers.
using WorkerFactory = std::function<std::shared_ptr<core::Process>(
    std::size_t index, std::shared_ptr<core::ChannelInputStream> in,
    std::shared_ptr<core::ChannelOutputStream> out)>;

struct SchemaOptions {
  /// Template for the channels created inside the schema (capacity and
  /// endpoint buffering); the label is replaced with a per-channel one
  /// ("dynamic.task.3", ...).
  core::ChannelOptions channel{};
  /// If set, every channel created inside the schema is registered with
  /// this network's deadlock monitor.
  core::Network* watch = nullptr;
  /// meta_dynamic only: attach a shared WorkerLedger to the Direct /
  /// Turnstile / Select trio and wrap each worker in Supervised, so a
  /// worker crash is contained and its in-flight tasks are re-issued to
  /// the survivors with the output unchanged (docs/FAULTS.md).  The
  /// resulting composite cannot be shipped remotely (the ledger is shared
  /// local state); disable for a shippable schema.
  bool fault_tolerant = true;
};

/// Containment wrapper for schema workers: an unexpected exception (not
/// an IoError, which is the normal stop signal) is logged and converted
/// into a clean shutdown of the worker's endpoints instead of tearing
/// down the whole composite.  The closed result channel is what the
/// fault-tolerant meta_dynamic machinery detects as worker death.
class Supervised final : public core::Process {
 public:
  explicit Supervised(std::shared_ptr<core::Process> inner)
      : inner_(std::move(inner)) {}

  void run() override;
  std::string type_name() const override { return "dpn.par.Supervised"; }
  std::string name() const override;
  std::vector<std::shared_ptr<core::ChannelInputStream>> channel_inputs()
      const override {
    return inner_->channel_inputs();
  }
  std::vector<std::shared_ptr<core::ChannelOutputStream>> channel_outputs()
      const override {
    return inner_->channel_outputs();
  }
  std::vector<std::shared_ptr<core::Process>> subprocesses() const override {
    return {inner_};
  }

  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Supervised> read_object(
      serial::ObjectInputStream& in);

 private:
  Supervised() = default;
  std::shared_ptr<core::Process> inner_;
};

/// Figure 16: Scatter -> N workers -> Gather between `in` and `out`.
std::shared_ptr<core::CompositeProcess> meta_static(
    std::shared_ptr<core::ChannelInputStream> in,
    std::shared_ptr<core::ChannelOutputStream> out, std::size_t n_workers,
    const WorkerFactory& factory = {}, const SchemaOptions& options = {});

/// Figures 17/18: Direct -> N workers -> indexed merge between `in` and
/// `out`.
std::shared_ptr<core::CompositeProcess> meta_dynamic(
    std::shared_ptr<core::ChannelInputStream> in,
    std::shared_ptr<core::ChannelOutputStream> out, std::size_t n_workers,
    const WorkerFactory& factory = {}, const SchemaOptions& options = {});

/// Figure 1: Producer -> stage -> Consumer.  `make_stage` receives the
/// channel endpoints between producer and consumer and returns the middle
/// process (a single Worker, or a meta_static/meta_dynamic composite).
/// Returns the complete runnable composite.
std::shared_ptr<core::CompositeProcess> pipeline(
    std::shared_ptr<Task> producer_task, Consumer::Observer observer,
    const std::function<std::shared_ptr<core::Process>(
        std::shared_ptr<core::ChannelInputStream>,
        std::shared_ptr<core::ChannelOutputStream>)>& make_stage,
    const SchemaOptions& options = {});

}  // namespace dpn::par
