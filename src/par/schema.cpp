#include "par/schema.hpp"

#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/ledger.hpp"
#include "processes/router.hpp"
#include "support/log.hpp"

namespace dpn::par {

void Supervised::run() {
  try {
    inner_->run();
    return;
  } catch (const IoError&) {
    // The normal stop signal escaped a non-iterative worker; a clean
    // shutdown below is exactly what it wants anyway.
  } catch (const std::exception& e) {
    log::warn("worker '", inner_->name(), "' crashed: ", e.what(),
              " -- containing it (in-flight tasks will be re-issued)");
  }
  // IterativeProcess closes its endpoints on every exit path; this is for
  // worker implementations that don't.
  for (const auto& in : inner_->channel_inputs()) {
    try {
      in->close();
    } catch (...) {
    }
  }
  for (const auto& out : inner_->channel_outputs()) {
    try {
      out->close();
    } catch (...) {
    }
  }
}

std::string Supervised::name() const {
  return "Supervised(" + inner_->name() + ")";
}

void Supervised::write_fields(serial::ObjectOutputStream& out) const {
  out.write_object(inner_);
}

std::shared_ptr<Supervised> Supervised::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Supervised>(new Supervised);
  process->inner_ = in.read_object_as<core::Process>();
  return process;
}

namespace {

[[maybe_unused]] const bool kRegistered =
    serial::register_type<Supervised>("dpn.par.Supervised");

std::shared_ptr<core::Channel> make_channel(const SchemaOptions& options,
                                            std::string label) {
  core::ChannelOptions channel_options = options.channel;
  channel_options.label = std::move(label);
  auto channel = std::make_shared<core::Channel>(std::move(channel_options));
  if (options.watch != nullptr) options.watch->watch(channel);
  return channel;
}

std::shared_ptr<core::Process> make_worker(const WorkerFactory& factory,
                                           std::size_t index,
                                           std::shared_ptr<core::ChannelInputStream> in,
                                           std::shared_ptr<core::ChannelOutputStream> out) {
  if (factory) return factory(index, std::move(in), std::move(out));
  return std::make_shared<Worker>(std::move(in), std::move(out));
}

}  // namespace

std::shared_ptr<core::CompositeProcess> meta_static(
    std::shared_ptr<core::ChannelInputStream> in,
    std::shared_ptr<core::ChannelOutputStream> out, std::size_t n_workers,
    const WorkerFactory& factory, const SchemaOptions& options) {
  if (n_workers == 0) throw UsageError{"meta_static needs >= 1 worker"};
  auto composite = std::make_shared<core::CompositeProcess>();

  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  for (std::size_t i = 0; i < n_workers; ++i) {
    auto tasks = make_channel(options, "static.task." + std::to_string(i));
    auto results =
        make_channel(options, "static.result." + std::to_string(i));
    composite->add(
        make_worker(factory, i, tasks->input(), results->output()));
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }
  composite->add(
      std::make_shared<processes::Scatter>(std::move(in), std::move(task_outs)));
  composite->add(std::make_shared<processes::Gather>(std::move(result_ins),
                                                     std::move(out)));
  return composite;
}

std::shared_ptr<core::CompositeProcess> meta_dynamic(
    std::shared_ptr<core::ChannelInputStream> in,
    std::shared_ptr<core::ChannelOutputStream> out, std::size_t n_workers,
    const WorkerFactory& factory, const SchemaOptions& options) {
  if (n_workers == 0) throw UsageError{"meta_dynamic needs >= 1 worker"};
  auto composite = std::make_shared<core::CompositeProcess>();

  // Worker-failure recovery: the ledger is shared by Direct, Turnstile
  // and Select, and Supervised keeps a crashing worker from tearing down
  // the composite (its closed result channel is the failure signal).
  std::shared_ptr<processes::WorkerLedger> ledger;
  if (options.fault_tolerant) {
    ledger = std::make_shared<processes::WorkerLedger>(n_workers);
  }

  // Workers and their channels.
  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  for (std::size_t i = 0; i < n_workers; ++i) {
    auto tasks = make_channel(options, "dynamic.task." + std::to_string(i));
    auto results =
        make_channel(options, "dynamic.result." + std::to_string(i));
    auto worker = make_worker(factory, i, tasks->input(), results->output());
    if (ledger) worker = std::make_shared<Supervised>(std::move(worker));
    composite->add(std::move(worker));
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }

  // Indexed merge (Figure 18): the Turnstile forwards results in arrival
  // order as (worker index, blob) pairs for the Select, and publishes the
  // bare worker indices on the tag stream that drives dispatch.
  auto merged = make_channel(options, "dynamic.merged");
  auto tags = make_channel(options, "dynamic.tags");
  auto turnstile = std::make_shared<processes::Turnstile>(
      std::move(result_ins), merged->output(), tags->output());
  if (ledger) turnstile->set_ledger(ledger);
  composite->add(std::move(turnstile));

  // The "(n)" of Figure 18: an initial 0..N-1 prefix spliced ahead of the
  // completion-order indices, so the first N tasks seed the workers.  The
  // Cons removes itself once the prefix has flowed (Figures 9/10).
  auto prefix = make_channel(options, "dynamic.prefix");
  composite->add(std::make_shared<processes::Sequence>(
      0, prefix->output(), static_cast<long>(n_workers)));
  auto index = make_channel(options, "dynamic.index");
  composite->add(std::make_shared<processes::Cons>(
      prefix->input(), tags->input(), index->output()));

  auto direct = std::make_shared<processes::Direct>(
      std::move(in), index->input(), std::move(task_outs));
  if (ledger) direct->set_ledger(ledger);
  composite->add(std::move(direct));
  // The Select reconstructs the same index sequence internally from the
  // pair stream, so the two sides stay in lock-step without sharing a
  // duplicated channel.  (With a ledger it re-orders by recorded task
  // position instead, which survives re-issue.)
  auto select = std::make_shared<processes::Select>(merged->input(),
                                                    std::move(out), n_workers);
  if (ledger) select->set_ledger(ledger);
  composite->add(std::move(select));
  return composite;
}

std::shared_ptr<core::CompositeProcess> pipeline(
    std::shared_ptr<Task> producer_task, Consumer::Observer observer,
    const std::function<std::shared_ptr<core::Process>(
        std::shared_ptr<core::ChannelInputStream>,
        std::shared_ptr<core::ChannelOutputStream>)>& make_stage,
    const SchemaOptions& options) {
  auto composite = std::make_shared<core::CompositeProcess>();
  auto tasks = make_channel(options, "pipeline.tasks");
  auto results = make_channel(options, "pipeline.results");
  composite->add(
      std::make_shared<Producer>(std::move(producer_task), tasks->output()));
  composite->add(make_stage(tasks->input(), results->output()));
  composite->add(std::make_shared<Consumer>(results->input(), 0,
                                            std::move(observer)));
  return composite;
}

}  // namespace dpn::par
