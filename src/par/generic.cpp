#include "par/generic.hpp"

#include "obs/trace.hpp"

namespace dpn::par {

void write_task(io::DataOutputStream& out,
                const std::shared_ptr<Task>& task) {
  const ByteVector blob = serial::to_bytes(task);
  out.write_bytes({blob.data(), blob.size()});
}

std::shared_ptr<Task> read_task(io::DataInputStream& in) {
  const ByteVector blob = in.read_bytes();
  auto object = serial::from_bytes({blob.data(), blob.size()});
  if (!object) return nullptr;
  auto task = std::dynamic_pointer_cast<Task>(object);
  if (!task) {
    throw SerializationError{"channel blob is not a Task (got '" +
                             object->type_name() + "')"};
  }
  return task;
}

Producer::Producer(std::shared_ptr<Task> task,
                   std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations), task_(std::move(task)) {
  if (!task_) throw UsageError{"Producer needs a task"};
  track_output(std::move(out));
}

void Producer::step() {
  auto next = task_->run();
  if (!next) throw EndOfStream{"producer task exhausted"};
  DPN_TRACE_EVENT(obs::TraceKind::kTaskDispatch, next->type_name());
  io::DataOutputStream out{output(0)};
  write_task(out, next);
}

void Producer::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_object(task_);
}

std::shared_ptr<Producer> Producer::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Producer>(new Producer);
  process->read_base(in);
  process->task_ = in.read_object_as<Task>();
  return process;
}

Worker::Worker(std::shared_ptr<ChannelInputStream> in,
               std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  track_input(std::move(in));
  track_output(std::move(out));
}

void Worker::step() {
  io::DataInputStream in{input(0)};
  auto task = read_task(in);
  if (!task) throw SerializationError{"worker received a null task"};
  auto result = task->run();
  DPN_TRACE_EVENT(obs::TraceKind::kTaskComplete, task->type_name());
  io::DataOutputStream out{output(0)};
  write_task(out, result);
}

void Worker::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Worker> Worker::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Worker>(new Worker);
  process->read_base(in);
  return process;
}

Consumer::Consumer(std::shared_ptr<ChannelInputStream> in, long iterations,
                   Observer observer)
    : IterativeProcess(iterations), observer_(std::move(observer)) {
  track_input(std::move(in));
}

void Consumer::step() {
  io::DataInputStream in{input(0)};
  auto task = read_task(in);
  if (!task) return;  // null results are legal and ignored
  if (observer_) observer_(task);
  auto outcome = task->run();
  if (outcome && std::dynamic_pointer_cast<StopSignal>(outcome)) {
    throw EndOfStream{"consumer requested stop"};
  }
}

void Consumer::write_fields(serial::ObjectOutputStream& out) const {
  if (observer_) {
    throw SerializationError{"Consumer with a local observer cannot ship"};
  }
  write_base(out);
}

std::shared_ptr<Consumer> Consumer::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Consumer>(new Consumer);
  process->read_base(in);
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<StopSignal>("dpn.par.StopSignal") &&
    serial::register_type<Producer>("dpn.par.Producer") &&
    serial::register_type<Worker>("dpn.par.Worker") &&
    serial::register_type<Consumer>("dpn.par.Consumer");
}

}  // namespace dpn::par
