#pragma once

#include <memory>

#include "serial/serial.hpp"

namespace dpn::core {

/// A unit of work that can be shipped to a compute server (paper Sections
/// 4.1 and 5.1).  `run` does the work and returns its result -- which is
/// itself a Task, so results can be shipped onward: a producer Task yields
/// a worker Task, a worker Task yields a consumer Task.  The computation
/// is defined by the objects carrying the data, not by the processes,
/// which is what makes the paper's Producer/Worker/Consumer processes and
/// the MetaStatic/MetaDynamic compositions fully generic.
class Task : public serial::Serializable {
 public:
  virtual std::shared_ptr<Task> run() = 0;
};

}  // namespace dpn::core
