#include "core/process.hpp"

#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "support/log.hpp"

namespace dpn::core {

namespace {

/// Runs on_stop + close_all on every exit path (the paper's `finally`).
class StopGuard {
 public:
  explicit StopGuard(std::function<void()> action)
      : action_(std::move(action)) {}
  ~StopGuard() {
    try {
      action_();
    } catch (...) {
      // Cleanup must not mask the original failure.
    }
  }

 private:
  std::function<void()> action_;
};

}  // namespace

void IterativeProcess::run() {
  stats()->set_state(obs::ProcessState::kRunning);
  DPN_TRACE_EVENT(obs::TraceKind::kProcessStart, name());
  bool abandoned = false;
  StopGuard guard{[this, &abandoned] {
    // Either way the local instance is done: a shipped process's successor
    // carries its own stats object.
    stats()->set_state(obs::ProcessState::kFinished);
    DPN_TRACE_EVENT(obs::TraceKind::kProcessStop, name(),
                    stats()->steps.load(std::memory_order_relaxed));
    if (abandoned) return;  // endpoints belong to the migrated successor
    on_stop();
    close_all();
  }};
  try {
    on_start();
    if (iterations_ > 0) {
      // iterations_ is decremented as steps run so that a process paused
      // and shipped mid-run carries exactly its remaining budget.
      while (iterations_ > 0) {
        if (!pause_point()) {
          abandoned = true;
          return;
        }
        --iterations_;
        step();
        obs::bump(stats()->steps, 1);
      }
    } else {
      for (;;) {
        if (!pause_point()) {
          abandoned = true;
          return;
        }
        step();
        obs::bump(stats()->steps, 1);
      }
    }
  } catch (const IoError&) {
    // Graceful stop: a neighbour closed a channel (Section 3.4), or the
    // deadlock monitor aborted the network.  The guard closes our
    // endpoints, continuing the cascade.
    log::debug("process ", name(), " stopped by I/O");
  }
  std::scoped_lock lock{state_mutex_};
  state_ = RunState::kFinished;
  state_cv_.notify_all();
}

void IterativeProcess::request_pause() {
  std::scoped_lock lock{state_mutex_};
  if (state_ == RunState::kIdle) {
    state_ = RunState::kPauseRequested;
    state_cv_.notify_all();
  }
}

bool IterativeProcess::await_pause() {
  std::unique_lock lock{state_mutex_};
  state_cv_.wait(lock, [&] {
    return state_ == RunState::kPaused || state_ == RunState::kFinished;
  });
  return state_ == RunState::kPaused;
}

void IterativeProcess::resume() {
  {
    std::scoped_lock lock{state_mutex_};
    if (state_ != RunState::kPaused) {
      throw UsageError{"resume() on a process that is not paused"};
    }
    state_ = RunState::kIdle;
  }
  state_cv_.notify_all();
}

void IterativeProcess::abandon() {
  {
    std::scoped_lock lock{state_mutex_};
    if (state_ != RunState::kPaused) {
      throw UsageError{"abandon() on a process that is not paused"};
    }
    state_ = RunState::kAbandoned;
  }
  state_cv_.notify_all();
}

bool IterativeProcess::paused() const {
  std::scoped_lock lock{state_mutex_};
  return state_ == RunState::kPaused;
}

bool IterativeProcess::pause_point() {
  std::unique_lock lock{state_mutex_};
  if (state_ != RunState::kPauseRequested) return true;
  state_ = RunState::kPaused;
  stats()->set_state(obs::ProcessState::kPaused);
  state_cv_.notify_all();
  state_cv_.wait(lock, [&] {
    return state_ == RunState::kIdle || state_ == RunState::kAbandoned;
  });
  stats()->set_state(obs::ProcessState::kRunning);
  return state_ != RunState::kAbandoned;
}

void IterativeProcess::close_all() {
  for (const auto& in : inputs_) {
    try {
      in->close();
    } catch (...) {
    }
  }
  for (const auto& out : outputs_) {
    try {
      out->close();
    } catch (...) {
    }
  }
}

void IterativeProcess::write_base(serial::ObjectOutputStream& out) const {
  out.write_i64(iterations_);
  out.write_varint(inputs_.size());
  for (const auto& in : inputs_) out.write_object(in);
  out.write_varint(outputs_.size());
  for (const auto& o : outputs_) out.write_object(o);
}

void IterativeProcess::read_base(serial::ObjectInputStream& in) {
  iterations_ = in.read_i64();
  const std::uint64_t n_in = in.read_varint();
  inputs_.clear();
  inputs_.reserve(n_in);
  for (std::uint64_t i = 0; i < n_in; ++i) {
    inputs_.push_back(in.read_object_as<ChannelInputStream>());
    inputs_.back()->set_owner(stats());
  }
  const std::uint64_t n_out = in.read_varint();
  outputs_.clear();
  outputs_.reserve(n_out);
  for (std::uint64_t i = 0; i < n_out; ++i) {
    outputs_.push_back(in.read_object_as<ChannelOutputStream>());
    outputs_.back()->set_owner(stats());
  }
}

void append_process_snapshots(const Process& process,
                              std::vector<obs::ProcessSnapshot>& out) {
  obs::ProcessSnapshot p;
  p.name = process.name();
  p.state = process.stats()->get_state();
  p.steps = process.stats()->steps.load(std::memory_order_relaxed);
  out.push_back(std::move(p));
  for (const auto& child : process.subprocesses()) {
    if (child) append_process_snapshots(*child, out);
  }
}

void CompositeProcess::add(std::shared_ptr<Process> process) {
  if (!process) throw UsageError{"CompositeProcess::add(nullptr)"};
  processes_.push_back(std::move(process));
}

void CompositeProcess::run() {
  std::mutex failures_mutex;
  std::vector<std::exception_ptr> failures;
  // Child contexts inherit the spawning host's trace attribution -- a
  // ComputeServer tags its handler thread, and the graph it hosts may
  // fan out arbitrarily deep.
  const std::uint32_t node_tag = obs::node_tag();
  auto body_for = [&failures_mutex, &failures,
                   node_tag](std::shared_ptr<Process> process) {
    return
        [&failures_mutex, &failures, node_tag, process = std::move(process)] {
          obs::set_node_tag(node_tag);
          // Raw Process implementations don't maintain their own stats;
          // bracket them here (IterativeProcess overwrites redundantly).
          process->stats()->set_state(obs::ProcessState::kRunning);
          try {
            process->run();
          } catch (const IoError&) {
            // Graceful stop for raw Process implementations too.
          } catch (...) {
            std::scoped_lock lock{failures_mutex};
            failures.push_back(std::current_exception());
          }
          process->stats()->set_state(obs::ProcessState::kFinished);
        };
  };
  if (sched::Scheduler* scheduler = sched::Scheduler::current()) {
    // Already on the M:N scheduler: components become sibling fibers and
    // this fiber parks on a WaitGroup, so the worker underneath stays
    // free to run the very children being waited for.
    sched::WaitGroup done;
    done.add(processes_.size());
    for (const auto& process : processes_) {
      scheduler->spawn(
          [body = body_for(process), &done] {
            body();
            done.done();
          },
          process->name());
    }
    done.wait();
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(processes_.size());
    for (const auto& process : processes_) {
      threads.emplace_back(body_for(process));
    }
  }  // jthreads join here
  if (!failures.empty()) std::rethrow_exception(failures.front());
}

std::vector<std::shared_ptr<ChannelInputStream>>
CompositeProcess::channel_inputs() const {
  std::vector<std::shared_ptr<ChannelInputStream>> all;
  for (const auto& process : processes_) {
    auto ins = process->channel_inputs();
    all.insert(all.end(), ins.begin(), ins.end());
  }
  return all;
}

std::vector<std::shared_ptr<ChannelOutputStream>>
CompositeProcess::channel_outputs() const {
  std::vector<std::shared_ptr<ChannelOutputStream>> all;
  for (const auto& process : processes_) {
    auto outs = process->channel_outputs();
    all.insert(all.end(), outs.begin(), outs.end());
  }
  return all;
}

void CompositeProcess::write_fields(serial::ObjectOutputStream& out) const {
  out.write_varint(processes_.size());
  for (const auto& process : processes_) out.write_object(process);
}

std::shared_ptr<CompositeProcess> CompositeProcess::read_object(
    serial::ObjectInputStream& in) {
  auto composite = std::make_shared<CompositeProcess>();
  const std::uint64_t n = in.read_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    composite->add(in.read_object_as<Process>());
  }
  return composite;
}

namespace {
[[maybe_unused]] const bool kCompositeRegistered =
    serial::register_type<CompositeProcess>("dpn.CompositeProcess");
}

}  // namespace dpn::core
