#pragma once

#include <memory>
#include <string>

#include "io/blocking.hpp"
#include "io/buffered.hpp"
#include "io/pipe.hpp"
#include "io/sequence.hpp"
#include "io/typed_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "serial/serial.hpp"

/// Channels: the operational embodiment of Kahn's streams (paper
/// Section 3.1, Figure 3).
///
/// A Channel connects exactly one producing process to one consuming
/// process.  Each endpoint is a stream object a process holds on to:
///
///   ChannelOutputStream -> SequenceOutputStream -> Local/Frame output
///   ChannelInputStream  -> SequenceInputStream  -> Local/Memory/Frame input
///
/// The Sequence layer is what allows the transport underneath a live
/// channel to be swapped -- pipe to socket when an endpoint is shipped to
/// another server, upstream channel spliced in when a process removes
/// itself -- while preserving FIFO order and losing no bytes.
///
/// Serializing an endpoint (that is, shipping the process that owns it)
/// triggers automatic connection establishment; the hooks live in
/// dpn::dist and are installed through set_distribution_hooks below, so a
/// purely local program never pays for the networking machinery.
namespace dpn::core {

class ChannelInputStream;
class ChannelOutputStream;

/// Construction knobs for a Channel.  write_buffer/read_buffer of 0 (the
/// default) keep the endpoints write-through: every write crosses the pipe
/// mutex immediately and every ChannelClosed/window interaction is
/// observable per call.  Non-zero sizes interpose io::Buffered*Stream above
/// the Sequence layer -- the batched fast path.  Buffered producers must
/// flush() at rendezvous points their consumers wait on (or rely on
/// flush-on-close); see DESIGN.md "Performance architecture" for why KPN
/// determinacy is unaffected either way.
struct ChannelOptions {
  std::size_t capacity = io::Pipe::kDefaultCapacity;
  std::string label;
  std::size_t write_buffer = 0;
  std::size_t read_buffer = 0;

  /// Tuning applied if/when an endpoint of this channel is shipped to
  /// another server (ignored while the channel stays local):
  ///
  ///   make_channel({.label = "bulk",
  ///                 .remote = {.credit_window = 1 << 20,
  ///                            .coalesce_bytes = 64 << 10}});
  ///
  /// credit_window is the producer's flow-control window in bytes -- the
  /// remote channel's "capacity" -- and, on the mux backend, the logical
  /// stream's receive window.  coalesce_bytes is the consumer-side credit
  /// batching threshold (grants below it ride along instead of costing a
  /// frame each).  0 means the node / transport default.
  struct RemoteTuning {
    std::size_t credit_window = 0;
    std::size_t coalesce_bytes = 0;
  } remote;
};

/// Process-wide unique id for a ChannelState; stable for the life of the
/// state object.  Snapshots carry it so a growth decision computed from a
/// snapshot can be re-validated against the live network (the id survives
/// neither shipping nor decode -- a reconstructed remote endpoint gets a
/// fresh state and a fresh id, which is correct: it is a different local
/// object with its own pipe).
std::uint64_t next_channel_id();

/// State shared by the two endpoints of a channel while they can still see
/// each other (i.e. until one of them is shipped away).
struct ChannelState {
  /// The local pipe between the endpoints; null for an endpoint
  /// reconstructed on a remote server (its peer is behind a socket).
  std::shared_ptr<io::Pipe> pipe;
  std::weak_ptr<ChannelInputStream> input;
  std::weak_ptr<ChannelOutputStream> output;
  std::size_t capacity = io::Pipe::kDefaultCapacity;
  std::string label;
  /// Endpoint buffering config (0 = write-through).  Travels with shipped
  /// endpoints so a migrated channel keeps its performance profile.
  std::size_t write_buffer = 0;
  std::size_t read_buffer = 0;
  /// Set by the distribution layer when an endpoint has been shipped to
  /// another server; the remaining local endpoint then knows its peer is
  /// no longer reachable in this address space (used e.g. by Cons to
  /// decide whether self-removal splicing is possible).
  bool input_remote = false;
  bool output_remote = false;
  /// Remote-segment tuning (see ChannelOptions::RemoteTuning).  Travels
  /// with shipped endpoints like the buffering config above.
  ChannelOptions::RemoteTuning remote;
  /// Typed zero-copy fast path: while both endpoints are in-process,
  /// values move through this ring and the pipe stays empty.  Null for
  /// plain byte channels and for endpoints reconstructed on a remote
  /// server (the wire is bytes, so a shipped typed channel continues on
  /// the byte path).  Installed by make_typed_channel; demoted at the
  /// ship cut points (see io/typed_ring.hpp).
  std::shared_ptr<io::TypedRingBase> typed;
  /// Stable identity for snapshots (see next_channel_id above).
  std::uint64_t id = next_channel_id();
  /// Lock-free traffic counters, updated by the endpoints.  Shared_ptr so
  /// the serialization hooks can carry the counters across a shipment and
  /// hand them to the reconstructed state: metrics survive migration.
  std::shared_ptr<obs::ChannelMetrics> metrics =
      std::make_shared<obs::ChannelMetrics>();
};

/// Consuming endpoint of a channel.
class ChannelInputStream final
    : public io::InputStream,
      public serial::Serializable,
      public std::enable_shared_from_this<ChannelInputStream> {
 public:
  /// Used by Channel and by the distribution machinery; user code obtains
  /// endpoints from Channel::input().  A non-zero state->read_buffer
  /// interposes a BufferedInputStream above the sequence.
  ChannelInputStream(std::shared_ptr<ChannelState> state,
                     std::shared_ptr<io::SequenceInputStream> sequence);

  // --- io::InputStream (blocking reads; short reads allowed for byte
  // copies, full reads available via read_fully / DataInputStream) ---
  std::size_t read_some(MutableByteSpan out) override;
  int read() override;
  void close() override;

  /// Reads exactly out.size() bytes or throws EndOfStream (the blocking
  /// read discipline used by all element-structured processes).
  void read_fully(MutableByteSpan out);

  /// Unconsumed read-ahead bytes held above the sequence (empty for an
  /// unbuffered endpoint).  The migration protocol ships these as the
  /// oldest prefix of the channel's unconsumed history, ahead of
  /// Pipe::steal_buffer's bytes.
  ByteVector take_read_buffer();

  /// The splice point used by reconfiguration (Section 3.3) and by the
  /// remote machinery: streams appended here are drained after everything
  /// currently queued.
  io::SequenceInputStream& sequence() { return *sequence_; }
  const std::shared_ptr<io::SequenceInputStream>& sequence_ptr() const {
    return sequence_;
  }

  const std::shared_ptr<ChannelState>& state() const { return state_; }

  /// The read-ahead decorator, if this endpoint is buffered (else null).
  /// Snapshots read its buffered() through this.
  const std::shared_ptr<io::BufferedInputStream>& buffered_stream() const {
    return buffer_;
  }

  /// Installs the owning process's stats so blocking reads flip its
  /// observable state to blocked-reading.  Called by
  /// IterativeProcess::track_input; an unowned endpoint just skips the
  /// state flips.
  void set_owner(std::shared_ptr<obs::ProcessStats> owner) {
    owner_ = std::move(owner);
  }

  // --- serial::Serializable (serialization ships the endpoint) ---
  std::string type_name() const override { return "dpn.ChannelInputStream"; }
  void write_fields(serial::ObjectOutputStream&) const override;
  std::shared_ptr<serial::Serializable> write_replace(
      serial::ObjectOutputStream& out) override;

 private:
  std::shared_ptr<ChannelState> state_;
  std::shared_ptr<io::SequenceInputStream> sequence_;
  /// Set iff state_->read_buffer > 0; wraps sequence_.
  std::shared_ptr<io::BufferedInputStream> buffer_;
  /// The stream reads actually go through: buffer_ or sequence_.
  io::InputStream* source_ = nullptr;
  /// state_->metrics.get(), cached: the metrics object lives and dies
  /// with state_, and the extra pointer chase is measurable per-token.
  obs::ChannelMetrics* metrics_ = nullptr;
  std::shared_ptr<obs::ProcessStats> owner_;
};

/// Producing endpoint of a channel.
class ChannelOutputStream final
    : public io::OutputStream,
      public serial::Serializable,
      public std::enable_shared_from_this<ChannelOutputStream> {
 public:
  /// A non-zero state->write_buffer interposes a BufferedOutputStream
  /// above the sequence: token writes coalesce and cross the pipe mutex
  /// (or socket) once per buffer-full, not once per call.
  ChannelOutputStream(std::shared_ptr<ChannelState> state,
                      std::shared_ptr<io::SequenceOutputStream> sequence);

  // --- io::OutputStream (writes block while the channel is full --
  // Section 3.5's fairness mechanism -- and throw ChannelClosed once the
  // reader has closed -- Section 3.4's termination mechanism) ---
  void write(ByteSpan data) override;
  void write_byte(std::uint8_t b) override;
  void write_vectored(ByteSpan a, ByteSpan b) override;
  /// For a buffered endpoint: publishes coalesced bytes downstream.  The
  /// migration cut points (ship/redirect/switch) call this so exact byte
  /// positions exist where the protocols need them.
  void flush() override;
  void close() override;

  io::SequenceOutputStream& sequence() { return *sequence_; }
  const std::shared_ptr<io::SequenceOutputStream>& sequence_ptr() const {
    return sequence_;
  }

  const std::shared_ptr<ChannelState>& state() const { return state_; }

  /// The coalescing decorator, if this endpoint is buffered (else null).
  /// Snapshots read its buffered()/flush_count()/coalesced_writes().
  const std::shared_ptr<io::BufferedOutputStream>& buffered_stream() const {
    return buffer_;
  }

  /// See ChannelInputStream::set_owner; flips blocked-writing instead.
  void set_owner(std::shared_ptr<obs::ProcessStats> owner) {
    owner_ = std::move(owner);
  }

  // --- serial::Serializable ---
  std::string type_name() const override { return "dpn.ChannelOutputStream"; }
  void write_fields(serial::ObjectOutputStream&) const override;
  std::shared_ptr<serial::Serializable> write_replace(
      serial::ObjectOutputStream& out) override;

 private:
  std::shared_ptr<ChannelState> state_;
  std::shared_ptr<io::SequenceOutputStream> sequence_;
  /// Set iff state_->write_buffer > 0; wraps sequence_.
  std::shared_ptr<io::BufferedOutputStream> buffer_;
  /// The stream writes actually go through: buffer_ or sequence_.
  io::OutputStream* sink_ = nullptr;
  /// state_->metrics.get(), cached (see ChannelInputStream::metrics_).
  obs::ChannelMetrics* metrics_ = nullptr;
  std::shared_ptr<obs::ProcessStats> owner_;
};

/// A first-in first-out connection between two processes.
class Channel {
 public:
  explicit Channel(std::size_t capacity = io::Pipe::kDefaultCapacity,
                   std::string label = {});
  explicit Channel(ChannelOptions options);

  /// The producing endpoint (paper: getOutputStream).  Exactly one process
  /// should hold it.
  const std::shared_ptr<ChannelOutputStream>& output() const { return out_; }

  /// The consuming endpoint (paper: getInputStream).
  const std::shared_ptr<ChannelInputStream>& input() const { return in_; }

  const std::shared_ptr<ChannelState>& state() const { return state_; }
  const std::shared_ptr<io::Pipe>& pipe() const { return state_->pipe; }

 private:
  std::shared_ptr<ChannelState> state_;
  std::shared_ptr<ChannelInputStream> in_;
  std::shared_ptr<ChannelOutputStream> out_;
};

/// Hooks installed by dpn::dist.  Serializing a channel endpoint without
/// hooks installed is a usage error: a purely local program has no business
/// shipping endpoints, and the core library does not depend on sockets.
struct DistributionHooks {
  std::function<std::shared_ptr<serial::Serializable>(
      const std::shared_ptr<ChannelInputStream>&, serial::ObjectOutputStream&)>
      replace_input;
  std::function<std::shared_ptr<serial::Serializable>(
      const std::shared_ptr<ChannelOutputStream>&,
      serial::ObjectOutputStream&)>
      replace_output;
};

void set_distribution_hooks(DistributionHooks hooks);
const DistributionHooks& distribution_hooks();

/// Builds the observability row for one channel: traffic counters from the
/// shared metrics, occupancy/pressure from the pipe (when local), batching
/// counters from whichever endpoints are still reachable.  Used by
/// Network::snapshot() and by a ComputeServer answering STATS for its
/// hosted processes.
obs::ChannelSnapshot snapshot_channel(const ChannelState& state);

}  // namespace dpn::core
