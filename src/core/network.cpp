#include "core/network.hpp"

#include <algorithm>
#include <set>

#include "support/log.hpp"

namespace dpn::core {

Network::~Network() {
  // jthread members join on destruction; nothing else to do.
}

void Network::add(std::shared_ptr<Process> process) {
  if (started_) throw UsageError{"Network::add after start"};
  if (!process) throw UsageError{"Network::add(nullptr)"};
  processes_.push_back(std::move(process));
}

std::shared_ptr<Channel> Network::make_channel(std::size_t capacity,
                                               std::string label) {
  auto channel = std::make_shared<Channel>(capacity, std::move(label));
  watch(channel);
  return channel;
}

void Network::watch(const std::shared_ptr<Channel>& channel) {
  std::scoped_lock lock{channels_mutex_};
  channels_.push_back(channel->state());
}

void Network::enable_monitor(MonitorOptions options) {
  monitor_enabled_ = true;
  options_ = options;
}

void Network::start() {
  if (started_) throw UsageError{"Network::start called twice"};
  started_ = true;

  // Discover channels referenced by the processes (deduplicated with any
  // explicitly watched ones).
  {
    std::scoped_lock lock{channels_mutex_};
    std::set<const ChannelState*> seen;
    for (const auto& state : channels_) seen.insert(state.get());
    for (const auto& process : processes_) {
      for (const auto& in : process->channel_inputs()) {
        if (seen.insert(in->state().get()).second) {
          channels_.push_back(in->state());
        }
      }
      for (const auto& out : process->channel_outputs()) {
        if (seen.insert(out->state().get()).second) {
          channels_.push_back(out->state());
        }
      }
    }
  }

  live_.store(processes_.size());
  threads_.reserve(processes_.size());
  for (const auto& process : processes_) {
    threads_.emplace_back([this, process] {
      try {
        process->run();
      } catch (const IoError&) {
        // Graceful stop.
      } catch (...) {
        std::scoped_lock lock{failures_mutex_};
        failures_.push_back(std::current_exception());
      }
      live_.fetch_sub(1);
    });
  }
  if (monitor_enabled_) {
    monitor_thread_ = std::jthread{[this](std::stop_token st) {
      monitor_loop(st);
    }};
  }
}

void Network::join() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  if (monitor_thread_.joinable()) {
    monitor_thread_.request_stop();
    monitor_thread_.join();
  }
  std::scoped_lock lock{failures_mutex_};
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

std::string Network::channel_report() const {
  std::string out;
  std::scoped_lock lock{channels_mutex_};
  for (const auto& state : channels_) {
    out += state->label.empty() ? "<unnamed>" : state->label;
    if (!state->pipe) {
      out += ": remote\n";
      continue;
    }
    out += ": " + std::to_string(state->pipe->size()) + "/" +
           std::to_string(state->pipe->capacity()) + " bytes";
    const std::size_t readers = state->pipe->blocked_readers();
    const std::size_t writers = state->pipe->blocked_writers();
    if (readers > 0) {
      out += ", " + std::to_string(readers) + " blocked reader(s)";
    }
    if (writers > 0) {
      out += ", " + std::to_string(writers) + " blocked writer(s)";
    }
    if (state->pipe->write_closed()) out += ", writer closed";
    if (state->pipe->read_closed()) out += ", reader closed";
    out += "\n";
  }
  return out;
}

Network::BlockedCounts Network::blocked_counts() const {
  BlockedCounts counts;
  counts.live = live_.load();
  std::scoped_lock lock{channels_mutex_};
  for (const auto& state : channels_) {
    if (!state->pipe) continue;
    counts.blocked_readers += state->pipe->blocked_readers();
    const std::size_t writers = state->pipe->blocked_writers();
    counts.blocked_writers += writers;
    if (writers > 0) {
      const std::size_t capacity = state->pipe->capacity();
      if (!counts.has_write_blocked ||
          capacity < counts.smallest_blocked_capacity) {
        counts.smallest_blocked_capacity = capacity;
      }
      counts.has_write_blocked = true;
    }
  }
  return counts;
}

bool Network::grow_smallest_blocked(double factor, std::size_t max_capacity) {
  std::shared_ptr<io::Pipe> victim;
  {
    std::scoped_lock lock{channels_mutex_};
    for (const auto& state : channels_) {
      if (!state->pipe || state->pipe->blocked_writers() == 0) continue;
      if (!victim || state->pipe->capacity() < victim->capacity()) {
        victim = state->pipe;
      }
    }
  }
  if (!victim) return false;
  const std::size_t old_capacity = victim->capacity();
  const auto grown =
      static_cast<std::size_t>(static_cast<double>(old_capacity) * factor);
  const std::size_t new_capacity =
      std::min(std::max(grown, old_capacity + 1), max_capacity);
  if (new_capacity <= old_capacity) return false;
  victim->grow(new_capacity);
  growth_events_.fetch_add(1);
  return true;
}

void Network::abort() {
  std::scoped_lock lock{channels_mutex_};
  for (const auto& state : channels_) {
    if (state->pipe) state->pipe->abort();
  }
}

void Network::monitor_loop(std::stop_token stop) {
  bool stalled_last_poll = false;
  while (!stop.stop_requested() && live_.load() > 0) {
    std::this_thread::sleep_for(options_.poll_interval);

    std::size_t blocked = 0;
    {
      std::scoped_lock lock{channels_mutex_};
      for (const auto& state : channels_) {
        if (!state->pipe) continue;
        blocked += state->pipe->blocked_readers();
        blocked += state->pipe->blocked_writers();
      }
    }
    const std::size_t live = live_.load();
    const bool stalled = live > 0 && blocked >= live;
    if (stalled && stalled_last_poll) {
      // Confirmed on two consecutive polls: act.
      if (!try_resolve_stall()) return;  // true deadlock handled
      stalled_last_poll = false;
    } else {
      stalled_last_poll = stalled;
    }
  }
}

bool Network::try_resolve_stall() {
  // Find the write-blocked pipe with the smallest capacity.
  std::shared_ptr<io::Pipe> victim;
  std::string victim_label;
  {
    std::scoped_lock lock{channels_mutex_};
    for (const auto& state : channels_) {
      if (!state->pipe) continue;
      if (state->pipe->blocked_writers() == 0) continue;
      if (!victim || state->pipe->capacity() < victim->capacity()) {
        victim = state->pipe;
        victim_label = state->label;
      }
    }
  }
  if (!victim) {
    // Everyone is blocked reading: Kahn-style true deadlock.  Nothing the
    // scheduler can do; report (and optionally abort so join() returns).
    outcome_.store(DeadlockOutcome::kTrueDeadlock);
    log::warn("network: true deadlock (all processes blocked reading)");
    if (options_.abort_on_true_deadlock) abort();
    return false;
  }
  const std::size_t old_capacity = victim->capacity();
  const auto grown = static_cast<std::size_t>(
      static_cast<double>(old_capacity) * options_.growth_factor);
  const std::size_t new_capacity = std::max(grown, old_capacity + 1);
  if (new_capacity > options_.max_channel_capacity) {
    outcome_.store(DeadlockOutcome::kTrueDeadlock);
    log::warn("network: channel '", victim_label, "' hit the capacity cap (",
              options_.max_channel_capacity, " bytes); treating as deadlock");
    if (options_.abort_on_true_deadlock) abort();
    return false;
  }
  victim->grow(new_capacity);
  growth_events_.fetch_add(1);
  if (outcome_.load() == DeadlockOutcome::kNone) {
    outcome_.store(DeadlockOutcome::kGrown);
  }
  log::debug("network: grew channel '", victim_label, "' ", old_capacity,
             " -> ", new_capacity, " bytes");
  return true;
}

}  // namespace dpn::core
