#include "core/network.hpp"

#include <algorithm>
#include <set>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace dpn::core {

Network::~Network() {
  // jthread members join on destruction; nothing else to do.
}

void Network::add(std::shared_ptr<Process> process) {
  if (started_) throw UsageError{"Network::add after start"};
  if (!process) throw UsageError{"Network::add(nullptr)"};
  processes_.push_back(std::move(process));
}

std::shared_ptr<Channel> Network::make_channel(ChannelOptions options) {
  auto channel = std::make_shared<Channel>(std::move(options));
  watch(channel);
  return channel;
}

void Network::add_connected(std::shared_ptr<Process> process) {
  if (!process) return;  // slot wired the endpoint into an existing process
  for (const auto& existing : processes_) {
    if (existing == process) return;
  }
  add(std::move(process));
}

void Network::watch(const std::shared_ptr<Channel>& channel) {
  std::scoped_lock lock{channels_mutex_};
  channels_.push_back(channel->state());
}

void Network::enable_monitor(MonitorOptions options) {
  monitor_enabled_ = true;
  options_ = options;
}

void Network::set_scheduler(sched::SchedulerOptions options) {
  if (started_) throw UsageError{"Network::set_scheduler after start"};
  // Validate eagerly so a bad DPN_STACK_KB fails at configuration, not
  // halfway through spawning a graph.
  options.resolved_stack_bytes();
  sched_options_ = std::move(options);
}

void Network::start() {
  if (started_) throw UsageError{"Network::start called twice"};
  started_ = true;

  // Discover channels referenced by the processes (deduplicated with any
  // explicitly watched ones).
  {
    std::scoped_lock lock{channels_mutex_};
    std::set<const ChannelState*> seen;
    for (const auto& state : channels_) seen.insert(state.get());
    for (const auto& process : processes_) {
      for (const auto& in : process->channel_inputs()) {
        if (seen.insert(in->state().get()).second) {
          channels_.push_back(in->state());
        }
      }
      for (const auto& out : process->channel_outputs()) {
        if (seen.insert(out->state().get()).second) {
          channels_.push_back(out->state());
        }
      }
    }
  }

  if (sched_options_.mode == sched::SchedMode::kThreadPerProcess &&
      processes_.size() > sched_options_.max_threads) {
    throw UsageError{
        "thread-per-process mode refuses " + std::to_string(processes_.size()) +
        " processes (cap " + std::to_string(sched_options_.max_threads) +
        "); use SchedMode::kWorkSteal (DPN_SCHED=mn) for graphs this size"};
  }

  live_.store(processes_.size());
  // Process contexts inherit the starter's trace attribution (see
  // CompositeProcess::run).
  const std::uint32_t node_tag = obs::node_tag();
  if (sched_options_.mode == sched::SchedMode::kWorkSteal) {
    sched::SchedulerOptions options = sched_options_;
    options.worker_init = [node_tag] { obs::set_node_tag(node_tag); };
    scheduler_ = std::make_unique<sched::Scheduler>(options);
    graph_done_.add(processes_.size());
    for (const auto& process : processes_) {
      // The phase hook keeps ProcessStats honest about scheduler-side
      // states the process body cannot see: sitting runnable on a deque,
      // and migrating between workers.
      auto stats = process->stats();
      scheduler_->spawn(
          [this, process] {
            try {
              process->run();
            } catch (const IoError&) {
              // Graceful stop.
            } catch (...) {
              std::scoped_lock lock{failures_mutex_};
              failures_.push_back(std::current_exception());
            }
            live_.fetch_sub(1);
            graph_done_.done();
          },
          process->name(),
          [stats](sched::FiberPhase phase) {
            switch (phase) {
              case sched::FiberPhase::kReady:
                stats->set_state(obs::ProcessState::kRunnable);
                break;
              case sched::FiberPhase::kRunning:
                stats->set_state(obs::ProcessState::kRunning);
                break;
              case sched::FiberPhase::kStolen:
                obs::bump(stats->stolen, 1);
                break;
            }
          });
    }
  } else {
    threads_.reserve(processes_.size());
    for (const auto& process : processes_) {
      threads_.emplace_back([this, process, node_tag] {
        obs::set_node_tag(node_tag);
        try {
          process->run();
        } catch (const IoError&) {
          // Graceful stop.
        } catch (...) {
          std::scoped_lock lock{failures_mutex_};
          failures_.push_back(std::current_exception());
        }
        live_.fetch_sub(1);
      });
    }
  }
  if (monitor_enabled_) {
    monitor_thread_ = std::jthread{[this](std::stop_token st) {
      monitor_loop(st);
    }};
  }
}

void Network::join() {
  if (scheduler_) {
    // Quiescence-based termination: wait for every top-level fiber to
    // report done, then let the scheduler drain -- which also covers
    // detached stragglers a process spawned at runtime (Sift's filters).
    graph_done_.wait();
    scheduler_->shutdown();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  if (monitor_thread_.joinable()) {
    monitor_thread_.request_stop();
    monitor_thread_.join();
  }
  std::scoped_lock lock{failures_mutex_};
  if (!failures_.empty()) std::rethrow_exception(failures_.front());
}

obs::NetworkSnapshot Network::snapshot() const {
  obs::NetworkSnapshot snap;
  snap.live = live_.load();
  snap.outcome = static_cast<std::uint8_t>(outcome_.load());
  snap.growth_events = growth_events_.load();
  if (scheduler_) {
    const sched::Scheduler::Counters counters = scheduler_->counters();
    snap.sched_workers = scheduler_->workers();
    snap.sched_spawned = counters.spawned;
    snap.sched_completed = counters.completed;
    snap.sched_steals = counters.steals;
    snap.sched_dispatches = counters.dispatches;
    snap.sched_parks = counters.parks;
  }
  for (const auto& process : processes_) {
    append_process_snapshots(*process, snap.processes);
  }
  std::scoped_lock lock{channels_mutex_};
  snap.channels.reserve(channels_.size());
  for (const auto& state : channels_) {
    snap.channels.push_back(snapshot_channel(*state));
  }
  snap.fill_fault_counters();
  snap.fill_transport_counters();
  return snap;
}

std::string Network::channel_report() const { return snapshot().to_string(); }

Network::BlockedCounts Network::blocked_counts() const {
  BlockedCounts counts;
  counts.live = live_.load();
  std::scoped_lock lock{channels_mutex_};
  for (const auto& state : channels_) {
    if (!state->pipe) continue;
    std::size_t readers = state->pipe->blocked_readers();
    std::size_t writers = state->pipe->blocked_writers();
    std::size_t capacity = state->pipe->capacity();
    if (state->typed && !state->typed->demoted()) {
      // Typed fast path live: processes park on the ring, the pipe idles.
      // The ring's bound (in bytes, via the codec's wire size) is the
      // channel's effective capacity for the growth arithmetic.
      readers += state->typed->blocked_readers();
      writers += state->typed->blocked_writers();
      capacity = state->typed->capacity() * state->typed->value_bytes();
    }
    counts.blocked_readers += readers;
    counts.blocked_writers += writers;
    if (writers > 0) {
      if (!counts.has_write_blocked ||
          capacity < counts.smallest_blocked_capacity) {
        counts.smallest_blocked_capacity = capacity;
      }
      counts.has_write_blocked = true;
    }
  }
  return counts;
}

bool Network::grow_smallest_blocked(double factor, std::size_t max_capacity) {
  // The victim may be a byte pipe or a live typed ring; both are compared
  // and grown in bytes (ring slots x wire size) so Parks' smallest-first
  // rule treats mixed networks uniformly.
  std::shared_ptr<io::Pipe> pipe_victim;
  std::shared_ptr<io::TypedRingBase> ring_victim;
  std::size_t victim_bytes = 0;
  {
    std::scoped_lock lock{channels_mutex_};
    for (const auto& state : channels_) {
      if (!state->pipe) continue;
      if (state->typed && !state->typed->demoted()) {
        if (state->typed->blocked_writers() == 0) continue;
        const std::size_t bytes =
            state->typed->capacity() * state->typed->value_bytes();
        if ((!pipe_victim && !ring_victim) || bytes < victim_bytes) {
          ring_victim = state->typed;
          pipe_victim = nullptr;
          victim_bytes = bytes;
        }
        continue;
      }
      if (state->pipe->blocked_writers() == 0) continue;
      const std::size_t bytes = state->pipe->capacity();
      if ((!pipe_victim && !ring_victim) || bytes < victim_bytes) {
        pipe_victim = state->pipe;
        ring_victim = nullptr;
        victim_bytes = bytes;
      }
    }
  }
  if (!pipe_victim && !ring_victim) return false;
  const std::size_t old_capacity = victim_bytes;
  const auto grown =
      static_cast<std::size_t>(static_cast<double>(old_capacity) * factor);
  const std::size_t new_capacity =
      std::min(std::max(grown, old_capacity + 1), max_capacity);
  if (new_capacity <= old_capacity) return false;
  if (ring_victim) {
    const std::size_t vb = ring_victim->value_bytes();
    ring_victim->grow(
        std::max(new_capacity / vb, ring_victim->capacity() + 1));
  } else {
    pipe_victim->grow(new_capacity);
  }
  growth_events_.fetch_add(1);
  DPN_TRACE_EVENT(obs::TraceKind::kMonitorGrow, "ddm", old_capacity,
                  new_capacity);
  return true;
}

void Network::abort() {
  std::scoped_lock lock{channels_mutex_};
  for (const auto& state : channels_) {
    if (state->typed) state->typed->abort();
    if (state->pipe) state->pipe->abort();
  }
}

void Network::monitor_loop(std::stop_token stop) {
  bool stalled_last_poll = false;
  while (!stop.stop_requested() && live_.load() > 0) {
    std::this_thread::sleep_for(options_.poll_interval);

    // One structured snapshot per poll: the same view an operator gets, so
    // every monitor decision can be reproduced from snapshot data.
    const obs::NetworkSnapshot snap = snapshot();
    const std::uint64_t blocked = snap.blocked_readers() + snap.blocked_writers();
    const bool stalled = snap.live > 0 && blocked >= snap.live;
    if (stalled && stalled_last_poll) {
      // Confirmed on two consecutive polls: act.
      if (!resolve_stall(snap)) return;  // true deadlock handled
      stalled_last_poll = false;
    } else {
      stalled_last_poll = stalled;
    }
  }
}

bool Network::resolve_stall(const obs::NetworkSnapshot& stall) {
  const obs::ChannelSnapshot* victim = stall.smallest_write_blocked();
  if (victim == nullptr) {
    // Everyone was blocked reading when the snapshot was taken -- but a
    // process finishing in between (its final close wakes its neighbours)
    // makes that evidence stale, not a deadlock.  Re-poll in that case.
    if (live_.load() != stall.live) return true;
    outcome_.store(DeadlockOutcome::kTrueDeadlock);
    DPN_TRACE_EVENT(obs::TraceKind::kMonitorDeadlock, "all-blocked-reading");
    log::warn("network: true deadlock (all processes blocked reading)");
    if (options_.abort_on_true_deadlock) abort();
    return false;
  }
  const std::size_t old_capacity = victim->capacity;
  const auto grown = static_cast<std::size_t>(
      static_cast<double>(old_capacity) * options_.growth_factor);
  const std::size_t new_capacity = std::max(grown, old_capacity + 1);
  if (new_capacity > options_.max_channel_capacity) {
    if (live_.load() != stall.live) return true;  // stale evidence
    outcome_.store(DeadlockOutcome::kTrueDeadlock);
    DPN_TRACE_EVENT(obs::TraceKind::kMonitorDeadlock, victim->label,
                    old_capacity);
    log::warn("network: channel '", victim->label, "' hit the capacity cap (",
              options_.max_channel_capacity, " bytes); treating as deadlock");
    if (options_.abort_on_true_deadlock) abort();
    return false;
  }
  if (!apply_growth(stall, options_.growth_factor,
                    options_.max_channel_capacity)) {
    // The stall dissolved between snapshot and growth (process exited, or
    // the victim's writer got unblocked).  Nothing to fix; keep watching.
    return true;
  }
  if (outcome_.load() == DeadlockOutcome::kNone) {
    outcome_.store(DeadlockOutcome::kGrown);
  }
  log::debug("network: grew channel '", victim->label, "' ", old_capacity,
             " -> ", new_capacity, " bytes");
  return true;
}

bool Network::apply_growth(const obs::NetworkSnapshot& stall, double factor,
                           std::size_t max_capacity) {
  const obs::ChannelSnapshot* victim_row = stall.smallest_write_blocked();
  if (victim_row == nullptr) return false;
  // Growth-after-finish guard: the snapshot deduced "everyone is blocked"
  // from a live count that is no longer true.
  if (live_.load() != stall.live) return false;
  std::shared_ptr<io::Pipe> victim;
  std::shared_ptr<io::TypedRingBase> ring;
  {
    std::scoped_lock lock{channels_mutex_};
    for (const auto& state : channels_) {
      if (state->id == victim_row->id && state->pipe) {
        victim = state->pipe;
        if (state->typed && !state->typed->demoted()) ring = state->typed;
        break;
      }
    }
  }
  if (!victim) return false;  // channel went remote/away
  if (ring) {
    // Typed fast path: the writer is parked on the ring, so grow the ring
    // (same byte arithmetic; slots = bytes / wire size).
    if (ring->blocked_writers() == 0) return false;  // writer moved on
    const std::size_t vb = ring->value_bytes();
    const std::size_t old_capacity = ring->capacity() * vb;
    const auto grown =
        static_cast<std::size_t>(static_cast<double>(old_capacity) * factor);
    const std::size_t new_capacity =
        std::min(std::max(grown, old_capacity + 1), max_capacity);
    if (new_capacity <= old_capacity) return false;
    ring->grow(std::max(new_capacity / vb, ring->capacity() + 1));
    growth_events_.fetch_add(1);
    DPN_TRACE_EVENT(obs::TraceKind::kMonitorGrow, victim_row->label,
                    old_capacity, new_capacity);
    return true;
  }
  if (victim->blocked_writers() == 0) return false;  // writer moved on
  const std::size_t old_capacity = victim->capacity();
  const auto grown =
      static_cast<std::size_t>(static_cast<double>(old_capacity) * factor);
  const std::size_t new_capacity =
      std::min(std::max(grown, old_capacity + 1), max_capacity);
  if (new_capacity <= old_capacity) return false;
  victim->grow(new_capacity);
  growth_events_.fetch_add(1);
  DPN_TRACE_EVENT(obs::TraceKind::kMonitorGrow, victim_row->label,
                  old_capacity, new_capacity);
  return true;
}

}  // namespace dpn::core
