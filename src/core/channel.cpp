#include "core/channel.hpp"

#include <mutex>

namespace dpn::core {

namespace {
DistributionHooks g_hooks;
std::mutex g_hooks_mutex;
}  // namespace

void set_distribution_hooks(DistributionHooks hooks) {
  std::scoped_lock lock{g_hooks_mutex};
  g_hooks = std::move(hooks);
}

const DistributionHooks& distribution_hooks() {
  std::scoped_lock lock{g_hooks_mutex};
  return g_hooks;
}

ChannelInputStream::ChannelInputStream(
    std::shared_ptr<ChannelState> state,
    std::shared_ptr<io::SequenceInputStream> sequence)
    : state_(std::move(state)), sequence_(std::move(sequence)) {
  if (state_->read_buffer > 0) {
    buffer_ = std::make_shared<io::BufferedInputStream>(sequence_,
                                                        state_->read_buffer);
    source_ = buffer_.get();
  } else {
    source_ = sequence_.get();
  }
}

std::size_t ChannelInputStream::read_some(MutableByteSpan out) {
  return source_->read_some(out);
}

int ChannelInputStream::read() { return source_->read(); }

void ChannelInputStream::close() { source_->close(); }

void ChannelInputStream::read_fully(MutableByteSpan out) {
  io::read_fully(*source_, out);
}

ByteVector ChannelInputStream::take_read_buffer() {
  return buffer_ ? buffer_->take_buffered() : ByteVector{};
}

void ChannelInputStream::write_fields(serial::ObjectOutputStream&) const {
  throw SerializationError{
      "ChannelInputStream is serialized via its write_replace hook"};
}

std::shared_ptr<serial::Serializable> ChannelInputStream::write_replace(
    serial::ObjectOutputStream& out) {
  const auto& hooks = distribution_hooks();
  if (!hooks.replace_input) {
    throw UsageError{
        "serializing a channel endpoint requires the distribution layer "
        "(link dpn_dist and create a NodeContext)"};
  }
  return hooks.replace_input(shared_from_this(), out);
}

ChannelOutputStream::ChannelOutputStream(
    std::shared_ptr<ChannelState> state,
    std::shared_ptr<io::SequenceOutputStream> sequence)
    : state_(std::move(state)), sequence_(std::move(sequence)) {
  if (state_->write_buffer > 0) {
    buffer_ = std::make_shared<io::BufferedOutputStream>(
        sequence_, state_->write_buffer);
    sink_ = buffer_.get();
  } else {
    sink_ = sequence_.get();
  }
}

void ChannelOutputStream::write(ByteSpan data) { sink_->write(data); }

void ChannelOutputStream::write_byte(std::uint8_t b) { sink_->write_byte(b); }

void ChannelOutputStream::write_vectored(ByteSpan a, ByteSpan b) {
  sink_->write_vectored(a, b);
}

void ChannelOutputStream::flush() { sink_->flush(); }

void ChannelOutputStream::close() { sink_->close(); }

void ChannelOutputStream::write_fields(serial::ObjectOutputStream&) const {
  throw SerializationError{
      "ChannelOutputStream is serialized via its write_replace hook"};
}

std::shared_ptr<serial::Serializable> ChannelOutputStream::write_replace(
    serial::ObjectOutputStream& out) {
  const auto& hooks = distribution_hooks();
  if (!hooks.replace_output) {
    throw UsageError{
        "serializing a channel endpoint requires the distribution layer "
        "(link dpn_dist and create a NodeContext)"};
  }
  return hooks.replace_output(shared_from_this(), out);
}

Channel::Channel(std::size_t capacity, std::string label)
    : Channel(ChannelOptions{capacity, std::move(label), 0, 0}) {}

Channel::Channel(ChannelOptions options) {
  state_ = std::make_shared<ChannelState>();
  state_->pipe = std::make_shared<io::Pipe>(options.capacity);
  state_->capacity = options.capacity;
  state_->label = std::move(options.label);
  state_->write_buffer = options.write_buffer;
  state_->read_buffer = options.read_buffer;

  auto in_seq = std::make_shared<io::SequenceInputStream>(
      std::make_shared<io::LocalInputStream>(state_->pipe));
  in_ = std::make_shared<ChannelInputStream>(state_, std::move(in_seq));

  auto out_seq = std::make_shared<io::SequenceOutputStream>(
      std::make_shared<io::LocalOutputStream>(state_->pipe));
  out_ = std::make_shared<ChannelOutputStream>(state_, std::move(out_seq));

  state_->input = in_;
  state_->output = out_;
}

}  // namespace dpn::core
