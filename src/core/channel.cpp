#include "core/channel.hpp"

#include <atomic>
#include <mutex>

#include "obs/trace.hpp"

namespace dpn::core {

namespace {
DistributionHooks g_hooks;
std::mutex g_hooks_mutex;

/// Flips the owning process's observable state to `blocked` for the
/// duration of a channel operation, restoring kRunning on the way out --
/// including the exception paths (EndOfStream, ChannelClosed), where the
/// process is briefly "running" again until its run() winds down.
class BlockedScope {
 public:
  BlockedScope(obs::ProcessStats* owner, obs::ProcessState blocked)
      : owner_(owner) {
    if (owner_ != nullptr) owner_->set_state(blocked);
  }
  ~BlockedScope() {
    if (owner_ != nullptr) owner_->set_state(obs::ProcessState::kRunning);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  obs::ProcessStats* owner_;
};
}  // namespace

std::uint64_t next_channel_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void set_distribution_hooks(DistributionHooks hooks) {
  std::scoped_lock lock{g_hooks_mutex};
  g_hooks = std::move(hooks);
}

const DistributionHooks& distribution_hooks() {
  std::scoped_lock lock{g_hooks_mutex};
  return g_hooks;
}

ChannelInputStream::ChannelInputStream(
    std::shared_ptr<ChannelState> state,
    std::shared_ptr<io::SequenceInputStream> sequence)
    : state_(std::move(state)),
      sequence_(std::move(sequence)),
      metrics_(state_->metrics.get()) {
  if (state_->read_buffer > 0) {
    buffer_ = std::make_shared<io::BufferedInputStream>(sequence_,
                                                        state_->read_buffer);
    source_ = buffer_.get();
  } else {
    source_ = sequence_.get();
  }
}

std::size_t ChannelInputStream::read_some(MutableByteSpan out) {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedReading};
  const std::size_t n = source_->read_some(out);
  if (n > 0) {
    // A zero-byte return is the end-of-stream probe, not a token.
    metrics_->on_read(n);
    DPN_TRACE_EVENT(obs::TraceKind::kChannelRead, state_->label, n);
  }
  return n;
}

int ChannelInputStream::read() {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedReading};
  const int b = source_->read();
  if (b >= 0) {
    metrics_->on_read(1);
    DPN_TRACE_EVENT(obs::TraceKind::kChannelRead, state_->label, 1);
  }
  return b;
}

void ChannelInputStream::close() {
  DPN_TRACE_EVENT(obs::TraceKind::kChannelClose, state_->label);
  // Cascading termination must reach a producer parked in the typed ring,
  // not just one parked in the byte pipe -- every teardown path (process
  // exit, kAbortProcess, Network::abort) funnels through this close.
  if (state_->typed) state_->typed->close_read();
  source_->close();
}

void ChannelInputStream::read_fully(MutableByteSpan out) {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedReading};
  io::read_fully(*source_, out);
  metrics_->on_read(out.size());
  DPN_TRACE_EVENT(obs::TraceKind::kChannelRead, state_->label, out.size());
}

ByteVector ChannelInputStream::take_read_buffer() {
  return buffer_ ? buffer_->take_buffered() : ByteVector{};
}

void ChannelInputStream::write_fields(serial::ObjectOutputStream&) const {
  throw SerializationError{
      "ChannelInputStream is serialized via its write_replace hook"};
}

std::shared_ptr<serial::Serializable> ChannelInputStream::write_replace(
    serial::ObjectOutputStream& out) {
  const auto& hooks = distribution_hooks();
  if (!hooks.replace_input) {
    throw UsageError{
        "serializing a channel endpoint requires the distribution layer "
        "(link dpn_dist and create a NodeContext)"};
  }
  return hooks.replace_input(shared_from_this(), out);
}

ChannelOutputStream::ChannelOutputStream(
    std::shared_ptr<ChannelState> state,
    std::shared_ptr<io::SequenceOutputStream> sequence)
    : state_(std::move(state)),
      sequence_(std::move(sequence)),
      metrics_(state_->metrics.get()) {
  if (state_->write_buffer > 0) {
    buffer_ = std::make_shared<io::BufferedOutputStream>(
        sequence_, state_->write_buffer);
    sink_ = buffer_.get();
  } else {
    sink_ = sequence_.get();
  }
}

void ChannelOutputStream::write(ByteSpan data) {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedWriting};
  sink_->write(data);
  metrics_->on_write(data.size());
  DPN_TRACE_EVENT(obs::TraceKind::kChannelWrite, state_->label, data.size());
}

void ChannelOutputStream::write_byte(std::uint8_t b) {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedWriting};
  sink_->write_byte(b);
  metrics_->on_write(1);
  DPN_TRACE_EVENT(obs::TraceKind::kChannelWrite, state_->label, 1);
}

void ChannelOutputStream::write_vectored(ByteSpan a, ByteSpan b) {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedWriting};
  sink_->write_vectored(a, b);
  metrics_->on_write(a.size() + b.size());
  DPN_TRACE_EVENT(obs::TraceKind::kChannelWrite, state_->label,
                  a.size() + b.size());
}

void ChannelOutputStream::flush() {
  BlockedScope scope{owner_.get(), obs::ProcessState::kBlockedWriting};
  DPN_TRACE_EVENT(obs::TraceKind::kChannelFlush, state_->label,
                  buffer_ ? buffer_->buffered() : 0);
  sink_->flush();
}

void ChannelOutputStream::close() {
  DPN_TRACE_EVENT(obs::TraceKind::kChannelClose, state_->label);
  // End-of-stream for a typed consumer: drain the ring, then kEof.
  if (state_->typed) state_->typed->close_write();
  sink_->close();
}

void ChannelOutputStream::write_fields(serial::ObjectOutputStream&) const {
  throw SerializationError{
      "ChannelOutputStream is serialized via its write_replace hook"};
}

std::shared_ptr<serial::Serializable> ChannelOutputStream::write_replace(
    serial::ObjectOutputStream& out) {
  const auto& hooks = distribution_hooks();
  if (!hooks.replace_output) {
    throw UsageError{
        "serializing a channel endpoint requires the distribution layer "
        "(link dpn_dist and create a NodeContext)"};
  }
  return hooks.replace_output(shared_from_this(), out);
}

obs::ChannelSnapshot snapshot_channel(const ChannelState& state) {
  obs::ChannelSnapshot c;
  c.id = state.id;
  c.label = state.label;
  c.input_remote = state.input_remote;
  c.output_remote = state.output_remote;
  c.bytes_written =
      state.metrics->bytes_written.load(std::memory_order_relaxed);
  c.tokens_written =
      state.metrics->tokens_written.load(std::memory_order_relaxed);
  c.bytes_read = state.metrics->bytes_read.load(std::memory_order_relaxed);
  c.tokens_read = state.metrics->tokens_read.load(std::memory_order_relaxed);
  if (state.pipe) {
    c.has_pipe = true;
    const io::Pipe::Stats s = state.pipe->stats();
    c.capacity = s.capacity;
    c.buffered = s.size;
    c.occupancy_hwm = s.occupancy_hwm;
    c.blocked_read_ns = s.blocked_read_ns;
    c.blocked_write_ns = s.blocked_write_ns;
    c.reader_wakeups = s.reader_wakeups;
    c.writer_wakeups = s.writer_wakeups;
    c.blocked_readers = static_cast<std::uint32_t>(s.blocked_readers);
    c.blocked_writers = static_cast<std::uint32_t>(s.blocked_writers);
    c.write_closed = s.write_closed;
    c.read_closed = s.read_closed;
    c.read_block = s.read_block;
    c.write_block = s.write_block;
  } else {
    c.capacity = state.capacity;
  }
  if (state.typed) {
    const io::TypedRingBase::Stats t = state.typed->stats();
    c.has_typed = true;
    c.typed_demoted = t.demoted;
    c.typed_pushed = t.pushed;
    c.typed_popped = t.popped;
    c.typed_buffered = t.size;
    c.typed_capacity = t.capacity;
    if (!t.demoted) {
      // While the ring is live it IS the channel's bound: processes park
      // on it, the pipe stays empty.  Fold its occupancy and pressure
      // into the standard fields (in bytes, via the codec's wire size)
      // so the deadlock monitor's capacity-growth arithmetic works on
      // typed channels unchanged.
      const std::size_t vb = state.typed->value_bytes();
      c.capacity = static_cast<std::uint64_t>(t.capacity * vb);
      c.buffered = static_cast<std::uint64_t>(t.size * vb);
      c.blocked_readers += static_cast<std::uint32_t>(t.blocked_readers);
      c.blocked_writers += static_cast<std::uint32_t>(t.blocked_writers);
      c.write_closed = c.write_closed || t.write_closed;
      c.read_closed = c.read_closed || t.read_closed;
    }
  }
  if (const auto out = state.output.lock()) {
    if (const auto& buffer = out->buffered_stream()) {
      c.flushes = buffer->flush_count();
      c.coalesced_writes = buffer->coalesced_writes();
      c.write_buffered = buffer->buffered();
    }
  }
  if (const auto in = state.input.lock()) {
    if (const auto& buffer = in->buffered_stream()) {
      c.read_buffered = buffer->buffered();
    }
  }
  return c;
}

Channel::Channel(std::size_t capacity, std::string label)
    : Channel(ChannelOptions{capacity, std::move(label), 0, 0}) {}

Channel::Channel(ChannelOptions options) {
  state_ = std::make_shared<ChannelState>();
  state_->pipe = std::make_shared<io::Pipe>(options.capacity);
  state_->capacity = options.capacity;
  state_->label = std::move(options.label);
  state_->write_buffer = options.write_buffer;
  state_->read_buffer = options.read_buffer;
  state_->remote = options.remote;

  auto in_seq = std::make_shared<io::SequenceInputStream>(
      std::make_shared<io::LocalInputStream>(state_->pipe));
  in_ = std::make_shared<ChannelInputStream>(state_, std::move(in_seq));

  auto out_seq = std::make_shared<io::SequenceOutputStream>(
      std::make_shared<io::LocalOutputStream>(state_->pipe));
  out_ = std::make_shared<ChannelOutputStream>(state_, std::move(out_seq));

  state_->input = in_;
  state_->output = out_;
}

}  // namespace dpn::core
