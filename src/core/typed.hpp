#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/channel.hpp"
#include "io/typed_ring.hpp"
#include "support/bytes.hpp"

/// Typed endpoints over a Channel: the user-facing face of the zero-copy
/// fast path (see io/typed_ring.hpp for the machinery).
///
/// A channel built with make_typed_channel<T>() carries T values through
/// an in-process ring as long as both endpoints stay local -- no
/// serialize, no pipe memcpy, no deserialize.  The byte-stream layers
/// underneath are fully wired the whole time, just idle; the moment the
/// ship machinery demotes the ring (one endpoint is leaving this address
/// space), TypedWriter/TypedReader fall back to encoding through the
/// channel endpoint with the same Codec, and nothing above them notices.
///
/// The Codec is the bridge between the two planes: it defines the exact
/// bytes a value occupies on the byte path, and the ring charges the
/// channel's traffic counters by that size, so a snapshot of a typed
/// channel is indistinguishable from the byte-path run it replaced --
/// the determinacy matrix leans on this.
namespace dpn::core {

/// Wire format for T: fixed-size, matching what the process would write
/// through a DataOutputStream (big-endian).  Specialize for your token
/// type; encode must emit exactly kWireSize bytes per value.
template <typename T>
struct Codec;

template <>
struct Codec<std::int64_t> {
  static constexpr std::size_t kWireSize = 8;
  static void encode(std::int64_t v, io::OutputStream& out) {
    std::uint8_t buf[8];
    put_u64(buf, static_cast<std::uint64_t>(v));
    out.write({buf, sizeof buf});
  }
  static std::int64_t decode(io::InputStream& in) {
    std::uint8_t buf[8];
    io::read_fully(in, {buf, sizeof buf});
    return static_cast<std::int64_t>(get_u64(buf));
  }
};

template <>
struct Codec<double> {
  static constexpr std::size_t kWireSize = 8;
  static void encode(double v, io::OutputStream& out) {
    std::uint8_t buf[8];
    put_u64(buf, double_to_bits(v));
    out.write({buf, sizeof buf});
  }
  static double decode(io::InputStream& in) {
    std::uint8_t buf[8];
    io::read_fully(in, {buf, sizeof buf});
    return bits_to_double(get_u64(buf));
  }
};

/// Builds a Channel with the typed fast path installed.  The byte
/// capacity in `options` doubles as the ring's bound: capacity /
/// Codec::kWireSize value slots, so Parks-rule back-pressure kicks in at
/// the same data volume either way.
template <typename T, typename C = Codec<T>>
std::shared_ptr<Channel> make_typed_channel(ChannelOptions options = {}) {
  auto channel = std::make_shared<Channel>(options);
  std::size_t slots = options.capacity / C::kWireSize;
  if (slots == 0) slots = 1;
  channel->state()->typed = std::make_shared<io::TypedRing<T, C>>(slots);
  return channel;
}

namespace detail {
template <typename T, typename C>
io::TypedRing<T, C>* typed_ring_of(const std::shared_ptr<ChannelState>& state) {
  if (!state->typed) return nullptr;  // byte channel / remote endpoint
  auto* ring = dynamic_cast<io::TypedRing<T, C>*>(state->typed.get());
  if (ring == nullptr) {
    throw UsageError{"typed endpoint does not match the channel's ring type"};
  }
  // A poisoned ring stays attached: pop must raise WorkerLost (the byte
  // plane never saw the lost values), and push routes to the byte path
  // through the ring's own kDemoted result.
  if (ring->poisoned()) return ring;
  return ring->demoted() ? nullptr : ring;
}
}  // namespace detail

/// Producing typed endpoint.  Ephemeral: construct one over the channel's
/// output endpoint inside the owning process's run() (it is not itself
/// serializable -- the underlying ChannelOutputStream is what ships, and
/// a writer constructed over a reconstructed remote endpoint simply finds
/// no ring and takes the byte path from the first token).
template <typename T, typename C = Codec<T>>
class TypedWriter {
 public:
  explicit TypedWriter(std::shared_ptr<ChannelOutputStream> out)
      : out_(std::move(out)),
        ring_(detail::typed_ring_of<T, C>(out_->state())),
        metrics_(out_->state()->metrics.get()) {}

  /// Blocks while the channel is full; throws ChannelClosed once the
  /// consumer has closed (both via the ring while live, via the byte
  /// plane after a demotion).
  void put(T value) {
    if (ring_ != nullptr) {
      switch (ring_->push(std::move(value))) {
        case io::TypedRingBase::PushResult::kOk:
          // The ring bypasses the endpoint, so charge the channel's
          // counters here -- by wire size, to match the byte path.
          metrics_->on_write(C::kWireSize);
          return;
        case io::TypedRingBase::PushResult::kDemoted:
          // `value` was not consumed: push only moves on kOk.
          ring_ = nullptr;
          break;
      }
    }
    // Byte path: the endpoint charges the counters itself.
    C::encode(value, *out_);
  }

  void close() { out_->close(); }

  bool fast_path() const { return ring_ != nullptr; }

 private:
  std::shared_ptr<ChannelOutputStream> out_;
  io::TypedRing<T, C>* ring_;
  obs::ChannelMetrics* metrics_;
};

/// Consuming typed endpoint; see TypedWriter.  T must additionally be
/// default-constructible (pop target).
template <typename T, typename C = Codec<T>>
class TypedReader {
 public:
  explicit TypedReader(std::shared_ptr<ChannelInputStream> in)
      : in_(std::move(in)),
        ring_(detail::typed_ring_of<T, C>(in_->state())),
        metrics_(in_->state()->metrics.get()) {}

  /// Blocks while the channel is empty; nullopt at end-of-stream.  Throws
  /// WorkerLost if a demotion lost buffered values (never silently
  /// truncates the stream).
  std::optional<T> get() {
    if (ring_ != nullptr) {
      T value{};
      switch (ring_->pop(value)) {
        case io::TypedRingBase::PopResult::kOk:
          metrics_->on_read(C::kWireSize);
          return value;
        case io::TypedRingBase::PopResult::kDemoted:
          // The ring's backlog was flushed into the byte plane ahead of
          // the demotion flag, so switching now loses nothing.
          ring_ = nullptr;
          break;
        case io::TypedRingBase::PopResult::kEof:
          return std::nullopt;
      }
    }
    try {
      return C::decode(*in_);
    } catch (const EndOfStream&) {
      return std::nullopt;
    }
  }

  void close() { in_->close(); }

  bool fast_path() const { return ring_ != nullptr; }

 private:
  std::shared_ptr<ChannelInputStream> in_;
  io::TypedRing<T, C>* ring_;
  obs::ChannelMetrics* metrics_;
};

}  // namespace dpn::core
