#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "serial/serial.hpp"

/// Processes (paper Section 3.2).
///
/// A process is a schedulable entity: depending on the host Network's
/// sched::SchedulerOptions it executes either on its own OS thread (the
/// paper's model, SchedMode::kThreadPerProcess) or as a stackful fiber on
/// the M:N work-stealing scheduler (SchedMode::kWorkSteal), which runs it
/// to its next blocking channel operation.  Either way the only blocking
/// operations a determinate process may perform are channel reads and
/// writes, and the process cannot observe which mode it runs under.
/// IterativeProcess supplies the paper's onStart/step/onStop skeleton
/// (Figure 4) and the cascading-termination behaviour of Section 3.4: any
/// IoError stops the process, and a stopping process closes all of its
/// channel endpoints, which in turn stops its neighbours.
namespace dpn::core {

class Process : public serial::Serializable {
 public:
  /// Executes the process to completion.  Called on the process's own
  /// execution context -- a dedicated thread or a scheduler fiber
  /// (CompositeProcess / Network arrange this).
  virtual void run() = 0;

  /// Diagnostic name (thread tags, deadlock reports).
  virtual std::string name() const { return type_name(); }

  /// Channel endpoints this process reads from / writes to.  Used for
  /// auto-close on stop and for the internal/boundary channel cut when a
  /// process graph is shipped to another server.
  virtual std::vector<std::shared_ptr<ChannelInputStream>> channel_inputs()
      const {
    return {};
  }
  virtual std::vector<std::shared_ptr<ChannelOutputStream>> channel_outputs()
      const {
    return {};
  }

  /// Child processes, for hierarchical composition (CompositeProcess).
  /// Snapshots recurse through this so a composite's components appear
  /// individually.
  virtual std::vector<std::shared_ptr<Process>> subprocesses() const {
    return {};
  }

  /// Observable state + step counter.  The object is shared: channel
  /// endpoints registered through IterativeProcess::track_* hold a
  /// reference and flip the blocked states around their blocking calls.
  const std::shared_ptr<obs::ProcessStats>& stats() const { return stats_; }

 private:
  std::shared_ptr<obs::ProcessStats> stats_ =
      std::make_shared<obs::ProcessStats>();
};

/// Base class for the common iterative process shape: one-time setup, a
/// step repeated until an iteration limit or an I/O-signalled stop, then
/// cleanup that closes every tracked stream.
///
/// Iterative processes can also be *paused* at a step boundary, which is
/// the foundation for migrating a process that has already begun
/// executing (the paper's Section 6.1 future work): pause, serialize the
/// parked process (its remaining iteration budget and all mutable state
/// ship with it), start it elsewhere, and abandon the local instance --
/// whose run() then returns without closing the endpoints it no longer
/// owns.  dpn::rmi::migrate() packages this sequence.
class IterativeProcess : public Process {
 public:
  /// iterations <= 0 means "run until stopped by channel closure".
  explicit IterativeProcess(long iterations = 0) : iterations_(iterations) {}

  void run() final;

  /// Asks the process to park at its next step boundary.  Non-blocking;
  /// the process cannot observe the request while blocked inside a
  /// channel operation, so parking happens once the current step's I/O
  /// completes.
  void request_pause();

  /// Blocks until the process is parked (returns true) or it finished
  /// first (returns false).
  bool await_pause();

  /// Continues a parked process in place.
  void resume();

  /// Releases a parked process: its run() returns *without* running
  /// on_stop or closing any endpoint.  Use after the process has been
  /// shipped elsewhere -- the endpoints now belong to its successor.
  void abandon();

  /// True while parked at a step boundary.
  bool paused() const;

  long iterations() const { return iterations_; }

  std::vector<std::shared_ptr<ChannelInputStream>> channel_inputs()
      const override {
    return inputs_;
  }
  std::vector<std::shared_ptr<ChannelOutputStream>> channel_outputs()
      const override {
    return outputs_;
  }

 protected:
  /// One-time initialization; default does nothing.
  virtual void on_start() {}

  /// One unit of work.  Throwing IoError (end of stream, channel closed)
  /// is the normal way a process learns it should stop.
  virtual void step() = 0;

  /// One-time cleanup; default does nothing.  Tracked streams are closed
  /// after on_stop regardless of how the process ended.
  virtual void on_stop() {}

  /// Registers a consuming endpoint for auto-close and distribution.
  /// Also makes the endpoint report this process's blocked-reading state.
  const std::shared_ptr<ChannelInputStream>& track_input(
      std::shared_ptr<ChannelInputStream> in) {
    in->set_owner(stats());
    inputs_.push_back(std::move(in));
    return inputs_.back();
  }

  /// Registers a producing endpoint for auto-close and distribution.
  /// Also makes the endpoint report this process's blocked-writing state.
  const std::shared_ptr<ChannelOutputStream>& track_output(
      std::shared_ptr<ChannelOutputStream> out) {
    out->set_owner(stats());
    outputs_.push_back(std::move(out));
    return outputs_.back();
  }

  /// Swaps a tracked input endpoint (used by self-reconfiguring processes
  /// such as Sift, which hands its input to a newly inserted process and
  /// adopts a fresh channel -- paper Figure 8).
  void replace_input(std::size_t index,
                     std::shared_ptr<ChannelInputStream> in) {
    in->set_owner(stats());
    inputs_.at(index) = std::move(in);
  }

  void replace_output(std::size_t index,
                      std::shared_ptr<ChannelOutputStream> out) {
    out->set_owner(stats());
    outputs_.at(index) = std::move(out);
  }

  /// Removes a tracked input from this process without closing it (used
  /// when an endpoint is handed to another process, e.g. Cons splicing its
  /// source directly to its consumer).
  std::shared_ptr<ChannelInputStream> release_input(std::size_t index) {
    auto in = std::move(inputs_.at(index));
    inputs_.erase(inputs_.begin() + static_cast<std::ptrdiff_t>(index));
    return in;
  }

  std::shared_ptr<ChannelOutputStream> release_output(std::size_t index) {
    auto out = std::move(outputs_.at(index));
    outputs_.erase(outputs_.begin() + static_cast<std::ptrdiff_t>(index));
    return out;
  }

  const std::shared_ptr<ChannelInputStream>& input(std::size_t index) const {
    return inputs_.at(index);
  }
  const std::shared_ptr<ChannelOutputStream>& output(
      std::size_t index) const {
    return outputs_.at(index);
  }
  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }

  /// Closes all tracked endpoints; called automatically after on_stop but
  /// available to steps that terminate early.
  void close_all();

  /// Serialization helper for subclasses: writes iteration limit and the
  /// tracked endpoints; mirror with read_base in a read_object factory.
  void write_base(serial::ObjectOutputStream& out) const;
  void read_base(serial::ObjectInputStream& in);

 private:
  enum class RunState : std::uint8_t {
    kIdle,            // not started (or started and not asked to pause)
    kPauseRequested,  // will park at the next step boundary
    kPaused,          // parked; waiting for resume or abandon
    kAbandoned,       // shipped away; run() exits without cleanup
    kFinished,        // run() completed
  };

  /// Parks if a pause was requested; returns false when the process was
  /// abandoned while parked (run() must exit silently).
  bool pause_point();

  long iterations_;
  std::vector<std::shared_ptr<ChannelInputStream>> inputs_;
  std::vector<std::shared_ptr<ChannelOutputStream>> outputs_;

  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  RunState state_ = RunState::kIdle;
};

/// Appends the observability rows for a process and (recursively) its
/// subprocesses: composite components appear individually, since each is
/// its own execution context with its own blocked/running state.
void append_process_snapshots(const Process& process,
                              std::vector<obs::ProcessSnapshot>& out);

/// Hierarchical composition (paper Section 3.2): each component keeps its
/// own execution context (thread or fiber), so composing processes can
/// never introduce deadlock.
class CompositeProcess final : public Process {
 public:
  CompositeProcess() = default;

  void add(std::shared_ptr<Process> process);

  /// Runs every component concurrently and waits for all of them: as
  /// sibling fibers when already running on the M:N scheduler, else one
  /// thread per component.  The first non-IoError failure is rethrown
  /// after every component finishes.
  void run() override;

  const std::vector<std::shared_ptr<Process>>& processes() const {
    return processes_;
  }

  std::vector<std::shared_ptr<Process>> subprocesses() const override {
    return processes_;
  }

  std::vector<std::shared_ptr<ChannelInputStream>> channel_inputs()
      const override;
  std::vector<std::shared_ptr<ChannelOutputStream>> channel_outputs()
      const override;

  // --- serialization (shipping a composite ships the whole subgraph) ---
  std::string type_name() const override { return "dpn.CompositeProcess"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<CompositeProcess> read_object(
      serial::ObjectInputStream& in);

 private:
  std::vector<std::shared_ptr<Process>> processes_;
};

}  // namespace dpn::core
