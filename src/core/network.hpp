#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/channel.hpp"
#include "core/process.hpp"
#include "obs/snapshot.hpp"
#include "sched/scheduler.hpp"

/// Top-level execution of a process network, plus the buffer-management
/// procedure of paper Section 3.5 / [13] (Parks' bounded scheduling).
namespace dpn::core {

/// Outcome of a monitored run.
enum class DeadlockOutcome {
  kNone,          // network completed (or is still running) without stalls
  kGrown,         // at least one artificial (write-blocked) deadlock was
                  // resolved by growing a channel
  kTrueDeadlock,  // every process was blocked reading: unresolvable
};

struct MonitorOptions {
  /// Polling cadence.  Detection needs two consecutive all-blocked
  /// observations, so worst-case latency is ~2 polls.
  std::chrono::milliseconds poll_interval{2};
  /// Growth factor applied to the smallest write-blocked channel.
  double growth_factor = 2.0;
  /// Hard ceiling on any single channel's capacity; exceeding it is
  /// treated as a true deadlock (unbounded accumulation, e.g. Fig 12 run
  /// without a consumer limit).
  std::size_t max_channel_capacity = 1u << 24;
  /// Abort the network (wake every waiter with Interrupted) when a true
  /// deadlock is found.  Otherwise the monitor just records it.
  bool abort_on_true_deadlock = true;
};

/// Runs a set of processes -- one thread per process (the paper's model)
/// or as fibers on the M:N work-stealing scheduler, per set_scheduler() /
/// the DPN_SCHED environment default -- and optionally watches their
/// channels for artificial deadlock.
///
/// Determining buffer capacities that avoid artificial deadlock is
/// undecidable (Section 3.5), so the monitor implements the dynamic rule
/// from [13]: when every process is blocked and at least one is blocked
/// *writing*, grow the smallest full channel and continue; when every
/// process is blocked *reading*, the network is truly deadlocked.
class Network {
 public:
  Network() = default;
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a process to run.  Its channel endpoints are discovered through
  /// Process::channel_inputs/outputs for monitoring.
  void add(std::shared_ptr<Process> process);

  /// Convenience: creates a channel and registers it with the monitor.
  /// Designated initializers make call sites read like the paper's figures:
  ///   network.make_channel({.capacity = 4096, .label = "primes"});
  std::shared_ptr<Channel> make_channel(ChannelOptions options = {});

  /// Fluent graph construction: creates a channel and hands each endpoint
  /// to a slot.  A slot is any invocable taking the endpoint; if it returns
  /// a process (anything convertible to shared_ptr<Process>), that process
  /// is add()ed -- deduplicated, so the same process instance may appear in
  /// several connect() calls as it accumulates endpoints.
  ///
  ///   network.connect(
  ///       [&](auto out) { return std::make_shared<Ramp>(out, 100); },
  ///       [&](auto in) { return std::make_shared<Print>(in); },
  ///       {.capacity = 4096, .label = "numbers"});
  ///
  /// Returns the channel so it can also be kept for wiring by hand.
  template <typename ProducerSlot, typename ConsumerSlot>
  std::shared_ptr<Channel> connect(ProducerSlot&& producer,
                                   ConsumerSlot&& consumer,
                                   ChannelOptions options = {}) {
    auto channel = make_channel(std::move(options));
    attach_slot(std::forward<ProducerSlot>(producer), channel->output());
    attach_slot(std::forward<ConsumerSlot>(consumer), channel->input());
    return channel;
  }

  /// Registers an externally created channel for monitoring.
  void watch(const std::shared_ptr<Channel>& channel);

  /// Enables the deadlock monitor for the next start().
  void enable_monitor(MonitorOptions options = {});

  /// Selects how the next start() executes the processes.  Defaults to
  /// SchedulerOptions::from_env(): thread-per-process unless DPN_SCHED=mn.
  /// Thread mode refuses (UsageError) graphs larger than
  /// options.max_threads; the M:N mode exists precisely for that regime.
  void set_scheduler(sched::SchedulerOptions options);

  /// The M:N scheduler driving this network, or nullptr in
  /// thread-per-process mode / before start().
  sched::Scheduler* scheduler() const { return scheduler_.get(); }

  /// Starts every process (and the monitor, if enabled).
  void start();

  /// Waits for every process to finish.  Rethrows the first non-IoError
  /// process failure.
  void join();

  /// start() + join().
  void run() {
    start();
    join();
  }

  /// Wakes every blocked channel operation with Interrupted.
  void abort();

  DeadlockOutcome outcome() const { return outcome_.load(); }
  std::size_t growth_events() const { return growth_events_.load(); }

  /// Number of processes that have not finished yet.
  std::size_t live_processes() const { return live_.load(); }

  /// Structured view of the whole network at one instant: every process's
  /// observable state and step count, every watched channel's occupancy,
  /// traffic, wait and batching counters.  This is what the deadlock
  /// monitor consumes, what channel_report() renders, and what a
  /// ComputeServer returns for a STATS request (NetworkSnapshot::encode
  /// puts it on the wire).  Never blocks a channel operation: counters are
  /// relaxed atomics plus per-pipe mutex reads.
  obs::NetworkSnapshot snapshot() const;

  /// Applies Parks' growth rule using a previously taken snapshot as the
  /// stall evidence, re-validating it against the live network first: the
  /// victim must still exist, still have blocked writers, and no process
  /// may have finished since the snapshot (a finished process invalidates
  /// the "everyone is blocked" deduction -- growing on stale evidence is
  /// how phantom growth after process exit happens).  Returns true when a
  /// channel was actually grown.
  bool apply_growth(const obs::NetworkSnapshot& stall, double factor = 2.0,
                    std::size_t max_capacity = 1u << 24);

  /// Human-readable snapshot of every watched channel: label, fill,
  /// capacity, and who is blocked on it.  The deadlock monitor's victim
  /// choice can be audited with this; tests and operators use it to see
  /// where a graph is stuck.  Rendered from snapshot().
  std::string channel_report() const;

  /// Machine-readable stall state (used by the distributed deadlock
  /// detector, paper Section 6.2).
  struct BlockedCounts {
    std::size_t live = 0;              // unfinished processes
    std::size_t blocked_readers = 0;   // blocked on local pipes
    std::size_t blocked_writers = 0;
    bool has_write_blocked = false;
    std::size_t smallest_blocked_capacity = 0;  // of a write-blocked pipe
  };
  BlockedCounts blocked_counts() const;

  /// Applies Parks' rule once: grows the smallest write-blocked local
  /// channel.  Returns false when no local channel is write-blocked.
  bool grow_smallest_blocked(double factor = 2.0,
                             std::size_t max_capacity = 1u << 24);

 private:
  void monitor_loop(std::stop_token stop);
  bool resolve_stall(const obs::NetworkSnapshot& stall);

  /// connect() plumbing: invoke the slot with the endpoint; a non-void
  /// result is a process to register.
  template <typename Slot, typename Endpoint>
  void attach_slot(Slot&& slot, const std::shared_ptr<Endpoint>& endpoint) {
    static_assert(
        std::is_invocable_v<Slot&&, const std::shared_ptr<Endpoint>&>,
        "connect() slot must be invocable with the channel endpoint");
    using Result =
        std::invoke_result_t<Slot&&, const std::shared_ptr<Endpoint>&>;
    if constexpr (std::is_void_v<Result>) {
      std::forward<Slot>(slot)(endpoint);
    } else {
      static_assert(
          std::is_convertible_v<Result, std::shared_ptr<Process>>,
          "connect() slot must return void or something convertible to "
          "shared_ptr<Process>");
      add_connected(std::forward<Slot>(slot)(endpoint));
    }
  }

  /// add() with instance dedup (and nullptr tolerated: "slot handled it").
  void add_connected(std::shared_ptr<Process> process);

  std::vector<std::shared_ptr<Process>> processes_;
  std::vector<std::shared_ptr<ChannelState>> channels_;
  mutable std::mutex channels_mutex_;

  std::vector<std::jthread> threads_;
  std::jthread monitor_thread_;
  bool monitor_enabled_ = false;
  MonitorOptions options_;
  bool started_ = false;

  sched::SchedulerOptions sched_options_ = sched::SchedulerOptions::from_env();
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Completion latch for the M:N path: one done() per top-level process
  /// fiber; join() waits here instead of joining threads.
  sched::WaitGroup graph_done_;

  std::atomic<std::size_t> live_{0};
  std::atomic<DeadlockOutcome> outcome_{DeadlockOutcome::kNone};
  std::atomic<std::size_t> growth_events_{0};

  std::mutex failures_mutex_;
  std::vector<std::exception_ptr> failures_;
};

}  // namespace dpn::core
