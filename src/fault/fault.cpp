#include "fault/fault.hpp"

#include <algorithm>
#include <thread>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace dpn::fault {

void FaultStats::reset() {
  connect_retries.store(0);
  connect_failures.store(0);
  tasks_reissued.store(0);
  workers_lost.store(0);
  lease_expiries.store(0);
  registry_evictions.store(0);
  faults_injected.store(0);
}

FaultStats& stats() {
  static FaultStats instance;
  return instance;
}

std::chrono::milliseconds RetryPolicy::backoff(int attempt) const {
  double delay = static_cast<double>(initial_backoff.count());
  for (int i = 1; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, static_cast<double>(max_backoff.count()));
  if (jitter > 0.0) {
    // Deterministic jitter: the (seed, attempt) pair fixes the factor, so
    // identical policies retry at identical instants across runs.
    SplitMix64 rng{seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b9u};
    const double unit =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  return std::chrono::milliseconds{
      std::max<long long>(0, static_cast<long long>(delay))};
}

namespace detail {

void before_retry(const RetryPolicy& policy, int attempt,
                  const std::string& what, const std::string& error) {
  stats().connect_retries.fetch_add(1, std::memory_order_relaxed);
  const auto delay = policy.backoff(attempt);
  log::warn(what, " failed (attempt ", attempt, "/", policy.max_attempts,
            "): ", error, " -- retrying in ", delay.count(), "ms");
  std::this_thread::sleep_for(delay);
}

void count_failure() {
  stats().connect_failures.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

namespace {

std::mutex g_plan_mutex;
std::shared_ptr<Plan> g_plan;  // NOLINT: intentionally process-wide

bool rule_matches(const std::string& rule_host, std::uint16_t rule_port,
                  const std::string& host, std::uint16_t port) {
  if (!rule_host.empty() && rule_host != host) return false;
  if (rule_port != 0 && rule_port != port) return false;
  return true;
}

}  // namespace

Plan& Plan::drop_connect(std::string host, std::uint16_t port, int times) {
  std::scoped_lock lock{mutex_};
  rules_.push_back({Kind::kDropConnect, std::move(host), port, 0, times});
  return *this;
}

Plan& Plan::delay_connect(std::string host, std::uint16_t port,
                          std::chrono::milliseconds delay, int times) {
  std::scoped_lock lock{mutex_};
  rules_.push_back({Kind::kDelayConnect, std::move(host), port,
                    static_cast<std::uint64_t>(delay.count()), times});
  return *this;
}

Plan& Plan::kill_after_bytes(std::string host, std::uint16_t port,
                             std::uint64_t bytes, int times) {
  std::scoped_lock lock{mutex_};
  rules_.push_back({Kind::kKillAfterBytes, std::move(host), port, bytes,
                    times});
  return *this;
}

Plan& Plan::refuse_accept(std::uint16_t port, int times) {
  std::scoped_lock lock{mutex_};
  rules_.push_back({Kind::kRefuseAccept, "", port, 0, times});
  return *this;
}

void Plan::install(std::shared_ptr<Plan> plan) {
  std::scoped_lock lock{g_plan_mutex};
  g_plan = std::move(plan);
}

void Plan::uninstall() {
  std::scoped_lock lock{g_plan_mutex};
  g_plan.reset();
}

std::shared_ptr<Plan> Plan::current() {
  std::scoped_lock lock{g_plan_mutex};
  return g_plan;
}

std::optional<Plan::Rule> Plan::take(Kind kind, const std::string& host,
                                     std::uint16_t port) {
  std::scoped_lock lock{mutex_};
  for (Rule& rule : rules_) {
    if (rule.kind != kind || rule.remaining == 0) continue;
    if (!rule_matches(rule.host, rule.port, host, port)) continue;
    if (rule.remaining > 0) --rule.remaining;
    stats().faults_injected.fetch_add(1, std::memory_order_relaxed);
    return rule;
  }
  return std::nullopt;
}

void Plan::apply_connect(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds deadline) {
  if (take(Kind::kDropConnect, host, port)) {
    throw NetError{"connect to " + host + ":" + std::to_string(port) +
                   ": connection refused (fault injection)"};
  }
  if (const auto rule = take(Kind::kDelayConnect, host, port)) {
    const auto delay = std::chrono::milliseconds{
        static_cast<long long>(rule->value)};
    // A delayed peer looks unreachable until the delay elapses; a delay
    // past the deadline is exactly a connect timeout.
    std::this_thread::sleep_for(std::min(delay, deadline));
    if (delay >= deadline) {
      throw NetError{"connect to " + host + ":" + std::to_string(port) +
                     " timed out after " + std::to_string(deadline.count()) +
                     "ms (fault injection delay)"};
    }
  }
}

std::optional<std::uint64_t> Plan::take_kill_budget(const std::string& host,
                                                    std::uint16_t port) {
  if (const auto rule = take(Kind::kKillAfterBytes, host, port)) {
    return rule->value;
  }
  return std::nullopt;
}

bool Plan::take_refuse_accept(std::uint16_t port) {
  return take(Kind::kRefuseAccept, "", port).has_value();
}

}  // namespace dpn::fault
