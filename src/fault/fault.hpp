#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/error.hpp"

/// Fault tolerance primitives shared by net, dist, rmi and par:
///
///  * RetryPolicy / with_retry -- capped exponential backoff with
///    deterministic jitter around transient connect failures;
///  * FaultStats -- process-wide failure and recovery counters, surfaced
///    through obs::NetworkSnapshot so fleet_stats shows degradation live;
///  * LeaseOptions -- the heartbeat contract between a ComputeServer and
///    its clients (docs/FAULTS.md);
///  * Plan -- a deterministic fault-injection harness consulted by the
///    socket layer, usable from tests and `parallel_factor --chaos`.
namespace dpn::fault {

/// Process-wide failure/recovery counters.  Monotonic; reset() exists for
/// tests only.
struct FaultStats {
  std::atomic<std::uint64_t> connect_retries{0};   // re-dialed after NetError
  std::atomic<std::uint64_t> connect_failures{0};  // gave up after all attempts
  std::atomic<std::uint64_t> tasks_reissued{0};    // meta_dynamic re-dispatches
  std::atomic<std::uint64_t> workers_lost{0};      // workers declared dead
  std::atomic<std::uint64_t> lease_expiries{0};    // heartbeats that went silent
  std::atomic<std::uint64_t> registry_evictions{0};  // stale names dropped
  std::atomic<std::uint64_t> faults_injected{0};   // Plan rules that fired

  void reset();
};

FaultStats& stats();

/// Capped exponential backoff for transient connection failures.  The
/// jitter sequence is deterministic (SplitMix64 over `seed`), so two runs
/// with the same policy retry at the same instants -- chaos tests stay
/// reproducible.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::milliseconds connect_timeout{2000};  // per-attempt deadline
  std::chrono::milliseconds initial_backoff{25};
  std::chrono::milliseconds max_backoff{1000};
  double multiplier = 2.0;
  double jitter = 0.2;     // +/- fraction applied to each backoff
  std::uint64_t seed = 0;  // jitter stream; same seed -> same delays

  /// Backoff before attempt `attempt + 1` (attempt counts from 1).
  std::chrono::milliseconds backoff(int attempt) const;
};

namespace detail {
/// Counts the retry, logs, and sleeps the policy's backoff.
void before_retry(const RetryPolicy& policy, int attempt,
                  const std::string& what, const std::string& error);
void count_failure();
}  // namespace detail

/// Runs `fn` up to policy.max_attempts times, retrying on NetError with
/// the policy's backoff between attempts.  The last failure is rethrown;
/// non-NetError exceptions pass through immediately.
template <typename Fn>
auto with_retry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const NetError& e) {
      if (attempt >= attempts) {
        detail::count_failure();
        throw;
      }
      detail::before_retry(policy, attempt, what, e.what());
    }
  }
}

/// The heartbeat contract for long-running compute-server requests
/// (RUN_TASK, JOIN): the server emits a HEARTBEAT marker every
/// `heartbeat_interval` while the work runs; a client that hears nothing
/// for `patience` declares the worker lost (docs/PROTOCOLS.md section 5).
struct LeaseOptions {
  std::chrono::milliseconds heartbeat_interval{250};
  std::chrono::milliseconds patience{2000};
};

/// A deterministic fault-injection plan.  Install one process-wide and
/// the socket layer consults it:
///
///   fault::Plan::install(std::make_shared<fault::Plan>()
///       ->drop_connect("127.0.0.1", port, 2)
///       .kill_after_bytes("127.0.0.1", port, 4096));
///
/// Rules match on (host, port); an empty host or port 0 is a wildcard.
/// `times` bounds how often a rule fires (-1 = unlimited).  Every firing
/// increments FaultStats::faults_injected.
class Plan {
 public:
  Plan& drop_connect(std::string host, std::uint16_t port, int times = -1);
  Plan& delay_connect(std::string host, std::uint16_t port,
                      std::chrono::milliseconds delay, int times = -1);
  Plan& kill_after_bytes(std::string host, std::uint16_t port,
                         std::uint64_t bytes, int times = -1);
  Plan& refuse_accept(std::uint16_t port, int times = -1);

  static void install(std::shared_ptr<Plan> plan);
  static void uninstall();
  static std::shared_ptr<Plan> current();

  // --- hooks consulted by dpn::net ---

  /// Applied at the top of Socket::connect.  A matching drop rule throws
  /// NetError; a matching delay rule sleeps (throwing NetError if the
  /// delay consumes the whole connect deadline).
  void apply_connect(const std::string& host, std::uint16_t port,
                     std::chrono::milliseconds deadline);

  /// Byte budget for a freshly connected socket when a kill-after rule
  /// matches: the socket hard-resets after sending this many bytes.
  std::optional<std::uint64_t> take_kill_budget(const std::string& host,
                                                std::uint16_t port);

  /// True when the next connection accepted on `port` must be refused
  /// (hard-reset immediately).
  bool take_refuse_accept(std::uint16_t port);

 private:
  enum class Kind : std::uint8_t {
    kDropConnect,
    kDelayConnect,
    kKillAfterBytes,
    kRefuseAccept,
  };
  struct Rule {
    Kind kind;
    std::string host;     // empty = any
    std::uint16_t port;   // 0 = any
    std::uint64_t value;  // delay ms / byte budget
    int remaining;        // -1 = unlimited
  };

  /// Finds and consumes the first live rule of `kind` matching
  /// (host, port); counts the injection.
  std::optional<Rule> take(Kind kind, const std::string& host,
                           std::uint16_t port);

  std::mutex mutex_;
  std::vector<Rule> rules_;
};

/// RAII installer for tests: installs on construction, uninstalls on
/// destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(std::shared_ptr<Plan> plan) {
    Plan::install(std::move(plan));
  }
  ~ScopedPlan() { Plan::uninstall(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace dpn::fault
