#pragma once

#include <memory>

#include "core/task.hpp"
#include "image/codec.hpp"
#include "image/image.hpp"

/// Task types wiring the block codec into the generic parallel framework
/// (paper Sections 5/5.1): the producer splits the image into blocks, a
/// worker task compresses one block, and the results -- arriving at the
/// consumer in grid order thanks to the schemas' order guarantee -- are
/// assembled into the archive "in order to an image file".
namespace dpn::image {

/// Worker-side task: compress one block.
class BlockTask final : public core::Task {
 public:
  BlockTask() = default;
  BlockTask(std::uint64_t index, ByteVector pixels, std::size_t width,
            std::size_t height)
      : index_(index), pixels_(std::move(pixels)), width_(width),
        height_(height) {}

  std::shared_ptr<core::Task> run() override;

  std::uint64_t index() const { return index_; }

  std::string type_name() const override { return "dpn.image.Block"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<BlockTask> read_object(serial::ObjectInputStream& in);

 private:
  std::uint64_t index_ = 0;
  ByteVector pixels_;
  std::size_t width_ = 0;
  std::size_t height_ = 0;
};

/// Result task: one compressed block.  Consumer-side run() is a no-op;
/// assembly happens in the consumer observer (the "image file" writer).
class CompressedBlockTask final : public core::Task {
 public:
  CompressedBlockTask() = default;
  CompressedBlockTask(std::uint64_t index, ByteVector compressed)
      : index_(index), compressed_(std::move(compressed)) {}

  std::shared_ptr<core::Task> run() override { return nullptr; }

  std::uint64_t index() const { return index_; }
  const ByteVector& compressed() const { return compressed_; }

  std::string type_name() const override {
    return "dpn.image.CompressedBlock";
  }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<CompressedBlockTask> read_object(
      serial::ObjectInputStream& in);

 private:
  std::uint64_t index_ = 0;
  ByteVector compressed_;
};

/// Producer task: yields one BlockTask per grid tile, in row-major order.
class ImageProducerTask final : public core::Task {
 public:
  ImageProducerTask() = default;
  ImageProducerTask(Image img, std::size_t block_size = 16);

  std::shared_ptr<core::Task> run() override;

  std::string type_name() const override { return "dpn.image.Producer"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<ImageProducerTask> read_object(
      serial::ObjectInputStream& in);

 private:
  Image img_;
  std::size_t block_size_ = 16;
  std::vector<BlockRect> grid_;
  std::uint64_t next_ = 0;
};

/// Compresses an image through the parallel pipeline: Producer ->
/// meta_static/meta_dynamic(workers) -> Consumer, assembling the archive
/// in grid order.  With workers == 1 a single Worker is used (Figure 1).
/// The output is byte-identical to compress_image().
ByteVector compress_image_parallel(const Image& img, std::size_t workers,
                                   bool dynamic, std::size_t block_size = 16);

}  // namespace dpn::image
