#include "image/codec.hpp"

#include "io/data.hpp"
#include "io/memory.hpp"

namespace dpn::image {

namespace {

constexpr std::uint8_t kModeRaw = 0;
constexpr std::uint8_t kModeRle = 1;
constexpr std::uint8_t kModeNibble = 2;
constexpr std::uint32_t kArchiveMagic = 0x44504e49;  // "DPNI"

/// Nibble coding of a residual byte: values 0..7 code themselves, values
/// 248..255 (i.e. -8..-1 mod 256) code as 8..15.  Returns 16 when the
/// residual is out of range (nibble mode not applicable).
int nibble_code(std::uint8_t residual) {
  if (residual <= 7) return residual;
  if (residual >= 248) return residual - 240;
  return 16;
}

std::uint8_t nibble_decode(int code) {
  return code <= 7 ? static_cast<std::uint8_t>(code)
                   : static_cast<std::uint8_t>(code + 240);
}

/// Predicted residual for pixel (x, y): left neighbour, or the pixel
/// above for the first column, or 128 for the first pixel.  All byte
/// arithmetic is mod 256, so prediction is exactly invertible.
std::uint8_t prediction(const std::uint8_t* pixels, std::size_t width,
                        std::size_t x, std::size_t y) {
  if (x > 0) return pixels[y * width + x - 1];
  if (y > 0) return pixels[(y - 1) * width + x];
  return 128;
}

}  // namespace

ByteVector compress_block(ByteSpan pixels, std::size_t width,
                          std::size_t height) {
  if (width == 0 || height == 0 || width > 255 || height > 255 ||
      pixels.size() != width * height) {
    throw UsageError{"compress_block: bad dimensions"};
  }

  // Residuals after prediction.  The first pixel travels raw in modes
  // 1/2 (its "prediction" would be an arbitrary constant, and one large
  // residual must not disqualify nibble packing).
  ByteVector residuals;
  residuals.reserve(pixels.size() - 1);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x == 0 && y == 0) continue;
      const std::size_t i = y * width + x;
      residuals.push_back(static_cast<std::uint8_t>(
          pixels[i] - prediction(pixels.data(), width, x, y)));
    }
  }

  // Zero-run-length encode.
  ByteVector rle;
  rle.reserve(residuals.size());
  for (std::size_t i = 0; i < residuals.size();) {
    if (residuals[i] == 0) {
      std::size_t run = 1;
      while (i + run < residuals.size() && residuals[i + run] == 0 &&
             run < 255) {
        ++run;
      }
      rle.push_back(0x00);
      rle.push_back(static_cast<std::uint8_t>(run));
      i += run;
    } else {
      rle.push_back(residuals[i]);
      ++i;
    }
  }

  // Nibble packing, applicable when every residual is small (gradients).
  ByteVector nibbles;
  bool nibble_ok = true;
  {
    int pending = -1;
    for (const std::uint8_t residual : residuals) {
      const int code = nibble_code(residual);
      if (code == 16) {
        nibble_ok = false;
        break;
      }
      if (pending < 0) {
        pending = code;
      } else {
        nibbles.push_back(
            static_cast<std::uint8_t>(pending | (code << 4)));
        pending = -1;
      }
    }
    if (nibble_ok && pending >= 0) {
      nibbles.push_back(static_cast<std::uint8_t>(pending));
    }
  }

  // Pick the smallest representation; raw is the incompressible fallback.
  // Modes 1/2 pay one extra byte for the raw first pixel.
  std::uint8_t mode = kModeRaw;
  const ByteVector* payload = nullptr;
  const std::size_t rle_total = 1 + rle.size();
  const std::size_t nibble_total = nibble_ok ? 1 + nibbles.size() : ~0u;
  if (nibble_ok && nibble_total < pixels.size() &&
      nibble_total <= rle_total) {
    mode = kModeNibble;
    payload = &nibbles;
  } else if (rle_total < pixels.size()) {
    mode = kModeRle;
    payload = &rle;
  }

  ByteVector out;
  out.push_back(mode);
  out.push_back(static_cast<std::uint8_t>(width));
  out.push_back(static_cast<std::uint8_t>(height));
  if (mode == kModeRaw) {
    out.insert(out.end(), pixels.begin(), pixels.end());
  } else {
    out.push_back(pixels[0]);
    out.insert(out.end(), payload->begin(), payload->end());
  }
  return out;
}

ByteVector decompress_block(ByteSpan compressed, std::size_t* width_out,
                            std::size_t* height_out) {
  if (compressed.size() < 3) {
    throw SerializationError{"block too short"};
  }
  const std::uint8_t mode = compressed[0];
  const std::size_t width = compressed[1];
  const std::size_t height = compressed[2];
  if (width == 0 || height == 0) {
    throw SerializationError{"block with empty dimensions"};
  }
  const std::size_t count = width * height;
  ByteSpan payload = compressed.subspan(3);

  ByteVector pixels;
  if (mode == kModeRaw) {
    if (payload.size() != count) {
      throw SerializationError{"raw block payload size mismatch"};
    }
    pixels.assign(payload.begin(), payload.end());
  } else if (mode == kModeRle || mode == kModeNibble) {
    if (payload.empty()) {
      throw SerializationError{"predicted block missing its first pixel"};
    }
    const std::uint8_t first_pixel = payload[0];
    const ByteSpan body = payload.subspan(1);
    const std::size_t n_residuals = count - 1;

    ByteVector residuals;
    residuals.reserve(n_residuals);
    if (mode == kModeRle) {
      for (std::size_t i = 0; i < body.size();) {
        const std::uint8_t token = body[i++];
        if (token == 0x00) {
          if (i >= body.size()) {
            throw SerializationError{"truncated zero run"};
          }
          const std::uint8_t run = body[i++];
          if (run == 0) throw SerializationError{"zero-length run"};
          residuals.insert(residuals.end(), run, 0);
        } else {
          residuals.push_back(token);
        }
      }
    } else {
      if (body.size() != (n_residuals + 1) / 2) {
        throw SerializationError{"nibble block payload size mismatch"};
      }
      for (std::size_t i = 0; i < n_residuals; ++i) {
        const std::uint8_t byte = body[i / 2];
        const int code = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        residuals.push_back(nibble_decode(code));
      }
    }
    if (residuals.size() != n_residuals) {
      throw SerializationError{"block residual count mismatch"};
    }

    pixels.resize(count);
    pixels[0] = first_pixel;
    std::size_t r = 0;
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        if (x == 0 && y == 0) continue;
        const std::size_t i = y * width + x;
        pixels[i] = static_cast<std::uint8_t>(
            residuals[r++] + prediction(pixels.data(), width, x, y));
      }
    }
  } else {
    throw SerializationError{"unknown block mode"};
  }
  if (width_out != nullptr) *width_out = width;
  if (height_out != nullptr) *height_out = height;
  return pixels;
}

ByteVector assemble_archive(const Image& img, std::size_t block_size,
                            const std::vector<ByteVector>& blocks) {
  auto sink = std::make_shared<io::MemoryOutputStream>();
  io::DataOutputStream out{sink};
  out.write_u32(kArchiveMagic);
  out.write_varint(img.width());
  out.write_varint(img.height());
  out.write_varint(block_size);
  out.write_varint(blocks.size());
  for (const ByteVector& block : blocks) {
    out.write_bytes({block.data(), block.size()});
  }
  return sink->take();
}

ByteVector compress_image(const Image& img, std::size_t block_size) {
  const auto grid = block_grid(img, block_size);
  std::vector<ByteVector> blocks;
  blocks.reserve(grid.size());
  for (const BlockRect& rect : grid) {
    const ByteVector pixels = extract_block(img, rect);
    blocks.push_back(
        compress_block({pixels.data(), pixels.size()}, rect.width,
                       rect.height));
  }
  return assemble_archive(img, block_size, blocks);
}

Image decompress_image(ByteSpan archive) {
  auto source = std::make_shared<io::MemoryInputStream>(
      ByteVector{archive.begin(), archive.end()});
  io::DataInputStream in{source};
  if (in.read_u32() != kArchiveMagic) {
    throw SerializationError{"not a dpn image archive"};
  }
  const auto width = static_cast<std::size_t>(in.read_varint());
  const auto height = static_cast<std::size_t>(in.read_varint());
  const auto block_size = static_cast<std::size_t>(in.read_varint());
  const std::uint64_t block_count = in.read_varint();

  Image img{width, height};
  const auto grid = block_grid(img, block_size);
  if (grid.size() != block_count) {
    throw SerializationError{"archive block count does not match grid"};
  }
  for (const BlockRect& rect : grid) {
    const ByteVector compressed = in.read_bytes();
    std::size_t w = 0, h = 0;
    const ByteVector pixels =
        decompress_block({compressed.data(), compressed.size()}, &w, &h);
    if (w != rect.width || h != rect.height) {
      throw SerializationError{"archive block has wrong dimensions"};
    }
    insert_block(img, rect, {pixels.data(), pixels.size()});
  }
  return img;
}

}  // namespace dpn::image
