#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

/// A minimal grayscale image type for the paper's motivating
/// embarrassingly-parallel application (Section 5: "an image can be
/// divided into 16x16 blocks of pixels that are compressed independently
/// with the results collected and written in order to an image file").
namespace dpn::image {

class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height, 0) {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  void set(std::size_t x, std::size_t y, std::uint8_t value) {
    pixels_[y * width_ + x] = value;
  }

  const ByteVector& pixels() const { return pixels_; }
  ByteVector& pixels() { return pixels_; }

  bool operator==(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  ByteVector pixels_;
};

/// Deterministic synthetic test images.
/// `smoothness` in [0,1]: 1 = pure gradients (compresses well),
/// 0 = white noise (incompressible).
Image synthetic_image(std::size_t width, std::size_t height,
                      std::uint64_t seed, double smoothness = 0.8);

/// A block's position within the image grid.
struct BlockRect {
  std::size_t x = 0, y = 0;  // top-left pixel
  std::size_t width = 0, height = 0;
};

/// Enumerates the block grid (16x16 tiles; edge tiles may be smaller).
std::vector<BlockRect> block_grid(const Image& img,
                                  std::size_t block_size = 16);

/// Copies a block out of / back into an image.
ByteVector extract_block(const Image& img, const BlockRect& rect);
void insert_block(Image& img, const BlockRect& rect, ByteSpan pixels);

}  // namespace dpn::image
