#include "image/tasks.hpp"

#include <mutex>

#include "par/schema.hpp"

namespace dpn::image {

std::shared_ptr<core::Task> BlockTask::run() {
  return std::make_shared<CompressedBlockTask>(
      index_, compress_block({pixels_.data(), pixels_.size()}, width_,
                             height_));
}

void BlockTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_u64(index_);
  out.write_bytes({pixels_.data(), pixels_.size()});
  out.write_varint(width_);
  out.write_varint(height_);
}

std::shared_ptr<BlockTask> BlockTask::read_object(
    serial::ObjectInputStream& in) {
  auto task = std::make_shared<BlockTask>();
  task->index_ = in.read_u64();
  task->pixels_ = in.read_bytes();
  task->width_ = static_cast<std::size_t>(in.read_varint());
  task->height_ = static_cast<std::size_t>(in.read_varint());
  return task;
}

void CompressedBlockTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_u64(index_);
  out.write_bytes({compressed_.data(), compressed_.size()});
}

std::shared_ptr<CompressedBlockTask> CompressedBlockTask::read_object(
    serial::ObjectInputStream& in) {
  auto task = std::make_shared<CompressedBlockTask>();
  task->index_ = in.read_u64();
  task->compressed_ = in.read_bytes();
  return task;
}

ImageProducerTask::ImageProducerTask(Image img, std::size_t block_size)
    : img_(std::move(img)), block_size_(block_size),
      grid_(block_grid(img_, block_size)) {}

std::shared_ptr<core::Task> ImageProducerTask::run() {
  if (next_ >= grid_.size()) return nullptr;
  const BlockRect& rect = grid_[next_];
  auto task = std::make_shared<BlockTask>(next_, extract_block(img_, rect),
                                          rect.width, rect.height);
  ++next_;
  return task;
}

void ImageProducerTask::write_fields(serial::ObjectOutputStream& out) const {
  out.write_varint(img_.width());
  out.write_varint(img_.height());
  out.write_bytes({img_.pixels().data(), img_.pixels().size()});
  out.write_varint(block_size_);
  out.write_u64(next_);
}

std::shared_ptr<ImageProducerTask> ImageProducerTask::read_object(
    serial::ObjectInputStream& in) {
  const auto width = static_cast<std::size_t>(in.read_varint());
  const auto height = static_cast<std::size_t>(in.read_varint());
  ByteVector pixels = in.read_bytes();
  if (pixels.size() != width * height) {
    throw SerializationError{"image pixel payload size mismatch"};
  }
  Image img{width, height};
  img.pixels() = std::move(pixels);
  const auto block_size = static_cast<std::size_t>(in.read_varint());
  auto task = std::make_shared<ImageProducerTask>(std::move(img), block_size);
  task->next_ = in.read_u64();
  return task;
}

ByteVector compress_image_parallel(const Image& img, std::size_t workers,
                                   bool dynamic, std::size_t block_size) {
  const auto grid = block_grid(img, block_size);
  std::mutex mutex;
  std::vector<ByteVector> blocks;
  blocks.reserve(grid.size());
  std::uint64_t expected = 0;
  bool order_violated = false;

  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto block = std::dynamic_pointer_cast<CompressedBlockTask>(task);
    if (!block) return;
    std::scoped_lock lock{mutex};
    if (block->index() != expected) order_violated = true;
    ++expected;
    blocks.push_back(block->compressed());
  };

  auto graph = par::pipeline(
      std::make_shared<ImageProducerTask>(img, block_size), observer,
      [&](auto in, auto out) -> std::shared_ptr<core::Process> {
        if (workers <= 1) {
          return std::make_shared<par::Worker>(std::move(in), std::move(out));
        }
        return dynamic
                   ? par::meta_dynamic(std::move(in), std::move(out), workers)
                   : par::meta_static(std::move(in), std::move(out), workers);
      });
  graph->run();

  if (order_violated || blocks.size() != grid.size()) {
    throw IoError{"parallel compression delivered blocks out of order"};
  }
  return assemble_archive(img, block_size, blocks);
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<BlockTask>("dpn.image.Block") &&
    serial::register_type<CompressedBlockTask>("dpn.image.CompressedBlock") &&
    serial::register_type<ImageProducerTask>("dpn.image.Producer");
}

}  // namespace dpn::image
