#pragma once

#include "image/image.hpp"
#include "support/bytes.hpp"

/// A small lossless block codec: left/up predictive coding followed by
/// the better of two residual encodings, with a raw fallback for
/// incompressible blocks.  Deliberately simple -- the point of the
/// Section 5 application is the parallel structure, not the codec -- but
/// real enough that compression work scales with content.
///
/// Block wire format:
///   mode:u8 (0 = raw, 1 = predicted+RLE, 2 = predicted+nibbles)
///   width:u8 height:u8
///   payload:
///     raw:     width*height pixel bytes
///     rle:     tokens -- 0x00 <runlen:u8> encodes 1..255 zero residuals,
///              any other byte is a literal residual (flat regions)
///     nibbles: every residual is in [-8, 7] and packed two per byte,
///              first residual in the low nibble (smooth gradients)
namespace dpn::image {

/// Compresses one block of pixels (row-major, rect.width x rect.height).
ByteVector compress_block(ByteSpan pixels, std::size_t width,
                          std::size_t height);

/// Decompresses a block; throws SerializationError on malformed input.
ByteVector decompress_block(ByteSpan compressed, std::size_t* width_out,
                            std::size_t* height_out);

/// Whole-image archive (sequential reference implementation):
///   magic:u32 width:varint height:varint block_size:varint
///   block_count:varint, then each block as a length-prefixed blob in
///   row-major grid order.
ByteVector compress_image(const Image& img, std::size_t block_size = 16);
Image decompress_image(ByteSpan archive);

/// Builds the archive from already-compressed blocks in grid order (the
/// parallel pipeline's consumer does this).
ByteVector assemble_archive(const Image& img, std::size_t block_size,
                            const std::vector<ByteVector>& blocks);

}  // namespace dpn::image
