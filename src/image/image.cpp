#include "image/image.hpp"

#include <cmath>

namespace dpn::image {

Image synthetic_image(std::size_t width, std::size_t height,
                      std::uint64_t seed, double smoothness) {
  Image img{width, height};
  Xoshiro256 rng{seed};
  const double noise_amplitude = 255.0 * (1.0 - smoothness);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Smooth base: diagonal gradient plus gentle waves.
      const double gx = static_cast<double>(x) / static_cast<double>(width);
      const double gy = static_cast<double>(y) / static_cast<double>(height);
      double value = 96.0 * gx + 96.0 * gy +
                     32.0 * std::sin(12.0 * gx) * std::cos(9.0 * gy) + 16.0;
      value += noise_amplitude * (rng.unit() - 0.5);
      if (value < 0) value = 0;
      if (value > 255) value = 255;
      img.set(x, y, static_cast<std::uint8_t>(value));
    }
  }
  return img;
}

std::vector<BlockRect> block_grid(const Image& img, std::size_t block_size) {
  if (block_size == 0) throw UsageError{"block size must be positive"};
  std::vector<BlockRect> blocks;
  for (std::size_t y = 0; y < img.height(); y += block_size) {
    for (std::size_t x = 0; x < img.width(); x += block_size) {
      BlockRect rect;
      rect.x = x;
      rect.y = y;
      rect.width = std::min(block_size, img.width() - x);
      rect.height = std::min(block_size, img.height() - y);
      blocks.push_back(rect);
    }
  }
  return blocks;
}

ByteVector extract_block(const Image& img, const BlockRect& rect) {
  ByteVector out;
  out.reserve(rect.width * rect.height);
  for (std::size_t y = 0; y < rect.height; ++y) {
    for (std::size_t x = 0; x < rect.width; ++x) {
      out.push_back(img.at(rect.x + x, rect.y + y));
    }
  }
  return out;
}

void insert_block(Image& img, const BlockRect& rect, ByteSpan pixels) {
  if (pixels.size() != rect.width * rect.height) {
    throw UsageError{"block pixel count does not match its rectangle"};
  }
  std::size_t i = 0;
  for (std::size_t y = 0; y < rect.height; ++y) {
    for (std::size_t x = 0; x < rect.width; ++x) {
      img.set(rect.x + x, rect.y + y, pixels[i++]);
    }
  }
}

}  // namespace dpn::image
