#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "sched/fiber.hpp"

/// Fiber-aware blocking queue.
///
/// Moved here from support/sync.hpp when the M:N scheduler landed: a
/// consumer that blocks inside a fiber must suspend the *fiber* (freeing
/// the worker thread to run other processes), not park the OS thread on a
/// condition variable.  A cv wait from fiber context wedges the whole
/// worker -- with one worker that is an instant deadlock (the Turnstile
/// waiting for results that can only be produced by fibers its own wait
/// is starving).  pop() therefore dispatches on sched::on_fiber() exactly
/// like io::Pipe's blocking read/write does; producers may be plain
/// threads (the Turnstile's forwarders are) or fibers, push never blocks.
namespace dpn::sched {

/// Unbounded multi-producer multi-consumer queue with close semantics.
/// pop() blocks until an item is available or the queue is closed *and*
/// drained, in which case it returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue was already closed (item dropped).
  bool push(T item) {
    Fiber* waiter = nullptr;
    {
      std::scoped_lock lock{mutex_};
      if (closed_) return false;
      items_.push_back(std::move(item));
      waiter = fiber_waiters_.pop();
    }
    // One new item wakes one consumer: a suspended fiber if any, else a
    // cv waiter.  Resuming outside the lock keeps the scheduler's queues
    // out of our critical section.
    if (waiter != nullptr) {
      make_runnable(waiter);
    } else {
      cv_.notify_one();
    }
    return true;
  }

  /// Blocks for the next item; nullopt means closed-and-drained.  Callable
  /// from a fiber (suspends it) or a plain thread (cv wait).
  std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    for (;;) {
      if (!items_.empty()) {
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
      }
      if (closed_) return std::nullopt;
      if (on_fiber()) {
        suspend_current(fiber_waiters_, lock);  // unlocks before switching
        lock.lock();
      } else {
        cv_.wait(lock, [&] { return !items_.empty() || closed_; });
      }
    }
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    std::vector<Fiber*> waiters;
    {
      std::scoped_lock lock{mutex_};
      closed_ = true;
      while (Fiber* waiter = fiber_waiters_.pop()) waiters.push_back(waiter);
    }
    cv_.notify_all();
    for (Fiber* waiter : waiters) make_runnable(waiter);
  }

  bool closed() const {
    std::scoped_lock lock{mutex_};
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock{mutex_};
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  WaitQueue fiber_waiters_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dpn::sched
