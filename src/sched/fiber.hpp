#pragma once

#include <setjmp.h>
#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

/// Stackful fibers: the execution contexts of the M:N scheduler.
///
/// A fiber is a process's run() captured as a user-level context with its
/// own (small, heap-allocated, lazily-paged) stack.  Worker threads switch
/// into a fiber to run it and the fiber switches back out when it finishes
/// or when a channel operation would block -- run-to-block execution.  The
/// only suspension points are the ones the runtime itself creates
/// (io::Pipe waits, sched::WaitGroup), so Kahn's blocking-read discipline
/// is preserved exactly: a process can never observe that it was
/// descheduled.
///
/// Contexts are created with makecontext (portable stack setup), but the
/// steady-state switch is _setjmp/_longjmp: swapcontext saves and
/// restores the signal mask -- two rt_sigprocmask syscalls per switch,
/// ~1 us, which would dominate a fine-grained relay graph -- while
/// _setjmp is a pure register save (tens of nanoseconds).  Only the
/// *first* entry onto a fresh fiber stack pays one swapcontext.  Under
/// ThreadSanitizer the pure-ucontext path is kept (and every switch is
/// annotated through the TSan fiber API so per-context shadow stacks
/// stay coherent).
namespace dpn::sched {

class Scheduler;
class WaitQueue;
struct Worker;
class Fiber;

namespace detail {
/// Switches the calling fiber out to its worker's scheduler loop
/// (internal: the suspension half of the run-to-block protocol).
void switch_out(Fiber* self);
}  // namespace detail

/// Scheduler-driven lifecycle transitions surfaced to the owner of a
/// fiber (Network binds these to obs::ProcessStats so snapshots show
/// runnable/stolen states without dpn_sched depending on dpn_obs).
enum class FiberPhase : std::uint8_t {
  kReady,    // made runnable: sitting in a deque awaiting a worker
  kRunning,  // a worker switched into the fiber
  kStolen,   // this dispatch migrated the fiber to a different worker
};

/// One schedulable execution context.  Created by Scheduler::spawn and
/// owned by the runtime: after spawn the pointer is only valid for use
/// with the wait/wake protocol below (the scheduler frees the fiber when
/// its body returns).
class Fiber {
 public:
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  const std::string& name() const { return name_; }

 private:
  friend class Scheduler;
  friend class WaitQueue;
  friend void suspend_current(WaitQueue&, std::unique_lock<std::mutex>&);
  friend void make_runnable(Fiber*);
  friend void detail::switch_out(Fiber*);

  Fiber(std::function<void()> body, std::size_t stack_bytes,
        std::string name, std::function<void(FiberPhase)> on_phase);

  /// Entry trampoline running on the fiber's own stack.
  static void entry();

  std::function<void()> body_;
  std::function<void(FiberPhase)> on_phase_;
  std::string name_;
  /// The fiber's stack.  Plain heap memory, NOT mmap: 100k fibers must
  /// not exhaust vm.max_map_count, and untouched heap pages cost no RSS,
  /// so a generous reserve is effectively free until used.
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_size_ = 0;
  /// Initial context: used once, for the first switch onto the fresh
  /// stack (makecontext is the portable way to start executing there).
  ucontext_t context_{};
  /// Steady-state suspension point (valid once started_): _longjmp here
  /// resumes the fiber without touching the signal mask.
  jmp_buf jump_{};
  bool started_ = false;
  void* tsan_fiber_ = nullptr;

  Scheduler* scheduler_ = nullptr;
  /// Index of the worker that last ran the fiber; -1 before the first
  /// dispatch.  A dispatch on a different worker is a steal (or a wakeup
  /// landing elsewhere) and is reported as FiberPhase::kStolen.
  int last_worker_ = -1;
  /// True from the instant a worker switches into the fiber until that
  /// worker's scheduler loop regains control after the fiber switched
  /// out.  A waker may requeue a fiber that is still in its (very short)
  /// switch-out window; the next worker spins on this flag before
  /// switching in, which is also the release/acquire edge that publishes
  /// all fiber state across worker migrations.
  std::atomic<bool> in_switch_{false};
  bool finished_ = false;
  /// Intrusive link for WaitQueue.
  Fiber* next_waiter_ = nullptr;
};

/// True when the calling thread is currently executing a fiber (i.e. we
/// are on a scheduler worker, inside some process's run()).  Blocking
/// primitives use this to choose fiber suspension over thread parking.
bool on_fiber();

/// The fiber the calling thread is executing, or nullptr.
Fiber* current_fiber();

/// FIFO list of suspended fibers, embedded in whatever object owns the
/// wait condition (a pipe, a wait group).  Not internally synchronized:
/// the owner's mutex must be held for every call, exactly like the
/// condition_variable it sits next to.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  void push(Fiber* fiber);
  /// Removes and returns the oldest waiter, or nullptr when empty.
  Fiber* pop();
  bool empty() const { return head_ == nullptr; }

 private:
  Fiber* head_ = nullptr;
  Fiber* tail_ = nullptr;
};

/// Suspends the calling fiber: atomically (under `guard`, which the
/// caller holds) enqueues it on `queue`, releases `guard`, and switches
/// to the worker's scheduler loop.  Returns once a waker has popped the
/// fiber and a worker has dispatched it again -- possibly a *different*
/// worker.  The caller must re-lock `guard` and re-check its predicate
/// (wakeups are one-shot but deliberately spurious-tolerant, mirroring
/// condition_variable semantics).
///
/// Must only be called on a fiber (on_fiber() == true) and never while
/// holding any lock other than `guard`'s.
void suspend_current(WaitQueue& queue, std::unique_lock<std::mutex>& guard);

/// Hands a fiber popped from a WaitQueue back to its scheduler: pushed on
/// the waking worker's own deque when the waker is a worker (the
/// cache-warm choice -- the data it just produced is right here), else on
/// the scheduler's inject queue.  Safe to call while holding the lock
/// that guarded the WaitQueue.
void make_runnable(Fiber* fiber);

}  // namespace dpn::sched
