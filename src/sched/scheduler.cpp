#include "sched/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"
#include "support/log.hpp"

#if defined(__SANITIZE_THREAD__)
#include <sanitizer/tsan_interface.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpn::sched {

namespace {

/// Spin hint for the (nanoseconds-scale) switch-out window.
inline void cpu_relax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

#if defined(__SANITIZE_THREAD__)
inline void tsan_switch(void* fiber) {
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
}
#else
inline void tsan_switch(void*) {}
#endif

}  // namespace

/// Per-worker state.  The worker's own thread context doubles as the
/// "scheduler context" every fiber switches back to.
struct Worker {
  Scheduler* scheduler = nullptr;
  unsigned index = 0;
  ucontext_t loop_context{};  // swapcontext target (TSan build only)
  jmp_buf loop_jump{};        // fast switch target: set per dispatch
  void* tsan_fiber = nullptr;  // the worker thread's own TSan fiber
  WorkStealDeque deque;
  std::uint64_t rng = 0;  // xorshift state for victim selection
  std::jthread thread;    // last member: joins before the rest dies
};

namespace {

// Worker-thread identity.  All post-switch reads go through the noinline
// accessors below: a fiber that suspends on worker A and resumes on
// worker B must not reuse a TLS address the compiler cached before the
// switch, and a non-inlined call is recomputed from scratch.
thread_local Worker* t_worker = nullptr;
thread_local Fiber* t_current = nullptr;

[[gnu::noinline]] Worker* current_worker_slow() { return t_worker; }
[[gnu::noinline]] Fiber* current_fiber_slow() { return t_current; }

}  // namespace

namespace detail {

/// Switches the calling fiber out to its worker's scheduler loop.  All
/// thread-local reads happen inside this non-inlined frame, freshly, on
/// whatever thread is running the fiber right now.
///
/// Fast path: _setjmp records the suspension point (registers only, no
/// sigprocmask syscall) and _longjmp re-enters the dispatching worker's
/// run_fiber frame, which is still live underneath us.  The TSan build
/// keeps full swapcontext so the sanitizer's shadow stacks track the
/// switch through its proven ucontext hooks.
[[gnu::noinline]] void switch_out(Fiber* self) {
  Worker* worker = current_worker_slow();
  tsan_switch(worker->tsan_fiber);
#if defined(__SANITIZE_THREAD__)
  swapcontext(&self->context_, &worker->loop_context);
#else
  if (_setjmp(self->jump_) == 0) _longjmp(worker->loop_jump, 1);
#endif
  // Resumed -- possibly on a different worker.  Nothing thread-local may
  // be touched here; the caller re-derives everything it needs.
}

}  // namespace detail

namespace {
using detail::switch_out;
}  // namespace

// --- Fiber ------------------------------------------------------------------

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes,
             std::string name, std::function<void(FiberPhase)> on_phase)
    : body_(std::move(body)),
      on_phase_(std::move(on_phase)),
      name_(std::move(name)),
      stack_(new std::byte[stack_bytes]),
      stack_size_(stack_bytes) {
  if (getcontext(&context_) != 0) {
    throw UsageError{"getcontext failed for fiber"};
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_size_;
  context_.uc_link = nullptr;  // entry() never returns; it switches out
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::entry), 0);
#if defined(__SANITIZE_THREAD__)
  tsan_fiber_ = __tsan_create_fiber(0);
  if (!name_.empty()) __tsan_set_fiber_name(tsan_fiber_, name_.c_str());
#endif
}

Fiber::~Fiber() {
#if defined(__SANITIZE_THREAD__)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::entry() {
  // The dispatching worker stored us in t_current just before switching.
  Fiber* self = current_fiber_slow();
  try {
    self->body_();
  } catch (const std::exception& e) {
    // Process bodies wrap their own failures; anything escaping to here
    // would otherwise tear the worker down.  Contain and log.
    log::error("fiber '", self->name_, "' escaped exception: ", e.what());
  } catch (...) {
    log::error("fiber '", self->name_, "' escaped unknown exception");
  }
  // Release the (possibly large) captures before the final switch: the
  // worker only deletes the shell after we are gone from this stack.
  self->body_ = nullptr;
  self->finished_ = true;
  switch_out(self);
  // Unreachable: a finished fiber is never dispatched again.
  std::abort();
}

bool on_fiber() { return current_fiber_slow() != nullptr; }

Fiber* current_fiber() { return current_fiber_slow(); }

// --- WaitQueue --------------------------------------------------------------

void WaitQueue::push(Fiber* fiber) {
  fiber->next_waiter_ = nullptr;
  if (tail_ == nullptr) {
    head_ = tail_ = fiber;
  } else {
    tail_->next_waiter_ = fiber;
    tail_ = fiber;
  }
}

Fiber* WaitQueue::pop() {
  Fiber* fiber = head_;
  if (fiber == nullptr) return nullptr;
  head_ = fiber->next_waiter_;
  if (head_ == nullptr) tail_ = nullptr;
  fiber->next_waiter_ = nullptr;
  return fiber;
}

void suspend_current(WaitQueue& queue, std::unique_lock<std::mutex>& guard) {
  Fiber* self = current_fiber_slow();
  if (self == nullptr) {
    throw UsageError{"sched::suspend_current called off a fiber"};
  }
  queue.push(self);
  // Unlock before switching: the waker needs this mutex to pop us, and a
  // mutex must never be held across a context switch (its owner is the
  // OS thread, which is about to run a different fiber).  The window
  // between unlock and the switch is covered by in_switch_: a waker that
  // requeues us immediately simply makes the next worker spin until our
  // switch-out completes.
  guard.unlock();
  switch_out(self);
}

void make_runnable(Fiber* fiber) { fiber->scheduler_->enqueue(fiber); }

// --- SchedulerOptions -------------------------------------------------------

SchedulerOptions SchedulerOptions::from_env() {
  SchedulerOptions options;
  if (const char* mode = std::getenv("DPN_SCHED")) {
    if (std::strcmp(mode, "mn") == 0 || std::strcmp(mode, "steal") == 0 ||
        std::strcmp(mode, "fibers") == 0) {
      options.mode = SchedMode::kWorkSteal;
    } else if (std::strcmp(mode, "threads") == 0 ||
               std::strcmp(mode, "tpp") == 0) {
      options.mode = SchedMode::kThreadPerProcess;
    } else {
      log::warn("DPN_SCHED='", mode, "' not recognized (mn|threads); ",
                "keeping thread-per-process");
    }
  }
  if (const char* workers = std::getenv("DPN_WORKERS")) {
    options.workers = static_cast<unsigned>(std::strtoul(workers, nullptr, 10));
  }
  return options;
}

std::size_t SchedulerOptions::resolved_stack_bytes() const {
  std::size_t kb = stack_kb;
  if (kb == 0) {
    if (const char* env = std::getenv("DPN_STACK_KB")) {
      kb = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (kb == 0) kb = kDefaultStackKb;
  if (kb < kMinStackKb) {
    throw UsageError{"fiber stack of " + std::to_string(kb) +
                     " KB is below the " + std::to_string(kMinStackKb) +
                     " KB minimum (heap stacks have no guard page)"};
  }
  return kb * 1024;
}

unsigned SchedulerOptions::resolved_workers() const {
  if (workers > 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// --- WorkStealDeque ---------------------------------------------------------

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

WorkStealDeque::WorkStealDeque(std::size_t capacity)
    : ring_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(ring_.size() - 1) {}

bool WorkStealDeque::push_bottom(Fiber* fiber) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  if (b - t >= static_cast<std::int64_t>(ring_.size())) return false;
  ring_[static_cast<std::size_t>(b) & mask_].store(fiber,
                                                   std::memory_order_relaxed);
  // seq_cst publish: pairs with the thieves' top/bottom loads and gives
  // pop_bottom's decrement the store-load ordering the algorithm needs.
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return true;
}

Fiber* WorkStealDeque::pop_bottom() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {
    // Empty: undo.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  Fiber* fiber =
      ring_[static_cast<std::size_t>(b) & mask_].load(std::memory_order_relaxed);
  if (t != b) return fiber;  // more than one element: no race possible
  // Last element: race the thieves for it.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    fiber = nullptr;  // a thief got it
  }
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return fiber;
}

Fiber* WorkStealDeque::steal_top() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Fiber* fiber =
      ring_[static_cast<std::size_t>(t) & mask_].load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return nullptr;  // lost the race; caller retries elsewhere
  }
  return fiber;
}

// --- Scheduler --------------------------------------------------------------

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)),
      stack_bytes_(options_.resolved_stack_bytes()) {
  const unsigned n = options_.resolved_workers();
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->scheduler = this;
    worker->index = i;
    worker->rng = 0x9e3779b97f4a7c15ULL * (i + 1) + 1;
    workers_.push_back(std::move(worker));
  }
  // Start the threads only after the vector is complete: workers steal
  // from each other from their first instant.
  for (auto& worker : workers_) {
    worker->thread = std::jthread{[this, w = worker.get()] { worker_main(*w); }};
  }
}

Scheduler::~Scheduler() { shutdown(); }

Fiber* Scheduler::spawn(std::function<void()> body, std::string name,
                        std::function<void(FiberPhase)> on_phase) {
  auto* fiber =
      new Fiber{std::move(body), stack_bytes_, std::move(name),
                std::move(on_phase)};
  fiber->scheduler_ = this;
  live_.fetch_add(1, std::memory_order_relaxed);
  spawned_.fetch_add(1, std::memory_order_relaxed);
  enqueue(fiber);
  return fiber;
}

void Scheduler::enqueue(Fiber* fiber) {
  if (fiber->on_phase_) fiber->on_phase_(FiberPhase::kReady);
  pending_.fetch_add(1, std::memory_order_seq_cst);
  Worker* worker = current_worker_slow();
  const bool local = worker != nullptr && worker->scheduler == this &&
                     worker->deque.push_bottom(fiber);
  if (!local) {
    std::scoped_lock lock{inject_mutex_};
    inject_.push_back(fiber);
    injects_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_one_worker();
}

void Scheduler::wake_one_worker() {
  // Dekker handshake with the parking path: our pending_ increment is
  // seq_cst-ordered before this idle_workers_ read; a parker's
  // idle_workers_ increment is ordered before its pending_ re-check.
  if (idle_workers_.load(std::memory_order_seq_cst) == 0) return;
  std::scoped_lock lock{idle_mutex_};
  idle_cv_.notify_one();
}

Fiber* Scheduler::pop_inject(Worker& worker) {
  std::scoped_lock lock{inject_mutex_};
  if (inject_.empty()) return nullptr;
  Fiber* fiber = inject_.front();
  inject_.pop_front();
  // Batch-drain: pull extra injected fibers into our deque so 100k
  // spawns from a Network::start do not serialize on this mutex.
  std::size_t moved = 0;
  while (moved < 64 && !inject_.empty()) {
    if (!worker.deque.push_bottom(inject_.front())) break;
    inject_.pop_front();
    ++moved;
  }
  return fiber;
}

Fiber* Scheduler::try_steal(Worker& worker) {
  const std::size_t n = workers_.size();
  if (n <= 1) return nullptr;
  // xorshift64 victim starting point; sweep every other worker once.
  worker.rng ^= worker.rng << 13;
  worker.rng ^= worker.rng >> 7;
  worker.rng ^= worker.rng << 17;
  const std::size_t start = static_cast<std::size_t>(worker.rng) % n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (victim == worker.index) continue;
    if (Fiber* fiber = workers_[victim]->deque.steal_top()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return fiber;
    }
  }
  return nullptr;
}

Fiber* Scheduler::find_work(Worker& worker) {
  if (Fiber* fiber = worker.deque.pop_bottom()) return fiber;
  if (Fiber* fiber = pop_inject(worker)) return fiber;
  return try_steal(worker);
}

void Scheduler::worker_main(Worker& worker) {
  t_worker = &worker;
#if defined(__SANITIZE_THREAD__)
  worker.tsan_fiber = __tsan_get_current_fiber();
#endif
#if defined(__linux__)
  if (options_.pin_workers) {
    cpu_set_t set;
    CPU_ZERO(&set);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    CPU_SET(worker.index % hw, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  if (options_.worker_init) options_.worker_init();

  for (;;) {
    if (Fiber* fiber = find_work(worker)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      run_fiber(worker, fiber);
      continue;
    }
    std::unique_lock lock{idle_mutex_};
    idle_workers_.fetch_add(1, std::memory_order_seq_cst);
    parks_.fetch_add(1, std::memory_order_relaxed);
    idle_cv_.wait(lock, [&] {
      return stopping_ || pending_.load(std::memory_order_seq_cst) > 0;
    });
    idle_workers_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_) return;
  }
}

void Scheduler::run_fiber(Worker& worker, Fiber* fiber) {
  // A waker may hand us a fiber whose previous worker has not finished
  // switching it out; wait out that (sub-microsecond) window.  This
  // acquire also pairs with the previous worker's release below, making
  // every byte of fiber state -- stack included -- visible here.
  while (fiber->in_switch_.load(std::memory_order_acquire)) cpu_relax();

  const int last = fiber->last_worker_;
  if (fiber->on_phase_) {
    if (last >= 0 && last != static_cast<int>(worker.index)) {
      fiber->on_phase_(FiberPhase::kStolen);
    }
    fiber->on_phase_(FiberPhase::kRunning);
  }
  fiber->last_worker_ = static_cast<int>(worker.index);
  fiber->in_switch_.store(true, std::memory_order_relaxed);
  dispatches_.fetch_add(1, std::memory_order_relaxed);

  t_current = fiber;
  tsan_switch(fiber->tsan_fiber_);
#if defined(__SANITIZE_THREAD__)
  swapcontext(&worker.loop_context, &fiber->context_);
#else
  // _setjmp marks the return point switch_out longjmps to.  First entry
  // onto a fresh stack still goes through swapcontext (the portable way
  // to start executing on new memory, one-time cost per fiber); every
  // later resume is a _longjmp into the fiber's recorded suspension
  // point.  Either way control comes back here as "_setjmp returned 1"
  // when the fiber parks or finishes -- the abandoned swapcontext frame
  // below us is dead weight on this stack, not an unwind problem.
  if (_setjmp(worker.loop_jump) == 0) {
    if (!fiber->started_) {
      fiber->started_ = true;
      ucontext_t scratch;
      swapcontext(&scratch, &fiber->context_);
    } else {
      _longjmp(fiber->jump_, 1);
    }
  }
#endif
  t_current = nullptr;

  // The fiber switched out: it either finished or parked on a wait
  // queue.  Read its verdict *before* releasing in_switch_ -- the
  // instant that flag drops, a suspended fiber may be resumed, finished
  // and freed by another worker.
  const bool finished = fiber->finished_;
  fiber->in_switch_.store(false, std::memory_order_release);
  if (!finished) return;  // a wait queue owns it now

  delete fiber;
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::scoped_lock lock{quiesce_mutex_};
    quiesce_cv_.notify_all();
  }
}

void Scheduler::wait_quiescent() {
  std::unique_lock lock{quiesce_mutex_};
  quiesce_cv_.wait(lock, [&] {
    return live_.load(std::memory_order_acquire) == 0;
  });
}

void Scheduler::shutdown() {
  wait_quiescent();
  {
    std::scoped_lock lock{idle_mutex_};
    stopping_ = true;
    idle_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Scheduler* Scheduler::current() {
  Worker* worker = current_worker_slow();
  return worker != nullptr ? worker->scheduler : nullptr;
}

Scheduler::Counters Scheduler::counters() const {
  Counters c;
  c.spawned = spawned_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.steals = steals_.load(std::memory_order_relaxed);
  c.dispatches = dispatches_.load(std::memory_order_relaxed);
  c.parks = parks_.load(std::memory_order_relaxed);
  c.injects = injects_.load(std::memory_order_relaxed);
  return c;
}

bool spawn_detached(std::function<void()> body, std::string name) {
  Scheduler* scheduler = Scheduler::current();
  if (scheduler == nullptr) return false;
  scheduler->spawn(std::move(body), std::move(name));
  return true;
}

// --- WaitGroup --------------------------------------------------------------

void WaitGroup::add(std::size_t n) {
  std::scoped_lock lock{mutex_};
  count_ += n;
}

void WaitGroup::done() {
  // Collect fiber waiters under the lock; wake them after release so a
  // woken fiber re-acquiring mutex_ never collides with us holding it.
  std::vector<Fiber*> wake;
  {
    std::scoped_lock lock{mutex_};
    if (count_ == 0) throw UsageError{"WaitGroup::done underflow"};
    if (--count_ > 0) return;
    while (Fiber* fiber = waiters_.pop()) wake.push_back(fiber);
    cv_.notify_all();
  }
  for (Fiber* fiber : wake) make_runnable(fiber);
}

void WaitGroup::wait() {
  std::unique_lock lock{mutex_};
  while (count_ > 0) {
    if (on_fiber()) {
      suspend_current(waiters_, lock);
      lock.lock();
    } else {
      cv_.wait(lock);
    }
  }
}

}  // namespace dpn::sched
