#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/fiber.hpp"

/// The M:N work-stealing process scheduler.
///
/// N pinned worker threads execute M fibers (one per dpn::Process),
/// M >> N.  Each worker owns a lock-free Chase-Lev deque: it pushes and
/// pops work at the bottom (LIFO, cache-warm) while idle workers steal
/// from the top (FIFO, oldest first).  Fibers run to their next blocking
/// channel operation; io::Pipe's blocked-reader/writer machinery doubles
/// as the wakeup source -- a read/write that would block suspends the
/// fiber onto the pipe's wait list, and the counterpart operation makes
/// it runnable on the waker's deque.  Termination is quiescence-based:
/// the scheduler is done when no fiber is runnable, running, or suspended
/// (zero live fibers), replacing thread-per-process join-everything.
///
/// Shape follows ponyc's actor runtime (steal queues, offload-on-block,
/// optional CPU pinning) adapted to Kahn blocking semantics; see
/// DESIGN.md section 7 for the protocol walkthrough.
namespace dpn::sched {

/// How a Network (or any process-graph host) executes its processes.
enum class SchedMode : std::uint8_t {
  /// The paper's model and the historical default: every process owns an
  /// OS thread.  Simple, preemptive, but ~8 MB of stack per process caps
  /// a server at a few thousand processes.
  kThreadPerProcess = 0,
  /// M:N fibers on work-stealing workers: the scale mode.
  kWorkSteal = 1,
};

struct SchedulerOptions {
  /// Smallest accepted fiber stack.  Below this even the entry
  /// trampoline plus one DataInputStream frame risks silent overrun
  /// (heap stacks have no guard page -- that is what buys 100k fibers
  /// under vm.max_map_count).
  static constexpr std::size_t kMinStackKb = 16;
  static constexpr std::size_t kDefaultStackKb = 128;
  /// Thread-per-process refusal cap: beyond this many processes the
  /// thread mode refuses to start instead of driving the host into
  /// thread exhaustion.  (At 8 MB of default stack apiece, 16k threads
  /// already reserve 128 GB of address space.)
  static constexpr std::size_t kDefaultThreadCap = 16384;

  SchedMode mode = SchedMode::kThreadPerProcess;
  /// Worker thread count; 0 means hardware_concurrency.
  unsigned workers = 0;
  /// Fiber stack size in KB; 0 means the DPN_STACK_KB environment
  /// override, else kDefaultStackKb.  Values below kMinStackKb are
  /// rejected (UsageError) at scheduler construction.
  std::size_t stack_kb = 0;
  /// Thread-per-process mode: refuse to start more processes than this.
  std::size_t max_threads = kDefaultThreadCap;
  /// Pin worker i to CPU i (mod hardware_concurrency).  Off by default:
  /// on shared CI boxes pinning fights the container scheduler.
  bool pin_workers = false;
  /// Run at the start of every worker thread (Network uses this to
  /// propagate trace node tags without dpn_sched depending on dpn_obs).
  std::function<void()> worker_init;

  /// Environment-configured defaults: DPN_SCHED=mn|threads selects the
  /// mode, DPN_WORKERS the worker count, DPN_STACK_KB the fiber stack.
  static SchedulerOptions from_env();

  /// The stack size this configuration resolves to, after the DPN_STACK_KB
  /// override.  Throws UsageError for sub-minimum values.
  std::size_t resolved_stack_bytes() const;
  unsigned resolved_workers() const;
};

/// Work-stealing deque (Chase-Lev).  The owning worker pushes/pops at the
/// bottom; thieves CAS the top.  Fixed-capacity ring: a full deque is not
/// an error, the excess spills to the scheduler's inject queue.  top_ and
/// bottom_ use seq_cst (the pop/steal race needs the store-load ordering
/// a relaxed+fence formulation would get from fences, which TSan does not
/// model); the slots themselves are relaxed -- cross-worker publication
/// of fiber *state* rides on Fiber::in_switch_, not on the deque.
class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t capacity = 8192);

  /// Owner only.  False when full (caller spills to the inject queue).
  bool push_bottom(Fiber* fiber);
  /// Owner only.  Null when empty.
  Fiber* pop_bottom();
  /// Any thread.  Null when empty or when the race was lost.
  Fiber* steal_top();

 private:
  std::vector<std::atomic<Fiber*>> ring_;
  std::size_t mask_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  /// Waits for quiescence, then stops and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates a fiber for `body` and makes it runnable.  Thread-safe; may
  /// be called from worker fibers (a composite spawning its components)
  /// or from outside (a Network starting its graph).  `on_phase` is
  /// invoked from scheduler context on ready/running/stolen transitions.
  Fiber* spawn(std::function<void()> body, std::string name = {},
               std::function<void(FiberPhase)> on_phase = {});

  /// Blocks the calling (non-worker) thread until zero fibers are live:
  /// none runnable, none running, none suspended on a wait queue.  This
  /// is the quiescence-termination point -- with no runnable work and no
  /// suspended fiber, no future event can originate inside the scheduler.
  void wait_quiescent();

  /// wait_quiescent(), then stops and joins the workers.  Idempotent;
  /// counters remain readable afterwards.
  void shutdown();

  /// The scheduler whose worker is executing the calling thread, or
  /// nullptr off the workers.  CompositeProcess and Sift use this to
  /// spawn children as sibling fibers instead of threads.
  static Scheduler* current();

  struct Counters {
    std::uint64_t spawned = 0;     // fibers created
    std::uint64_t completed = 0;   // fibers whose body returned
    std::uint64_t steals = 0;      // successful steal_top calls
    std::uint64_t dispatches = 0;  // worker -> fiber context switches
    std::uint64_t parks = 0;       // workers that went idle
    std::uint64_t injects = 0;     // fibers routed via the inject queue
  };
  Counters counters() const;

  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }
  std::size_t live_fibers() const {
    return live_.load(std::memory_order_relaxed);
  }
  const SchedulerOptions& options() const { return options_; }

 private:
  friend class Fiber;
  friend void suspend_current(WaitQueue&, std::unique_lock<std::mutex>&);
  friend void make_runnable(Fiber*);

  void worker_main(Worker& worker);
  /// Dispatch one fiber: spin for its switch-out window, switch in, and
  /// afterwards retire it (finished) or disown it (suspended).
  void run_fiber(Worker& worker, Fiber* fiber);
  Fiber* find_work(Worker& worker);
  Fiber* pop_inject(Worker& worker);
  Fiber* try_steal(Worker& worker);
  void enqueue(Fiber* fiber);
  /// Dekker-style idle handshake: enqueue() bumps pending_ then checks
  /// idle_workers_; a parking worker bumps idle_workers_ then re-checks
  /// pending_ under the idle mutex.  At least one side sees the other.
  void wake_one_worker();

  SchedulerOptions options_;
  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mutex_;
  std::deque<Fiber*> inject_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> idle_workers_{0};
  /// Runnable fibers not yet claimed by a worker (deques + inject).
  std::atomic<std::int64_t> pending_{0};
  bool stopping_ = false;

  std::atomic<std::size_t> live_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> injects_{0};
};

/// Spawns `body` as a detached fiber on the current worker's scheduler.
/// Returns false when the calling thread is not a scheduler worker -- the
/// caller should fall back to its thread path.  Used by processes that
/// create processes at runtime (Sift inserting a Modulo, Figure 8).
bool spawn_detached(std::function<void()> body, std::string name = {});

/// Counting completion latch usable from fibers and plain threads alike:
/// done() may be called anywhere; wait() suspends the calling fiber (or
/// cv-waits a plain thread) until the count reaches zero.  This is how a
/// composite waits for its component fibers and a Network's join waits
/// for its graph without holding N joinable threads.
class WaitGroup {
 public:
  void add(std::size_t n);
  void done();
  void wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
  WaitQueue waiters_;
};

}  // namespace dpn::sched
