#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/data.hpp"
#include "support/rng.hpp"

/// Arbitrary-precision signed integers, built for the paper's weak-RSA
/// factoring workload (Section 5.2): 512-bit primes, 1024-bit products,
/// integer square roots, Miller-Rabin primality.
///
/// Representation: sign-magnitude, 32-bit limbs, little-endian, always
/// normalized (no leading zero limbs; zero has no limbs and positive
/// sign).  Division is truncated (C++ semantics): the remainder carries
/// the dividend's sign.
namespace dpn::bigint {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor)

  static BigInt from_decimal(std::string_view text);
  static BigInt from_hex(std::string_view text);
  std::string to_decimal() const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u) != 0; }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t index) const;

  /// Checked conversions; throw UsageError when out of range.
  std::int64_t to_i64() const;
  std::uint64_t to_u64() const;

  BigInt operator-() const;
  BigInt abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  friend bool operator==(const BigInt& a, const BigInt& b);
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one division.
  static std::pair<BigInt, BigInt> divmod(const BigInt& a, const BigInt& b);

  static BigInt pow(const BigInt& base, std::uint64_t exponent);
  /// (base^exponent) mod modulus, modulus > 0.
  static BigInt mod_pow(const BigInt& base, const BigInt& exponent,
                        const BigInt& modulus);
  static BigInt gcd(BigInt a, BigInt b);

  /// floor(sqrt(n)), n >= 0.
  static BigInt isqrt(const BigInt& n);
  /// True if n is a perfect square; if so *root is set to sqrt(n).
  static bool perfect_square(const BigInt& n, BigInt* root = nullptr);

  /// Uniform in [0, 2^bits) with the top bit set (exactly `bits` bits).
  static BigInt random_bits(Xoshiro256& rng, std::size_t bits);
  /// Uniform in [0, bound), bound > 0.
  static BigInt random_below(Xoshiro256& rng, const BigInt& bound);

  /// Miller-Rabin with `rounds` random bases (error < 4^-rounds).
  static bool is_probable_prime(const BigInt& n, Xoshiro256& rng,
                                int rounds = 32);
  /// Random probable prime with exactly `bits` bits.
  static BigInt random_prime(Xoshiro256& rng, std::size_t bits);

  /// Wire encoding (sign byte + varint limb count + limbs).
  void write_to(io::DataOutputStream& out) const;
  static BigInt read_from(io::DataInputStream& in);

  /// Raw limb access for tests.
  const std::vector<std::uint32_t>& limbs() const { return limbs_; }

 private:
  using Limbs = std::vector<std::uint32_t>;

  static BigInt from_parts(Limbs limbs, bool negative);
  void normalize();

  static int cmp_mag(const Limbs& a, const Limbs& b);
  static Limbs add_mag(const Limbs& a, const Limbs& b);
  static Limbs sub_mag(const Limbs& a, const Limbs& b);  // requires a >= b
  static Limbs mul_mag(const Limbs& a, const Limbs& b);
  static Limbs mul_schoolbook(const Limbs& a, const Limbs& b);
  static Limbs mul_karatsuba(const Limbs& a, const Limbs& b);
  static std::pair<Limbs, Limbs> divmod_mag(const Limbs& u, const Limbs& v);
  static Limbs shl_mag(const Limbs& a, std::size_t bits);
  static Limbs shr_mag(const Limbs& a, std::size_t bits);

  Limbs limbs_;
  bool negative_ = false;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace dpn::bigint
