#include "bigint/bigint.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "support/error.hpp"

namespace dpn::bigint {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
constexpr std::size_t kKaratsubaThreshold = 32;  // limbs
}  // namespace

BigInt::BigInt(std::int64_t value) {
  negative_ = value < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1
                : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(magnitude));
    magnitude >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_parts(Limbs limbs, bool negative) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.negative_ = negative;
  out.normalize();
  return out;
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t index) const {
  const std::size_t limb = index / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (index % 32)) & 1u;
}

std::int64_t BigInt::to_i64() const {
  if (bit_length() > 63) {
    if (negative_ && bit_length() == 64 && *this == BigInt{INT64_MIN}) {
      return INT64_MIN;
    }
    throw UsageError{"BigInt does not fit in int64"};
  }
  std::int64_t value = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = (value << 32) | limbs_[i];
  }
  return negative_ ? -value : value;
}

std::uint64_t BigInt::to_u64() const {
  if (negative_ || bit_length() > 64) {
    throw UsageError{"BigInt does not fit in uint64"};
  }
  std::uint64_t value = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = (value << 32) | limbs_[i];
  }
  return value;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::cmp_mag(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

BigInt::Limbs BigInt::add_mag(const Limbs& a, const Limbs& b) {
  const Limbs& longer = a.size() >= b.size() ? a : b;
  const Limbs& shorter = a.size() >= b.size() ? b : a;
  Limbs out;
  out.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt::Limbs BigInt::sub_mag(const Limbs& a, const Limbs& b) {
  Limbs out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_schoolbook(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out[i + b.size()] = static_cast<std::uint32_t>(carry);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_karatsuba(const Limbs& a, const Limbs& b) {
  const std::size_t n = std::max(a.size(), b.size());
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return mul_schoolbook(a, b);
  }
  const std::size_t half = n / 2;
  const auto split = [half](const Limbs& x) {
    Limbs lo{x.begin(), x.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(half, x.size()))};
    Limbs hi;
    if (x.size() > half) {
      hi.assign(x.begin() + static_cast<std::ptrdiff_t>(half), x.end());
    }
    while (!lo.empty() && lo.back() == 0) lo.pop_back();
    return std::pair{std::move(lo), std::move(hi)};
  };
  const auto [a_lo, a_hi] = split(a);
  const auto [b_lo, b_hi] = split(b);

  Limbs z0 = mul_karatsuba(a_lo, b_lo);
  Limbs z2 = mul_karatsuba(a_hi, b_hi);
  Limbs a_sum = add_mag(a_lo, a_hi);
  Limbs b_sum = add_mag(b_lo, b_hi);
  Limbs z1 = mul_karatsuba(a_sum, b_sum);
  z1 = sub_mag(z1, z0);
  z1 = sub_mag(z1, z2);

  // result = z2 << (2*half*32) + z1 << (half*32) + z0
  Limbs out = z0;
  if (!z1.empty()) {
    Limbs shifted(half, 0);
    shifted.insert(shifted.end(), z1.begin(), z1.end());
    out = add_mag(out, shifted);
  }
  if (!z2.empty()) {
    Limbs shifted(2 * half, 0);
    shifted.insert(shifted.end(), z2.begin(), z2.end());
    out = add_mag(out, shifted);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigInt::Limbs BigInt::mul_mag(const Limbs& a, const Limbs& b) {
  if (a.size() >= kKaratsubaThreshold && b.size() >= kKaratsubaThreshold) {
    return mul_karatsuba(a, b);
  }
  return mul_schoolbook(a, b);
}

BigInt::Limbs BigInt::shl_mag(const Limbs& a, std::size_t bits) {
  if (a.empty()) return {};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  Limbs out(limb_shift, 0);
  if (bit_shift == 0) {
    out.insert(out.end(), a.begin(), a.end());
    return out;
  }
  std::uint32_t carry = 0;
  for (const std::uint32_t limb : a) {
    out.push_back((limb << bit_shift) | carry);
    carry = static_cast<std::uint32_t>(limb >> (32 - bit_shift));
  }
  if (carry != 0) out.push_back(carry);
  return out;
}

BigInt::Limbs BigInt::shr_mag(const Limbs& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= a.size()) return {};
  const std::size_t bit_shift = bits % 32;
  Limbs out{a.begin() + static_cast<std::ptrdiff_t>(limb_shift), a.end()};
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] >>= bit_shift;
      if (i + 1 < out.size()) {
        out[i] |= out[i + 1] << (32 - bit_shift);
      }
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::pair<BigInt::Limbs, BigInt::Limbs> BigInt::divmod_mag(const Limbs& u_in,
                                                           const Limbs& v_in) {
  if (v_in.empty()) throw UsageError{"BigInt division by zero"};
  if (cmp_mag(u_in, v_in) < 0) return {Limbs{}, u_in};

  // Single-limb divisor fast path.
  if (v_in.size() == 1) {
    const std::uint64_t divisor = v_in[0];
    Limbs quotient(u_in.size(), 0);
    std::uint64_t remainder = 0;
    for (std::size_t i = u_in.size(); i-- > 0;) {
      const std::uint64_t cur = (remainder << 32) | u_in[i];
      quotient[i] = static_cast<std::uint32_t>(cur / divisor);
      remainder = cur % divisor;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    Limbs rem;
    if (remainder != 0) rem.push_back(static_cast<std::uint32_t>(remainder));
    return {std::move(quotient), std::move(rem)};
  }

  // Knuth TAOCP Vol. 2, Algorithm D.
  // D1: normalize so the divisor's top limb has its high bit set.
  std::size_t shift = 0;
  {
    std::uint32_t top = v_in.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  Limbs u = shl_mag(u_in, shift);
  const Limbs v = shl_mag(v_in, shift);
  const std::size_t n = v.size();
  const std::size_t m = u_in.size() - v_in.size() + 1;  // quotient limbs bound
  u.resize(std::max(u.size(), u_in.size() + 1), 0);     // u[n+m-1] exists
  if (u.size() < n + m) u.resize(n + m, 0);

  Limbs quotient(m, 0);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_second = n >= 2 ? v[n - 2] : 0;

  for (std::size_t j = m; j-- > 0;) {
    // D3: estimate q_hat from the top two limbs of the current remainder.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t q_hat = numerator / v_top;
    std::uint64_t r_hat = numerator % v_top;
    while (q_hat >= kBase ||
           q_hat * v_second >
               ((r_hat << 32) | (j + n >= 2 ? u[j + n - 2] : 0))) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kBase) break;
    }
    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffffu) -
                                borrow;
      u[i + j] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t top_diff = static_cast<std::int64_t>(u[j + n]) -
                                  static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(top_diff);

    if (top_diff < 0) {
      // D6: q_hat was one too large; add v back.
      --q_hat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    quotient[j] = static_cast<std::uint32_t>(q_hat);
  }

  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  u.resize(n);
  Limbs remainder = shr_mag(u, shift);
  return {std::move(quotient), std::move(remainder)};
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    return BigInt::from_parts(BigInt::add_mag(a.limbs_, b.limbs_),
                              a.negative_);
  }
  const int cmp = BigInt::cmp_mag(a.limbs_, b.limbs_);
  if (cmp == 0) return BigInt{};
  if (cmp > 0) {
    return BigInt::from_parts(BigInt::sub_mag(a.limbs_, b.limbs_),
                              a.negative_);
  }
  return BigInt::from_parts(BigInt::sub_mag(b.limbs_, a.limbs_), b.negative_);
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  return BigInt::from_parts(BigInt::mul_mag(a.limbs_, b.limbs_),
                            a.negative_ != b.negative_);
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& a, const BigInt& b) {
  auto [q, r] = divmod_mag(a.limbs_, b.limbs_);
  BigInt quotient = from_parts(std::move(q), a.negative_ != b.negative_);
  BigInt remainder = from_parts(std::move(r), a.negative_);
  return {std::move(quotient), std::move(remainder)};
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).first;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).second;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  return from_parts(shl_mag(limbs_, bits), negative_);
}

BigInt BigInt::operator>>(std::size_t bits) const {
  return from_parts(shr_mag(limbs_, bits), negative_);
}

bool operator==(const BigInt& a, const BigInt& b) {
  return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  const int cmp = BigInt::cmp_mag(a.limbs_, b.limbs_);
  const int signed_cmp = a.negative_ ? -cmp : cmp;
  if (signed_cmp < 0) return std::strong_ordering::less;
  if (signed_cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::pow(const BigInt& base, std::uint64_t exponent) {
  BigInt result{1};
  BigInt acc = base;
  while (exponent != 0) {
    if (exponent & 1u) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exponent,
                       const BigInt& modulus) {
  if (modulus.is_zero() || modulus.is_negative()) {
    throw UsageError{"mod_pow needs a positive modulus"};
  }
  if (exponent.is_negative()) {
    throw UsageError{"mod_pow needs a non-negative exponent"};
  }
  BigInt result{1};
  BigInt acc = base % modulus;
  if (acc.is_negative()) acc += modulus;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = (result * acc) % modulus;
    acc = (acc * acc) % modulus;
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::isqrt(const BigInt& n) {
  if (n.is_negative()) throw UsageError{"isqrt of a negative number"};
  if (n.is_zero()) return BigInt{};
  // Newton's method with an over-estimate start: x = 2^ceil(bits/2).
  BigInt x = BigInt{1} << ((n.bit_length() + 1) / 2);
  for (;;) {
    BigInt y = (x + n / x) >> 1;
    if (y >= x) break;
    x = std::move(y);
  }
  return x;
}

bool BigInt::perfect_square(const BigInt& n, BigInt* root) {
  if (n.is_negative()) return false;
  // Cheap filter: squares mod 16 are in {0,1,4,9}.
  if (!n.is_zero()) {
    const std::uint32_t low = n.limbs_[0] & 0xf;
    if (low != 0 && low != 1 && low != 4 && low != 9) return false;
  }
  BigInt r = isqrt(n);
  if (r * r == n) {
    if (root != nullptr) *root = std::move(r);
    return true;
  }
  return false;
}

BigInt BigInt::random_bits(Xoshiro256& rng, std::size_t bits) {
  if (bits == 0) return BigInt{};
  Limbs limbs((bits + 31) / 32, 0);
  for (auto& limb : limbs) limb = static_cast<std::uint32_t>(rng.next());
  const std::size_t top_bit = (bits - 1) % 32;
  limbs.back() &= (top_bit == 31) ? 0xffffffffu : ((1u << (top_bit + 1)) - 1);
  limbs.back() |= 1u << top_bit;  // exactly `bits` bits
  return from_parts(std::move(limbs), false);
}

BigInt BigInt::random_below(Xoshiro256& rng, const BigInt& bound) {
  if (bound.is_zero() || bound.is_negative()) {
    throw UsageError{"random_below needs a positive bound"};
  }
  const std::size_t bits = bound.bit_length();
  for (;;) {
    Limbs limbs((bits + 31) / 32, 0);
    for (auto& limb : limbs) limb = static_cast<std::uint32_t>(rng.next());
    const std::size_t excess = limbs.size() * 32 - bits;
    if (excess > 0) limbs.back() >>= excess;
    BigInt candidate = from_parts(std::move(limbs), false);
    if (candidate < bound) return candidate;
  }
}

bool BigInt::is_probable_prime(const BigInt& n, Xoshiro256& rng, int rounds) {
  if (n < BigInt{2}) return false;
  for (const std::int64_t p : {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}) {
    const BigInt small{p};
    if (n == small) return true;
    if ((n % small).is_zero()) return false;
  }
  // Write n-1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = BigInt{2} + random_below(rng, n - BigInt{4});
    BigInt x = mod_pow(a, d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::random_prime(Xoshiro256& rng, std::size_t bits) {
  if (bits < 2) throw UsageError{"random_prime needs >= 2 bits"};
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (candidate.is_even()) candidate += BigInt{1};
    if (candidate.bit_length() != bits) continue;  // odd bump overflowed
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

BigInt BigInt::from_decimal(std::string_view text) {
  std::size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (pos >= text.size()) throw UsageError{"empty decimal BigInt"};
  BigInt out;
  const BigInt ten{10};
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c < '0' || c > '9') {
      throw UsageError{"bad decimal digit in BigInt literal"};
    }
    out = out * ten + BigInt{c - '0'};
  }
  if (negative && !out.is_zero()) out.negative_ = true;
  return out;
}

BigInt BigInt::from_hex(std::string_view text) {
  std::size_t pos = 0;
  bool negative = false;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    negative = text[pos] == '-';
    ++pos;
  }
  if (text.substr(pos, 2) == "0x" || text.substr(pos, 2) == "0X") pos += 2;
  if (pos >= text.size()) throw UsageError{"empty hex BigInt"};
  BigInt out;
  for (; pos < text.size(); ++pos) {
    const char c = static_cast<char>(std::tolower(text[pos]));
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      throw UsageError{"bad hex digit in BigInt literal"};
    }
    out = (out << 4) + BigInt{digit};
  }
  if (negative && !out.is_zero()) out.negative_ = true;
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  // Peel 9 decimal digits at a time with the single-limb fast path.
  constexpr std::uint32_t kChunk = 1000000000u;
  Limbs value = limbs_;
  std::string digits;
  while (!value.empty()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = value.size(); i-- > 0;) {
      const std::uint64_t cur = (remainder << 32) | value[i];
      value[i] = static_cast<std::uint32_t>(cur / kChunk);
      remainder = cur % kChunk;
    }
    while (!value.empty() && value.back() == 0) value.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0x0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  return (negative_ ? "-0x" : "0x") + out;
}

void BigInt::write_to(io::DataOutputStream& out) const {
  out.write_u8(negative_ ? 1 : 0);
  out.write_varint(limbs_.size());
  for (const std::uint32_t limb : limbs_) out.write_u32(limb);
}

BigInt BigInt::read_from(io::DataInputStream& in) {
  BigInt out;
  out.negative_ = in.read_u8() != 0;
  const std::uint64_t n = in.read_varint();
  constexpr std::uint64_t kLimbLimit = 1u << 20;  // 32 Mbit sanity bound
  if (n > kLimbLimit) throw SerializationError{"BigInt too large"};
  out.limbs_.resize(static_cast<std::size_t>(n));
  for (auto& limb : out.limbs_) limb = in.read_u32();
  out.normalize();
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_decimal();
}

}  // namespace dpn::bigint
