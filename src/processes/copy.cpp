#include "processes/copy.hpp"

namespace dpn::processes {

namespace {
constexpr std::size_t kCopyChunk = 1024;
}

Cons::Cons(std::shared_ptr<ChannelInputStream> initial,
           std::shared_ptr<ChannelInputStream> rest,
           std::shared_ptr<ChannelOutputStream> out, bool self_remove)
    : self_remove_(self_remove) {
  track_input(std::move(initial));
  track_input(std::move(rest));
  track_output(std::move(out));
}

void Cons::step() {
  std::uint8_t buffer[kCopyChunk];
  if (phase_ == Phase::kInitial) {
    const std::size_t n = input(0)->read_some(buffer);
    if (n > 0) {
      output(0)->write({buffer, n});
      return;
    }
    phase_ = Phase::kRest;
    // The initial stream is exhausted; from here on Cons is an identity
    // copy.  Splice our source directly into the consumer and step aside
    // (Figure 10) -- unless the consumer has been shipped to another
    // server, in which case there is no local splice point and we keep
    // copying.
    if (self_remove_ && !output(0)->state()->input_remote) {
      if (auto consumer = output(0)->state()->input.lock()) {
        consumer->sequence().append(release_input(1));
        spliced_ = true;
        // Graceful stop: close_all() closes our output, so the consumer
        // drains the bytes already copied and continues seamlessly from
        // the spliced channel.
        throw EndOfStream{"Cons spliced itself out"};
      }
    }
  }
  const std::size_t n = input(1)->read_some(buffer);
  if (n == 0) throw EndOfStream{};
  output(0)->write({buffer, n});
}

void Cons::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_u8(static_cast<std::uint8_t>(phase_));
  out.write_bool(self_remove_);
}

std::shared_ptr<Cons> Cons::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Cons>(new Cons);
  process->read_base(in);
  process->phase_ = static_cast<Phase>(in.read_u8());
  process->self_remove_ = in.read_bool();
  return process;
}

Duplicate::Duplicate(std::shared_ptr<ChannelInputStream> in,
                     std::vector<std::shared_ptr<ChannelOutputStream>> outs) {
  track_input(std::move(in));
  if (outs.empty()) throw UsageError{"Duplicate needs at least one output"};
  for (auto& out : outs) track_output(std::move(out));
}

Duplicate::Duplicate(std::shared_ptr<ChannelInputStream> in,
                     std::shared_ptr<ChannelOutputStream> out1,
                     std::shared_ptr<ChannelOutputStream> out2) {
  track_input(std::move(in));
  track_output(std::move(out1));
  track_output(std::move(out2));
}

void Duplicate::step() {
  std::uint8_t buffer[kCopyChunk];
  const std::size_t n = input(0)->read_some(buffer);
  if (n == 0) throw EndOfStream{};
  for (std::size_t i = 0; i < output_count(); ++i) {
    output(i)->write({buffer, n});
  }
}

void Duplicate::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Duplicate> Duplicate::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Duplicate>(new Duplicate);
  process->read_base(in);
  return process;
}

Identity::Identity(std::shared_ptr<ChannelInputStream> in,
                   std::shared_ptr<ChannelOutputStream> out) {
  track_input(std::move(in));
  track_output(std::move(out));
}

void Identity::step() {
  std::uint8_t buffer[kCopyChunk];
  const std::size_t n = input(0)->read_some(buffer);
  if (n == 0) throw EndOfStream{};
  output(0)->write({buffer, n});
}

void Identity::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Identity> Identity::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Identity>(new Identity);
  process->read_base(in);
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Cons>("dpn.Cons") &&
    serial::register_type<Duplicate>("dpn.Duplicate") &&
    serial::register_type<Identity>("dpn.Identity");
}

}  // namespace dpn::processes
