#include "processes/arith.hpp"

namespace dpn::processes {

Add::Add(std::shared_ptr<ChannelInputStream> a,
         std::shared_ptr<ChannelInputStream> b,
         std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  track_input(std::move(a));
  track_input(std::move(b));
  track_output(std::move(out));
}

void Add::step() {
  io::DataInputStream a{input(0)};
  io::DataInputStream b{input(1)};
  io::DataOutputStream out{output(0)};
  const std::int64_t x = a.read_i64();
  const std::int64_t y = b.read_i64();
  out.write_i64(x + y);
}

void Add::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Add> Add::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Add>(new Add);
  process->read_base(in);
  return process;
}

Scale::Scale(std::shared_ptr<ChannelInputStream> in,
             std::shared_ptr<ChannelOutputStream> out, std::int64_t factor,
             long iterations)
    : IterativeProcess(iterations), factor_(factor) {
  track_input(std::move(in));
  track_output(std::move(out));
}

void Scale::step() {
  io::DataInputStream in{input(0)};
  io::DataOutputStream out{output(0)};
  out.write_i64(factor_ * in.read_i64());
}

void Scale::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_i64(factor_);
}

std::shared_ptr<Scale> Scale::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Scale>(new Scale);
  process->read_base(in);
  process->factor_ = in.read_i64();
  return process;
}

Divide::Divide(std::shared_ptr<ChannelInputStream> a,
               std::shared_ptr<ChannelInputStream> b,
               std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  track_input(std::move(a));
  track_input(std::move(b));
  track_output(std::move(out));
}

void Divide::step() {
  io::DataInputStream a{input(0)};
  io::DataInputStream b{input(1)};
  io::DataOutputStream out{output(0)};
  const double x = a.read_f64();
  const double y = b.read_f64();
  out.write_f64(x / y);
}

void Divide::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Divide> Divide::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Divide>(new Divide);
  process->read_base(in);
  return process;
}

Average::Average(std::shared_ptr<ChannelInputStream> a,
                 std::shared_ptr<ChannelInputStream> b,
                 std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  track_input(std::move(a));
  track_input(std::move(b));
  track_output(std::move(out));
}

void Average::step() {
  io::DataInputStream a{input(0)};
  io::DataInputStream b{input(1)};
  io::DataOutputStream out{output(0)};
  const double x = a.read_f64();
  const double y = b.read_f64();
  out.write_f64((x + y) / 2.0);
}

void Average::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Average> Average::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Average>(new Average);
  process->read_base(in);
  return process;
}

Equal::Equal(std::shared_ptr<ChannelInputStream> a,
             std::shared_ptr<ChannelInputStream> b,
             std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  track_input(std::move(a));
  track_input(std::move(b));
  track_output(std::move(out));
}

void Equal::step() {
  io::DataInputStream a{input(0)};
  io::DataInputStream b{input(1)};
  io::DataOutputStream out{output(0)};
  const double x = a.read_f64();
  const double y = b.read_f64();
  out.write_bool(x == y);
}

void Equal::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Equal> Equal::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Equal>(new Equal);
  process->read_base(in);
  return process;
}

Guard::Guard(std::shared_ptr<ChannelInputStream> data,
             std::shared_ptr<ChannelInputStream> control,
             std::shared_ptr<ChannelOutputStream> out, bool stop_after_pass,
             long iterations)
    : IterativeProcess(iterations), stop_after_pass_(stop_after_pass) {
  track_input(std::move(data));
  track_input(std::move(control));
  track_output(std::move(out));
}

void Guard::step() {
  io::DataInputStream data{input(0)};
  io::DataInputStream control{input(1)};
  io::DataOutputStream out{output(0)};
  const double value = data.read_f64();
  const bool pass = control.read_bool();
  if (!pass) return;
  out.write_f64(value);
  if (stop_after_pass_) {
    throw EndOfStream{"Guard passed its element and stopped"};
  }
}

void Guard::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_bool(stop_after_pass_);
}

std::shared_ptr<Guard> Guard::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Guard>(new Guard);
  process->read_base(in);
  process->stop_after_pass_ = in.read_bool();
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Add>("dpn.Add") &&
    serial::register_type<Scale>("dpn.Scale") &&
    serial::register_type<Divide>("dpn.Divide") &&
    serial::register_type<Average>("dpn.Average") &&
    serial::register_type<Equal>("dpn.Equal") &&
    serial::register_type<Guard>("dpn.Guard");
}

}  // namespace dpn::processes
