#include "processes/basic.hpp"

namespace dpn::processes {

Constant::Constant(std::int64_t value,
                   std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations), value_(value) {
  track_output(std::move(out));
}

void Constant::step() {
  io::DataOutputStream data{output(0)};
  data.write_i64(value_);
}

void Constant::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_i64(value_);
}

std::shared_ptr<Constant> Constant::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Constant>(new Constant);
  process->read_base(in);
  process->value_ = in.read_i64();
  return process;
}

ConstantF64::ConstantF64(double value,
                         std::shared_ptr<ChannelOutputStream> out,
                         long iterations)
    : IterativeProcess(iterations), value_(value) {
  track_output(std::move(out));
}

void ConstantF64::step() {
  io::DataOutputStream data{output(0)};
  data.write_f64(value_);
}

void ConstantF64::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_f64(value_);
}

std::shared_ptr<ConstantF64> ConstantF64::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<ConstantF64>(new ConstantF64);
  process->read_base(in);
  process->value_ = in.read_f64();
  return process;
}

Sequence::Sequence(std::int64_t start,
                   std::shared_ptr<ChannelOutputStream> out, long iterations,
                   std::int64_t stride)
    : IterativeProcess(iterations), next_(start), stride_(stride) {
  track_output(std::move(out));
}

void Sequence::step() {
  io::DataOutputStream data{output(0)};
  data.write_i64(next_);
  next_ += stride_;
}

void Sequence::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_i64(next_);
  out.write_i64(stride_);
}

std::shared_ptr<Sequence> Sequence::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Sequence>(new Sequence);
  process->read_base(in);
  process->next_ = in.read_i64();
  process->stride_ = in.read_i64();
  return process;
}

Print::Print(std::shared_ptr<ChannelInputStream> in, long iterations,
             std::string label, std::FILE* sink)
    : IterativeProcess(iterations), label_(std::move(label)), sink_(sink) {
  track_input(std::move(in));
}

void Print::step() {
  io::DataInputStream data{input(0)};
  const std::int64_t value = data.read_i64();
  if (label_.empty()) {
    std::fprintf(sink_, "%lld\n", static_cast<long long>(value));
  } else {
    std::fprintf(sink_, "%s: %lld\n", label_.c_str(),
                 static_cast<long long>(value));
  }
  std::fflush(sink_);
}

void Print::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_string(label_);
}

std::shared_ptr<Print> Print::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Print>(new Print);
  process->read_base(in);
  process->label_ = in.read_string();
  process->sink_ = stdout;
  return process;
}

PrintF64::PrintF64(std::shared_ptr<ChannelInputStream> in, long iterations,
                   std::string label, std::FILE* sink)
    : IterativeProcess(iterations), label_(std::move(label)), sink_(sink) {
  track_input(std::move(in));
}

void PrintF64::step() {
  io::DataInputStream data{input(0)};
  const double value = data.read_f64();
  if (label_.empty()) {
    std::fprintf(sink_, "%.17g\n", value);
  } else {
    std::fprintf(sink_, "%s: %.17g\n", label_.c_str(), value);
  }
  std::fflush(sink_);
}

void PrintF64::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_string(label_);
}

std::shared_ptr<PrintF64> PrintF64::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<PrintF64>(new PrintF64);
  process->read_base(in);
  process->label_ = in.read_string();
  process->sink_ = stdout;
  return process;
}

Collect::Collect(std::shared_ptr<ChannelInputStream> in,
                 std::shared_ptr<CollectSink<std::int64_t>> sink,
                 long iterations)
    : IterativeProcess(iterations), sink_(std::move(sink)) {
  track_input(std::move(in));
}

void Collect::step() {
  io::DataInputStream data{input(0)};
  sink_->push(data.read_i64());
}

CollectF64::CollectF64(std::shared_ptr<ChannelInputStream> in,
                       std::shared_ptr<CollectSink<double>> sink,
                       long iterations)
    : IterativeProcess(iterations), sink_(std::move(sink)) {
  track_input(std::move(in));
}

void CollectF64::step() {
  io::DataInputStream data{input(0)};
  sink_->push(data.read_f64());
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Constant>("dpn.Constant") &&
    serial::register_type<ConstantF64>("dpn.ConstantF64") &&
    serial::register_type<Sequence>("dpn.Sequence") &&
    serial::register_type<Print>("dpn.Print") &&
    serial::register_type<PrintF64>("dpn.PrintF64");
}

}  // namespace dpn::processes
