#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/process.hpp"

/// The self-modifying Sieve of Eratosthenes (paper Figures 7/8): Sift
/// reads primes and inserts a new Modulo filter ahead of itself for each
/// one.  Reconfiguration is initiated by the processes themselves, which
/// is what keeps the computation determinate (Section 3.3).
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// Passes through every element not divisible by `divisor`.
class Modulo final : public IterativeProcess {
 public:
  Modulo(std::shared_ptr<ChannelInputStream> in,
         std::shared_ptr<ChannelOutputStream> out, std::int64_t divisor,
         long iterations = 0);

  std::string type_name() const override { return "dpn.Modulo"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Modulo> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Modulo() = default;
  std::int64_t divisor_ = 1;
};

/// The iterative Sift of Figure 8.  Each step reads a prime, forwards it,
/// then inserts a Modulo filter between its upstream and itself: the
/// current input channel is handed to the new Modulo (which continues
/// reading exactly where Sift left off -- no element is lost or repeated)
/// and Sift adopts a fresh channel fed by the Modulo.  The Modulo runs on
/// its own thread, created by Sift itself; threads are joined when the
/// Sift object is destroyed.
class Sift final : public IterativeProcess {
 public:
  Sift(std::shared_ptr<ChannelInputStream> in,
       std::shared_ptr<ChannelOutputStream> out, long iterations = 0,
       std::size_t channel_capacity = io::Pipe::kDefaultCapacity);

  ~Sift() override;

  std::string type_name() const override { return "dpn.Sift"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Sift> read_object(serial::ObjectInputStream& in);

  /// Number of Modulo processes inserted so far.
  std::size_t filters_inserted() const;

 protected:
  void step() override;

 private:
  Sift() = default;

  std::size_t channel_capacity_ = io::Pipe::kDefaultCapacity;
  mutable std::mutex spawn_mutex_;
  std::vector<std::shared_ptr<core::Process>> children_;
  std::vector<std::jthread> threads_;
};

/// The recursive Sift of Figure 7.  Where the iterative Sift stays in the
/// graph and accumulates filters ahead of itself, the recursive Sift
/// emits one prime and then *replaces itself*: it hands its input to a
/// new Modulo, hands its output to a new RecursiveSift, starts both on
/// their own threads, and stops -- without closing the endpoints it just
/// gave away.  The running graph becomes
///
///     ... -> Modulo(p) -> RecursiveSift -> Print
///
/// exactly as drawn in the paper's figure.  Both definitions produce the
/// same stream of primes (tested).
class RecursiveSift final : public IterativeProcess {
 public:
  RecursiveSift(std::shared_ptr<ChannelInputStream> in,
                std::shared_ptr<ChannelOutputStream> out,
                std::size_t channel_capacity = io::Pipe::kDefaultCapacity);

  std::string type_name() const override { return "dpn.RecursiveSift"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<RecursiveSift> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  RecursiveSift() = default;

  std::size_t channel_capacity_ = io::Pipe::kDefaultCapacity;
  // The replacement subgraph; owned by this (stopped) process so the
  // threads outlive the recursion step and join at teardown.
  std::vector<std::shared_ptr<core::Process>> successors_;
  std::vector<std::jthread> threads_;
};

}  // namespace dpn::processes
