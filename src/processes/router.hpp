#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/process.hpp"
#include "processes/ledger.hpp"
#include "support/bytes.hpp"
#include "sched/queue.hpp"

/// The routing processes behind the paper's parallel-worker schemas
/// (Section 5, Figures 16-18).  Elements here are *blobs*: length-prefixed
/// byte arrays, each carrying one serialized Task.  Blobs move atomically,
/// so these processes stay type-agnostic.
///
///  * Scatter/Gather  -- static round-robin load balancing (MetaStatic,
///    Figure 16);
///  * Direct/Turnstile/Select -- dynamic on-demand load balancing
///    (MetaDynamic, Figures 17/18).  Turnstile is the one sanctioned
///    non-determinate component: it forwards worker results in arrival
///    order and records that order on an index stream.  Because Direct and
///    Select both follow the same index stream, the schema's input-output
///    relation is independent of arrival order -- it is "well behaved",
///    and the overall computation remains determinate.
///
/// With a shared WorkerLedger attached (set_ledger on all three -- see
/// par::meta_dynamic and docs/FAULTS.md), the trio additionally recovers
/// from worker death: the Direct records dispatches, the Turnstile
/// detects a result stream that ends with work outstanding and wakes the
/// Direct with a -1 directive tag, and the Select re-orders by recorded
/// task position instead of reconstructing the index stream -- keeping
/// the output byte-identical to the failure-free run.  A ledger-bearing
/// process cannot be shipped (the ledger is shared local state).
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// Distributes blobs round-robin: each step reads N blobs and sends one to
/// each of the N outputs, in order.
class Scatter final : public IterativeProcess {
 public:
  Scatter(std::shared_ptr<ChannelInputStream> in,
          std::vector<std::shared_ptr<ChannelOutputStream>> outs,
          long iterations = 0);

  std::string type_name() const override { return "dpn.Scatter"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Scatter> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Scatter() = default;
};

/// Collects blobs round-robin: each step reads one blob from each of the N
/// inputs, in order, and forwards them.  Paired with Scatter this makes a
/// parallel composition that is order-equivalent to a single worker.
class Gather final : public IterativeProcess {
 public:
  Gather(std::vector<std::shared_ptr<ChannelInputStream>> ins,
         std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.Gather"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Gather> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Gather() = default;
};

/// Routes each input blob to the output named by the next element of the
/// index stream (Figure 17's "d").  With the index stream fed by the
/// turnstile, every completed task directs a fresh task to the worker that
/// finished it -- on-demand load balancing.
class Direct final : public IterativeProcess {
 public:
  Direct(std::shared_ptr<ChannelInputStream> in,
         std::shared_ptr<ChannelInputStream> order,
         std::vector<std::shared_ptr<ChannelOutputStream>> outs,
         long iterations = 0);

  std::string type_name() const override { return "dpn.Direct"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Direct> read_object(serial::ObjectInputStream& in);

  /// Enables worker-failure recovery (see file comment).
  void set_ledger(std::shared_ptr<WorkerLedger> ledger) {
    ledger_ = std::move(ledger);
  }

 protected:
  void step() override;

 private:
  Direct() = default;
  /// Records and writes one blob, re-picking the target while workers
  /// are unreachable.  Ledger mode only.
  void dispatch(std::size_t target, std::uint64_t position, ByteVector blob);
  /// Drains the ledger's re-issue queue onto surviving workers.
  void serve_reissues();
  /// Throws EndOfStream once the producer is exhausted and every
  /// dispatch has been acknowledged.
  void finish_if_quiescent();

  std::shared_ptr<WorkerLedger> ledger_;
  bool draining_ = false;  // producer exhausted; waiting for last acks
};

/// Forwards results from N inputs in arrival order (Figure 18's "t").
/// Inputs are read by per-input forwarder threads feeding an arrival
/// queue; this is the only place in the library where timing influences
/// data.  Two outputs:
///
///  * `data_out` carries (worker index, blob) pairs -- the results with
///    their provenance, consumed by the Select;
///  * `tag_out` carries the bare worker indices -- the index stream that
///    (after the 0..N-1 prefix is spliced on) drives the Direct.
///
/// The tag stream is *advisory*: it only requests future task dispatch.
/// Once the dispatch side has terminated (producer exhausted -> Direct
/// and the prefix Cons stopped), tag writes fail -- the Turnstile then
/// simply stops publishing tags and keeps forwarding the in-flight
/// results, so the tail of the computation still reaches the consumer.
/// A dead `data_out`, by contrast, stops the process (the consumer is
/// gone; cascade upstream).
class Turnstile final : public IterativeProcess {
 public:
  Turnstile(std::vector<std::shared_ptr<ChannelInputStream>> ins,
            std::shared_ptr<ChannelOutputStream> data_out,
            std::shared_ptr<ChannelOutputStream> tag_out, long iterations = 0);

  ~Turnstile() override;

  std::string type_name() const override { return "dpn.Turnstile"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Turnstile> read_object(
      serial::ObjectInputStream& in);

  /// Enables worker-failure recovery (see file comment).
  void set_ledger(std::shared_ptr<WorkerLedger> ledger) {
    ledger_ = std::move(ledger);
  }

 protected:
  void on_start() override;
  void step() override;
  void on_stop() override;

 private:
  Turnstile() = default;
  void handle_worker_eof(std::int64_t tag);

  struct Arrival {
    std::int64_t tag;
    ByteVector blob;
    /// Sentinel pushed by a forwarder after its input ends.  Queue order
    /// guarantees every real arrival of that worker was processed (and
    /// acknowledged) first, so "ended with work outstanding" is an exact
    /// failure signal, not a race.
    bool eof = false;
  };

  sched::BlockingQueue<Arrival> arrivals_;
  std::atomic<std::size_t> live_forwarders_{0};
  std::vector<std::jthread> forwarders_;
  bool tags_dead_ = false;
  std::shared_ptr<WorkerLedger> ledger_;
};

/// Reorders the turnstile's arrival-order results into task order
/// (Figure 18's "s").  Reads the (worker index, blob) pair stream and
/// reconstructs the shared index stream internally: task j went to worker
/// j for j < N (the initial prefix), and to the worker of arrival j-N
/// after that -- exactly the stream the Direct follows.  Because each
/// worker's results come back in its task order, emitting "the next
/// unconsumed result of worker index[j]" reproduces the global task
/// order: the consumer sees the same sequence as MetaStatic and the plain
/// pipeline, regardless of completion timing.
class Select final : public IterativeProcess {
 public:
  Select(std::shared_ptr<ChannelInputStream> pairs,
         std::shared_ptr<ChannelOutputStream> out, std::size_t n_workers,
         long iterations = 0);

  std::string type_name() const override { return "dpn.Select"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Select> read_object(serial::ObjectInputStream& in);

  /// Enables worker-failure recovery: results are re-ordered by the
  /// ledger-recorded task position (which survives re-issue to another
  /// worker) instead of the reconstructed index stream (which does not).
  void set_ledger(std::shared_ptr<WorkerLedger> ledger) {
    ledger_ = std::move(ledger);
  }

 protected:
  void step() override;

 private:
  Select() = default;
  void read_arrival();
  void step_ledger();

  std::uint64_t n_workers_ = 0;
  std::uint64_t next_task_ = 0;  // j: position in the reconstructed order
  std::deque<std::int64_t> arrival_tags_;  // worker of arrival i
  std::unordered_map<std::int64_t, std::deque<ByteVector>> buffered_;

  std::shared_ptr<WorkerLedger> ledger_;
  /// Ledger mode: results buffered by task position until their turn.
  std::unordered_map<std::uint64_t, ByteVector> by_position_;
};

}  // namespace dpn::processes
