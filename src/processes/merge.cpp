#include "processes/merge.hpp"

#include "io/data.hpp"

namespace dpn::processes {

OrderedMerge::OrderedMerge(
    std::vector<std::shared_ptr<ChannelInputStream>> ins,
    std::shared_ptr<ChannelOutputStream> out, bool eliminate_duplicates,
    long iterations)
    : IterativeProcess(iterations),
      eliminate_duplicates_(eliminate_duplicates) {
  if (ins.empty()) throw UsageError{"OrderedMerge needs at least one input"};
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(out));
}

void OrderedMerge::refill(std::size_t index) {
  io::DataInputStream in{input(index)};
  try {
    heads_[index] = in.read_i64();
  } catch (const EndOfStream&) {
    heads_[index] = std::nullopt;
  }
}

void OrderedMerge::on_start() {
  if (primed_) return;  // resumed from a serialized mid-run snapshot
  heads_.assign(input_count(), std::nullopt);
  for (std::size_t i = 0; i < input_count(); ++i) refill(i);
  primed_ = true;
}

void OrderedMerge::step() {
  std::optional<std::int64_t> least;
  for (const auto& head : heads_) {
    if (head && (!least || *head < *least)) least = *head;
  }
  if (!least) throw EndOfStream{"all merge inputs ended"};

  io::DataOutputStream out{output(0)};
  if (eliminate_duplicates_) {
    out.write_i64(*least);
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      if (heads_[i] && *heads_[i] == *least) refill(i);
    }
  } else {
    // Emit once per holder, advancing the lowest-indexed holder only, so
    // multiplicity is preserved deterministically.
    for (std::size_t i = 0; i < heads_.size(); ++i) {
      if (heads_[i] && *heads_[i] == *least) {
        out.write_i64(*least);
        refill(i);
        break;
      }
    }
  }
}

void OrderedMerge::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_bool(eliminate_duplicates_);
  out.write_bool(primed_);
  if (primed_) {
    out.write_varint(heads_.size());
    for (const auto& head : heads_) {
      out.write_bool(head.has_value());
      out.write_i64(head.value_or(0));
    }
  }
}

std::shared_ptr<OrderedMerge> OrderedMerge::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<OrderedMerge>(new OrderedMerge);
  process->read_base(in);
  process->eliminate_duplicates_ = in.read_bool();
  process->primed_ = in.read_bool();
  if (process->primed_) {
    const std::uint64_t n = in.read_varint();
    process->heads_.resize(n);
    for (auto& head : process->heads_) {
      const bool has = in.read_bool();
      const std::int64_t value = in.read_i64();
      head = has ? std::optional<std::int64_t>{value} : std::nullopt;
    }
  }
  return process;
}

RouteByDivisibility::RouteByDivisibility(
    std::shared_ptr<ChannelInputStream> in,
    std::shared_ptr<ChannelOutputStream> multiples,
    std::shared_ptr<ChannelOutputStream> others, std::int64_t divisor,
    long iterations)
    : IterativeProcess(iterations), divisor_(divisor) {
  if (divisor == 0) {
    throw UsageError{"RouteByDivisibility divisor must be nonzero"};
  }
  track_input(std::move(in));
  track_output(std::move(multiples));
  track_output(std::move(others));
}

void RouteByDivisibility::step() {
  io::DataInputStream in{input(0)};
  io::DataOutputStream multiples{output(0)};
  io::DataOutputStream others{output(1)};
  const std::int64_t value = in.read_i64();
  if (value % divisor_ == 0) {
    multiples.write_i64(value);
  } else {
    others.write_i64(value);
  }
}

void RouteByDivisibility::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_i64(divisor_);
}

std::shared_ptr<RouteByDivisibility> RouteByDivisibility::read_object(
    serial::ObjectInputStream& in) {
  auto process =
      std::shared_ptr<RouteByDivisibility>(new RouteByDivisibility);
  process->read_base(in);
  process->divisor_ = in.read_i64();
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<OrderedMerge>("dpn.OrderedMerge") &&
    serial::register_type<RouteByDivisibility>("dpn.RouteByDivisibility");
}

}  // namespace dpn::processes
