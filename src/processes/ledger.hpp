#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/bytes.hpp"

/// The in-flight task ledger behind fault-tolerant MetaDynamic
/// (docs/FAULTS.md).  One WorkerLedger is shared by the schema's Direct,
/// Turnstile and Select:
///
///  * the Direct records every dispatched blob (with its global task
///    position) *before* writing it to a worker channel;
///  * the Turnstile acknowledges each arriving result -- per worker, in
///    FIFO order, which is also the worker's task order -- and, when a
///    worker's channel dies with unacknowledged dispatches, moves those
///    records onto the re-issue queue;
///  * the Select maps each arrival back to its task position (again FIFO
///    per worker) and emits results in strict position order, so the
///    gathered output is byte-identical to the failure-free run no matter
///    which workers died or where their tasks were re-issued.
///
/// All methods are mutex-protected; no channel operation ever happens
/// under the lock.
namespace dpn::processes {

class WorkerLedger {
 public:
  explicit WorkerLedger(std::size_t n_workers);

  std::size_t n_workers() const { return n_workers_; }

  // --- dispatcher (Direct) side ---

  /// Global position of the next fresh (not re-issued) task.
  std::uint64_t next_position();

  /// Records a dispatch; call *before* the channel write so a result can
  /// never arrive for an unrecorded task.
  void record_dispatch(std::size_t worker, std::uint64_t position,
                       ByteVector blob);

  /// Undoes the record_dispatch just made for `position` after its
  /// channel write failed (the blob never reached the worker).  If a
  /// concurrent fail_worker already moved the record to the re-issue
  /// queue, it is removed from there instead -- the caller still owns the
  /// blob and re-dispatches it itself.
  void retract_dispatch(std::size_t worker, std::uint64_t position);

  /// Stops future dispatch to `worker` (its channel rejected a write).
  void mark_unreachable(std::size_t worker);
  bool reachable(std::size_t worker) const;

  /// Next re-dispatch target: round-robin over reachable workers starting
  /// after `previous`; nullopt when no worker is left.
  std::optional<std::size_t> pick_survivor(std::size_t previous) const;

  /// Pops the next (position, blob) awaiting re-issue.
  std::optional<std::pair<std::uint64_t, ByteVector>> take_reissue();

  /// True when every recorded dispatch has been acknowledged and nothing
  /// waits for re-issue -- the dispatcher may terminate.
  bool quiescent() const;

  // --- turnstile side ---

  /// A result arrived from `worker`: acknowledges its oldest
  /// unacknowledged dispatch.
  void ack_result(std::size_t worker);

  /// Declares `worker` dead (its result stream ended with work
  /// outstanding): moves the unacknowledged dispatches to the re-issue
  /// queue.  Returns how many were moved; idempotent, and 0 for a worker
  /// that finished cleanly.
  std::size_t fail_worker(std::size_t worker);

  // --- select side ---

  /// Task position of the next (FIFO) arrival from `worker`.  Valid
  /// because the Turnstile acknowledges an arrival before forwarding it,
  /// and fail_worker only removes records *beyond* the acknowledged
  /// prefix.
  std::uint64_t map_arrival(std::size_t worker);

  /// Fresh tasks dispatched so far == results the Select must emit.
  std::uint64_t fresh_dispatched() const;

  // --- terminal failure ---

  /// Marks recovery impossible (no survivor, or the dispatch side is
  /// gone while re-issues are pending); the Select reports WorkerLost.
  void set_fatal();
  bool fatal() const;

  /// Total tasks re-dispatched after worker loss (tests, chaos reports).
  std::uint64_t reissued() const;

 private:
  struct Record {
    std::uint64_t position = 0;
    ByteVector blob;
    /// When the blob was handed to the worker channel; ack_result turns
    /// the dispatch->result interval into a task-RTT histogram sample
    /// (obs::runtime_histograms), the queueing-aware latency a scheduler
    /// actually experiences.
    std::chrono::steady_clock::time_point dispatched_at{};
  };
  /// Per-worker dispatch history.  `records` holds dispatch ordinals
  /// [base, dispatched); `acked` and `mapped` are consumption cursors
  /// into that ordinal space (mapped <= acked always -- see map_arrival).
  /// Records below both cursors are pruned; an acknowledged record's blob
  /// is dropped early since only unacknowledged blobs can be re-issued.
  struct WorkerState {
    std::deque<Record> records;
    std::uint64_t base = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t acked = 0;
    std::uint64_t mapped = 0;
    bool reachable = true;
    bool failed = false;
    bool counted_lost = false;
  };

  void prune_locked(WorkerState& state);
  void count_lost_locked(WorkerState& state);

  mutable std::mutex mutex_;
  std::size_t n_workers_;
  std::vector<WorkerState> workers_;
  std::deque<std::pair<std::uint64_t, ByteVector>> reissue_;
  std::uint64_t fresh_dispatched_ = 0;
  std::uint64_t outstanding_ = 0;  // dispatches awaiting acknowledgement
  std::uint64_t reissued_ = 0;
  bool fatal_ = false;
};

}  // namespace dpn::processes
