#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/process.hpp"

/// Deterministic merges and routers over ordered i64 streams: the Merge of
/// the Hamming network (Figure 12) and the mod/merge pair of the
/// acyclic-deadlock example (Figure 13).
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// N-way ordered merge with duplicate elimination.  Inputs must be
/// individually non-decreasing; the output is their sorted union.  This is
/// a *determinate* merge: which input to read next is decided entirely by
/// element values, never by timing.
///
/// The merge finishes when every input has ended, after which it closes
/// its output (propagating termination downstream).
class OrderedMerge final : public IterativeProcess {
 public:
  OrderedMerge(std::vector<std::shared_ptr<ChannelInputStream>> ins,
               std::shared_ptr<ChannelOutputStream> out,
               bool eliminate_duplicates = true, long iterations = 0);

  std::string type_name() const override { return "dpn.OrderedMerge"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<OrderedMerge> read_object(
      serial::ObjectInputStream& in);

 protected:
  void on_start() override;
  void step() override;

 private:
  OrderedMerge() = default;
  void refill(std::size_t index);

  bool eliminate_duplicates_ = true;
  bool primed_ = false;
  // head_[i] is the next unconsumed element of input i, nullopt once that
  // input has ended.
  std::vector<std::optional<std::int64_t>> heads_;
};

/// The "mod" process of Figure 13: values evenly divisible by `divisor` go
/// to the first output, all others to the second.  For every `divisor`
/// consecutive integers read this produces 1 element on one output and
/// divisor-1 on the other -- the imbalance that makes the figure's acyclic
/// graph deadlock under small channel capacities.
class RouteByDivisibility final : public IterativeProcess {
 public:
  RouteByDivisibility(std::shared_ptr<ChannelInputStream> in,
                      std::shared_ptr<ChannelOutputStream> multiples,
                      std::shared_ptr<ChannelOutputStream> others,
                      std::int64_t divisor, long iterations = 0);

  std::string type_name() const override {
    return "dpn.RouteByDivisibility";
  }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<RouteByDivisibility> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  RouteByDivisibility() = default;
  std::int64_t divisor_ = 1;
};

}  // namespace dpn::processes
