#include "processes/ledger.hpp"

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace dpn::processes {

WorkerLedger::WorkerLedger(std::size_t n_workers)
    : n_workers_(n_workers), workers_(n_workers) {
  if (n_workers == 0) throw UsageError{"WorkerLedger needs >= 1 worker"};
}

std::uint64_t WorkerLedger::next_position() {
  std::scoped_lock lock{mutex_};
  return fresh_dispatched_++;
}

void WorkerLedger::record_dispatch(std::size_t worker, std::uint64_t position,
                                   ByteVector blob) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  state.records.push_back(
      {position, std::move(blob), std::chrono::steady_clock::now()});
  ++state.dispatched;
  ++outstanding_;
}

void WorkerLedger::retract_dispatch(std::size_t worker,
                                    std::uint64_t position) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  if (!state.records.empty() && state.records.back().position == position &&
      state.dispatched > state.acked) {
    state.records.pop_back();
    --state.dispatched;
    --outstanding_;
    return;
  }
  // A concurrent fail_worker already swept the record into the re-issue
  // queue; drop it there -- the caller re-dispatches the blob itself.
  for (auto it = reissue_.begin(); it != reissue_.end(); ++it) {
    if (it->first == position) {
      reissue_.erase(it);
      return;
    }
  }
}

void WorkerLedger::mark_unreachable(std::size_t worker) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  state.reachable = false;
  count_lost_locked(state);
}

bool WorkerLedger::reachable(std::size_t worker) const {
  std::scoped_lock lock{mutex_};
  return workers_.at(worker).reachable;
}

std::optional<std::size_t> WorkerLedger::pick_survivor(
    std::size_t previous) const {
  std::scoped_lock lock{mutex_};
  for (std::size_t i = 1; i <= n_workers_; ++i) {
    const std::size_t candidate = (previous + i) % n_workers_;
    if (workers_[candidate].reachable) return candidate;
  }
  return std::nullopt;
}

std::optional<std::pair<std::uint64_t, ByteVector>>
WorkerLedger::take_reissue() {
  std::scoped_lock lock{mutex_};
  if (reissue_.empty()) return std::nullopt;
  auto item = std::move(reissue_.front());
  reissue_.pop_front();
  ++reissued_;
  fault::stats().tasks_reissued.fetch_add(1, std::memory_order_relaxed);
  return item;
}

bool WorkerLedger::quiescent() const {
  std::scoped_lock lock{mutex_};
  return outstanding_ == 0 && reissue_.empty();
}

void WorkerLedger::ack_result(std::size_t worker) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  if (state.acked >= state.dispatched) {
    throw UsageError{"WorkerLedger: result without a matching dispatch"};
  }
  // The blob is no longer needed (the result exists); the record itself
  // stays until the Select has mapped the arrival.
  Record& record =
      state.records.at(static_cast<std::size_t>(state.acked - state.base));
  record.blob = ByteVector{};
  obs::runtime_histograms().task_rtt.record_shared(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - record.dispatched_at)
              .count()));
  ++state.acked;
  --outstanding_;
  prune_locked(state);
}

std::size_t WorkerLedger::fail_worker(std::size_t worker) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  if (state.failed) return 0;
  state.failed = true;
  state.reachable = false;
  const std::size_t start =
      static_cast<std::size_t>(state.acked - state.base);
  std::size_t moved = 0;
  for (std::size_t i = start; i < state.records.size(); ++i) {
    reissue_.emplace_back(state.records[i].position,
                          std::move(state.records[i].blob));
    ++moved;
  }
  state.records.resize(start);
  state.dispatched = state.acked;
  outstanding_ -= moved;
  if (moved > 0) {
    count_lost_locked(state);
    log::warn("meta_dynamic: worker ", worker, " died with ", moved,
              " task(s) in flight -- queueing for re-issue");
  }
  return moved;
}

std::uint64_t WorkerLedger::map_arrival(std::size_t worker) {
  std::scoped_lock lock{mutex_};
  WorkerState& state = workers_.at(worker);
  if (state.mapped >= state.base + state.records.size()) {
    throw UsageError{"WorkerLedger: arrival without a matching dispatch"};
  }
  const std::uint64_t position =
      state.records.at(static_cast<std::size_t>(state.mapped - state.base))
          .position;
  ++state.mapped;
  prune_locked(state);
  return position;
}

std::uint64_t WorkerLedger::fresh_dispatched() const {
  std::scoped_lock lock{mutex_};
  return fresh_dispatched_;
}

void WorkerLedger::set_fatal() {
  std::scoped_lock lock{mutex_};
  fatal_ = true;
}

bool WorkerLedger::fatal() const {
  std::scoped_lock lock{mutex_};
  return fatal_;
}

std::uint64_t WorkerLedger::reissued() const {
  std::scoped_lock lock{mutex_};
  return reissued_;
}

void WorkerLedger::prune_locked(WorkerState& state) {
  while (!state.records.empty() && state.base < state.acked &&
         state.base < state.mapped) {
    state.records.pop_front();
    ++state.base;
  }
}

void WorkerLedger::count_lost_locked(WorkerState& state) {
  if (state.counted_lost) return;
  state.counted_lost = true;
  fault::stats().workers_lost.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dpn::processes
