#include "processes/sieve.hpp"

#include "io/data.hpp"
#include "sched/scheduler.hpp"
#include "support/log.hpp"

namespace dpn::processes {

namespace {

/// Runs a runtime-inserted process (Figure 7/8 self-reconfiguration) on
/// whatever execution substrate the parent is using: a sibling fiber when
/// the parent runs on the M:N scheduler, else a dedicated thread tracked
/// in `threads` (the caller holds the spawn lock).
void spawn_inserted(std::shared_ptr<core::Process> process, const char* what,
                    std::vector<std::jthread>& threads) {
  auto body = [process = std::move(process), what] {
    try {
      process->run();
    } catch (const IoError&) {
      // Graceful stop via the termination cascade.
    } catch (const std::exception& e) {
      log::error(what, " failed: ", e.what());
    }
  };
  if (sched::spawn_detached(body, what)) return;
  threads.emplace_back(std::move(body));
}

}  // namespace

Modulo::Modulo(std::shared_ptr<ChannelInputStream> in,
               std::shared_ptr<ChannelOutputStream> out, std::int64_t divisor,
               long iterations)
    : IterativeProcess(iterations), divisor_(divisor) {
  if (divisor == 0) throw UsageError{"Modulo divisor must be nonzero"};
  track_input(std::move(in));
  track_output(std::move(out));
}

void Modulo::step() {
  io::DataInputStream in{input(0)};
  io::DataOutputStream out{output(0)};
  const std::int64_t value = in.read_i64();
  if (value % divisor_ != 0) out.write_i64(value);
}

void Modulo::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_i64(divisor_);
}

std::shared_ptr<Modulo> Modulo::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Modulo>(new Modulo);
  process->read_base(in);
  process->divisor_ = in.read_i64();
  return process;
}

Sift::Sift(std::shared_ptr<ChannelInputStream> in,
           std::shared_ptr<ChannelOutputStream> out, long iterations,
           std::size_t channel_capacity)
    : IterativeProcess(iterations), channel_capacity_(channel_capacity) {
  track_input(std::move(in));
  track_output(std::move(out));
}

Sift::~Sift() {
  // jthread members join; by the time a Sift is destroyed the termination
  // cascade (Section 3.4) has stopped every inserted Modulo.
}

void Sift::step() {
  io::DataInputStream in{input(0)};
  io::DataOutputStream out{output(0)};
  const std::int64_t prime = in.read_i64();
  out.write_i64(prime);

  // Insert a Modulo between our upstream and ourselves (Figure 8).  The
  // Modulo takes over our current input channel mid-stream; we adopt a
  // fresh channel that it feeds.
  auto channel = std::make_shared<core::Channel>(channel_capacity_);
  auto upstream = release_input(0);
  auto filter =
      std::make_shared<Modulo>(std::move(upstream), channel->output(), prime);
  track_input(channel->input());

  std::scoped_lock lock{spawn_mutex_};
  children_.push_back(filter);
  spawn_inserted(std::move(filter), "Modulo filter", threads_);
}

std::size_t Sift::filters_inserted() const {
  std::scoped_lock lock{spawn_mutex_};
  return children_.size();
}

void Sift::write_fields(serial::ObjectOutputStream& out) const {
  {
    std::scoped_lock lock{spawn_mutex_};
    if (!children_.empty()) {
      throw SerializationError{
          "Sift cannot be shipped after it has inserted filters (the "
          "filters run on local threads)"};
    }
  }
  write_base(out);
  out.write_u64(channel_capacity_);
}

std::shared_ptr<Sift> Sift::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Sift>(new Sift);
  process->read_base(in);
  process->channel_capacity_ = static_cast<std::size_t>(in.read_u64());
  return process;
}

RecursiveSift::RecursiveSift(std::shared_ptr<ChannelInputStream> in,
                             std::shared_ptr<ChannelOutputStream> out,
                             std::size_t channel_capacity)
    : channel_capacity_(channel_capacity) {
  track_input(std::move(in));
  track_output(std::move(out));
}

void RecursiveSift::step() {
  io::DataInputStream in{input(0)};
  io::DataOutputStream out{output(0)};
  const std::int64_t prime = in.read_i64();
  out.write_i64(prime);

  // Replace ourselves (Figure 7): a Modulo filter takes over our input, a
  // fresh RecursiveSift takes over our output, and we step aside.  The
  // handed-off endpoints are released from tracking so our stop does not
  // close them; data flows through the successors without interruption.
  auto filtered = std::make_shared<core::Channel>(channel_capacity_);
  auto upstream = release_input(0);
  auto downstream = release_output(0);
  auto filter = std::make_shared<Modulo>(std::move(upstream),
                                         filtered->output(), prime);
  auto successor = std::make_shared<RecursiveSift>(
      filtered->input(), std::move(downstream), channel_capacity_);
  successors_.push_back(filter);
  successors_.push_back(successor);
  spawn_inserted(std::move(filter), "Modulo filter", threads_);
  spawn_inserted(std::move(successor), "RecursiveSift successor", threads_);
  throw EndOfStream{"RecursiveSift replaced itself"};
}

void RecursiveSift::write_fields(serial::ObjectOutputStream& out) const {
  if (!successors_.empty()) {
    throw SerializationError{
        "RecursiveSift cannot be shipped after replacing itself"};
  }
  write_base(out);
  out.write_u64(channel_capacity_);
}

std::shared_ptr<RecursiveSift> RecursiveSift::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<RecursiveSift>(new RecursiveSift);
  process->read_base(in);
  process->channel_capacity_ = static_cast<std::size_t>(in.read_u64());
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Modulo>("dpn.Modulo") &&
    serial::register_type<Sift>("dpn.Sift") &&
    serial::register_type<RecursiveSift>("dpn.RecursiveSift");
}

}  // namespace dpn::processes
