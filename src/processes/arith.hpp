#pragma once

#include <memory>

#include "core/process.hpp"
#include "io/data.hpp"

/// Arithmetic and control processes over numeric elements: Add and Scale
/// on i64 streams (Fibonacci, Figure 2; Hamming, Figure 12), and the f64
/// processes of the Newton square-root network (Figure 11): Divide,
/// Average, Equal, Guard.
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// out = a + b, element-wise over i64 streams.
class Add final : public IterativeProcess {
 public:
  Add(std::shared_ptr<ChannelInputStream> a,
      std::shared_ptr<ChannelInputStream> b,
      std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.Add"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Add> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Add() = default;
};

/// out = factor * in, element-wise over i64 streams.
class Scale final : public IterativeProcess {
 public:
  Scale(std::shared_ptr<ChannelInputStream> in,
        std::shared_ptr<ChannelOutputStream> out, std::int64_t factor,
        long iterations = 0);

  std::string type_name() const override { return "dpn.Scale"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Scale> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Scale() = default;
  std::int64_t factor_ = 1;
};

/// out = a / b, element-wise over f64 streams.
class Divide final : public IterativeProcess {
 public:
  Divide(std::shared_ptr<ChannelInputStream> a,
         std::shared_ptr<ChannelInputStream> b,
         std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.Divide"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Divide> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Divide() = default;
};

/// out = (a + b) / 2, element-wise over f64 streams.
class Average final : public IterativeProcess {
 public:
  Average(std::shared_ptr<ChannelInputStream> a,
          std::shared_ptr<ChannelInputStream> b,
          std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.Average"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Average> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Average() = default;
};

/// out = (a == b) as a bool element, over f64 inputs.  Emits true when the
/// Newton iteration's estimate stops changing.
class Equal final : public IterativeProcess {
 public:
  Equal(std::shared_ptr<ChannelInputStream> a,
        std::shared_ptr<ChannelInputStream> b,
        std::shared_ptr<ChannelOutputStream> out, long iterations = 0);

  std::string type_name() const override { return "dpn.Equal"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Equal> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Equal() = default;
};

/// Passes each f64 data element through when the paired control element is
/// true, discards it otherwise.  With stop_after_pass (the paper's
/// configuration) the Guard stops after forwarding its first element,
/// triggering the cascading termination of the whole network.
class Guard final : public IterativeProcess {
 public:
  Guard(std::shared_ptr<ChannelInputStream> data,
        std::shared_ptr<ChannelInputStream> control,
        std::shared_ptr<ChannelOutputStream> out, bool stop_after_pass = true,
        long iterations = 0);

  std::string type_name() const override { return "dpn.Guard"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Guard> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Guard() = default;
  bool stop_after_pass_ = true;
};

}  // namespace dpn::processes
