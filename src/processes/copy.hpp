#pragma once

#include <memory>
#include <vector>

#include "core/process.hpp"

/// Type-agnostic byte-copy processes (paper Section 3.1: "some processes,
/// such as Cons and Duplicate, simply process bytes").
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// Prepends one stream to another: copies everything from the `initial`
/// input, then everything from the `rest` input (paper Figure 2's Cons,
/// whose initial stream is a single element from a Constant).
///
/// Once the initial stream is exhausted a Cons is just an identity copy,
/// so it removes itself from the graph (paper Figures 9/10): it splices
/// its `rest` input directly into its consumer's SequenceInputStream and
/// stops.  All unconsumed data is preserved -- the consumer first drains
/// the bytes Cons already copied, then continues reading from the spliced
/// channel without interruption.  If the consumer lives on another server
/// (no local splice point), Cons keeps copying instead.
class Cons final : public IterativeProcess {
 public:
  Cons(std::shared_ptr<ChannelInputStream> initial,
       std::shared_ptr<ChannelInputStream> rest,
       std::shared_ptr<ChannelOutputStream> out, bool self_remove = true);

  std::string type_name() const override { return "dpn.Cons"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Cons> read_object(serial::ObjectInputStream& in);

  /// True once this process has spliced itself out of the graph.
  bool spliced_out() const { return spliced_; }

 protected:
  void step() override;

 private:
  Cons() = default;

  enum class Phase : std::uint8_t { kInitial = 0, kRest = 1 };
  Phase phase_ = Phase::kInitial;
  bool self_remove_ = true;
  bool spliced_ = false;
};

/// Copies its input to every output (paper Figure 5).
///
/// As in the paper, a closed output is fatal: the process stops and
/// closes all its channels, which is what lets termination cascade
/// through cyclic graphs (Fibonacci, Newton) the moment their sink
/// finishes (Section 3.4).
class Duplicate final : public IterativeProcess {
 public:
  Duplicate(std::shared_ptr<ChannelInputStream> in,
            std::vector<std::shared_ptr<ChannelOutputStream>> outs);

  /// Two-output convenience matching the paper's Fibonacci wiring.
  Duplicate(std::shared_ptr<ChannelInputStream> in,
            std::shared_ptr<ChannelOutputStream> out1,
            std::shared_ptr<ChannelOutputStream> out2);

  std::string type_name() const override { return "dpn.Duplicate"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Duplicate> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Duplicate() = default;
};

/// Identity byte copy with no self-removal; useful as a pipeline stage in
/// tests and as a stand-in Worker.
class Identity final : public IterativeProcess {
 public:
  Identity(std::shared_ptr<ChannelInputStream> in,
           std::shared_ptr<ChannelOutputStream> out);

  std::string type_name() const override { return "dpn.Identity"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Identity> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Identity() = default;
};

}  // namespace dpn::processes
