#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "core/process.hpp"
#include "io/data.hpp"

/// Sources and sinks: Constant, Sequence, Print, Collect (paper Figures
/// 2, 6, 7, 11).  Numeric elements are 8-byte big-endian values written
/// through the Data stream layer, as in the Java implementation.
namespace dpn::processes {

using core::ChannelInputStream;
using core::ChannelOutputStream;
using core::IterativeProcess;

/// Writes a fixed i64 once per step (`Constant(1, ab.out, 1)` in the
/// paper's Fibonacci code writes a single 1).
class Constant final : public IterativeProcess {
 public:
  Constant(std::int64_t value, std::shared_ptr<ChannelOutputStream> out,
           long iterations = 0);

  std::string type_name() const override { return "dpn.Constant"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Constant> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Constant() = default;
  std::int64_t value_ = 0;
};

/// Writes a fixed f64 once per step (the x input of the Newton network).
class ConstantF64 final : public IterativeProcess {
 public:
  ConstantF64(double value, std::shared_ptr<ChannelOutputStream> out,
              long iterations = 0);

  std::string type_name() const override { return "dpn.ConstantF64"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<ConstantF64> read_object(
      serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  ConstantF64() = default;
  double value_ = 0;
};

/// Writes consecutive integers start, start+stride, ... (the integer
/// source of the Sieve of Eratosthenes, Figure 7).
class Sequence final : public IterativeProcess {
 public:
  Sequence(std::int64_t start, std::shared_ptr<ChannelOutputStream> out,
           long iterations = 0, std::int64_t stride = 1);

  std::string type_name() const override { return "dpn.Sequence"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Sequence> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Sequence() = default;
  std::int64_t next_ = 0;
  std::int64_t stride_ = 1;
};

/// Prints each i64 element to a FILE stream (stdout by default).
class Print final : public IterativeProcess {
 public:
  explicit Print(std::shared_ptr<ChannelInputStream> in, long iterations = 0,
                 std::string label = {}, std::FILE* sink = stdout);

  std::string type_name() const override { return "dpn.Print"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<Print> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  Print() = default;
  std::string label_;
  std::FILE* sink_ = stdout;  // not serialized; remote Print uses stdout
};

/// Prints each f64 element.
class PrintF64 final : public IterativeProcess {
 public:
  explicit PrintF64(std::shared_ptr<ChannelInputStream> in,
                    long iterations = 0, std::string label = {},
                    std::FILE* sink = stdout);

  std::string type_name() const override { return "dpn.PrintF64"; }
  void write_fields(serial::ObjectOutputStream& out) const override;
  static std::shared_ptr<PrintF64> read_object(serial::ObjectInputStream& in);

 protected:
  void step() override;

 private:
  PrintF64() = default;
  std::string label_;
  std::FILE* sink_ = stdout;
};

/// Thread-safe result collector shared between a Collect process and the
/// test or application that wants the values.
template <typename T>
class CollectSink {
 public:
  void push(T value) {
    std::scoped_lock lock{mutex_};
    values_.push_back(value);
  }

  std::vector<T> values() const {
    std::scoped_lock lock{mutex_};
    return values_;
  }

  std::size_t size() const {
    std::scoped_lock lock{mutex_};
    return values_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> values_;
};

/// Collects i64 elements into a CollectSink.  Local-only (the sink lives
/// in this address space), so it refuses to be shipped.
class Collect final : public IterativeProcess {
 public:
  Collect(std::shared_ptr<ChannelInputStream> in,
          std::shared_ptr<CollectSink<std::int64_t>> sink,
          long iterations = 0);

  std::string type_name() const override { return "dpn.Collect"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"Collect holds a process-local sink"};
  }

 protected:
  void step() override;

 private:
  std::shared_ptr<CollectSink<std::int64_t>> sink_;
};

/// Collects f64 elements into a CollectSink.  Local-only.
class CollectF64 final : public IterativeProcess {
 public:
  CollectF64(std::shared_ptr<ChannelInputStream> in,
             std::shared_ptr<CollectSink<double>> sink, long iterations = 0);

  std::string type_name() const override { return "dpn.CollectF64"; }
  void write_fields(serial::ObjectOutputStream&) const override {
    throw SerializationError{"CollectF64 holds a process-local sink"};
  }

 protected:
  void step() override;

 private:
  std::shared_ptr<CollectSink<double>> sink_;
};

}  // namespace dpn::processes
