#include "processes/router.hpp"

#include "io/data.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace dpn::processes {

Scatter::Scatter(std::shared_ptr<ChannelInputStream> in,
                 std::vector<std::shared_ptr<ChannelOutputStream>> outs,
                 long iterations)
    : IterativeProcess(iterations) {
  if (outs.empty()) throw UsageError{"Scatter needs at least one output"};
  track_input(std::move(in));
  for (auto& out : outs) track_output(std::move(out));
}

void Scatter::step() {
  io::DataInputStream in{input(0)};
  for (std::size_t i = 0; i < output_count(); ++i) {
    const ByteVector blob = in.read_bytes();
    io::DataOutputStream out{output(i)};
    out.write_bytes({blob.data(), blob.size()});
  }
}

void Scatter::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Scatter> Scatter::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Scatter>(new Scatter);
  process->read_base(in);
  return process;
}

Gather::Gather(std::vector<std::shared_ptr<ChannelInputStream>> ins,
               std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  if (ins.empty()) throw UsageError{"Gather needs at least one input"};
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(out));
}

void Gather::step() {
  io::DataOutputStream out{output(0)};
  for (std::size_t i = 0; i < input_count(); ++i) {
    io::DataInputStream in{input(i)};
    const ByteVector blob = in.read_bytes();
    out.write_bytes({blob.data(), blob.size()});
  }
}

void Gather::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Gather> Gather::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Gather>(new Gather);
  process->read_base(in);
  return process;
}

Direct::Direct(std::shared_ptr<ChannelInputStream> in,
               std::shared_ptr<ChannelInputStream> order,
               std::vector<std::shared_ptr<ChannelOutputStream>> outs,
               long iterations)
    : IterativeProcess(iterations) {
  if (outs.empty()) throw UsageError{"Direct needs at least one output"};
  track_input(std::move(in));
  track_input(std::move(order));
  for (auto& out : outs) track_output(std::move(out));
}

void Direct::step() {
  if (!ledger_) {
    io::DataInputStream order{input(1)};
    const std::int64_t index = order.read_i64();
    if (index < 0 || static_cast<std::size_t>(index) >= output_count()) {
      throw IoError{"Direct: index " + std::to_string(index) +
                    " out of range for " + std::to_string(output_count()) +
                    " outputs"};
    }
    io::DataInputStream in{input(0)};
    const ByteVector blob = in.read_bytes();
    io::DataOutputStream out{output(static_cast<std::size_t>(index))};
    out.write_bytes({blob.data(), blob.size()});
    return;
  }

  // Recovery mode.  Re-issues may have been queued while we were blocked
  // elsewhere; serve them before waiting on the tag stream again.
  serve_reissues();
  finish_if_quiescent();
  io::DataInputStream order{input(1)};
  const std::int64_t index = order.read_i64();
  if (index == -1) {
    // Wake directive from the Turnstile: a worker died and its
    // unacknowledged tasks await re-issue.
    serve_reissues();
    finish_if_quiescent();
    return;
  }
  if (index < 0 || static_cast<std::size_t>(index) >= output_count()) {
    throw IoError{"Direct: index " + std::to_string(index) +
                  " out of range for " + std::to_string(output_count()) +
                  " outputs"};
  }
  if (draining_) {
    // The tag only requests a fresh task and there are none left; the
    // acknowledgement behind it may have been the last one, though.
    finish_if_quiescent();
    return;
  }
  ByteVector blob;
  try {
    io::DataInputStream in{input(0)};
    blob = in.read_bytes();
  } catch (const EndOfStream&) {
    draining_ = true;
    finish_if_quiescent();
    return;
  }
  dispatch(static_cast<std::size_t>(index), ledger_->next_position(),
           std::move(blob));
}

void Direct::dispatch(std::size_t target, std::uint64_t position,
                      ByteVector blob) {
  for (;;) {
    if (!ledger_->reachable(target)) {
      const auto survivor = ledger_->pick_survivor(target);
      if (!survivor) {
        ledger_->set_fatal();
        throw EndOfStream{"Direct: no reachable workers left"};
      }
      target = *survivor;
    }
    // The ledger stores its own copy: ours must stay valid across a
    // concurrent fail_worker sweeping the record away.
    ledger_->record_dispatch(target, position, blob);
    try {
      io::DataOutputStream out{output(target)};
      out.write_bytes({blob.data(), blob.size()});
      return;
    } catch (const IoError&) {
      // The worker's task channel is gone.  Only retract *this* dispatch
      // and stop targeting the worker -- results it already produced may
      // still be queued at the Turnstile, so declaring it failed here
      // (and re-issuing acknowledged-in-flight work) would duplicate
      // output.  The Turnstile's EOF sentinel does the sweeping.
      ledger_->retract_dispatch(target, position);
      ledger_->mark_unreachable(target);
    }
  }
}

void Direct::serve_reissues() {
  while (auto item = ledger_->take_reissue()) {
    const auto survivor = ledger_->pick_survivor(output_count() - 1);
    if (!survivor) {
      ledger_->set_fatal();
      throw EndOfStream{"Direct: no reachable workers left"};
    }
    dispatch(*survivor, item->first, std::move(item->second));
  }
}

void Direct::finish_if_quiescent() {
  if (draining_ && ledger_->quiescent()) {
    throw EndOfStream{"Direct: all tasks dispatched and acknowledged"};
  }
}

void Direct::write_fields(serial::ObjectOutputStream& out) const {
  if (ledger_) {
    throw SerializationError{
        "Direct cannot be shipped with a worker ledger attached (the "
        "ledger is shared local state)"};
  }
  write_base(out);
}

std::shared_ptr<Direct> Direct::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Direct>(new Direct);
  process->read_base(in);
  return process;
}

Turnstile::Turnstile(std::vector<std::shared_ptr<ChannelInputStream>> ins,
                     std::shared_ptr<ChannelOutputStream> data_out,
                     std::shared_ptr<ChannelOutputStream> tag_out,
                     long iterations)
    : IterativeProcess(iterations) {
  if (ins.empty()) throw UsageError{"Turnstile needs at least one input"};
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(data_out));
  track_output(std::move(tag_out));
}

Turnstile::~Turnstile() {
  arrivals_.close();
  // jthread members join here; close_all() has already woken any
  // forwarder still blocked on a channel read.
}

void Turnstile::on_start() {
  live_forwarders_.store(input_count());
  forwarders_.reserve(input_count());
  for (std::size_t i = 0; i < input_count(); ++i) {
    auto source = input(i);
    forwarders_.emplace_back([this, i, source] {
      try {
        io::DataInputStream in{source};
        for (;;) {
          ByteVector blob = in.read_bytes();
          arrivals_.push({static_cast<std::int64_t>(i), std::move(blob)});
        }
      } catch (const IoError&) {
        // Input ended or the turnstile is shutting down.
      } catch (const std::exception& e) {
        log::error("Turnstile forwarder ", i, " failed: ", e.what());
      }
      // The sentinel trails every real arrival of this worker in the
      // queue, so the step thread sees it only after acknowledging them.
      arrivals_.push({static_cast<std::int64_t>(i), ByteVector{}, true});
      if (live_forwarders_.fetch_sub(1) == 1) arrivals_.close();
    });
  }
}

void Turnstile::step() {
  auto arrival = arrivals_.pop();
  if (!arrival) throw EndOfStream{"all turnstile inputs ended"};
  if (arrival->eof) {
    handle_worker_eof(arrival->tag);
    return;
  }
  // Acknowledge before forwarding: the Select relies on every arrival it
  // reads already being acknowledged (see WorkerLedger::map_arrival).
  if (ledger_) ledger_->ack_result(static_cast<std::size_t>(arrival->tag));
  // The data path carries (worker index, blob) pairs; losing it means the
  // consumer is gone, so the IoError propagates and stops us.
  io::DataOutputStream data{output(0)};
  data.write_i64(arrival->tag);
  data.write_bytes({arrival->blob.data(), arrival->blob.size()});
  // The tag path only requests future dispatch; once the dispatch side
  // has terminated (producer exhausted), keep draining results without it
  // so the tail of the computation still reaches the consumer.
  if (!tags_dead_) {
    try {
      io::DataOutputStream tags{output(1)};
      tags.write_i64(arrival->tag);
    } catch (const IoError&) {
      tags_dead_ = true;
      try {
        output(1)->close();
      } catch (...) {
      }
    }
  }
}

void Turnstile::on_stop() { arrivals_.close(); }

void Turnstile::handle_worker_eof(std::int64_t tag) {
  if (!ledger_) return;
  // Marks the worker unreachable either way; moves unacknowledged
  // dispatches (if any) to the re-issue queue.
  const std::size_t moved =
      ledger_->fail_worker(static_cast<std::size_t>(tag));
  if (moved == 0) return;
  if (!tags_dead_) {
    try {
      io::DataOutputStream tags{output(1)};
      tags.write_i64(-1);  // wake the Direct: re-issues are queued
      return;
    } catch (const IoError&) {
      tags_dead_ = true;
      try {
        output(1)->close();
      } catch (...) {
      }
    }
  }
  // The dispatch side is gone while work awaits re-issue: the lost
  // results can never be reproduced.
  ledger_->set_fatal();
}

void Turnstile::write_fields(serial::ObjectOutputStream& out) const {
  if (!forwarders_.empty()) {
    throw SerializationError{
        "Turnstile cannot be shipped once started (forwarder threads are "
        "local)"};
  }
  if (ledger_) {
    throw SerializationError{
        "Turnstile cannot be shipped with a worker ledger attached (the "
        "ledger is shared local state)"};
  }
  write_base(out);
}

std::shared_ptr<Turnstile> Turnstile::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Turnstile>(new Turnstile);
  process->read_base(in);
  return process;
}

Select::Select(std::shared_ptr<ChannelInputStream> pairs,
               std::shared_ptr<ChannelOutputStream> out,
               std::size_t n_workers, long iterations)
    : IterativeProcess(iterations), n_workers_(n_workers) {
  if (n_workers == 0) throw UsageError{"Select needs >= 1 worker"};
  track_input(std::move(pairs));
  track_output(std::move(out));
}

void Select::read_arrival() {
  io::DataInputStream pairs{input(0)};
  const std::int64_t tag = pairs.read_i64();
  ByteVector blob = pairs.read_bytes();
  if (ledger_) {
    // Per-worker FIFO arrival order is the worker's dispatch order, so
    // the ledger can map this arrival back to its global task position --
    // correct even when the task was re-issued to this worker after
    // another one died.
    const std::uint64_t position =
        ledger_->map_arrival(static_cast<std::size_t>(tag));
    by_position_[position] = std::move(blob);
    return;
  }
  arrival_tags_.push_back(tag);
  buffered_[tag].push_back(std::move(blob));
}

void Select::step_ledger() {
  try {
    for (;;) {
      const auto it = by_position_.find(next_task_);
      if (it != by_position_.end()) {
        io::DataOutputStream out{output(0)};
        out.write_bytes({it->second.data(), it->second.size()});
        by_position_.erase(it);
        ++next_task_;
        return;
      }
      read_arrival();
    }
  } catch (const EndOfStream&) {
    // The pair stream ended.  Clean completion means every fresh task's
    // result was emitted in position order; anything else is lost work.
    // (During a consumer-initiated early stop we never get here -- the
    // write above throws ChannelClosed first and cascades normally.)
    if (ledger_->fatal() || next_task_ < ledger_->fresh_dispatched() ||
        !by_position_.empty()) {
      throw WorkerLost{
          "meta_dynamic: worker(s) died and " +
          std::to_string(ledger_->fresh_dispatched() - next_task_) +
          " task result(s) could not be recovered"};
    }
    throw;
  }
}

void Select::step() {
  if (ledger_) {
    step_ledger();
    return;
  }
  // Reconstruct the index stream the Direct follows: task j went to
  // worker j for the initial prefix, then to the worker that produced
  // arrival j-N.  Task j's result cannot arrive before arrival j-N has
  // happened (its dispatch was triggered by it), so these reads never
  // overshoot the stream.
  std::int64_t need = 0;
  if (next_task_ < n_workers_) {
    need = static_cast<std::int64_t>(next_task_);
  } else {
    const std::uint64_t arrival_index = next_task_ - n_workers_;
    while (arrival_tags_.size() <= arrival_index) read_arrival();
    need = arrival_tags_[arrival_index];
  }
  auto& queue = buffered_[need];
  while (queue.empty()) read_arrival();
  io::DataOutputStream out{output(0)};
  out.write_bytes({queue.front().data(), queue.front().size()});
  queue.pop_front();
  ++next_task_;
}

void Select::write_fields(serial::ObjectOutputStream& out) const {
  if (ledger_) {
    throw SerializationError{
        "Select cannot be shipped with a worker ledger attached (the "
        "ledger is shared local state)"};
  }
  write_base(out);
  out.write_u64(n_workers_);
  out.write_u64(next_task_);
  out.write_varint(arrival_tags_.size());
  for (const std::int64_t tag : arrival_tags_) out.write_i64(tag);
  out.write_varint(buffered_.size());
  for (const auto& [tag, queue] : buffered_) {
    out.write_i64(tag);
    out.write_varint(queue.size());
    for (const auto& blob : queue) out.write_bytes({blob.data(), blob.size()});
  }
}

std::shared_ptr<Select> Select::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Select>(new Select);
  process->read_base(in);
  process->n_workers_ = in.read_u64();
  process->next_task_ = in.read_u64();
  const std::uint64_t n_arrivals = in.read_varint();
  for (std::uint64_t i = 0; i < n_arrivals; ++i) {
    process->arrival_tags_.push_back(in.read_i64());
  }
  const std::uint64_t n_tags = in.read_varint();
  for (std::uint64_t i = 0; i < n_tags; ++i) {
    const std::int64_t tag = in.read_i64();
    const std::uint64_t n_blobs = in.read_varint();
    auto& queue = process->buffered_[tag];
    for (std::uint64_t j = 0; j < n_blobs; ++j) {
      queue.push_back(in.read_bytes());
    }
  }
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Scatter>("dpn.Scatter") &&
    serial::register_type<Gather>("dpn.Gather") &&
    serial::register_type<Direct>("dpn.Direct") &&
    serial::register_type<Turnstile>("dpn.Turnstile") &&
    serial::register_type<Select>("dpn.Select");
}

}  // namespace dpn::processes
