#include "processes/router.hpp"

#include "io/data.hpp"
#include "support/log.hpp"

namespace dpn::processes {

Scatter::Scatter(std::shared_ptr<ChannelInputStream> in,
                 std::vector<std::shared_ptr<ChannelOutputStream>> outs,
                 long iterations)
    : IterativeProcess(iterations) {
  if (outs.empty()) throw UsageError{"Scatter needs at least one output"};
  track_input(std::move(in));
  for (auto& out : outs) track_output(std::move(out));
}

void Scatter::step() {
  io::DataInputStream in{input(0)};
  for (std::size_t i = 0; i < output_count(); ++i) {
    const ByteVector blob = in.read_bytes();
    io::DataOutputStream out{output(i)};
    out.write_bytes({blob.data(), blob.size()});
  }
}

void Scatter::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Scatter> Scatter::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Scatter>(new Scatter);
  process->read_base(in);
  return process;
}

Gather::Gather(std::vector<std::shared_ptr<ChannelInputStream>> ins,
               std::shared_ptr<ChannelOutputStream> out, long iterations)
    : IterativeProcess(iterations) {
  if (ins.empty()) throw UsageError{"Gather needs at least one input"};
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(out));
}

void Gather::step() {
  io::DataOutputStream out{output(0)};
  for (std::size_t i = 0; i < input_count(); ++i) {
    io::DataInputStream in{input(i)};
    const ByteVector blob = in.read_bytes();
    out.write_bytes({blob.data(), blob.size()});
  }
}

void Gather::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Gather> Gather::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Gather>(new Gather);
  process->read_base(in);
  return process;
}

Direct::Direct(std::shared_ptr<ChannelInputStream> in,
               std::shared_ptr<ChannelInputStream> order,
               std::vector<std::shared_ptr<ChannelOutputStream>> outs,
               long iterations)
    : IterativeProcess(iterations) {
  if (outs.empty()) throw UsageError{"Direct needs at least one output"};
  track_input(std::move(in));
  track_input(std::move(order));
  for (auto& out : outs) track_output(std::move(out));
}

void Direct::step() {
  io::DataInputStream order{input(1)};
  const std::int64_t index = order.read_i64();
  if (index < 0 || static_cast<std::size_t>(index) >= output_count()) {
    throw IoError{"Direct: index " + std::to_string(index) +
                  " out of range for " + std::to_string(output_count()) +
                  " outputs"};
  }
  io::DataInputStream in{input(0)};
  const ByteVector blob = in.read_bytes();
  io::DataOutputStream out{output(static_cast<std::size_t>(index))};
  out.write_bytes({blob.data(), blob.size()});
}

void Direct::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
}

std::shared_ptr<Direct> Direct::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Direct>(new Direct);
  process->read_base(in);
  return process;
}

Turnstile::Turnstile(std::vector<std::shared_ptr<ChannelInputStream>> ins,
                     std::shared_ptr<ChannelOutputStream> data_out,
                     std::shared_ptr<ChannelOutputStream> tag_out,
                     long iterations)
    : IterativeProcess(iterations) {
  if (ins.empty()) throw UsageError{"Turnstile needs at least one input"};
  for (auto& in : ins) track_input(std::move(in));
  track_output(std::move(data_out));
  track_output(std::move(tag_out));
}

Turnstile::~Turnstile() {
  arrivals_.close();
  // jthread members join here; close_all() has already woken any
  // forwarder still blocked on a channel read.
}

void Turnstile::on_start() {
  live_forwarders_.store(input_count());
  forwarders_.reserve(input_count());
  for (std::size_t i = 0; i < input_count(); ++i) {
    auto source = input(i);
    forwarders_.emplace_back([this, i, source] {
      try {
        io::DataInputStream in{source};
        for (;;) {
          ByteVector blob = in.read_bytes();
          arrivals_.push({static_cast<std::int64_t>(i), std::move(blob)});
        }
      } catch (const IoError&) {
        // Input ended or the turnstile is shutting down.
      } catch (const std::exception& e) {
        log::error("Turnstile forwarder ", i, " failed: ", e.what());
      }
      if (live_forwarders_.fetch_sub(1) == 1) arrivals_.close();
    });
  }
}

void Turnstile::step() {
  auto arrival = arrivals_.pop();
  if (!arrival) throw EndOfStream{"all turnstile inputs ended"};
  // The data path carries (worker index, blob) pairs; losing it means the
  // consumer is gone, so the IoError propagates and stops us.
  io::DataOutputStream data{output(0)};
  data.write_i64(arrival->tag);
  data.write_bytes({arrival->blob.data(), arrival->blob.size()});
  // The tag path only requests future dispatch; once the dispatch side
  // has terminated (producer exhausted), keep draining results without it
  // so the tail of the computation still reaches the consumer.
  if (!tags_dead_) {
    try {
      io::DataOutputStream tags{output(1)};
      tags.write_i64(arrival->tag);
    } catch (const IoError&) {
      tags_dead_ = true;
      try {
        output(1)->close();
      } catch (...) {
      }
    }
  }
}

void Turnstile::on_stop() { arrivals_.close(); }

void Turnstile::write_fields(serial::ObjectOutputStream& out) const {
  if (!forwarders_.empty()) {
    throw SerializationError{
        "Turnstile cannot be shipped once started (forwarder threads are "
        "local)"};
  }
  write_base(out);
}

std::shared_ptr<Turnstile> Turnstile::read_object(
    serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Turnstile>(new Turnstile);
  process->read_base(in);
  return process;
}

Select::Select(std::shared_ptr<ChannelInputStream> pairs,
               std::shared_ptr<ChannelOutputStream> out,
               std::size_t n_workers, long iterations)
    : IterativeProcess(iterations), n_workers_(n_workers) {
  if (n_workers == 0) throw UsageError{"Select needs >= 1 worker"};
  track_input(std::move(pairs));
  track_output(std::move(out));
}

void Select::read_arrival() {
  io::DataInputStream pairs{input(0)};
  const std::int64_t tag = pairs.read_i64();
  ByteVector blob = pairs.read_bytes();
  arrival_tags_.push_back(tag);
  buffered_[tag].push_back(std::move(blob));
}

void Select::step() {
  // Reconstruct the index stream the Direct follows: task j went to
  // worker j for the initial prefix, then to the worker that produced
  // arrival j-N.  Task j's result cannot arrive before arrival j-N has
  // happened (its dispatch was triggered by it), so these reads never
  // overshoot the stream.
  std::int64_t need = 0;
  if (next_task_ < n_workers_) {
    need = static_cast<std::int64_t>(next_task_);
  } else {
    const std::uint64_t arrival_index = next_task_ - n_workers_;
    while (arrival_tags_.size() <= arrival_index) read_arrival();
    need = arrival_tags_[arrival_index];
  }
  auto& queue = buffered_[need];
  while (queue.empty()) read_arrival();
  io::DataOutputStream out{output(0)};
  out.write_bytes({queue.front().data(), queue.front().size()});
  queue.pop_front();
  ++next_task_;
}

void Select::write_fields(serial::ObjectOutputStream& out) const {
  write_base(out);
  out.write_u64(n_workers_);
  out.write_u64(next_task_);
  out.write_varint(arrival_tags_.size());
  for (const std::int64_t tag : arrival_tags_) out.write_i64(tag);
  out.write_varint(buffered_.size());
  for (const auto& [tag, queue] : buffered_) {
    out.write_i64(tag);
    out.write_varint(queue.size());
    for (const auto& blob : queue) out.write_bytes({blob.data(), blob.size()});
  }
}

std::shared_ptr<Select> Select::read_object(serial::ObjectInputStream& in) {
  auto process = std::shared_ptr<Select>(new Select);
  process->read_base(in);
  process->n_workers_ = in.read_u64();
  process->next_task_ = in.read_u64();
  const std::uint64_t n_arrivals = in.read_varint();
  for (std::uint64_t i = 0; i < n_arrivals; ++i) {
    process->arrival_tags_.push_back(in.read_i64());
  }
  const std::uint64_t n_tags = in.read_varint();
  for (std::uint64_t i = 0; i < n_tags; ++i) {
    const std::int64_t tag = in.read_i64();
    const std::uint64_t n_blobs = in.read_varint();
    auto& queue = process->buffered_[tag];
    for (std::uint64_t j = 0; j < n_blobs; ++j) {
      queue.push_back(in.read_bytes());
    }
  }
  return process;
}

namespace {
[[maybe_unused]] const bool kRegistered =
    serial::register_type<Scatter>("dpn.Scatter") &&
    serial::register_type<Gather>("dpn.Gather") &&
    serial::register_type<Direct>("dpn.Direct") &&
    serial::register_type<Turnstile>("dpn.Turnstile") &&
    serial::register_type<Select>("dpn.Select");
}

}  // namespace dpn::processes
