// Scaling curve for the M:N work-stealing scheduler (DESIGN.md section 7).
//
// A relay chain of N Identity processes passes a short burst of values
// end to end, so the graph has N+1 channels and N+2 processes -- the
// degenerate worst case for thread-per-process execution (every hop is a
// blocking read on its own thread) and the best case for run-to-block
// fibers.  The sweep runs each configuration in a forked child so peak
// RSS (VmHWM) is measured per run, not accumulated across the table.
//
// Thread-per-process refuses chains above SchedulerOptions::max_threads
// (default 16384): at 8 MB of default pthread stack apiece a 100k-thread
// chain would reserve ~800 GB of address space, so the refusal itself is
// part of the result -- the M:N rows are the only way to run the full
// sweep.  Expected shape: at 10k processes the fiber rows are >= 5x
// faster than threads; at 100k the fiber run stays under 2 GiB RSS.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/network.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

constexpr long kValues = 128;         // values relayed through the chain
constexpr std::size_t kCapacity = 8;  // one value in flight per hop (max wakeups)

/// Peak resident set of the calling process, in KB (VmHWM).
long peak_rss_kb() {
  FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb;
}

struct Outcome {
  bool completed = false;
  bool refused = false;
  double seconds = 0.0;
  long rss_kb = 0;
};

/// Builds and runs the N-relay chain under `options`.  Runs in the child.
/// The wall clock covers run() only -- spawn, execution, and quiescence;
/// graph construction (N+1 channels) is identical under both schedulers
/// and would just dilute the comparison.
Outcome run_chain(std::size_t relays, sched::SchedulerOptions options) {
  Outcome outcome;
  core::Network network;
  Stopwatch watch;
  try {
    network.set_scheduler(options);
    std::vector<std::shared_ptr<core::Channel>> chain;
    chain.reserve(relays + 1);
    for (std::size_t i = 0; i <= relays; ++i) {
      chain.push_back(network.make_channel({.capacity = kCapacity}));
    }
    network.add(std::make_shared<processes::Sequence>(
        0, chain.front()->output(), kValues));
    for (std::size_t i = 0; i < relays; ++i) {
      network.add(std::make_shared<processes::Identity>(
          chain[i]->input(), chain[i + 1]->output()));
    }
    auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();
    network.add(
        std::make_shared<processes::Collect>(chain.back()->input(), sink));
    watch.reset();
    network.run();
    outcome.completed =
        sink->values().size() == static_cast<std::size_t>(kValues);
  } catch (const UsageError& e) {
    outcome.refused = true;  // thread mode above max_threads
  }
  outcome.seconds = watch.elapsed_seconds();
  outcome.rss_kb = peak_rss_kb();
  return outcome;
}

/// Forks, runs the chain in the child, and reads the outcome back over a
/// pipe.  Isolation keeps VmHWM per configuration and lets a wedged or
/// exhausted run fail without taking the sweep down.
Outcome run_isolated(std::size_t relays, sched::SchedulerOptions options) {
  int fds[2];
  if (pipe(fds) != 0) throw IoError{"bench pipe failed"};
  const pid_t child = fork();
  if (child == 0) {
    close(fds[0]);
    const Outcome outcome = run_chain(relays, options);
    ssize_t ignored = write(fds[1], &outcome, sizeof outcome);
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  Outcome outcome;
  const ssize_t got = read(fds[0], &outcome, sizeof outcome);
  close(fds[0]);
  int status = 0;
  waitpid(child, &status, 0);
  if (got != static_cast<ssize_t>(sizeof outcome)) {
    outcome = {};  // child died before reporting
  }
  return outcome;
}

void print_row(std::size_t relays, const char* label,
               const Outcome& outcome) {
  if (outcome.refused) {
    std::printf("%8zu  %-16s  %10s  %10s\n", relays, label, "refused", "-");
  } else if (!outcome.completed) {
    std::printf("%8zu  %-16s  %10s  %10s\n", relays, label, "FAILED", "-");
  } else {
    std::printf("%8zu  %-16s  %9.3fs  %7ld MB\n", relays, label,
                outcome.seconds, outcome.rss_kb / 1024);
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned nproc = std::max(1u, std::thread::hardware_concurrency());
  std::printf("sched_scale: %ld values through N-relay chains "
              "(channel capacity %zu B, %u hardware threads)\n\n",
              kValues, kCapacity, nproc);
  std::printf("%8s  %-16s  %10s  %10s\n", "relays", "scheduler", "wall",
              "peak RSS");

  for (const std::size_t relays : {1000u, 3000u, 10000u, 30000u, 100000u}) {
    sched::SchedulerOptions threads;  // kThreadPerProcess default
    print_row(relays, "threads", run_isolated(relays, threads));

    sched::SchedulerOptions fibers;
    fibers.mode = sched::SchedMode::kWorkSteal;
    fibers.workers = nproc;
    fibers.stack_kb = 32;  // relay frames are shallow; 100k fit in RAM
    const Outcome mn = run_isolated(relays, fibers);
    print_row(relays, "work-steal", mn);
  }
  return 0;
}
