// Micro-benchmarks for object serialization (paper Section 4.2) and the
// cost of shipping live process graphs: the per-task serialization the
// parallel framework pays, and the full ship/receive round trip including
// automatic connection establishment over loopback sockets.

#include <benchmark/benchmark.h>

#include "core/process.hpp"
#include "dist/node.hpp"
#include "dist/ship.hpp"
#include "factor/factor.hpp"
#include "par/generic.hpp"
#include "processes/copy.hpp"
#include "serial/serial.hpp"

namespace {

using namespace dpn;

void BM_TaskSerialize(benchmark::State& state) {
  // A worker task as the parallel framework ships it (Section 5.1):
  // one 192-bit modulus plus the batch description.
  const auto problem = factor::FactorProblem::generate(7, 96, 16);
  auto task = std::make_shared<factor::FactorWorkerTask>(problem.n, 0, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::to_bytes(task));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskSerialize);

void BM_TaskRoundTrip(benchmark::State& state) {
  const auto problem = factor::FactorProblem::generate(7, 96, 16);
  auto task = std::make_shared<factor::FactorWorkerTask>(problem.n, 0, 32);
  const ByteVector bytes = serial::to_bytes(task);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serial::from_bytes({bytes.data(), bytes.size()}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskRoundTrip);

void BM_WorkerTaskExecution(benchmark::State& state) {
  // The real compute kernel behind every benchmark task: scanning one
  // batch of 32 even differences against a 192-bit modulus.
  const auto problem = factor::FactorProblem::generate(7, 96, 1u << 20);
  std::uint64_t d = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factor::scan_differences(problem.n, d, 32));
    d += 64;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_WorkerTaskExecution);

void BM_ShipProcessGraph(benchmark::State& state) {
  // Full Section 4.2 cycle: serialize a process with two live channel
  // endpoints (opening rendezvous registrations and switching the staying
  // endpoints), then reconstruct it on a second node, dialing back over
  // loopback TCP.  This is the per-process cost of distribution.
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();
  for (auto _ : state) {
    auto ch1 = std::make_shared<core::Channel>(4096);
    auto ch2 = std::make_shared<core::Channel>(4096);
    auto middle =
        std::make_shared<processes::Identity>(ch1->input(), ch2->output());
    const ByteVector shipment = dist::ship_process(node_a, middle);
    auto remote =
        dist::receive_process(node_b, {shipment.data(), shipment.size()});
    benchmark::DoNotOptimize(remote.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShipProcessGraph)->Unit(benchmark::kMicrosecond);

void BM_ShipInternalComposite(benchmark::State& state) {
  // A composite whose internal channel stays a local pipe: serialization
  // without any socket work, for comparison with BM_ShipProcessGraph.
  auto node_a = dist::NodeContext::create();
  for (auto _ : state) {
    auto mid = std::make_shared<core::Channel>(4096);
    auto tie_in = std::make_shared<core::Channel>(4096);
    auto tie_out = std::make_shared<core::Channel>(4096);
    // Close the boundary channels' far ends so no sockets are opened.
    tie_in->output()->close();
    tie_out->input()->close();
    auto composite = std::make_shared<core::CompositeProcess>();
    composite->add(
        std::make_shared<processes::Identity>(tie_in->input(), mid->output()));
    composite->add(std::make_shared<processes::Identity>(mid->input(),
                                                         tie_out->output()));
    benchmark::DoNotOptimize(dist::ship_process(node_a, composite));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShipInternalComposite)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
