#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "factor/factor.hpp"

/// Shared harness for the paper-reproduction benchmarks (Tables 1/2,
/// Figures 19/20 of "Distributed Process Networks in Java").
///
/// The workload is the Section 5.2 weak-RSA factor search, scaled down so
/// a full sweep runs in seconds: fewer/smaller batches than the paper's
/// 2048 x 32 x 1024-bit setup, with each batch's nominal class-C cost
/// fixed at `task_seconds` by the throttled-worker cluster simulation.
/// Because every configuration scales identically, normalized *speeds*
/// (class-C-sequential-time / elapsed) are directly comparable with the
/// paper's numbers even though absolute times are not.
namespace dpn::bench {

struct Workload {
  factor::FactorProblem problem;
  std::uint64_t tasks = 192;    // paper: 2048
  std::uint64_t batch = 32;     // as in the paper
  double task_seconds = 0.003;  // nominal class-C cost per batch

  static Workload standard(std::uint64_t tasks = 192,
                           double task_seconds = 0.003);
};

/// Sequential baseline at a given CPU-class speed (Table 1 rows).
/// Returns elapsed wall seconds.
double run_sequential(const Workload& workload, double speed);

/// Parallel run on the simulated heterogeneous fleet (fastest CPUs
/// first), with static (Fig 16) or dynamic (Fig 17) load balancing.
/// Returns elapsed wall seconds; verifies the factor was found.
double run_parallel(const Workload& workload, std::size_t workers,
                    bool dynamic);

/// Normalized speed as the paper reports it: class-C sequential time over
/// elapsed time.
inline double speed_of(double class_c_seconds, double elapsed) {
  return elapsed > 0 ? class_c_seconds / elapsed : 0.0;
}

}  // namespace dpn::bench
