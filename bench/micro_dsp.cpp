// Micro-benchmarks for the signal-processing substrate (the application
// class the paper positions process networks for): FFT throughput across
// sizes, windowed bin power (one beamformer frame), and the sustained
// sample rate of a complete streaming delay-and-sum beam as a process
// network.

#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <thread>

#include "core/network.hpp"
#include "dsp/beam.hpp"
#include "dsp/fft.hpp"
#include "processes/basic.hpp"

namespace {

using namespace dpn;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng{n};
  std::vector<dsp::Complex> data(n);
  for (auto& value : data) {
    value = dsp::Complex{rng.unit() - 0.5, rng.unit() - 0.5};
  }
  for (auto _ : state) {
    std::vector<dsp::Complex> work = data;
    dsp::fft(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BinPower(benchmark::State& state) {
  // One beam-scoring step: Hann window + FFT + one bin, on a 64-sample
  // frame (the beamformer example's configuration).
  constexpr std::size_t kFrame = 64;
  std::vector<double> frame(kFrame);
  for (std::size_t t = 0; t < kFrame; ++t) {
    frame[t] = std::sin(2.0 * std::numbers::pi * 4.0 *
                        static_cast<double>(t) / kFrame);
  }
  const auto window = dsp::hann_window(kFrame);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::bin_power(frame, 4, window));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinPower);

void BM_BeamSampleRate(benchmark::State& state) {
  // Sustained samples/second through one complete beam: S sensor sources
  // -> DelaySum -> SpectralPower -> sink, as a running process network.
  const auto sensors = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFrame = 64;
  const long frames = 40;
  const long samples = (frames + 1) * static_cast<long>(kFrame) + 16;

  for (auto _ : state) {
    core::Network network;
    std::vector<std::shared_ptr<core::ChannelInputStream>> taps;
    for (std::size_t s = 0; s < sensors; ++s) {
      auto raw = network.make_channel({.capacity = 1 << 14});
      network.add(std::make_shared<dsp::PlaneWaveSource>(
          raw->output(), 1.0 / 16.0, static_cast<double>(s) * 1.5, 0.1,
          100 + s, samples));
      taps.push_back(raw->input());
    }
    auto summed = network.make_channel({.capacity = 1 << 14});
    auto power = network.make_channel({.capacity = 1 << 14});
    auto sink = std::make_shared<processes::CollectSink<double>>();
    network.add(std::make_shared<dsp::DelaySum>(
        taps, summed->output(),
        dsp::steering_delays(sensors, 1.5, 0.3)));
    network.add(std::make_shared<dsp::SpectralPower>(
        summed->input(), power->output(), kFrame, 4));
    network.add(std::make_shared<processes::CollectF64>(power->input(), sink,
                                                        frames));
    network.run();
    benchmark::DoNotOptimize(sink->size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          samples * static_cast<std::int64_t>(sensors));
}
BENCHMARK(BM_BeamSampleRate)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
