// Reproduces Figure 20 of the paper: speedup (normalized to a 1 GHz
// Pentium III, class C) vs number of workers, for static and dynamic load
// balancing against the ideal curve, over the full 34-CPU fleet.
//
// The ideal curve has two inflection points (paper Section 5.2): at
// worker 8, where the first class-C CPU (much slower than A/B) joins, and
// at worker 27, where the first class-E CPU (the slowest) joins.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "harness.hpp"

int main() {
  using namespace dpn;
  // A slightly lighter workload: this figure sweeps many worker counts.
  const auto workload = bench::Workload::standard(/*tasks=*/136,
                                                  /*task_seconds=*/0.003);
  const double class_c = bench::run_sequential(workload, 1.0);

  std::printf("=== Figure 20: Speedup vs workers ===\n");
  std::printf("workers,ideal_speed,static_speed,dynamic_speed\n");

  for (int workers = 1; workers <= 34; ++workers) {
    const auto w = static_cast<std::size_t>(workers);
    const double ideal = cluster::ideal_speed(w);
    const double stat =
        bench::speed_of(class_c, bench::run_parallel(workload, w, false));
    const double dyn =
        bench::speed_of(class_c, bench::run_parallel(workload, w, true));
    std::printf("%d,%.2f,%.2f,%.2f\n", workers, ideal, stat, dyn);
  }

  // The two inflection points are a property of the fleet model; report
  // the marginal ideal-speed increments around them.
  const auto gain = [](int w) {
    return cluster::ideal_speed(static_cast<std::size_t>(w)) -
           cluster::ideal_speed(static_cast<std::size_t>(w - 1));
  };
  std::printf("\nIdeal-curve slope: worker 7 adds %.2f, worker 8 adds %.2f "
              "(first class C -> first inflection)\n",
              gain(7), gain(8));
  std::printf("                   worker 26 adds %.2f, worker 27 adds %.2f "
              "(first class E -> second inflection)\n",
              gain(26), gain(27));
  return 0;
}
