// Overhead of the observability layer on the PR 1 channel fast-path
// microbenchmarks.  The per-channel metrics are always on (relaxed
// atomics in the endpoint hot path); the tracer adds one relaxed load +
// predictable branch per op when disabled and a ring-buffer store when
// enabled.  The acceptance bar is <=3% on the write/read throughput and
// round-trip numbers vs micro_channels before the obs layer existed --
// compare against EXPERIMENTS.md.
//
// Each benchmark here exists twice: the plain name runs with tracing
// disabled (the deployment default), the *Traced variant with the ring
// buffer recording, which bounds the cost of leaving a trace on in
// production.

#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "net/frames.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dpn;

/// Per-element streaming write cost; arg = ChannelOptions::write_buffer.
void write_throughput(benchmark::State& state, bool traced) {
  if (traced) {
    obs::Tracer::instance().enable();
  } else {
    obs::Tracer::instance().disable();
  }
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = static_cast<std::size_t>(state.range(0));
  core::Channel channel{options};
  std::jthread drain{[in = channel.input()] {
    ByteVector buffer(1 << 16);
    try {
      while (in->read_some({buffer.data(), buffer.size()}) > 0) {
      }
    } catch (const IoError&) {
    }
  }};
  io::DataOutputStream out{channel.output()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value++);
  }
  channel.output()->close();
  obs::Tracer::instance().disable();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsWriteThroughput(benchmark::State& state) {
  write_throughput(state, /*traced=*/false);
}
BENCHMARK(BM_ObsWriteThroughput)->Arg(0)->Arg(8192);

void BM_ObsWriteThroughputTraced(benchmark::State& state) {
  write_throughput(state, /*traced=*/true);
}
BENCHMARK(BM_ObsWriteThroughputTraced)->Arg(0)->Arg(8192);

/// Per-element streaming read cost; arg = ChannelOptions::read_buffer.
void read_throughput(benchmark::State& state, bool traced) {
  if (traced) {
    obs::Tracer::instance().enable();
  } else {
    obs::Tracer::instance().disable();
  }
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = 8192;
  options.read_buffer = static_cast<std::size_t>(state.range(0));
  core::Channel channel{options};
  std::jthread feed{[out = channel.output()] {
    io::DataOutputStream data{out};
    try {
      for (std::int64_t i = 0;; ++i) data.write_i64(i);
    } catch (const IoError&) {
    }
  }};
  io::DataInputStream in{channel.input()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.read_i64());
  }
  channel.input()->close();
  obs::Tracer::instance().disable();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ObsReadThroughput(benchmark::State& state) {
  read_throughput(state, /*traced=*/false);
}
BENCHMARK(BM_ObsReadThroughput)->Arg(0)->Arg(8192);

void BM_ObsReadThroughputTraced(benchmark::State& state) {
  read_throughput(state, /*traced=*/true);
}
BENCHMARK(BM_ObsReadThroughputTraced)->Arg(0)->Arg(8192);

/// Preallocated wrap-around sink: steady-state frame writes are a pure
/// memcpy with zero allocation, so the A/B below measures the framing
/// delta instead of vector-growth/allocator churn (a growable
/// MemoryOutputStream made both variants ~5 us/frame of mmap page
/// faults, drowning a ~20 ns effect).
class RingSink final : public io::OutputStream {
 public:
  explicit RingSink(std::size_t capacity) : buffer_(capacity) {}

  void write(ByteSpan data) override { append(data); }

  void write_vectored(ByteSpan a, ByteSpan b) override {
    append(a);
    append(b);
  }

  void close() override {}

 private:
  void append(ByteSpan data) {
    if (pos_ + data.size() > buffer_.size()) pos_ = 0;
    std::memcpy(buffer_.data() + pos_, data.data(), data.size());
    pos_ += data.size();
  }

  ByteVector buffer_;
  std::size_t pos_ = 0;
};

/// The wire-path delta of causal context propagation: a plain DATA frame
/// vs a DATA_TRACED frame (ambient context lookup + span mint + 17-byte
/// TraceContext prefix) into a memory sink.  This is the entire per-chunk
/// cost a remote channel pays when tracing is on; when tracing is off the
/// traced path is never taken, and with DPN_TRACE=0 it compiles out.
/// arg = payload bytes per frame; remote channels flush whole buffered
/// chunks (KiB scale under credit batching), so the larger args are the
/// representative ones and 256 B is the small-chunk worst case.
void frame_write(benchmark::State& state, bool traced) {
  if (traced) {
    obs::Tracer::instance().enable();
    auto& ambient = obs::current_trace_context();
    ambient.trace_id = obs::new_trace_id();
    ambient.flags = obs::TraceContext::kSampled;
  } else {
    obs::Tracer::instance().disable();
  }
  const auto size = static_cast<std::size_t>(state.range(0));
  const ByteVector payload(size, 0x5A);
  auto sink = std::make_shared<RingSink>(1 << 20);
  net::FrameWriter writer{sink};
  for (auto _ : state) {
    if (obs::trace_enabled()) {
      obs::TraceContext ctx = obs::current_trace_context();
      ctx.span_id = obs::next_span_id();
      writer.write_data_traced(ctx, {payload.data(), payload.size()});
    } else {
      writer.write_data({payload.data(), payload.size()});
    }
  }
  obs::Tracer::instance().disable();
  obs::current_trace_context() = {};
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void BM_ObsFrameWrite(benchmark::State& state) {
  frame_write(state, /*traced=*/false);
}
BENCHMARK(BM_ObsFrameWrite)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_ObsFrameWriteWithContext(benchmark::State& state) {
  frame_write(state, /*traced=*/true);
}
BENCHMARK(BM_ObsFrameWriteWithContext)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

/// Single-element ping through full channel endpoints.
void BM_ObsElementRoundTrip(benchmark::State& state) {
  obs::Tracer::instance().disable();
  core::Channel channel{4096};
  io::DataOutputStream out{channel.output()};
  io::DataInputStream in{channel.input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value);
    benchmark::DoNotOptimize(in.read_i64());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsElementRoundTrip);

/// Cost of taking a structured snapshot of a graph with arg channels --
/// what the deadlock monitor pays per poll and a STATS request per call.
void BM_NetworkSnapshot(benchmark::State& state) {
  core::Network network;
  const auto n_channels = static_cast<std::size_t>(state.range(0));
  std::vector<std::shared_ptr<core::Channel>> channels;
  channels.reserve(n_channels);
  for (std::size_t i = 0; i < n_channels; ++i) {
    channels.push_back(network.make_channel(
        {.capacity = 4096, .label = "bench." + std::to_string(i)}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.snapshot().channels.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_channels));
}
BENCHMARK(BM_NetworkSnapshot)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
