// Micro-benchmarks for the channel stack of paper Section 3.1 (Figure 3):
// raw pipe throughput, the cost of each stream layer, element round-trips
// through full channel endpoints, and the local-pipe vs TCP-socket
// transport gap that distribution pays for.

#include <benchmark/benchmark.h>

#include <thread>

#include "core/channel.hpp"
#include "io/blocking.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "io/pipe.hpp"
#include "io/sequence.hpp"
#include "net/socket.hpp"

namespace {

using namespace dpn;

void BM_PipeThroughput(benchmark::State& state) {
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  auto pipe = std::make_shared<io::Pipe>(1 << 16);
  ByteVector data(chunk, 0xab);
  ByteVector sink(chunk);
  std::jthread reader{[&, pipe] {
    ByteVector buffer(chunk);
    try {
      for (;;) {
        std::size_t got = pipe->read_some({buffer.data(), buffer.size()});
        if (got == 0) return;
      }
    } catch (const IoError&) {
    }
  }};
  for (auto _ : state) {
    pipe->write({data.data(), data.size()});
  }
  pipe->close_write();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_PipeThroughput)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChannelElementRoundTrip(benchmark::State& state) {
  // One i64 element producer->consumer through full channel endpoints
  // (Sequence layer included), alternating like a ping to measure
  // per-element latency of the stack.
  core::Channel channel{4096};
  io::DataOutputStream out{channel.output()};
  io::DataInputStream in{channel.input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value);
    benchmark::DoNotOptimize(in.read_i64());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelElementRoundTrip);

void BM_ChannelElementRoundTripBuffered(benchmark::State& state) {
  // Ping-style round trip through *buffered* endpoints.  The producer must
  // flush at every rendezvous, so coalescing cannot help here -- this
  // bounds the worst case of the fast path: the pure overhead of the
  // extra buffer layer when its batching never pays off.
  core::ChannelOptions options;
  options.capacity = 4096;
  options.write_buffer = 8192;
  options.read_buffer = 8192;
  core::Channel channel{options};
  io::DataOutputStream out{channel.output()};
  io::DataInputStream in{channel.input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value);
    channel.output()->flush();
    benchmark::DoNotOptimize(in.read_i64());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelElementRoundTripBuffered);

void BM_ChannelWriteThroughput(benchmark::State& state) {
  // Per-element cost of the streaming write path: one i64 per iteration
  // into a channel a background thread keeps drained.  Arg 0 is the
  // write-through default (every element crosses the pipe mutex); larger
  // args set ChannelOptions::write_buffer, so elements coalesce and cross
  // once per buffer-full.
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = static_cast<std::size_t>(state.range(0));
  core::Channel channel{options};
  std::jthread drain{[in = channel.input()] {
    ByteVector buffer(1 << 16);
    try {
      while (in->read_some({buffer.data(), buffer.size()}) > 0) {
      }
    } catch (const IoError&) {
    }
  }};
  io::DataOutputStream out{channel.output()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value++);
  }
  channel.output()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelWriteThroughput)->Arg(0)->Arg(512)->Arg(8192);

void BM_ChannelReadThroughput(benchmark::State& state) {
  // Per-element cost of the streaming read path: a background producer
  // keeps the channel full (through a large write buffer, so it is never
  // the bottleneck); the measured thread reads one i64 per iteration.
  // Arg 0 is the read-through default; larger args set
  // ChannelOptions::read_buffer.
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = 8192;
  options.read_buffer = static_cast<std::size_t>(state.range(0));
  core::Channel channel{options};
  std::jthread feed{[out = channel.output()] {
    io::DataOutputStream data{out};
    try {
      for (std::int64_t i = 0;; ++i) data.write_i64(i);
    } catch (const IoError&) {
    }
  }};
  io::DataInputStream in{channel.input()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.read_i64());
  }
  channel.input()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelReadThroughput)->Arg(0)->Arg(8192);

void BM_DataStreamOverMemory(benchmark::State& state) {
  // The serialization layer alone, no synchronization.
  for (auto _ : state) {
    auto sink = std::make_shared<io::MemoryOutputStream>();
    io::DataOutputStream out{sink};
    for (int i = 0; i < 64; ++i) out.write_i64(i);
    io::DataInputStream in{
        std::make_shared<io::MemoryInputStream>(sink->take())};
    std::int64_t sum = 0;
    for (int i = 0; i < 64; ++i) sum += in.read_i64();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_DataStreamOverMemory);

void BM_SequenceLayerOverhead(benchmark::State& state) {
  // Reading through SequenceInputStream vs the raw pipe: the price of the
  // splice point every channel carries.
  auto pipe = std::make_shared<io::Pipe>(1 << 16);
  auto seq = std::make_shared<io::SequenceInputStream>(
      std::make_shared<io::LocalInputStream>(pipe));
  ByteVector chunk(1024, 1);
  std::jthread writer{[&, pipe] {
    try {
      for (;;) pipe->write({chunk.data(), chunk.size()});
    } catch (const IoError&) {
    }
  }};
  ByteVector buffer(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq->read_some({buffer.data(), buffer.size()}));
  }
  pipe->abort();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SequenceLayerOverhead);

void BM_SocketThroughput(benchmark::State& state) {
  // The remote-channel transport floor: raw TCP over loopback.
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  net::ServerSocket server{0};
  std::jthread sink_thread{[&] {
    net::Socket peer = server.accept();
    ByteVector buffer(1 << 16);
    try {
      while (peer.read_some({buffer.data(), buffer.size()}) > 0) {
      }
    } catch (const IoError&) {
    }
  }};
  net::Socket client = net::Socket::connect("127.0.0.1", server.port());
  ByteVector data(chunk, 0xcd);
  for (auto _ : state) {
    client.write_all({data.data(), data.size()});
  }
  client.close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_SocketThroughput)->Arg(1024)->Arg(16384);

void BM_ChannelCreation(benchmark::State& state) {
  // Cost of materializing a channel (pipe + both endpoint stacks);
  // self-reconfiguring graphs (Sift) create one per inserted process.
  for (auto _ : state) {
    core::Channel channel{4096};
    benchmark::DoNotOptimize(channel.input().get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChannelCreation);

}  // namespace

BENCHMARK_MAIN();
