// Micro-benchmarks for the arbitrary-precision substrate behind the
// Section 5.2 workload: multiplication (schoolbook vs Karatsuba sizes),
// Knuth-D division, integer square roots and the perfect-square test that
// dominates each factor-search step, and Miller-Rabin primality.

#include <benchmark/benchmark.h>

#include "bigint/bigint.hpp"

namespace {

using dpn::Xoshiro256;
using dpn::bigint::BigInt;

void BM_Multiply(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng{bits};
  const BigInt a = BigInt::random_bits(rng, bits);
  const BigInt b = BigInt::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Multiply)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DivMod(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng{bits + 1};
  const BigInt a = BigInt::random_bits(rng, bits);
  const BigInt b = BigInt::random_bits(rng, bits / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::divmod(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DivMod)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Isqrt(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng{bits + 2};
  const BigInt n = BigInt::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::isqrt(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Isqrt)->Arg(192)->Arg(1024)->Arg(2048);

void BM_PerfectSquareTest(benchmark::State& state) {
  // The inner loop of the factor scan: ~15/16 of candidates fail the
  // cheap mod-16 filter; this measures the blended cost.
  Xoshiro256 rng{9};
  const BigInt base = BigInt::random_bits(rng, 192);
  std::int64_t d = 1;
  for (auto _ : state) {
    BigInt root;
    benchmark::DoNotOptimize(
        BigInt::perfect_square(base + BigInt{d}, &root));
    d += 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerfectSquareTest);

void BM_ModPow(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng{bits + 3};
  const BigInt base = BigInt::random_bits(rng, bits);
  const BigInt exponent = BigInt::random_bits(rng, bits);
  const BigInt modulus = BigInt::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::mod_pow(base, exponent, modulus));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModPow)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_MillerRabin(benchmark::State& state) {
  // Cost of certifying one random odd 128-bit composite/prime mix.
  Xoshiro256 rng{11};
  for (auto _ : state) {
    BigInt candidate = BigInt::random_bits(rng, 128);
    if (candidate.is_even()) candidate += BigInt{1};
    benchmark::DoNotOptimize(
        BigInt::is_probable_prime(candidate, rng, /*rounds=*/8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MillerRabin)->Unit(benchmark::kMicrosecond);

void BM_DecimalConversion(benchmark::State& state) {
  Xoshiro256 rng{13};
  const BigInt n = BigInt::random_bits(rng, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.to_decimal());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecimalConversion);

}  // namespace

BENCHMARK_MAIN();
