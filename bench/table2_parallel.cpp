// Reproduces Table 2 of the paper: elapsed time and normalized speed for
// 1, 2, 4, 8, 16, 32 workers under ideal / static / dynamic load
// balancing on the (simulated) heterogeneous 34-CPU fleet.
//
// Expected shape (paper Section 5.2):
//  * dynamic tracks the ideal curve, short of it by a startup overhead
//    that grows with worker count;
//  * static matches dynamic up to 7 workers, then *degrades* when the
//    first slow class-C CPU joins at 8 workers (lock-step effect), ending
//    far below dynamic at 32 workers;
//  * at 1 worker the process-network overhead vs ideal is small (the
//    paper reports 6-7%).

#include <cstdio>

#include "cluster/cluster.hpp"
#include "harness.hpp"

namespace {

struct PaperRow {
  int workers;
  double ideal_time, ideal_speed;
  double static_time, static_speed;
  double dynamic_time, dynamic_speed;
};

// Table 2 of the paper (minutes / normalized speed).
constexpr PaperRow kPaper[] = {
    {1, 11.63, 1.93, 12.15, 1.85, 12.39, 1.82},
    {2, 6.17, 3.65, 6.93, 3.25, 6.57, 3.43},
    {4, 3.18, 7.08, 3.55, 6.34, 3.44, 6.54},
    {8, 1.70, 13.22, 3.03, 7.42, 1.87, 12.02},
    {16, 1.06, 21.22, 1.63, 13.80, 1.20, 18.73},
    {32, 0.63, 35.97, 1.00, 22.42, 0.76, 29.77},
};

}  // namespace

int main() {
  using namespace dpn;
  const auto workload = bench::Workload::standard();

  // Normalization baseline: class C sequential.
  const double class_c = bench::run_sequential(workload, 1.0);

  std::printf("=== Table 2: Parallel Execution ===\n");
  std::printf("(times in seconds; speeds normalized to a class-C CPU; "
              "paper values in minutes/speed for comparison)\n\n");
  std::printf("%7s | %8s %7s | %8s %7s | %8s %7s || paper speeds "
              "(ideal/static/dynamic)\n",
              "Workers", "idealT", "idealS", "statT", "statS", "dynT",
              "dynS");

  double static_speed_prev = 0.0;
  bool static_degraded_at_8 = false;
  double one_worker_overhead = 0.0;

  for (const PaperRow& row : kPaper) {
    const auto workers = static_cast<std::size_t>(row.workers);
    const double ideal_t = cluster::ideal_time(class_c, workers);
    const double ideal_s = cluster::ideal_speed(workers);
    const double static_t = bench::run_parallel(workload, workers, false);
    const double static_s = bench::speed_of(class_c, static_t);
    const double dynamic_t = bench::run_parallel(workload, workers, true);
    const double dynamic_s = bench::speed_of(class_c, dynamic_t);

    std::printf("%7d | %8.2f %7.2f | %8.2f %7.2f | %8.2f %7.2f || "
                "%5.2f / %5.2f / %5.2f\n",
                row.workers, ideal_t, ideal_s, static_t, static_s, dynamic_t,
                dynamic_s, row.ideal_speed, row.static_speed,
                row.dynamic_speed);

    if (row.workers == 1) {
      one_worker_overhead = (dynamic_t - ideal_t) / ideal_t;
    }
    if (row.workers == 8 && static_s < static_speed_prev * 1.6) {
      // Paper: speedup collapses from near-ideal toward ~7.4 at 8 workers.
      static_degraded_at_8 = true;
    }
    static_speed_prev = static_s;
  }

  std::printf("\nShape checks:\n");
  std::printf("  1-worker overhead vs ideal: %.1f%% (paper: ~6-7%%)\n",
              one_worker_overhead * 100);
  std::printf("  static degrades when the first class-C CPU joins (8 "
              "workers): %s\n",
              static_degraded_at_8 ? "yes" : "NO -- check the fleet model");
  return 0;
}
