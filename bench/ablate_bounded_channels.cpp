// Ablation for paper Section 3.5: bounded channels with blocking writes.
//
// The Figure 13 graph (route 1-of-N to one merge input, N-1 to the other)
// deadlocks whenever the second channel's capacity is below N-1 elements.
// This bench sweeps capacities and management policies:
//
//   fixed     -- run with the given capacity, no monitor: either completes
//                or is detected as deadlocked (and aborted);
//   monitored -- same capacity with the bounded-scheduling monitor from
//                [13]: always completes, growing channels on demand.
//
// The table shows where the deadlock boundary falls and what the monitor
// pays in growth events.

#include <cstdio>
#include <vector>

#include "core/network.hpp"
#include "processes/basic.hpp"
#include "processes/merge.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

struct Outcome {
  bool completed = false;
  std::size_t collected = 0;
  std::size_t growths = 0;
  double seconds = 0.0;
};

Outcome run_figure13(std::int64_t n, long total, std::size_t capacity_bytes,
                     bool monitored) {
  core::Network network;
  auto source = network.make_channel({.capacity = 4096, .label = "source"});
  auto multiples = network.make_channel({.capacity = capacity_bytes, .label = "multiples"});
  auto others = network.make_channel({.capacity = capacity_bytes, .label = "others"});
  auto merged = network.make_channel({.capacity = 4096, .label = "merged"});
  auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();

  network.add(std::make_shared<processes::Sequence>(1, source->output(),
                                                    total));
  network.add(std::make_shared<processes::RouteByDivisibility>(
      source->input(), multiples->output(), others->output(), n));
  network.add(std::make_shared<processes::OrderedMerge>(
      std::vector{multiples->input(), others->input()}, merged->output(),
      /*eliminate_duplicates=*/false));
  network.add(std::make_shared<processes::Collect>(merged->input(), sink));

  core::MonitorOptions options;
  if (!monitored) {
    options.growth_factor = 0;  // detection only: abort on stall
    options.max_channel_capacity = 0;
  }
  network.enable_monitor(options);

  Stopwatch watch;
  network.run();
  Outcome outcome;
  outcome.seconds = watch.elapsed_seconds();
  outcome.collected = sink->size();
  outcome.completed = outcome.collected == static_cast<std::size_t>(total);
  outcome.growths = network.growth_events();
  return outcome;
}

}  // namespace

int main() {
  constexpr std::int64_t kN = 10;  // 1 of every 10 goes to the short side
  constexpr long kTotal = 500;

  std::printf("=== Ablation: bounded channels and deadlock management "
              "(Figure 13 graph, N=%lld, %ld elements) ===\n\n",
              static_cast<long long>(kN), kTotal);
  std::printf("%-10s %-10s %-11s %-10s %-8s %-9s\n", "capacity", "policy",
              "completed", "collected", "growths", "time[s]");

  // The imbalance needs N-1 = 9 elements (72 bytes) of slack; capacities
  // straddle that boundary.
  for (const std::size_t capacity : {8u, 16u, 32u, 64u, 72u, 128u, 4096u}) {
    for (const bool monitored : {false, true}) {
      const Outcome outcome = run_figure13(kN, kTotal, capacity, monitored);
      std::printf("%-10zu %-10s %-11s %-10zu %-8zu %-9.3f\n", capacity,
                  monitored ? "monitored" : "fixed",
                  outcome.completed ? "yes" : "DEADLOCK", outcome.collected,
                  outcome.growths, outcome.seconds);
    }
  }

  std::printf("\nExpected: fixed capacities below %lld bytes deadlock; the "
              "monitored runs always complete, with growths shrinking to 0 "
              "as capacity rises.\n",
              static_cast<long long>((kN - 1) * 8));
  return 0;
}
