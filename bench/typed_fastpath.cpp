// Micro-benchmarks for the typed zero-copy fast path: T values moving
// through the in-process ring (core/typed.hpp) against the same traffic
// on the byte plane (encode -> buffered endpoint -> pipe -> decode).
// EXPERIMENTS.md's typed-fastpath table is generated from this binary;
// the acceptance bar is >= 3x per-token against the PR 1 buffered
// byte-stream stack.

#include <benchmark/benchmark.h>

#include <thread>

#include "core/channel.hpp"
#include "core/typed.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"

namespace {

using namespace dpn;

void BM_TypedRingRoundTrip(benchmark::State& state) {
  // One i64 producer->consumer ping through the typed endpoints: push,
  // pop, and both obs counter bumps -- the fast-path analogue of
  // BM_ChannelElementRoundTrip.
  auto channel = core::make_typed_channel<std::int64_t>({.capacity = 4096});
  core::TypedWriter<std::int64_t> writer{channel->output()};
  core::TypedReader<std::int64_t> reader{channel->input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    writer.put(value);
    benchmark::DoNotOptimize(reader.get());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TypedRingRoundTrip);

void BM_TypedRingRoundTripDemoted(benchmark::State& state) {
  // The same ping after a demotion: typed endpoints falling back to
  // Codec-over-endpoint.  The gap to BM_TypedRingRoundTrip is exactly
  // what a migration costs the surviving local traffic.
  auto channel = core::make_typed_channel<std::int64_t>({.capacity = 4096});
  {
    io::MemoryOutputStream sink;
    channel->state()->typed->demote_into(sink);
  }
  core::TypedWriter<std::int64_t> writer{channel->output()};
  core::TypedReader<std::int64_t> reader{channel->input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    writer.put(value);
    benchmark::DoNotOptimize(reader.get());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TypedRingRoundTripDemoted);

void BM_TypedRingWriteThroughput(benchmark::State& state) {
  // Streaming put() into a ring a background thread keeps drained --
  // the fast-path analogue of BM_ChannelWriteThroughput.
  auto channel =
      core::make_typed_channel<std::int64_t>({.capacity = 1 << 16});
  std::jthread drain{[in = channel->input()] {
    core::TypedReader<std::int64_t> reader{in};
    try {
      while (reader.get().has_value()) {
      }
    } catch (const IoError&) {
    }
  }};
  core::TypedWriter<std::int64_t> writer{channel->output()};
  std::int64_t value = 0;
  for (auto _ : state) {
    writer.put(value++);
  }
  channel->output()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TypedRingWriteThroughput);

void BM_TypedRingReadThroughput(benchmark::State& state) {
  // Streaming get() from a ring a background producer keeps full -- the
  // fast-path analogue of BM_ChannelReadThroughput.
  auto channel =
      core::make_typed_channel<std::int64_t>({.capacity = 1 << 16});
  std::jthread feed{[out = channel->output()] {
    core::TypedWriter<std::int64_t> writer{out};
    try {
      for (std::int64_t i = 0;; ++i) writer.put(i);
    } catch (const IoError&) {
    }
  }};
  core::TypedReader<std::int64_t> reader{channel->input()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.get());
  }
  channel->input()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TypedRingReadThroughput);

void BM_ByteStreamRoundTripBaseline(benchmark::State& state) {
  // The PR 1 baseline re-measured in this binary so the table's ratio
  // comes from one run on one machine: buffered endpoints, flush at
  // every rendezvous (identical to BM_ChannelElementRoundTripBuffered).
  core::ChannelOptions options;
  options.capacity = 4096;
  options.write_buffer = 8192;
  options.read_buffer = 8192;
  core::Channel channel{options};
  io::DataOutputStream out{channel.output()};
  io::DataInputStream in{channel.input()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value);
    channel.output()->flush();
    benchmark::DoNotOptimize(in.read_i64());
    ++value;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ByteStreamRoundTripBaseline);

void BM_ByteStreamWriteThroughputBaseline(benchmark::State& state) {
  // Buffered streaming-write baseline (BM_ChannelWriteThroughput/8192).
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = 8192;
  core::Channel channel{options};
  std::jthread drain{[in = channel.input()] {
    ByteVector buffer(1 << 16);
    try {
      while (in->read_some({buffer.data(), buffer.size()}) > 0) {
      }
    } catch (const IoError&) {
    }
  }};
  io::DataOutputStream out{channel.output()};
  std::int64_t value = 0;
  for (auto _ : state) {
    out.write_i64(value++);
  }
  channel.output()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ByteStreamWriteThroughputBaseline);

void BM_ByteStreamReadThroughputBaseline(benchmark::State& state) {
  // Buffered streaming-read baseline (BM_ChannelReadThroughput/8192).
  core::ChannelOptions options;
  options.capacity = 1 << 16;
  options.write_buffer = 8192;
  options.read_buffer = 8192;
  core::Channel channel{options};
  std::jthread feed{[out = channel.output()] {
    io::DataOutputStream data{out};
    try {
      for (std::int64_t i = 0;; ++i) data.write_i64(i);
    } catch (const IoError&) {
    }
  }};
  io::DataInputStream in{channel.input()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(in.read_i64());
  }
  channel.input()->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ByteStreamReadThroughputBaseline);

}  // namespace

BENCHMARK_MAIN();
