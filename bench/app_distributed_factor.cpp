// Supplemental: the cost of actually distributing the Section 5.2 search.
//
// The Table 2 benches simulate the heterogeneous cluster inside one
// process.  Here the dynamic-balancing graph is *really* cut: each worker
// is shipped to its own generic compute server and all task/result
// traffic crosses TCP sockets (loopback).  Comparing against the
// identical in-process run isolates what distribution costs -- startup
// (serialization, rendezvous, dial-backs) plus per-task framing -- the
// overhead the paper bounds at 6-7% for its workload (Section 5.2).

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster.hpp"
#include "harness.hpp"
#include "par/schema.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/router.hpp"
#include "rmi/compute_server.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

struct Run {
  double elapsed = 0.0;
  double startup = 0.0;
};

/// Builds the MetaDynamic wiring by hand so the workers can be shipped to
/// compute servers instead of joining the local composite.
Run run_distributed(const bench::Workload& workload, std::size_t n_workers,
                    double worker_speed) {
  auto node = dist::NodeContext::create();
  Stopwatch startup_watch;

  std::vector<std::unique_ptr<rmi::ComputeServer>> servers;
  std::vector<std::shared_ptr<core::ChannelOutputStream>> task_outs;
  std::vector<std::shared_ptr<core::ChannelInputStream>> result_ins;
  auto composite = std::make_shared<core::CompositeProcess>();

  for (std::size_t i = 0; i < n_workers; ++i) {
    auto tasks = std::make_shared<core::Channel>(4096);
    auto results = std::make_shared<core::Channel>(4096);
    auto worker = std::make_shared<cluster::ThrottledWorker>(
        tasks->input(), results->output(), worker_speed,
        workload.task_seconds);
    servers.push_back(std::make_unique<rmi::ComputeServer>(
        "factor-worker-" + std::to_string(i)));
    rmi::ServerHandle handle{
        rmi::Endpoint{"127.0.0.1", servers.back()->port()}, node};
    handle.submit(worker);  // worker now lives on its own server
    task_outs.push_back(tasks->output());
    result_ins.push_back(results->input());
  }

  // Local half of Figure 17: producer, Direct, indexed merge, consumer.
  auto in = std::make_shared<core::Channel>(4096);
  auto out = std::make_shared<core::Channel>(4096);
  auto merged = std::make_shared<core::Channel>(4096);
  auto tags = std::make_shared<core::Channel>(4096);
  auto prefix = std::make_shared<core::Channel>(4096);
  auto index = std::make_shared<core::Channel>(4096);

  composite->add(std::make_shared<par::Producer>(
      std::make_shared<factor::FactorProducerTask>(
          workload.problem.n, workload.tasks, workload.batch,
          /*announce=*/false),
      in->output()));
  composite->add(std::make_shared<processes::Turnstile>(
      result_ins, merged->output(), tags->output()));
  composite->add(std::make_shared<processes::Sequence>(
      0, prefix->output(), static_cast<long>(n_workers)));
  composite->add(std::make_shared<processes::Cons>(
      prefix->input(), tags->input(), index->output()));
  composite->add(std::make_shared<processes::Direct>(
      in->input(), index->input(), task_outs));
  composite->add(std::make_shared<processes::Select>(
      merged->input(), out->output(), n_workers));
  std::mutex mutex;
  bool found = false;
  composite->add(std::make_shared<par::Consumer>(
      out->input(), 0, [&](const std::shared_ptr<core::Task>& task) {
        auto result =
            std::dynamic_pointer_cast<factor::FactorResultTask>(task);
        if (result && result->found) {
          std::scoped_lock lock{mutex};
          found = true;
        }
      }));

  Run run;
  run.startup = startup_watch.elapsed_seconds();
  Stopwatch watch;
  composite->run();
  run.elapsed = watch.elapsed_seconds();
  if (!found) {
    std::fprintf(stderr, "distributed run missed the factor!\n");
    std::exit(1);
  }
  for (auto& server : servers) server->stop();
  return run;
}

double run_local(const bench::Workload& workload, std::size_t n_workers,
                 double worker_speed) {
  const std::vector<double> speeds(n_workers, worker_speed);
  auto factory = cluster::throttled_factory(speeds, workload.task_seconds);
  std::mutex mutex;
  bool found = false;
  Stopwatch watch;
  auto graph = par::pipeline(
      std::make_shared<factor::FactorProducerTask>(workload.problem.n,
                                                   workload.tasks,
                                                   workload.batch, false),
      [&](const std::shared_ptr<core::Task>& task) {
        auto result =
            std::dynamic_pointer_cast<factor::FactorResultTask>(task);
        if (result && result->found) {
          std::scoped_lock lock{mutex};
          found = true;
        }
      },
      [&](auto in, auto out) {
        return par::meta_dynamic(std::move(in), std::move(out), n_workers,
                                 factory);
      });
  graph->run();
  if (!found) {
    std::fprintf(stderr, "local run missed the factor!\n");
    std::exit(1);
  }
  return watch.elapsed_seconds();
}

}  // namespace

int main() {
  const auto workload = bench::Workload::standard(/*tasks=*/128,
                                                  /*task_seconds=*/0.003);
  std::printf("=== Distribution overhead: workers on compute servers vs "
              "in-process ===\n");
  std::printf("(%llu batches, %.0f ms/batch, homogeneous workers; every "
              "task crosses TCP twice when distributed)\n\n",
              static_cast<unsigned long long>(workload.tasks),
              workload.task_seconds * 1e3);
  std::printf("%8s %10s %13s %12s %10s\n", "workers", "local[s]",
              "distrib[s]", "startup[s]", "overhead");
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const double local = run_local(workload, workers, 1.0);
    const Run distributed = run_distributed(workload, workers, 1.0);
    std::printf("%8zu %10.3f %13.3f %12.3f %9.1f%%\n", workers, local,
                distributed.elapsed, distributed.startup,
                100.0 * (distributed.elapsed - local) / local);
  }
  std::printf("\nThe paper reports 6-7%% total overhead for its much "
              "longer-running workload; with 3 ms tasks the per-task "
              "socket hop is a visible but bounded cost.\n");
  return 0;
}
