// Reproduces Table 1 of the paper: sequential execution of the factoring
// workload on one CPU of each class, times normalized to the 1 GHz
// Pentium III (class C).
//
// The paper measured real hardware; we run the same task code on
// simulated CPUs whose speeds come from the paper's own measurements, so
// the *ratios* (the "Speed" column) are the reproduced quantity.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "harness.hpp"

int main() {
  using namespace dpn;
  const auto workload = bench::Workload::standard();

  std::printf("=== Table 1: Sequential Execution ===\n");
  std::printf("(workload: %llu batches x %llu even differences, 96-bit "
              "primes, %.0f ms/batch at class C)\n\n",
              static_cast<unsigned long long>(workload.tasks),
              static_cast<unsigned long long>(workload.batch),
              workload.task_seconds * 1e3);
  std::printf("%-5s %-30s %10s %10s | %12s %11s\n", "Class", "CPU",
              "Time[s]", "Speed", "paper T[min]", "paper Speed");

  // Measure class C first: it is the normalization reference.
  double class_c_seconds = 0.0;
  for (const auto& cls : cluster::table1_classes()) {
    if (cls.name == 'C') {
      class_c_seconds = bench::run_sequential(workload, cls.speed);
    }
  }

  for (const auto& cls : cluster::table1_classes()) {
    const double elapsed = cls.name == 'C'
                               ? class_c_seconds
                               : bench::run_sequential(workload, cls.speed);
    const double speed = bench::speed_of(class_c_seconds, elapsed);
    std::printf("%-5c %-30s %10.2f %10.2f | %12.2f %11.2f\n", cls.name,
                cls.description.c_str(), elapsed, speed,
                cls.sequential_minutes, cls.speed);
  }
  std::printf("\nShape check: speeds should fall from ~1.93 (A) to ~0.80 "
              "(E), matching the paper's column.\n");
  return 0;
}
