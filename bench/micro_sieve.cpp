// Reconfiguration-cost benchmark (paper Section 3.3): the self-modifying
// sieve inserts one Modulo process -- a new channel, a new thread, a
// mid-stream endpoint handoff -- per prime.  This measures the sustained
// rate of that reconfiguration machinery, and compares the iterative Sift
// (Figure 8) against the recursive one (Figure 7), which replaces itself
// (two processes spawned per prime) instead of accumulating filters.

#include <cstdio>

#include "core/network.hpp"
#include "processes/basic.hpp"
#include "processes/sieve.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

struct Run {
  double seconds = 0.0;
  std::size_t primes = 0;
};

Run run_sieve(bool recursive, long limit) {
  core::Network network;
  auto numbers = network.make_channel({.capacity = 4096});
  auto primes = network.make_channel({.capacity = 4096});
  auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();
  network.add(
      std::make_shared<processes::Sequence>(2, numbers->output(), limit));
  if (recursive) {
    network.add(std::make_shared<processes::RecursiveSift>(
        numbers->input(), primes->output()));
  } else {
    network.add(std::make_shared<processes::Sift>(numbers->input(),
                                                  primes->output()));
  }
  network.add(std::make_shared<processes::Collect>(primes->input(), sink));
  Stopwatch watch;
  network.run();
  return Run{watch.elapsed_seconds(), sink->size()};
}

}  // namespace

int main() {
  std::printf("=== Self-modifying sieve: reconfiguration throughput ===\n\n");
  std::printf("%-12s %10s %8s %10s %14s\n", "variant", "integers", "primes",
              "time[s]", "inserts/sec");
  for (const long limit : {500L, 2000L, 8000L}) {
    for (const bool recursive : {false, true}) {
      const Run run = run_sieve(recursive, limit);
      std::printf("%-12s %10ld %8zu %10.3f %14.0f\n",
                  recursive ? "recursive" : "iterative", limit, run.primes,
                  run.seconds,
                  static_cast<double>(run.primes) / run.seconds);
    }
  }
  std::printf("\nEach insert creates a channel and at least one thread and "
              "re-routes a live stream mid-element-boundary; the rates above "
              "are the cost of the paper's Section 3.3 reconfiguration.\n");
  return 0;
}
