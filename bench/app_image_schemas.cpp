// Supplemental application benchmark: the paper's motivating image
// workload (Section 5 intro) run through all three worker arrangements --
// single-worker pipeline (Figure 1), MetaStatic (Figure 16), MetaDynamic
// (Figure 17) -- on a *homogeneous* simulated fleet and on a fleet with
// one straggler.
//
// Expected shape: on homogeneous workers static == dynamic (the paper:
// "static load balancing works well in a homogeneous computing
// environment"); with a straggler, static is dragged down to the
// straggler's pace while dynamic routes around it.

#include <cstdio>
#include <mutex>

#include "cluster/cluster.hpp"
#include "image/tasks.hpp"
#include "par/schema.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

double run_compress(const image::Image& img, std::size_t workers,
                    bool dynamic, const std::vector<double>& speeds,
                    double task_seconds) {
  auto factory = cluster::throttled_factory(speeds, task_seconds);
  std::mutex mutex;
  std::vector<ByteVector> blocks;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto block = std::dynamic_pointer_cast<image::CompressedBlockTask>(task);
    if (!block) return;
    std::scoped_lock lock{mutex};
    blocks.push_back(block->compressed());
  };
  Stopwatch watch;
  auto graph = par::pipeline(
      std::make_shared<image::ImageProducerTask>(img, 16), observer,
      [&](auto in, auto out) {
        return dynamic
                   ? par::meta_dynamic(std::move(in), std::move(out), workers,
                                       factory)
                   : par::meta_static(std::move(in), std::move(out), workers,
                                      factory);
      });
  graph->run();
  const double elapsed = watch.elapsed_seconds();
  if (blocks.size() != image::block_grid(img, 16).size()) {
    std::fprintf(stderr, "block count mismatch!\n");
    std::exit(1);
  }
  return elapsed;
}

}  // namespace

int main() {
  const image::Image img = image::synthetic_image(512, 256, 7, 0.9);
  const std::size_t blocks = image::block_grid(img, 16).size();
  const double task_seconds = 0.002;
  std::printf("=== Image compression through the worker schemas ===\n");
  std::printf("(512x256 image, %zu blocks, %.0f ms nominal per block)\n\n",
              blocks, task_seconds * 1e3);

  std::printf("%-22s %8s %8s %8s\n", "fleet", "workers", "static_s",
              "dynamic_s");
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const std::vector<double> uniform(workers, 1.0);
    const double stat = run_compress(img, workers, false, uniform,
                                     task_seconds);
    const double dyn = run_compress(img, workers, true, uniform,
                                    task_seconds);
    std::printf("%-22s %8zu %8.3f %8.3f\n", "homogeneous", workers, stat,
                dyn);
  }
  for (const std::size_t workers : {2u, 4u, 8u}) {
    std::vector<double> straggler(workers, 1.0);
    straggler.back() = 0.25;  // one worker at quarter speed
    const double stat = run_compress(img, workers, false, straggler,
                                     task_seconds);
    const double dyn = run_compress(img, workers, true, straggler,
                                    task_seconds);
    std::printf("%-22s %8zu %8.3f %8.3f\n", "one 4x straggler", workers,
                stat, dyn);
  }
  std::printf("\nExpected: homogeneous rows match between schemas; with a "
              "straggler the static column degrades toward the "
              "straggler's pace while dynamic stays near the homogeneous "
              "time.\n");
  return 0;
}
