#include "harness.hpp"

#include <mutex>
#include <optional>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "par/schema.hpp"
#include "support/stopwatch.hpp"

namespace dpn::bench {

Workload Workload::standard(std::uint64_t tasks, double task_seconds) {
  Workload workload;
  workload.tasks = tasks;
  workload.task_seconds = task_seconds;
  workload.problem =
      factor::FactorProblem::generate(/*seed=*/1974, /*prime_bits=*/96,
                                      tasks, workload.batch);
  return workload;
}

double run_sequential(const Workload& workload, double speed) {
  return cluster::run_sequential_throttled(workload.problem.n, workload.tasks,
                                           workload.batch, speed,
                                           workload.task_seconds);
}

double run_parallel(const Workload& workload, std::size_t workers,
                    bool dynamic) {
  const auto speeds = cluster::fleet_speeds();
  auto factory = cluster::throttled_factory(speeds, workload.task_seconds);

  std::mutex mutex;
  std::optional<bigint::BigInt> found;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<factor::FactorResultTask>(task);
    if (result && result->found) {
      std::scoped_lock lock{mutex};
      found = result->p;
    }
  };

  Stopwatch watch;
  auto graph = par::pipeline(
      std::make_shared<factor::FactorProducerTask>(
          workload.problem.n, workload.tasks, workload.batch,
          /*announce=*/false),
      observer, [&](auto in, auto out) {
        return dynamic
                   ? par::meta_dynamic(std::move(in), std::move(out), workers,
                                       factory)
                   : par::meta_static(std::move(in), std::move(out), workers,
                                      factory);
      });
  graph->run();
  const double elapsed = watch.elapsed_seconds();

  if (!found || *found != workload.problem.p) {
    throw std::runtime_error{"benchmark run failed to find the factor"};
  }
  return elapsed;
}

}  // namespace dpn::bench
