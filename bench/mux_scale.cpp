// Scaling curve for the mux transport (DESIGN.md section 8): N logical
// channels between one host pair, blocking vs mux backend, thread vs
// M:N scheduler.
//
// Each configuration ships N unbounded-side producers from node A to
// node B (so B dials back over the selected transport) and streams a
// fixed total volume of i64 values split evenly across the channels.
// The timed phase covers data movement only -- shipping, dial-backs and
// stream handshakes happen before the clock starts.
//
// What the table is expected to show (EXPERIMENTS.md):
//   * blocking needs 2N file descriptors in-process (one TCP connection
//     per channel), so rows above the RLIMIT_NOFILE budget are skipped
//     -- that refusal is the point: mux runs the same row on ONE
//     connection per host pair (the `conns` column prints the live mux
//     connection count).
//   * thread-per-process refuses rows above its thread cap; the M:N
//     rows carry the 50k-channel sweep.
//   * at moderate widths (~1k channels) mux throughput stays within
//     ~20% of the blocking backend: the shared connection adds frame
//     headers and one reactor hop, but removes per-channel syscall
//     fan-out.
//
// Runs in a forked child per configuration so fd exhaustion or a
// refused scheduler cannot poison the next row.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/network.hpp"
#include "dist/node.hpp"
#include "dist/ship.hpp"
#include "net/mux.hpp"
#include "net/transport.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace dpn;

constexpr long kTotalValues = 1'000'000;  // split across the channels
constexpr std::size_t kCapacity = 256;

struct Outcome {
  bool completed = false;
  bool refused = false;    // scheduler thread cap
  bool skipped = false;    // fd budget (blocking backend)
  double seconds = 0.0;
  std::uint64_t connections = 0;  // mux: live shared connections
};

long fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return -1;
  return static_cast<long>(lim.rlim_cur);
}

/// Runs one configuration.  Called in a forked child: transport choice,
/// node contexts and the mux event loop are all process-local.
Outcome run_config(std::size_t channels, net::TransportKind transport,
                   sched::SchedulerOptions sched) {
  Outcome outcome;
  const long per_channel = std::max<long>(1, kTotalValues / channels);

  if (sched.mode == sched::SchedMode::kThreadPerProcess &&
      channels + 1 > sched::SchedulerOptions::kDefaultThreadCap) {
    outcome.refused = true;  // skip the 50k-thread build entirely
    return outcome;
  }
  if (transport == net::TransportKind::kBlocking &&
      static_cast<long>(channels) * 2 + 64 > fd_limit()) {
    outcome.skipped = true;  // both TCP ends live in this process
    return outcome;
  }

  net::network_options().transport = transport;
  auto node_a = dist::NodeContext::create();
  auto node_b = dist::NodeContext::create();

  core::Network consumers;  // node A: drains
  core::Network producers;  // node B: shipped sources
  consumers.set_scheduler(sched);
  producers.set_scheduler(sched);

  std::vector<std::shared_ptr<processes::CollectSink<std::int64_t>>> sinks;
  sinks.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    auto ch = std::make_shared<core::Channel>(kCapacity);
    auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();
    auto source = std::make_shared<processes::Sequence>(
        static_cast<std::int64_t>(i), ch->output(), per_channel);
    consumers.add(std::make_shared<processes::Collect>(ch->input(), sink));
    sinks.push_back(std::move(sink));

    // Shipping moves the output endpoint to node B, which dials back to
    // node A over the selected transport (one TCP connection per channel
    // on blocking; one logical stream on mux).
    const ByteVector shipment = dist::ship_process(node_a, source);
    producers.add(
        dist::receive_process(node_b, {shipment.data(), shipment.size()}));
  }

  Stopwatch watch;
  try {
    std::jthread remote{[&] { producers.run(); }};
    consumers.run();
    remote.join();
  } catch (const UsageError&) {
    outcome.refused = true;
    return outcome;
  }
  outcome.seconds = watch.elapsed_seconds();

  outcome.completed = true;
  for (const auto& sink : sinks) {
    if (sink->values().size() != static_cast<std::size_t>(per_channel)) {
      outcome.completed = false;
    }
  }
  outcome.connections = net::mux_stats().connections;
  return outcome;
}

Outcome run_isolated(std::size_t channels, net::TransportKind transport,
                     sched::SchedulerOptions sched) {
  int fds[2];
  if (pipe(fds) != 0) throw IoError{"bench pipe failed"};
  const pid_t child = fork();
  if (child == 0) {
    close(fds[0]);
    const Outcome outcome = run_config(channels, transport, sched);
    ssize_t ignored = write(fds[1], &outcome, sizeof outcome);
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  Outcome outcome;
  const ssize_t got = read(fds[0], &outcome, sizeof outcome);
  close(fds[0]);
  int status = 0;
  waitpid(child, &status, 0);
  if (got != static_cast<ssize_t>(sizeof outcome)) {
    outcome = {};  // child died before reporting
  }
  return outcome;
}

void print_row(std::size_t channels, const char* transport,
               const char* scheduler, const Outcome& outcome) {
  std::printf("%8zu  %-9s  %-11s", channels, transport, scheduler);
  if (outcome.refused) {
    std::printf("  %10s\n", "refused");
  } else if (outcome.skipped) {
    std::printf("  %10s\n", "fd-limit");
  } else if (!outcome.completed) {
    std::printf("  %10s\n", "FAILED");
  } else {
    const double mvals =
        static_cast<double>(kTotalValues) / outcome.seconds / 1e6;
    std::printf("  %9.3fs  %8.2f Mval/s", outcome.seconds, mvals);
    if (outcome.connections > 0) {
      std::printf("  %4llu conns",
                  static_cast<unsigned long long>(outcome.connections));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  const unsigned nproc = std::max(1u, std::thread::hardware_concurrency());
  std::printf("mux_scale: %ld values split over N channels, one host pair "
              "(%u hardware threads, fd limit %ld)\n\n",
              kTotalValues, nproc, fd_limit());
  std::printf("%8s  %-9s  %-11s  %10s\n", "channels", "transport",
              "scheduler", "wall");

  sched::SchedulerOptions threads;  // kThreadPerProcess default
  sched::SchedulerOptions fibers;
  fibers.mode = sched::SchedMode::kWorkSteal;
  fibers.workers = nproc;
  fibers.stack_kb = 32;

  for (const std::size_t channels : {100u, 1000u, 10000u, 50000u}) {
    for (const auto transport :
         {net::TransportKind::kBlocking, net::TransportKind::kMux}) {
      const char* label =
          transport == net::TransportKind::kMux ? "mux" : "blocking";
      print_row(channels, label, "threads",
                run_isolated(channels, transport, threads));
      print_row(channels, label, "work-steal",
                run_isolated(channels, transport, fibers));
    }
  }
  return 0;
}
