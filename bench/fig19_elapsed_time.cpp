// Reproduces Figure 19 of the paper: elapsed time vs number of workers
// for static load balancing (diamonds in the paper), dynamic load
// balancing (triangles) and the theoretical ideal (line).
//
// Output is a CSV series (workers, ideal, static, dynamic) in seconds --
// the same three curves the figure plots.  The signature feature is the
// static curve's *increase* from 7 to 8 workers, where the first slow
// class-C CPU joins the fleet.

#include <cstdio>

#include "cluster/cluster.hpp"
#include "harness.hpp"

int main() {
  using namespace dpn;
  const auto workload = bench::Workload::standard();
  const double class_c = bench::run_sequential(workload, 1.0);

  std::printf("=== Figure 19: Elapsed time vs workers ===\n");
  std::printf("workers,ideal_s,static_s,dynamic_s\n");

  double static_7 = 0.0, static_8 = 0.0;
  for (const int workers : {1, 2, 4, 6, 7, 8, 10, 12, 16, 24, 32}) {
    const auto w = static_cast<std::size_t>(workers);
    const double ideal = cluster::ideal_time(class_c, w);
    const double stat = bench::run_parallel(workload, w, false);
    const double dyn = bench::run_parallel(workload, w, true);
    std::printf("%d,%.3f,%.3f,%.3f\n", workers, ideal, stat, dyn);
    if (workers == 7) static_7 = stat;
    if (workers == 8) static_8 = stat;
  }

  std::printf("\nShape check: static elapsed time at 8 workers (%.3f s) "
              "should EXCEED 7 workers (%.3f s): %s\n",
              static_8, static_7,
              static_8 > static_7 ? "yes" : "NO -- check the fleet model");
  return 0;
}
