// Streaming sonar-style beamforming as a process network -- the class of
// application the paper points to as a natural fit for Kahn process
// networks (Section 1, citing Allen et al.'s sonar beamformer).
//
// A linear array of noisy sensors observes a narrowband plane wave.  Each
// sensor stream is duplicated to a bank of beams; each beam delays and
// sums its copies for one steering direction, a spectral stage scores the
// beam at the signal bin, and the bearing whose beam wins is reported.
// Dozens of processes and channels, all determinate: rerun it and the
// power table is bit-identical.
//
//   ./beamformer [true_bearing_rad] [noise]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/network.hpp"
#include "dsp/beam.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const double true_bearing = argc > 1 ? std::atof(argv[1]) : 0.35;
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.25;

  constexpr std::size_t kSensors = 8;
  constexpr double kSpacing = 3.0;          // samples of travel per sensor
  constexpr double kFrequency = 1.0 / 16.0;  // cycles per sample
  constexpr std::size_t kFrame = 64;
  constexpr std::size_t kBin = 4;  // kFrequency * kFrame
  constexpr long kFrames = 12;

  std::vector<double> bearings;
  for (double b = -0.7; b <= 0.71; b += 0.175) bearings.push_back(b);

  core::Network network;
  const auto arrivals =
      dsp::arrival_delays(kSensors, kSpacing, true_bearing);
  const long samples =
      (kFrames + 2) * static_cast<long>(kFrame) + 8 * 3 + 64;

  std::vector<std::vector<std::shared_ptr<core::ChannelInputStream>>> taps(
      bearings.size());
  for (std::size_t s = 0; s < kSensors; ++s) {
    auto raw = network.make_channel({.capacity = 4096});
    network.add(std::make_shared<dsp::PlaneWaveSource>(
        raw->output(), kFrequency, arrivals[s], noise, 1000 + s, samples));
    std::vector<std::shared_ptr<core::ChannelOutputStream>> copies;
    for (std::size_t b = 0; b < bearings.size(); ++b) {
      auto ch = network.make_channel({.capacity = 4096});
      copies.push_back(ch->output());
      taps[b].push_back(ch->input());
    }
    network.add(std::make_shared<processes::Duplicate>(raw->input(), copies));
  }

  std::vector<std::shared_ptr<processes::CollectSink<double>>> sinks;
  for (std::size_t b = 0; b < bearings.size(); ++b) {
    auto summed = network.make_channel({.capacity = 4096});
    auto power = network.make_channel({.capacity = 4096});
    network.add(std::make_shared<dsp::DelaySum>(
        taps[b], summed->output(),
        dsp::steering_delays(kSensors, kSpacing, bearings[b])));
    network.add(std::make_shared<dsp::SpectralPower>(
        summed->input(), power->output(), kFrame, kBin));
    auto sink = std::make_shared<processes::CollectSink<double>>();
    network.add(
        std::make_shared<processes::CollectF64>(power->input(), sink, kFrames));
    sinks.push_back(sink);
  }

  std::printf("array: %zu sensors, %zu beams, %ld frames of %zu samples "
              "(%zu processes, source bearing %.3f rad)\n",
              kSensors, bearings.size(), kFrames, kFrame,
              kSensors * 2 + bearings.size() * 3, true_bearing);
  network.run();

  std::size_t best = 0;
  std::vector<double> averages;
  for (std::size_t b = 0; b < bearings.size(); ++b) {
    const auto values = sinks[b]->values();
    double total = 0.0;
    for (const double v : values) total += v;
    averages.push_back(total / static_cast<double>(values.size()));
    if (averages[b] > averages[best]) best = b;
  }
  for (std::size_t b = 0; b < bearings.size(); ++b) {
    const int bars = static_cast<int>(50.0 * averages[b] / averages[best]);
    std::printf("bearing %+.3f | %10.1f %s%s\n", bearings[b], averages[b],
                std::string(static_cast<std::size_t>(bars), '#').c_str(),
                b == best ? "  <-- detected" : "");
  }
  std::printf("detected bearing %.3f rad (true %.3f rad)\n", bearings[best],
              true_bearing);
  return std::abs(bearings[best] - true_bearing) < 0.18 ? 0 : 1;
}
