// A standalone generic compute server (paper Section 4.1): give it a name
// and a registry address and it will accept Process graphs and Tasks from
// any dpn client that links the same process/task types.
//
//   ./pn_server <name> [registry_host] [registry_port]
//
// Without registry arguments it just prints its own endpoint.  Stop with
// SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rmi/compute_server.hpp"
#include "support/sync.hpp"

namespace {
dpn::Event g_stop;
void handle_signal(int) { g_stop.set(); }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <name> [registry_host] [registry_port]\n",
                 argv[0]);
    return 2;
  }
  const char* name = argv[1];

  dpn::rmi::ComputeServer server{name};
  std::printf("compute server '%s' listening on port %u (rendezvous %u)\n",
              name, server.port(), server.node()->rendezvous().port());

  if (argc >= 4) {
    const char* host = argv[2];
    const auto port = static_cast<std::uint16_t>(std::atoi(argv[3]));
    server.register_with(host, port);
    std::printf("registered with registry %s:%u\n", host, port);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  g_stop.wait();
  std::printf("shutting down '%s' (%zu processes hosted, %zu tasks run)\n",
              name, server.processes_hosted(), server.tasks_run());
  server.stop();
  return 0;
}
