// The self-modifying Sieve of Eratosthenes of paper Figures 7/8: the Sift
// process inserts a Modulo filter into the running graph for every prime
// it discovers.
//
// Demonstrates both termination modes of Section 3.4:
//   ./sieve below 100    -- all primes below 100: the integer source
//                           stops and the sieve drains (every produced
//                           element is consumed);
//   ./sieve first 100    -- the first 100 primes: the printer stops and
//                           kills the unbounded upstream via the
//                           cascading channel-close exceptions.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/network.hpp"
#include "processes/basic.hpp"
#include "processes/sieve.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const bool first_mode = argc > 1 && std::strcmp(argv[1], "first") == 0;
  const long n = argc > 2 ? std::atol(argv[2]) : 100;

  core::Network network;
  std::shared_ptr<processes::Sift> sift;
  std::shared_ptr<core::ChannelInputStream> numbers_in;

  // Figure 7 reads straight off the two connect() calls:
  //   Sequence -> numbers -> Sift -> primes -> Print.
  // In "first" mode the source is unbounded and the Print's iteration
  // limit kills the upstream via cascading channel closure; in "below"
  // mode the source stops at n and the sieve drains.
  network.connect(
      [&](auto out) {
        return first_mode
                   ? std::make_shared<processes::Sequence>(2, std::move(out))
                   : std::make_shared<processes::Sequence>(2, std::move(out),
                                                           n - 1);
      },
      [&](auto in) { numbers_in = std::move(in); },
      {.capacity = 4096, .label = "numbers"});
  network.connect(
      [&](auto out) {
        sift = std::make_shared<processes::Sift>(std::move(numbers_in),
                                                 std::move(out));
        return sift;
      },
      [&](auto in) {
        return first_mode
                   ? std::make_shared<processes::Print>(std::move(in), n)
                   : std::make_shared<processes::Print>(std::move(in));
      },
      {.capacity = 4096, .label = "primes"});
  network.run();

  std::printf("filters inserted into the running graph: %zu\n",
              sift->filters_inserted());
  return 0;
}
