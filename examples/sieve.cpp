// The self-modifying Sieve of Eratosthenes of paper Figures 7/8: the Sift
// process inserts a Modulo filter into the running graph for every prime
// it discovers.
//
// Demonstrates both termination modes of Section 3.4:
//   ./sieve below 100    -- all primes below 100: the integer source
//                           stops and the sieve drains (every produced
//                           element is consumed);
//   ./sieve first 100    -- the first 100 primes: the printer stops and
//                           kills the unbounded upstream via the
//                           cascading channel-close exceptions.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/network.hpp"
#include "processes/basic.hpp"
#include "processes/sieve.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const bool first_mode = argc > 1 && std::strcmp(argv[1], "first") == 0;
  const long n = argc > 2 ? std::atol(argv[2]) : 100;

  core::Network network;
  auto numbers = network.make_channel(4096, "numbers");
  auto primes = network.make_channel(4096, "primes");
  auto sift = std::make_shared<processes::Sift>(numbers->input(),
                                                primes->output());

  if (first_mode) {
    // Unbounded source; the Print's iteration limit terminates the run.
    network.add(std::make_shared<processes::Sequence>(2, numbers->output()));
    network.add(std::make_shared<processes::Print>(primes->input(), n));
  } else {
    // Source limit: integers 2..n; everything downstream drains.
    network.add(
        std::make_shared<processes::Sequence>(2, numbers->output(), n - 1));
    network.add(std::make_shared<processes::Print>(primes->input()));
  }
  network.add(sift);
  network.run();

  std::printf("filters inserted into the running graph: %zu\n",
              sift->filters_inserted());
  return 0;
}
