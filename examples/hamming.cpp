// The unbounded process network of paper Figure 12: the ordered sequence
// of integers of the form 2^k 3^m 5^n (Hamming numbers), the example Kahn
// attributes to Dijkstra/Hamming.
//
// Every element the merge emits feeds 1-3 new elements back into the
// cycle, so channel storage grows without bound; with bounded channels
// the graph deadlocks on blocking writes (Section 3.5).  The deadlock
// monitor implements the bounded-scheduling rule of [13]: it detects the
// stall and grows the smallest write-blocked channel, repeatedly, until
// the Print's iteration limit terminates the run.
//
//   ./hamming [count]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/network.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "processes/merge.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const long count = argc > 1 ? std::atol(argv[1]) : 40;

  core::Network network;
  // Deliberately tiny channels: let the monitor do the sizing.
  const std::size_t cap = 64;
  auto out = network.make_channel({.capacity = cap, .label = "out"});
  auto seed = network.make_channel({.capacity = cap, .label = "seed"});
  auto stream = network.make_channel({.capacity = cap, .label = "stream"});
  auto printed = network.make_channel({.capacity = cap, .label = "printed"});
  auto c2 = network.make_channel({.capacity = cap, .label = "c2"});
  auto c3 = network.make_channel({.capacity = cap, .label = "c3"});
  auto c5 = network.make_channel({.capacity = cap, .label = "c5"});
  auto s2 = network.make_channel({.capacity = cap, .label = "s2"});
  auto s3 = network.make_channel({.capacity = cap, .label = "s3"});
  auto s5 = network.make_channel({.capacity = cap, .label = "s5"});

  network.add(std::make_shared<processes::Constant>(1, seed->output(), 1));
  network.add(std::make_shared<processes::Cons>(seed->input(), out->input(),
                                                stream->output()));
  network.add(std::make_shared<processes::Duplicate>(
      stream->input(), std::vector{printed->output(), c2->output(),
                                   c3->output(), c5->output()}));
  network.add(std::make_shared<processes::Scale>(c2->input(), s2->output(), 2));
  network.add(std::make_shared<processes::Scale>(c3->input(), s3->output(), 3));
  network.add(std::make_shared<processes::Scale>(c5->input(), s5->output(), 5));
  network.add(std::make_shared<processes::OrderedMerge>(
      std::vector{s2->input(), s3->input(), s5->input()}, out->output()));
  network.add(std::make_shared<processes::Print>(printed->input(), count));

  network.enable_monitor(core::MonitorOptions{});
  network.run();

  std::printf("channel growths performed by the monitor: %zu\n",
              network.growth_events());
  return 0;
}
