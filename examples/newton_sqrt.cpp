// The Newton square-root network of paper Figure 11:
//
//   r_n = (x / r_{n-1} + r_{n-1}) / 2
//
// A feedback cycle refines the estimate; the Equal process detects when
// floating-point precision is exhausted (the estimate stops changing) and
// the Guard then passes exactly one value to Print and stops, triggering
// data-dependent termination of the whole network (Section 3.4).
//
//   ./newton_sqrt [x...]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/network.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

namespace {

double network_sqrt(double x) {
  using namespace dpn;
  core::Network network;
  auto xs = network.make_channel({.capacity = 4096, .label = "x"});
  auto r_init = network.make_channel({.capacity = 64, .label = "r0"});
  auto r_feedback = network.make_channel({.capacity = 4096, .label = "feedback"});
  auto r = network.make_channel({.capacity = 4096, .label = "r"});
  auto r_div = network.make_channel({.capacity = 4096});
  auto r_avg = network.make_channel({.capacity = 4096});
  auto r_eq = network.make_channel({.capacity = 4096});
  auto quotient = network.make_channel({.capacity = 4096});
  auto r_next = network.make_channel({.capacity = 4096});
  auto loop_copy = network.make_channel({.capacity = 4096});
  auto eq_copy = network.make_channel({.capacity = 4096});
  auto guard_copy = network.make_channel({.capacity = 4096});
  auto control = network.make_channel({.capacity = 4096});
  auto result = network.make_channel({.capacity = 64});
  auto sink = std::make_shared<processes::CollectSink<double>>();

  network.add(std::make_shared<processes::ConstantF64>(x, xs->output()));
  network.add(
      std::make_shared<processes::ConstantF64>(1.0, r_init->output(), 1));
  network.add(std::make_shared<processes::Cons>(
      r_init->input(), r_feedback->input(), r->output()));
  network.add(std::make_shared<processes::Duplicate>(
      r->input(),
      std::vector{r_div->output(), r_avg->output(), r_eq->output()}));
  network.add(std::make_shared<processes::Divide>(
      xs->input(), r_div->input(), quotient->output()));
  network.add(std::make_shared<processes::Average>(
      quotient->input(), r_avg->input(), r_next->output()));
  network.add(std::make_shared<processes::Duplicate>(
      r_next->input(), std::vector{loop_copy->output(), eq_copy->output(),
                                   guard_copy->output()}));
  network.add(std::make_shared<processes::Identity>(loop_copy->input(),
                                                    r_feedback->output()));
  network.add(std::make_shared<processes::Equal>(
      eq_copy->input(), r_eq->input(), control->output()));
  network.add(std::make_shared<processes::Guard>(
      guard_copy->input(), control->input(), result->output(),
      /*stop_after_pass=*/true));
  network.add(std::make_shared<processes::CollectF64>(result->input(), sink));
  network.run();
  return sink->values().at(0);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> inputs;
  for (int i = 1; i < argc; ++i) inputs.push_back(std::atof(argv[i]));
  if (inputs.empty()) inputs = {2.0, 10.0, 12345.678};

  for (const double x : inputs) {
    std::printf("sqrt(%g) = %.17g\n", x, network_sqrt(x));
  }
  return 0;
}
