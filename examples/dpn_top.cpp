// dpn_top: a terminal dashboard over the live telemetry plane.
//
// Subscribes to a ComputeServer's STATS_STREAM (docs/PROTOCOLS.md
// Section 6) and redraws a top-style screen per pushed snapshot:
// hosted processes, channel occupancy and wait-time percentiles, task
// round-trip and connect latency, trace-ring accounting.
//
//   ./dpn_top <host> <port> [--interval=ms] [--frames=N]
//   ./dpn_top --demo [--interval=ms] [--frames=N]
//
// --demo spins up an in-process server hosting half of a small pipeline
// (local Sequence -> remote Scale -> local sink over real sockets) so
// there is something to watch; --frames bounds the run (0 = forever),
// which is also how the ctest smoke test uses it.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/channel.hpp"
#include "core/process.hpp"
#include "dist/node.hpp"
#include "obs/snapshot.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "rmi/compute_server.hpp"

namespace {

const char* state_name(dpn::obs::ProcessState state) {
  switch (state) {
    case dpn::obs::ProcessState::kIdle:
      return "idle";
    case dpn::obs::ProcessState::kRunning:
      return "run";
    case dpn::obs::ProcessState::kBlockedReading:
      return "rd-blk";
    case dpn::obs::ProcessState::kBlockedWriting:
      return "wr-blk";
    case dpn::obs::ProcessState::kPaused:
      return "pause";
    case dpn::obs::ProcessState::kFinished:
      return "done";
    case dpn::obs::ProcessState::kRunnable:
      return "ready";
  }
  return "?";
}

void draw(const dpn::obs::NetworkSnapshot& snap, unsigned frame) {
  std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
  std::printf("dpn_top -- frame %u (snapshot v%u)\n", frame,
              static_cast<unsigned>(snap.version));
  std::printf("live: %" PRIu64 "  remote tx/rx: %" PRIu64 "/%" PRIu64
              " B  growth: %" PRIu64 "\n",
              snap.live, snap.remote_bytes_sent, snap.remote_bytes_received,
              snap.growth_events);
  std::printf("trace: recorded=%" PRIu64 " dropped=%" PRIu64
              "  faults: retries=%" PRIu64 " lost=%" PRIu64 "\n",
              snap.trace_recorded, snap.trace_dropped, snap.connect_retries,
              snap.workers_lost);
  if (!snap.task_rtt.empty()) {
    std::printf("task rtt  p50/p95/p99: %" PRIu64 "/%" PRIu64 "/%" PRIu64
                " us  (n=%" PRIu64 ")\n",
                snap.task_rtt.p50_ns() / 1000, snap.task_rtt.p95_ns() / 1000,
                snap.task_rtt.p99_ns() / 1000, snap.task_rtt.count);
  }
  if (!snap.connect_latency.empty()) {
    std::printf("connect   p50/p95/p99: %" PRIu64 "/%" PRIu64 "/%" PRIu64
                " us  (n=%" PRIu64 ")\n",
                snap.connect_latency.p50_ns() / 1000,
                snap.connect_latency.p95_ns() / 1000,
                snap.connect_latency.p99_ns() / 1000,
                snap.connect_latency.count);
  }
  if (snap.mux_connections > 0) {
    // Version-5 transport plane: how many logical channels ride each TCP
    // connection, and how long writers sat waiting for credit.
    std::printf("mux: %" PRIu64 " conn  %" PRIu64 "/%" PRIu64
                " streams (%.1f per conn)  credit stalls: %" PRIu64
                " (%" PRIu64 " us)\n",
                snap.mux_connections, snap.mux_streams_active,
                snap.mux_streams_total,
                static_cast<double>(snap.mux_streams_active) /
                    static_cast<double>(snap.mux_connections),
                snap.mux_credit_stalls, snap.mux_credit_stall_ns / 1000);
  }
  std::printf("\n%-24s %-7s %12s\n", "PROCESS", "STATE", "STEPS");
  for (const auto& process : snap.processes) {
    std::printf("%-24.24s %-7s %12" PRIu64 "\n", process.name.c_str(),
                state_name(process.state), process.steps);
  }
  std::printf("\n%-16s %10s %12s %12s %10s %10s\n", "CHANNEL", "BUF/CAP",
              "TOKENS-W", "TOKENS-R", "rWAIT p95", "wWAIT p95");
  for (const auto& channel : snap.channels) {
    char occupancy[24];
    std::snprintf(occupancy, sizeof occupancy, "%" PRIu64 "/%" PRIu64,
                  channel.buffered, channel.capacity);
    std::printf("%-16.16s %10s %12" PRIu64 " %12" PRIu64 " %8" PRIu64
                "us %8" PRIu64 "us\n",
                channel.label.empty() ? "?" : channel.label.c_str(), occupancy,
                channel.tokens_written, channel.tokens_read,
                channel.read_block.p95_ns() / 1000,
                channel.write_block.p95_ns() / 1000);
  }
  std::fflush(stdout);
}

int watch(dpn::rmi::ServerHandle& handle, unsigned interval_ms,
          unsigned frames) {
  auto stream = handle.stats_stream(std::chrono::milliseconds{interval_ms},
                                    frames);
  unsigned frame = 0;
  while (auto snap = stream.next()) {
    draw(*snap, ++frame);
  }
  std::printf("\nstream ended after %u frame(s)\n", frame);
  return frame > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpn;
  bool demo = false;
  std::string host;
  std::uint16_t port = 0;
  unsigned interval_ms = 1000;
  unsigned frames = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg.rfind("--interval=", 0) == 0) {
      interval_ms = static_cast<unsigned>(std::atoi(arg.c_str() + 11));
    } else if (arg.rfind("--frames=", 0) == 0) {
      frames = static_cast<unsigned>(std::atoi(arg.c_str() + 9));
    } else if (host.empty()) {
      host = arg;
    } else {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
    }
  }
  if (!demo && (host.empty() || port == 0)) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> [--interval=ms] [--frames=N]\n"
                 "       %s --demo [--interval=ms] [--frames=N]\n",
                 argv[0], argv[0]);
    return 2;
  }

  if (!demo) {
    auto local = dist::NodeContext::create();
    rmi::ServerHandle handle{{host, port}, local};
    return watch(handle, interval_ms, frames);
  }

  // Demo: one in-process server hosting the middle of a pipeline; both
  // cut channels become real localhost sockets when the Scale ships.
  rmi::ComputeServer server{"dpn-top-demo"};
  auto local = dist::NodeContext::create();
  const std::size_t cap = 8192;
  auto upstream = std::make_shared<core::Channel>(cap, "up");
  auto downstream = std::make_shared<core::Channel>(cap, "down");

  auto shipped = std::make_shared<core::CompositeProcess>();
  shipped->add(std::make_shared<processes::Scale>(upstream->input(),
                                                  downstream->output(), 3));

  std::FILE* devnull = std::fopen("/dev/null", "w");
  auto staying = std::make_shared<core::CompositeProcess>();
  staying->add(std::make_shared<processes::Sequence>(0, upstream->output()));
  staying->add(std::make_shared<processes::Print>(
      downstream->input(), 0, "", devnull ? devnull : stdout));

  rmi::ServerHandle handle{{"127.0.0.1", server.port()}, local};
  auto hosted = handle.submit(shipped);
  std::jthread driver{[&staying] {
    try {
      staying->run();
    } catch (const std::exception&) {
      // Torn down by abort() below; expected.
    }
  }};

  const int status = watch(handle, interval_ms, frames);
  hosted.abort();
  driver.join();
  server.stop();
  if (devnull != nullptr) std::fclose(devnull);
  return status;
}
