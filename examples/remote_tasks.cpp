// The compute server's second verb (paper Section 4.1):
//
//   Object run(Task)  -- ship a task, run it remotely, return the result.
//
// Where run(Runnable) hosts long-lived process graphs, run(Task) is
// one-shot remote evaluation.  This example farms factor-search batches
// (Section 5.2's worker tasks) over a pool of compute servers found via
// the registry, with a trivial round-robin instead of a process network
// -- the contrast that motivates MetaDynamic.
//
//   ./remote_tasks [servers] [tasks] [prime_bits]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "factor/factor.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const std::size_t n_servers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::uint64_t tasks =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 48;
  const std::size_t bits = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 96;

  rmi::Registry registry{0};
  std::vector<std::unique_ptr<rmi::ComputeServer>> servers;
  for (std::size_t i = 0; i < n_servers; ++i) {
    servers.push_back(
        std::make_unique<rmi::ComputeServer>("task-server-" +
                                             std::to_string(i)));
    servers.back()->register_with("127.0.0.1", registry.port());
  }
  std::printf("registry on port %u, %zu compute servers registered\n",
              registry.port(), n_servers);

  const auto problem = factor::FactorProblem::generate(7, bits, tasks);
  std::printf("searching %llu batches for a factor of a %zu-bit product\n",
              static_cast<unsigned long long>(tasks), 2 * bits);

  auto node = dist::NodeContext::create();
  std::vector<rmi::ServerHandle> handles;
  rmi::RegistryClient client{"127.0.0.1", registry.port()};
  for (const std::string& name : client.list()) {
    handles.push_back(
        rmi::ServerHandle::lookup("127.0.0.1", registry.port(), name, node));
  }

  factor::FactorProducerTask producer{problem.n, tasks, 32,
                                      /*announce=*/false};
  Stopwatch watch;
  std::size_t sent = 0;
  std::optional<bigint::BigInt> found;
  // Round-robin submit() keeps one task in flight per server; each
  // TaskFuture is collected just before its server is reused, so the pool
  // works in parallel without a process network -- the contrast that
  // motivates MetaDynamic.
  std::vector<rmi::TaskFuture> in_flight{handles.size()};
  auto collect = [&](rmi::TaskFuture& future) {
    if (!future.valid()) return;
    auto result =
        std::dynamic_pointer_cast<factor::FactorResultTask>(future.get());
    if (result && result->found) found = result->p;
  };
  for (;;) {
    auto task = producer.run();
    if (!task) break;
    rmi::TaskFuture& slot = in_flight[sent % handles.size()];
    collect(slot);
    slot = handles[sent % handles.size()].submit(
        std::dynamic_pointer_cast<core::Task>(task));
    ++sent;
  }
  for (auto& future : in_flight) collect(future);
  const double elapsed = watch.elapsed_seconds();

  std::printf("%zu tasks executed remotely in %.3f s (%.0f tasks/s)\n",
              sent, elapsed, static_cast<double>(sent) / elapsed);

  // remote_bytes_* count channel frames only; a pure task farm ships its
  // work over the RMI op sockets, so zero here means "no channels cut".
  const obs::NetworkSnapshot fleet = rmi::fleet_stats(handles);
  std::printf(
      "fleet: %llu hosted processes live, %llu channel bytes in flight "
      "(tasks travel on the RMI sockets, not channels)\n",
      static_cast<unsigned long long>(fleet.live),
      static_cast<unsigned long long>(fleet.remote_bytes_sent +
                                      fleet.remote_bytes_received));
  if (found && *found == problem.p) {
    std::printf("factor found: P = %s\n", found->to_decimal().c_str());
  } else {
    std::printf("factor NOT found -- unexpected\n");
    return 1;
  }
  for (auto& server : servers) server->stop();
  return 0;
}
