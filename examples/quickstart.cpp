// Quickstart: the Figure 1 pipeline -- Producer -> Worker -> Consumer --
// built from the generic task framework (paper Section 5.1).
//
// The computation lives in Task objects: the producer task yields work
// items, each work item computes its square, and the consumer observer
// prints results.  Swap the single worker for meta_static/meta_dynamic
// (see parallel_factor.cpp) without touching any task code.
//
//   ./quickstart [count]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/network.hpp"
#include "par/generic.hpp"

namespace {

using dpn::par::Task;

/// Work item: squares its id.
class SquareTask final : public Task {
 public:
  SquareTask() = default;
  explicit SquareTask(std::int64_t id) : id_(id) {}

  std::shared_ptr<Task> run() override;

  std::string type_name() const override { return "quickstart.Square"; }
  void write_fields(dpn::serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
  }
  static std::shared_ptr<SquareTask> read_object(
      dpn::serial::ObjectInputStream& in) {
    auto task = std::make_shared<SquareTask>();
    task->id_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
};

/// Result: prints itself when the consumer runs it.
class SquareResult final : public Task {
 public:
  SquareResult() = default;
  SquareResult(std::int64_t id, std::int64_t square)
      : id_(id), square_(square) {}

  std::shared_ptr<Task> run() override {
    std::printf("%lld^2 = %lld\n", static_cast<long long>(id_),
                static_cast<long long>(square_));
    return nullptr;
  }

  std::string type_name() const override { return "quickstart.Result"; }
  void write_fields(dpn::serial::ObjectOutputStream& out) const override {
    out.write_i64(id_);
    out.write_i64(square_);
  }
  static std::shared_ptr<SquareResult> read_object(
      dpn::serial::ObjectInputStream& in) {
    auto task = std::make_shared<SquareResult>();
    task->id_ = in.read_i64();
    task->square_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t id_ = 0;
  std::int64_t square_ = 0;
};

std::shared_ptr<Task> SquareTask::run() {
  return std::make_shared<SquareResult>(id_, id_ * id_);
}

/// Producer task: yields SquareTasks 0..count-1, then null.
class CountTask final : public Task {
 public:
  CountTask() = default;
  explicit CountTask(std::int64_t count) : remaining_(count) {}

  std::shared_ptr<Task> run() override {
    if (remaining_-- <= 0) return nullptr;
    return std::make_shared<SquareTask>(next_++);
  }

  std::string type_name() const override { return "quickstart.Count"; }
  void write_fields(dpn::serial::ObjectOutputStream& out) const override {
    out.write_i64(next_);
    out.write_i64(remaining_);
  }
  static std::shared_ptr<CountTask> read_object(
      dpn::serial::ObjectInputStream& in) {
    auto task = std::make_shared<CountTask>();
    task->next_ = in.read_i64();
    task->remaining_ = in.read_i64();
    return task;
  }

 private:
  std::int64_t next_ = 0;
  std::int64_t remaining_ = 0;
};

[[maybe_unused]] const bool kRegistered =
    dpn::serial::register_type<SquareTask>("quickstart.Square") &&
    dpn::serial::register_type<SquareResult>("quickstart.Result") &&
    dpn::serial::register_type<CountTask>("quickstart.Count");

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t count = argc > 1 ? std::atoll(argv[1]) : 10;

  // Producer -> Worker -> Consumer, each on its own thread, connected by
  // bounded FIFO channels with blocking reads (Kahn semantics).  Each
  // connect() creates one channel and hands its endpoints to the
  // neighbouring processes, so the code reads like Figure 1.
  using namespace dpn;
  core::Network network;
  std::shared_ptr<core::ChannelInputStream> tasks_in;
  network.connect(
      [&](auto out) {
        return std::make_shared<par::Producer>(
            std::make_shared<CountTask>(count), std::move(out));
      },
      [&](auto in) { tasks_in = std::move(in); },
      {.capacity = 4096, .label = "tasks"});
  network.connect(
      [&](auto out) {
        return std::make_shared<par::Worker>(std::move(tasks_in),
                                             std::move(out));
      },
      [&](auto in) {
        return std::make_shared<par::Consumer>(std::move(in), 0);
      },
      {.capacity = 4096, .label = "results"});
  network.run();
  std::printf("done: %lld tasks through the pipeline\n",
              static_cast<long long>(count));
  return 0;
}
