// A standalone name registry (paper Section 4.1's RMI registry stand-in):
// compute servers register here; clients look them up by name.
//
//   ./pn_registry [port]
//
// Stop with SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "rmi/registry.hpp"
#include "support/sync.hpp"

namespace {
dpn::Event g_stop;
void handle_signal(int) { g_stop.set(); }
}  // namespace

int main(int argc, char** argv) {
  const auto port =
      static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 0);
  dpn::rmi::Registry registry{port};
  std::printf("registry listening on port %u\n", registry.port());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  g_stop.wait();

  std::printf("registry shutting down; entries at exit:\n");
  for (const auto& [name, endpoint] : registry.entries()) {
    std::printf("  %s -> %s:%u\n", name.c_str(), endpoint.host.c_str(),
                endpoint.port);
  }
  registry.stop();
  return 0;
}
