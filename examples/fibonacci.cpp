// The Fibonacci process network of paper Figures 2 and 6, reproduced
// channel-for-channel: two Cons processes seed the feedback cycle and
// then splice themselves out of the graph (Figures 9/10), leaving the
// steady-state network of Figure 9.
//
//   ./fibonacci [count]

#include <cstdio>
#include <cstdlib>

#include "core/network.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const long count = argc > 1 ? std::atol(argv[1]) : 20;

  core::Network network;
  // Channel names follow Figure 6.
  auto ab = network.make_channel(4096, "ab");
  auto be = network.make_channel(4096, "be");
  auto cd = network.make_channel(4096, "cd");
  auto df = network.make_channel(4096, "df");
  auto ed = network.make_channel(4096, "ed");
  auto eg = network.make_channel(4096, "eg");
  auto fg = network.make_channel(4096, "fg");
  auto fh = network.make_channel(4096, "fh");
  auto gb = network.make_channel(4096, "gb");

  auto cons_b = std::make_shared<processes::Cons>(ab->input(), gb->input(),
                                                  be->output());
  auto cons_d = std::make_shared<processes::Cons>(cd->input(), ed->input(),
                                                  df->output());

  network.add(std::make_shared<processes::Constant>(1, ab->output(), 1));
  network.add(cons_b);
  network.add(std::make_shared<processes::Duplicate>(be->input(),
                                                     ed->output(),
                                                     eg->output()));
  network.add(std::make_shared<processes::Add>(eg->input(), fg->input(),
                                               gb->output()));
  network.add(std::make_shared<processes::Constant>(1, cd->output(), 1));
  network.add(cons_d);
  network.add(std::make_shared<processes::Duplicate>(df->input(),
                                                     fh->output(),
                                                     fg->output()));
  network.add(std::make_shared<processes::Print>(fh->input(), count, "fib"));
  network.run();

  std::printf("cons_b spliced out: %s\ncons_d spliced out: %s\n",
              cons_b->spliced_out() ? "yes" : "no",
              cons_d->spliced_out() ? "yes" : "no");
  return 0;
}
