// The Fibonacci process network of paper Figures 2 and 6, reproduced
// channel-for-channel: two Cons processes seed the feedback cycle and
// then splice themselves out of the graph (Figures 9/10), leaving the
// steady-state network of Figure 9.
//
//   ./fibonacci [count]

#include <cstdio>
#include <cstdlib>

#include "core/network.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const long count = argc > 1 ? std::atol(argv[1]) : 20;

  core::Network network;
  // Channel names follow Figure 6.  The feedback edges of the cycle are
  // created explicitly (a cycle's channels need names anyway); the chains
  // that start or end the graph are wired with connect().
  auto be = network.make_channel({.capacity = 4096, .label = "be"});
  auto df = network.make_channel({.capacity = 4096, .label = "df"});
  auto ed = network.make_channel({.capacity = 4096, .label = "ed"});
  auto eg = network.make_channel({.capacity = 4096, .label = "eg"});
  auto fg = network.make_channel({.capacity = 4096, .label = "fg"});
  auto gb = network.make_channel({.capacity = 4096, .label = "gb"});

  std::shared_ptr<processes::Cons> cons_b, cons_d;
  // ab: the seed Constant feeds Cons_b, which splices in the gb feedback.
  network.connect(
      [&](auto out) {
        return std::make_shared<processes::Constant>(1, std::move(out), 1);
      },
      [&](auto in) {
        cons_b = std::make_shared<processes::Cons>(std::move(in), gb->input(),
                                                   be->output());
        return cons_b;
      },
      {.capacity = 4096, .label = "ab"});
  // cd: the second seed Constant feeds Cons_d.
  network.connect(
      [&](auto out) {
        return std::make_shared<processes::Constant>(1, std::move(out), 1);
      },
      [&](auto in) {
        cons_d = std::make_shared<processes::Cons>(std::move(in), ed->input(),
                                                   df->output());
        return cons_d;
      },
      {.capacity = 4096, .label = "cd"});
  // fh: Duplicate(f) emits the printable stream.
  network.connect(
      [&](auto out) {
        return std::make_shared<processes::Duplicate>(
            df->input(), std::move(out), fg->output());
      },
      [&](auto in) {
        return std::make_shared<processes::Print>(std::move(in), count, "fib");
      },
      {.capacity = 4096, .label = "fh"});
  network.add(std::make_shared<processes::Duplicate>(be->input(),
                                                     ed->output(),
                                                     eg->output()));
  network.add(std::make_shared<processes::Add>(eg->input(), fg->input(),
                                               gb->output()));
  network.run();

  std::printf("cons_b spliced out: %s\ncons_d spliced out: %s\n",
              cons_b->spliced_out() ? "yes" : "no",
              cons_d->spliced_out() ? "yes" : "no");
  return 0;
}
