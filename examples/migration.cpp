// Live process migration -- the paper's Section 6.1 future work, working:
// "making it possible to re-distribute processes after execution has
// already begun, with the possibility that processes will be moved more
// than once."
//
// A throttled source streams samples to a local consumer.  Mid-stream it
// is parked at a step boundary and shipped to a compute server -- its
// channel reconnects as a socket automatically -- and the consumer
// receives every element exactly once, in order, without ever being
// paused itself.  (Repeated hops, B -> C with the Section 4.3 redirect,
// are exercised in tests/migrate_test.cpp.)
//
//   ./migration [elements]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/channel.hpp"
#include "io/data.hpp"
#include "processes/basic.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/migrate.hpp"

namespace {

/// A Sequence with a per-element delay so there is time to migrate it.
class SlowSource final : public dpn::core::IterativeProcess {
 public:
  SlowSource() = default;
  SlowSource(std::int64_t start,
             std::shared_ptr<dpn::core::ChannelOutputStream> out,
             long iterations, std::int64_t delay_us)
      : IterativeProcess(iterations), next_(start), delay_us_(delay_us) {
    track_output(std::move(out));
  }

  std::string type_name() const override { return "example.SlowSource"; }
  void write_fields(dpn::serial::ObjectOutputStream& out) const override {
    write_base(out);
    out.write_i64(next_);
    out.write_i64(delay_us_);
  }
  static std::shared_ptr<SlowSource> read_object(
      dpn::serial::ObjectInputStream& in) {
    auto p = std::make_shared<SlowSource>();
    p->read_base(in);
    p->next_ = in.read_i64();
    p->delay_us_ = in.read_i64();
    return p;
  }

 protected:
  void step() override {
    dpn::io::DataOutputStream out{output(0)};
    out.write_i64(next_++);
    std::this_thread::sleep_for(std::chrono::microseconds{delay_us_});
  }

 private:
  std::int64_t next_ = 0;
  std::int64_t delay_us_ = 200;
};

[[maybe_unused]] const bool kRegistered =
    dpn::serial::register_type<SlowSource>("example.SlowSource");

}  // namespace

int main(int argc, char** argv) {
  using namespace dpn;
  const long total = argc > 1 ? std::atol(argv[1]) : 600;

  auto node_a = dist::NodeContext::create();
  rmi::ComputeServer server_b{"server-B"};

  auto ch = std::make_shared<core::Channel>(4096, "stream");
  auto source = std::make_shared<SlowSource>(0, ch->output(), total, 200);

  std::int64_t received = 0;
  bool in_order = true;
  std::jthread consumer{[&] {
    io::DataInputStream in{ch->input()};
    try {
      for (;;) {
        const std::int64_t value = in.read_i64();
        if (value != received) in_order = false;
        ++received;
      }
    } catch (const IoError&) {
    }
  }};

  std::jthread local_run{[&] { source->run(); }};
  while (received < total / 4) std::this_thread::yield();
  std::printf("phase 1: %lld elements produced locally on A\n",
              static_cast<long long>(received));

  rmi::ServerHandle to_b{rmi::Endpoint{"127.0.0.1", server_b.port()},
                         node_a};
  if (!rmi::migrate(source, to_b)) {
    std::printf("source finished before migration\n");
    return 1;
  }
  local_run.join();
  std::printf("phase 2: source migrated to server B mid-stream "
              "(channel reconnected as a socket)\n");

  while (received < total / 2) std::this_thread::yield();
  std::printf("phase 3: %lld elements received, now produced on B\n",
              static_cast<long long>(received));
  consumer.join();

  std::printf("done: %lld/%ld elements, order %s\n",
              static_cast<long long>(received), total,
              in_order ? "preserved" : "VIOLATED");
  server_b.stop();
  return (received == total && in_order) ? 0 : 1;
}
