// The paper's motivating embarrassingly-parallel example (Section 5): an
// image divided into 16x16 blocks, each compressed independently by
// parallel workers, results collected *in order* into an archive.
//
// Demonstrates the schemas' central guarantee: pipeline, MetaStatic and
// MetaDynamic produce byte-identical archives -- the consumer cannot tell
// how many workers there were or how tasks were balanced.
//
//   ./image_pipeline [width] [height] [workers]

#include <cstdio>
#include <cstdlib>

#include "image/codec.hpp"
#include "image/tasks.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const std::size_t width = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const std::size_t height =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 384;
  const std::size_t workers =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  const image::Image img = image::synthetic_image(width, height, 42, 0.97);
  std::printf("image: %zux%zu (%zu bytes), %zu blocks of 16x16\n", width,
              height, img.pixels().size(),
              image::block_grid(img).size());

  Stopwatch watch;
  const ByteVector reference = image::compress_image(img);
  std::printf("sequential:        %8.3f ms -> %zu bytes (%.1f%%)\n",
              watch.elapsed_millis(), reference.size(),
              100.0 * static_cast<double>(reference.size()) /
                  static_cast<double>(img.pixels().size()));

  watch.reset();
  const ByteVector via_static =
      image::compress_image_parallel(img, workers, /*dynamic=*/false);
  std::printf("static  (%zu wkrs): %8.3f ms -> %zu bytes, %s\n", workers,
              watch.elapsed_millis(), via_static.size(),
              via_static == reference ? "byte-identical" : "MISMATCH");

  watch.reset();
  const ByteVector via_dynamic =
      image::compress_image_parallel(img, workers, /*dynamic=*/true);
  std::printf("dynamic (%zu wkrs): %8.3f ms -> %zu bytes, %s\n", workers,
              watch.elapsed_millis(), via_dynamic.size(),
              via_dynamic == reference ? "byte-identical" : "MISMATCH");

  const image::Image restored =
      image::decompress_image({reference.data(), reference.size()});
  std::printf("lossless round trip: %s\n",
              restored == img ? "verified" : "FAILED");
  return (via_static == reference && via_dynamic == reference &&
          restored == img)
             ? 0
             : 1;
}
