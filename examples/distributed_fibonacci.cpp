// The distributed Fibonacci of paper Figures 14 and 15: the program graph
// is created on "server A" and parts of it are shipped -- live channel
// endpoints and all -- to generic compute servers found through the
// registry.  The socket connections that keep the cut channels flowing
// are established automatically by object serialization (Section 4.2),
// and when a subgraph is shipped a second time, the in-band redirect of
// Section 4.3 connects the new host directly to its peer, bypassing the
// abandoned middleman.
//
// All "servers" run inside this one OS process, but every byte between
// them crosses real TCP sockets on localhost.
//
//   ./distributed_fibonacci [count]

#include <cstdio>
#include <cstdlib>

#include "core/process.hpp"
#include "dist/ship.hpp"
#include "processes/arith.hpp"
#include "processes/basic.hpp"
#include "processes/copy.hpp"
#include "rmi/compute_server.hpp"
#include "rmi/registry.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const long count = argc > 1 ? std::atol(argv[1]) : 20;

  // Infrastructure: a registry and two generic compute servers, as the
  // paper's Section 4.1 deployment would have on three machines.
  rmi::Registry registry{0};
  rmi::ComputeServer server_b{"server-B"};
  rmi::ComputeServer server_c{"server-C"};
  server_b.register_with("127.0.0.1", registry.port());
  server_c.register_with("127.0.0.1", registry.port());
  std::printf("registry on port %u; servers: B=%u C=%u\n", registry.port(),
              server_b.port(), server_c.port());

  // "Server A" is this program.
  auto node_a = dist::NodeContext::create();

  // Build the whole Figure 2 graph on server A (the Figure 6 code).
  const std::size_t cap = 4096;
  auto ab = std::make_shared<core::Channel>(cap, "ab");
  auto be = std::make_shared<core::Channel>(cap, "be");
  auto cd = std::make_shared<core::Channel>(cap, "cd");
  auto df = std::make_shared<core::Channel>(cap, "df");
  auto ed = std::make_shared<core::Channel>(cap, "ed");
  auto eg = std::make_shared<core::Channel>(cap, "eg");
  auto fg = std::make_shared<core::Channel>(cap, "fg");
  auto fh = std::make_shared<core::Channel>(cap, "fh");
  auto gb = std::make_shared<core::Channel>(cap, "gb");

  // Partition per Figure 15: the printing tail goes to server B, the
  // lower generator half to server C, the rest stays here on A.
  auto tail = std::make_shared<core::CompositeProcess>();
  tail->add(std::make_shared<processes::Print>(fh->input(), count, "fib"));

  auto lower = std::make_shared<core::CompositeProcess>();
  lower->add(std::make_shared<processes::Constant>(1, cd->output(), 1));
  lower->add(std::make_shared<processes::Cons>(cd->input(), ed->input(),
                                               df->output()));
  lower->add(std::make_shared<processes::Duplicate>(df->input(), fh->output(),
                                                    fg->output()));

  auto staying = std::make_shared<core::CompositeProcess>();
  staying->add(std::make_shared<processes::Constant>(1, ab->output(), 1));
  staying->add(std::make_shared<processes::Cons>(ab->input(), gb->input(),
                                                 be->output()));
  staying->add(std::make_shared<processes::Duplicate>(
      be->input(), ed->output(), eg->output()));
  staying->add(std::make_shared<processes::Add>(eg->input(), fg->input(),
                                                gb->output()));

  // Ship the tail to B: channel fh becomes an A->B socket...
  auto handle_b =
      rmi::ServerHandle::lookup("127.0.0.1", registry.port(), "server-B",
                                node_a);
  handle_b.submit(tail);
  std::printf("shipped the Print subgraph to server B\n");

  // ... then ship the lower half to C: its fh output endpoint is already
  // remote (pointing at B), so serialization performs the Section 4.3
  // redirect -- C will talk to B directly, not through A.
  auto handle_c =
      rmi::ServerHandle::lookup("127.0.0.1", registry.port(), "server-C",
                                node_a);
  handle_c.submit(lower);
  std::printf("shipped the generator subgraph to server C (fh redirected)\n");

  // Run A's share; the graph terminates when B's Print hits its limit and
  // the close cascade crosses both sockets back to us.
  staying->run();

  server_b.stop();
  server_c.stop();
  std::printf("all servers drained; %ld Fibonacci numbers printed on B\n",
              count);
  return 0;
}
