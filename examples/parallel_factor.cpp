// The parallel weak-RSA-key search of paper Section 5.2: brute force the
// factorization N = P * (P + D) by scanning small even differences D,
// split into batches of 32 and distributed over parallel workers with
// on-demand (MetaDynamic) or round-robin (MetaStatic) load balancing.
//
// The heterogeneous cluster of the paper (34 CPUs in five speed classes)
// is simulated: each worker is throttled to its class speed, so the
// static-vs-dynamic behaviour of Figures 19/20 is visible on one machine.
//
//   ./parallel_factor [workers] [tasks] [prime_bits] [static|dynamic]
//                     [--trace=out.json] [--chaos[=K]]
//
// With --trace=FILE the run records runtime events (channel ops, task
// dispatch, monitor decisions) into the obs ring buffer and exports them
// as Chrome trace_event JSON (load in chrome://tracing / ui.perfetto.dev).
// With --chaos one worker is killed mid-task after K completed batches
// (default 2); the dynamic schema's recovery ledger re-issues its
// in-flight work to the survivors and the run still factors N
// (docs/FAULTS.md).  Either way it finishes by printing the
// Network::snapshot() view of the graph: per-channel traffic, blocked
// time, batching counters -- and, after a chaos run, the fault counters.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "cluster/cluster.hpp"
#include "factor/factor.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "par/schema.hpp"
#include "support/stopwatch.hpp"

namespace {

/// A worker that completes `crash_after` batches and then dies mid-task
/// (after reading, before replying) -- the worst spot, since the task is
/// dispatched but unacknowledged and must be re-issued by the ledger.
class ChaosWorker final : public dpn::core::IterativeProcess {
 public:
  ChaosWorker(std::shared_ptr<dpn::core::ChannelInputStream> in,
              std::shared_ptr<dpn::core::ChannelOutputStream> out,
              long crash_after)
      : crash_after_(crash_after) {
    track_input(std::move(in));
    track_output(std::move(out));
  }

  std::string type_name() const override { return "example.ChaosWorker"; }
  void write_fields(dpn::serial::ObjectOutputStream&) const override {
    throw dpn::SerializationError{"ChaosWorker is example-local"};
  }

 protected:
  void step() override {
    dpn::io::DataInputStream in{input(0)};
    auto task = dpn::par::read_task(in);
    if (++completed_ > crash_after_) {
      throw std::runtime_error{"chaos: injected worker crash"};
    }
    auto result = task->run();
    dpn::io::DataOutputStream out{output(0)};
    dpn::par::write_task(out, result);
  }

 private:
  long crash_after_;
  long completed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dpn;
  const char* trace_file = nullptr;
  long chaos = -1;  // < 0: off; otherwise batches the victim completes
  for (int i = 1; i < argc;) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_file = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = 2;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0) {
      chaos = std::strtol(argv[i] + 8, nullptr, 10);
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  }
  const std::size_t workers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::uint64_t tasks = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::size_t bits = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 96;
  const bool dynamic = argc > 4 ? std::strcmp(argv[4], "static") != 0 : true;

  const auto problem = factor::FactorProblem::generate(
      /*seed=*/2003, bits, tasks);
  std::printf("N = %s\nsearching %llu batches of 32 even differences, "
              "%zu workers, %s balancing\n",
              problem.n.to_decimal().c_str(),
              static_cast<unsigned long long>(tasks), workers,
              dynamic ? "dynamic" : "static");

  // Simulated heterogeneous fleet: fastest classes first (Table 1).
  const auto speeds = cluster::fleet_speeds();
  const double task_seconds = 0.002;  // nominal class-C cost per batch
  auto factory = cluster::throttled_factory(speeds, task_seconds);

  if (chaos >= 0) {
    if (!dynamic) {
      std::fprintf(stderr,
                   "--chaos needs the dynamic schema: only meta_dynamic "
                   "carries the recovery ledger\n");
      return 2;
    }
    // Deterministic kill: worker 1 (or 0 when it is the only one) dies
    // mid-task after `chaos` completed batches.
    const std::size_t victim = workers > 1 ? 1 : 0;
    std::printf("chaos: worker %zu will crash after %ld batches\n", victim,
                chaos);
    auto inner = factory;
    factory = [inner, victim,
               chaos](std::size_t index,
                      std::shared_ptr<core::ChannelInputStream> in,
                      std::shared_ptr<core::ChannelOutputStream> out)
        -> std::shared_ptr<core::Process> {
      if (index == victim) {
        return std::make_shared<ChaosWorker>(std::move(in), std::move(out),
                                             chaos);
      }
      return inner(index, std::move(in), std::move(out));
    };
  }

  std::mutex mutex;
  std::optional<bigint::BigInt> found;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<factor::FactorResultTask>(task);
    if (result && result->found) {
      std::scoped_lock lock{mutex};
      found = result->p;
    }
  };

  if (trace_file != nullptr) obs::Tracer::instance().enable();

  // Figure 1 built with the connect() builder: Producer -> tasks ->
  // schema -> results -> Consumer, all channels watched by the network.
  Stopwatch watch;
  core::Network network;
  std::shared_ptr<core::ChannelInputStream> tasks_in;
  network.connect(
      [&](auto out) {
        return std::make_shared<par::Producer>(
            std::make_shared<factor::FactorProducerTask>(problem.n, tasks),
            std::move(out));
      },
      [&](auto in) { tasks_in = std::move(in); },
      {.label = "pipeline.tasks"});
  network.connect(
      [&](auto out) {
        const par::SchemaOptions schema_options{.watch = &network};
        return dynamic ? par::meta_dynamic(std::move(tasks_in),
                                           std::move(out), workers, factory,
                                           schema_options)
                       : par::meta_static(std::move(tasks_in), std::move(out),
                                          workers, factory, schema_options);
      },
      [&](auto in) {
        return std::make_shared<par::Consumer>(std::move(in), 0, observer);
      },
      {.label = "pipeline.results"});
  // Write the trace on every exit path: a trace of the run that *failed*
  // is the one worth having, and an unflushed ofstream at `return 1`
  // used to leave a truncated/empty JSON behind.
  const auto write_trace = [&] {
    if (trace_file == nullptr) return;
    auto& tracer = obs::Tracer::instance();
    tracer.disable();
    std::ofstream out{trace_file};
    out << tracer.chrome_trace_json();
    out.close();
    std::printf("trace: %llu events recorded, newest %zu written to %s\n",
                static_cast<unsigned long long>(tracer.recorded()),
                tracer.drain().size(), trace_file);
  };
  try {
    network.run();
  } catch (const WorkerLost& e) {
    // Single-worker chaos: nobody is left to re-issue to; fail loudly.
    std::printf("\nrun failed: %s\n", e.what());
    write_trace();
    return 1;
  }
  const double elapsed = watch.elapsed_seconds();

  // The runtime's own account of the run: per-channel traffic, blocked
  // time, batching, and per-process step counts.
  std::printf("\n-- network snapshot --\n%s\n",
              network.snapshot().to_string().c_str());

  if (chaos >= 0) {
    const auto& fs = fault::stats();
    std::printf("-- fault counters --\nworkers lost: %llu, tasks re-issued: "
                "%llu\n\n",
                static_cast<unsigned long long>(
                    fs.workers_lost.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    fs.tasks_reissued.load(std::memory_order_relaxed)));
  }

  write_trace();

  if (found) {
    std::printf("factored in %.3f s:\n  P = %s (expected %s)\n", elapsed,
                found->to_decimal().c_str(), problem.p.to_decimal().c_str());
  } else {
    std::printf("no factor found in %.3f s (search space too small?)\n",
                elapsed);
    return 1;
  }
  return *found == problem.p ? 0 : 1;
}
