// The parallel weak-RSA-key search of paper Section 5.2: brute force the
// factorization N = P * (P + D) by scanning small even differences D,
// split into batches of 32 and distributed over parallel workers with
// on-demand (MetaDynamic) or round-robin (MetaStatic) load balancing.
//
// The heterogeneous cluster of the paper (34 CPUs in five speed classes)
// is simulated: each worker is throttled to its class speed, so the
// static-vs-dynamic behaviour of Figures 19/20 is visible on one machine.
//
//   ./parallel_factor [workers] [tasks] [prime_bits] [static|dynamic]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "cluster/cluster.hpp"
#include "factor/factor.hpp"
#include "par/schema.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace dpn;
  const std::size_t workers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::uint64_t tasks = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::size_t bits = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 96;
  const bool dynamic = argc > 4 ? std::strcmp(argv[4], "static") != 0 : true;

  const auto problem = factor::FactorProblem::generate(
      /*seed=*/2003, bits, tasks);
  std::printf("N = %s\nsearching %llu batches of 32 even differences, "
              "%zu workers, %s balancing\n",
              problem.n.to_decimal().c_str(),
              static_cast<unsigned long long>(tasks), workers,
              dynamic ? "dynamic" : "static");

  // Simulated heterogeneous fleet: fastest classes first (Table 1).
  const auto speeds = cluster::fleet_speeds();
  const double task_seconds = 0.002;  // nominal class-C cost per batch
  auto factory = cluster::throttled_factory(speeds, task_seconds);

  std::mutex mutex;
  std::optional<bigint::BigInt> found;
  auto observer = [&](const std::shared_ptr<core::Task>& task) {
    auto result = std::dynamic_pointer_cast<factor::FactorResultTask>(task);
    if (result && result->found) {
      std::scoped_lock lock{mutex};
      found = result->p;
    }
  };

  Stopwatch watch;
  auto graph = par::pipeline(
      std::make_shared<factor::FactorProducerTask>(problem.n, tasks),
      observer, [&](auto in, auto out) {
        return dynamic
                   ? par::meta_dynamic(std::move(in), std::move(out), workers,
                                       factory)
                   : par::meta_static(std::move(in), std::move(out), workers,
                                      factory);
      });
  graph->run();
  const double elapsed = watch.elapsed_seconds();

  if (found) {
    std::printf("factored in %.3f s:\n  P = %s (expected %s)\n", elapsed,
                found->to_decimal().c_str(), problem.p.to_decimal().c_str());
  } else {
    std::printf("no factor found in %.3f s (search space too small?)\n",
                elapsed);
    return 1;
  }
  return *found == problem.p ? 0 : 1;
}
