#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "io/blocking.hpp"
#include "io/buffered.hpp"
#include "io/memory.hpp"
#include "io/pipe.hpp"
#include "io/sequence.hpp"
#include "io/stream.hpp"
#include "processes/basic.hpp"

/// Edge cases for the stream stack and channel plumbing that the main io
/// suite does not cover.
namespace dpn::io {
namespace {

TEST(StreamHelpers, PumpMovesEverything) {
  MemoryInputStream in{ByteVector{1, 2, 3, 4, 5, 6, 7}};
  MemoryOutputStream out;
  EXPECT_EQ(pump(in, out, /*chunk_size=*/3), 7u);
  EXPECT_EQ(out.data(), (ByteVector{1, 2, 3, 4, 5, 6, 7}));
}

TEST(StreamHelpers, PumpEmptySourceIsZero) {
  EmptyInputStream in;
  MemoryOutputStream out;
  EXPECT_EQ(pump(in, out), 0u);
}

TEST(StreamHelpers, NullOutputSwallows) {
  NullOutputStream out;
  const ByteVector data(100, 9);
  EXPECT_NO_THROW(out.write({data.data(), data.size()}));
  EXPECT_NO_THROW(out.close());
}

TEST(StreamHelpers, EmptyInputIsAlwaysEof) {
  EmptyInputStream in;
  EXPECT_EQ(in.read(), -1);
  ByteVector buffer(4);
  EXPECT_EQ(in.read_some({buffer.data(), buffer.size()}), 0u);
}

TEST(PipeEdge, GrowNeverShrinks) {
  Pipe pipe{128};
  pipe.grow(64);
  EXPECT_EQ(pipe.capacity(), 128u);
  pipe.grow(256);
  EXPECT_EQ(pipe.capacity(), 256u);
}

TEST(PipeEdge, ZeroLengthOpsAreNoops) {
  Pipe pipe{16};
  ByteVector empty;
  EXPECT_NO_THROW(pipe.write({empty.data(), 0}));
  ByteVector out;
  EXPECT_EQ(pipe.read_some({out.data(), 0}), 0u);
  EXPECT_EQ(pipe.size(), 0u);
}

TEST(PipeEdge, StealFromEmptyIsEmpty) {
  Pipe pipe{16};
  EXPECT_TRUE(pipe.steal_buffer().empty());
}

TEST(PipeEdge, WriteLargerThanCapacityCompletesWithReader) {
  Pipe pipe{4};
  std::jthread reader{[&] {
    ByteVector sink(1024);
    std::size_t total = 0;
    while (total < 100) {
      total += pipe.read_some({sink.data(), sink.size()});
    }
  }};
  const ByteVector big(100, 7);
  EXPECT_NO_THROW(pipe.write({big.data(), big.size()}));
}

TEST(SequenceEdge, PendingCountsQueuedStreams) {
  SequenceInputStream seq;
  EXPECT_EQ(seq.pending(), 0u);
  seq.append(std::make_shared<MemoryInputStream>(ByteVector{1}));
  seq.append(std::make_shared<MemoryInputStream>(ByteVector{2}));
  EXPECT_EQ(seq.pending(), 2u);
  EXPECT_EQ(seq.read(), 1);
  EXPECT_EQ(seq.pending(), 2u);  // current + one queued
  EXPECT_EQ(seq.read(), 2);
  EXPECT_EQ(seq.read(), -1);
  EXPECT_EQ(seq.pending(), 0u);
}

TEST(SequenceEdge, AppendAfterFinishClosesTheLateStream) {
  auto pipe = std::make_shared<Pipe>(8);
  SequenceInputStream seq;  // empty -> immediately finished on first read
  EXPECT_EQ(seq.read(), -1);
  seq.append(std::make_shared<LocalInputStream>(pipe));
  // The late splice was refused and closed: the pipe's writer learns.
  EXPECT_TRUE(pipe->read_closed());
}

TEST(SequenceEdge, OutputSwitchClosingOldDeliversEof) {
  auto pipe = std::make_shared<Pipe>(64);
  SequenceOutputStream seq{std::make_shared<LocalOutputStream>(pipe)};
  const ByteVector data{5, 6};
  seq.write({data.data(), data.size()});
  seq.switch_to(std::make_shared<MemoryOutputStream>(), /*close_old=*/true);
  LocalInputStream reader{pipe};
  ByteVector out(2);
  EXPECT_EQ(reader.read_some({out.data(), 2}), 2u);
  EXPECT_EQ(reader.read(), -1);  // old stream was closed by the switch
}

TEST(BlockingEdge, UnderlyingAccessor) {
  auto inner = std::make_shared<MemoryInputStream>(ByteVector{1});
  BlockingInputStream blocking{inner};
  EXPECT_EQ(blocking.underlying(), inner);
}

/// Counts the discrete write operations the underlying stream receives --
/// each one stands for a pipe-mutex crossing or a syscall.
class CountingOutput final : public OutputStream {
 public:
  void write(ByteSpan data) override {
    ++writes;
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void write_vectored(ByteSpan a, ByteSpan b) override {
    ++writes;
    bytes.insert(bytes.end(), a.begin(), a.end());
    bytes.insert(bytes.end(), b.begin(), b.end());
  }
  void close() override { closed = true; }
  int writes = 0;
  bool closed = false;
  ByteVector bytes;
};

TEST(Buffered, SmallWritesCoalesceIntoOne) {
  auto counting = std::make_shared<CountingOutput>();
  BufferedOutputStream out{counting, 256};
  for (int i = 0; i < 64; ++i) out.write_byte(static_cast<std::uint8_t>(i));
  EXPECT_EQ(counting->writes, 0);  // nothing has crossed yet
  EXPECT_EQ(out.buffered(), 64u);
  out.flush();
  EXPECT_EQ(counting->writes, 1);  // 64 writes became one
  ASSERT_EQ(counting->bytes.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(counting->bytes[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(out.underlying(), counting);
  EXPECT_EQ(out.buffer_size(), 256u);
}

TEST(Buffered, FullBufferDrainsOncePerCapacity) {
  auto counting = std::make_shared<CountingOutput>();
  BufferedOutputStream out{counting, 8};
  for (int i = 0; i < 20; ++i) out.write_byte(0x42);
  EXPECT_EQ(counting->writes, 2);  // drained at 8 and at 16
  EXPECT_EQ(out.buffered(), 4u);
}

TEST(Buffered, OversizedWritePassesThrough) {
  auto counting = std::make_shared<CountingOutput>();
  BufferedOutputStream out{counting, 8};
  const ByteVector small{1, 2, 3};
  const ByteVector big(100, 9);
  out.write({small.data(), small.size()});
  out.write({big.data(), big.size()});  // drains the 3, then passes through
  EXPECT_EQ(counting->writes, 2);
  ASSERT_EQ(counting->bytes.size(), 103u);
  EXPECT_EQ(counting->bytes[2], 3);  // order preserved across the drain
  EXPECT_EQ(counting->bytes[3], 9);
}

TEST(Buffered, VectoredWritesCoalesceToo) {
  auto counting = std::make_shared<CountingOutput>();
  BufferedOutputStream out{counting, 256};
  const ByteVector a{1, 2}, b{3, 4, 5};
  out.write_vectored({a.data(), a.size()}, {b.data(), b.size()});
  out.write_vectored({a.data(), a.size()}, {b.data(), b.size()});
  EXPECT_EQ(counting->writes, 0);
  out.flush();
  EXPECT_EQ(counting->writes, 1);
  EXPECT_EQ(counting->bytes, (ByteVector{1, 2, 3, 4, 5, 1, 2, 3, 4, 5}));
}

TEST(Buffered, CloseFlushesThenClosesUnderlying) {
  auto counting = std::make_shared<CountingOutput>();
  auto out = std::make_shared<BufferedOutputStream>(counting, 64);
  const ByteVector data{7, 8, 9};
  out->write({data.data(), data.size()});
  out->close();
  EXPECT_EQ(counting->bytes, data);  // flush-on-close delivered the tail
  EXPECT_TRUE(counting->closed);
  EXPECT_THROW(out->write({data.data(), data.size()}), IoError);
}

TEST(Buffered, InputReadAheadAndTakeBuffered) {
  auto source = std::make_shared<MemoryInputStream>(
      ByteVector{0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  BufferedInputStream in{source, 8};
  EXPECT_EQ(in.read(), 0);       // refills 8 bytes
  EXPECT_EQ(in.buffered(), 7u);  // 7 unconsumed in the read-ahead
  // The migration protocol's view: the read-ahead is the oldest prefix of
  // what this endpoint has not yet delivered.
  EXPECT_EQ(in.take_buffered(), (ByteVector{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(in.buffered(), 0u);
  EXPECT_EQ(in.read(), 8);  // continues seamlessly from the source
  EXPECT_EQ(in.read(), 9);
  EXPECT_EQ(in.read(), -1);
  EXPECT_EQ(in.underlying(), source);
}

TEST(Buffered, LargeReadBypassesBuffer) {
  auto source =
      std::make_shared<MemoryInputStream>(ByteVector(100, 0x5a));
  BufferedInputStream in{source, 4};
  ByteVector out(100);
  EXPECT_EQ(in.read_some({out.data(), out.size()}), 100u);
  EXPECT_EQ(in.buffered(), 0u);  // never staged through the small buffer
}

TEST(Buffered, LiveCutPreservesByteHistory) {
  // A buffered producer races a migration cut (the exact sequence
  // replace_input_endpoint performs: unwedge, flush, switch, steal).  The
  // pre-cut and post-cut transports concatenated must be the producer's
  // byte history, exactly.
  auto pipe = std::make_shared<Pipe>(64);
  auto seq = std::make_shared<SequenceOutputStream>(
      std::make_shared<LocalOutputStream>(pipe));
  BufferedOutputStream writer{seq, 32};

  std::atomic<bool> go{false};
  std::atomic<bool> cut_done{false};
  std::jthread producer{[&] {
    for (int i = 0; i < 2000; ++i) {
      const std::uint8_t b = static_cast<std::uint8_t>(i & 0xff);
      writer.write({&b, 1});
      if (i == 16) go.store(true);
    }
    // Writes legitimately race the cut (that is what this test checks),
    // but hold the *close* until the cut is done: once set_unbounded
    // unwedges the producer it can otherwise finish and close the
    // sequence before switch_to runs, a shutdown interleaving the
    // migration path never performs.
    while (!cut_done.load()) std::this_thread::yield();
    writer.close();
  }};
  while (!go.load()) std::this_thread::yield();

  auto after = std::make_shared<MemoryOutputStream>();
  pipe->set_unbounded();  // the producer may be wedged in a pipe write
  writer.flush();
  seq->switch_to(after, /*close_old=*/false);
  ByteVector history = pipe->steal_buffer();
  cut_done.store(true);
  producer.join();

  const ByteVector tail = after->take();
  history.insert(history.end(), tail.begin(), tail.end());
  ASSERT_EQ(history.size(), 2000u);
  for (std::size_t i = 0; i < history.size(); ++i) {
    ASSERT_EQ(history[i], static_cast<std::uint8_t>(i & 0xff)) << "at " << i;
  }
}

TEST(PipeEdge, StealAfterCloseReadIsEmpty) {
  // close_read releases the stale storage; a later steal (the migration
  // path racing a cascading close) must deterministically see nothing.
  Pipe pipe{16};
  const ByteVector data{1, 2, 3, 4, 5};
  pipe.write({data.data(), data.size()});
  pipe.close_read();
  EXPECT_TRUE(pipe.steal_buffer().empty());
  EXPECT_EQ(pipe.size(), 0u);
  EXPECT_THROW(pipe.write({data.data(), data.size()}), ChannelClosed);
}

TEST(PipeEdge, VectoredWriteIsOneAtomicAppend) {
  Pipe pipe{16};
  const ByteVector a{1, 2, 3}, b{4, 5};
  pipe.write_vectored({a.data(), a.size()}, {b.data(), b.size()});
  EXPECT_EQ(pipe.size(), 5u);
  ByteVector out(5);
  const std::size_t got = pipe.read_some({out.data(), out.size()});
  EXPECT_EQ(got, 5u);
  EXPECT_EQ(out, (ByteVector{1, 2, 3, 4, 5}));
}

TEST(ChannelEdge, LabelAndCapacityVisibleInState) {
  core::Channel channel{512, "my-channel"};
  EXPECT_EQ(channel.state()->label, "my-channel");
  EXPECT_EQ(channel.state()->capacity, 512u);
  EXPECT_EQ(channel.pipe()->capacity(), 512u);
  EXPECT_FALSE(channel.state()->input_remote);
  EXPECT_FALSE(channel.state()->output_remote);
}

TEST(ChannelEdge, WatchDeduplicatesDiscoveredChannels) {
  core::Network network;
  auto channel = network.make_channel({.capacity = 64, .label = "shared"});
  // The same channel is also reachable through the process's endpoints;
  // start() must not double-count its blocked totals.
  network.add(std::make_shared<processes::Sequence>(0, channel->output(), 4));
  auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();
  network.add(std::make_shared<processes::Collect>(channel->input(), sink));
  network.run();
  EXPECT_EQ(sink->size(), 4u);
  // One entry for the channel in the report, not two.
  const std::string report = network.channel_report();
  std::size_t mentions = 0;
  for (std::size_t pos = report.find("shared"); pos != std::string::npos;
       pos = report.find("shared", pos + 1)) {
    ++mentions;
  }
  EXPECT_EQ(mentions, 1u);
}

}  // namespace
}  // namespace dpn::io
