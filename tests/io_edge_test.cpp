#include <gtest/gtest.h>

#include <thread>

#include "core/channel.hpp"
#include "core/network.hpp"
#include "io/blocking.hpp"
#include "io/memory.hpp"
#include "io/pipe.hpp"
#include "io/sequence.hpp"
#include "io/stream.hpp"
#include "processes/basic.hpp"

/// Edge cases for the stream stack and channel plumbing that the main io
/// suite does not cover.
namespace dpn::io {
namespace {

TEST(StreamHelpers, PumpMovesEverything) {
  MemoryInputStream in{ByteVector{1, 2, 3, 4, 5, 6, 7}};
  MemoryOutputStream out;
  EXPECT_EQ(pump(in, out, /*chunk_size=*/3), 7u);
  EXPECT_EQ(out.data(), (ByteVector{1, 2, 3, 4, 5, 6, 7}));
}

TEST(StreamHelpers, PumpEmptySourceIsZero) {
  EmptyInputStream in;
  MemoryOutputStream out;
  EXPECT_EQ(pump(in, out), 0u);
}

TEST(StreamHelpers, NullOutputSwallows) {
  NullOutputStream out;
  const ByteVector data(100, 9);
  EXPECT_NO_THROW(out.write({data.data(), data.size()}));
  EXPECT_NO_THROW(out.close());
}

TEST(StreamHelpers, EmptyInputIsAlwaysEof) {
  EmptyInputStream in;
  EXPECT_EQ(in.read(), -1);
  ByteVector buffer(4);
  EXPECT_EQ(in.read_some({buffer.data(), buffer.size()}), 0u);
}

TEST(PipeEdge, GrowNeverShrinks) {
  Pipe pipe{128};
  pipe.grow(64);
  EXPECT_EQ(pipe.capacity(), 128u);
  pipe.grow(256);
  EXPECT_EQ(pipe.capacity(), 256u);
}

TEST(PipeEdge, ZeroLengthOpsAreNoops) {
  Pipe pipe{16};
  ByteVector empty;
  EXPECT_NO_THROW(pipe.write({empty.data(), 0}));
  ByteVector out;
  EXPECT_EQ(pipe.read_some({out.data(), 0}), 0u);
  EXPECT_EQ(pipe.size(), 0u);
}

TEST(PipeEdge, StealFromEmptyIsEmpty) {
  Pipe pipe{16};
  EXPECT_TRUE(pipe.steal_buffer().empty());
}

TEST(PipeEdge, WriteLargerThanCapacityCompletesWithReader) {
  Pipe pipe{4};
  std::jthread reader{[&] {
    ByteVector sink(1024);
    std::size_t total = 0;
    while (total < 100) {
      total += pipe.read_some({sink.data(), sink.size()});
    }
  }};
  const ByteVector big(100, 7);
  EXPECT_NO_THROW(pipe.write({big.data(), big.size()}));
}

TEST(SequenceEdge, PendingCountsQueuedStreams) {
  SequenceInputStream seq;
  EXPECT_EQ(seq.pending(), 0u);
  seq.append(std::make_shared<MemoryInputStream>(ByteVector{1}));
  seq.append(std::make_shared<MemoryInputStream>(ByteVector{2}));
  EXPECT_EQ(seq.pending(), 2u);
  EXPECT_EQ(seq.read(), 1);
  EXPECT_EQ(seq.pending(), 2u);  // current + one queued
  EXPECT_EQ(seq.read(), 2);
  EXPECT_EQ(seq.read(), -1);
  EXPECT_EQ(seq.pending(), 0u);
}

TEST(SequenceEdge, AppendAfterFinishClosesTheLateStream) {
  auto pipe = std::make_shared<Pipe>(8);
  SequenceInputStream seq;  // empty -> immediately finished on first read
  EXPECT_EQ(seq.read(), -1);
  seq.append(std::make_shared<LocalInputStream>(pipe));
  // The late splice was refused and closed: the pipe's writer learns.
  EXPECT_TRUE(pipe->read_closed());
}

TEST(SequenceEdge, OutputSwitchClosingOldDeliversEof) {
  auto pipe = std::make_shared<Pipe>(64);
  SequenceOutputStream seq{std::make_shared<LocalOutputStream>(pipe)};
  const ByteVector data{5, 6};
  seq.write({data.data(), data.size()});
  seq.switch_to(std::make_shared<MemoryOutputStream>(), /*close_old=*/true);
  LocalInputStream reader{pipe};
  ByteVector out(2);
  EXPECT_EQ(reader.read_some({out.data(), 2}), 2u);
  EXPECT_EQ(reader.read(), -1);  // old stream was closed by the switch
}

TEST(BlockingEdge, UnderlyingAccessor) {
  auto inner = std::make_shared<MemoryInputStream>(ByteVector{1});
  BlockingInputStream blocking{inner};
  EXPECT_EQ(blocking.underlying(), inner);
}

TEST(ChannelEdge, LabelAndCapacityVisibleInState) {
  core::Channel channel{512, "my-channel"};
  EXPECT_EQ(channel.state()->label, "my-channel");
  EXPECT_EQ(channel.state()->capacity, 512u);
  EXPECT_EQ(channel.pipe()->capacity(), 512u);
  EXPECT_FALSE(channel.state()->input_remote);
  EXPECT_FALSE(channel.state()->output_remote);
}

TEST(ChannelEdge, WatchDeduplicatesDiscoveredChannels) {
  core::Network network;
  auto channel = network.make_channel(64, "shared");
  // The same channel is also reachable through the process's endpoints;
  // start() must not double-count its blocked totals.
  network.add(std::make_shared<processes::Sequence>(0, channel->output(), 4));
  auto sink = std::make_shared<processes::CollectSink<std::int64_t>>();
  network.add(std::make_shared<processes::Collect>(channel->input(), sink));
  network.run();
  EXPECT_EQ(sink->size(), 4u);
  // One entry for the channel in the report, not two.
  const std::string report = network.channel_report();
  std::size_t mentions = 0;
  for (std::size_t pos = report.find("shared"); pos != std::string::npos;
       pos = report.find("shared", pos + 1)) {
    ++mentions;
  }
  EXPECT_EQ(mentions, 1u);
}

}  // namespace
}  // namespace dpn::io
