#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "io/blocking.hpp"
#include "io/data.hpp"
#include "io/memory.hpp"
#include "io/pipe.hpp"
#include "io/sequence.hpp"
#include "support/rng.hpp"

namespace dpn::io {
namespace {

ByteVector bytes_of(std::initializer_list<int> values) {
  ByteVector out;
  for (const int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- Pipe -----------------------------------------------------------------

TEST(Pipe, WriteThenRead) {
  Pipe pipe{16};
  const ByteVector data = bytes_of({1, 2, 3});
  pipe.write({data.data(), data.size()});
  ByteVector out(3);
  EXPECT_EQ(pipe.read_some({out.data(), out.size()}), 3u);
  EXPECT_EQ(out, data);
}

TEST(Pipe, ReadBlocksUntilWrite) {
  Pipe pipe{16};
  std::jthread writer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    const ByteVector data = bytes_of({7});
    pipe.write({data.data(), data.size()});
  }};
  std::uint8_t b = 0;
  EXPECT_EQ(pipe.read_some({&b, 1}), 1u);
  EXPECT_EQ(b, 7);
}

TEST(Pipe, WriteBlocksWhenFull) {
  Pipe pipe{4};
  const ByteVector data = bytes_of({1, 2, 3, 4});
  pipe.write({data.data(), data.size()});
  std::atomic<bool> wrote{false};
  std::jthread writer{[&] {
    const ByteVector more = bytes_of({5});
    pipe.write({more.data(), more.size()});
    wrote.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_FALSE(wrote.load());  // writer is blocked on the full pipe
  ByteVector out(5);
  std::size_t got = 0;
  while (got < 5) got += pipe.read_some({out.data() + got, 5 - got});
  writer.join();
  EXPECT_TRUE(wrote.load());
  EXPECT_EQ(out, bytes_of({1, 2, 3, 4, 5}));
}

TEST(Pipe, CloseWriteDeliversEofAfterDrain) {
  Pipe pipe{16};
  const ByteVector data = bytes_of({1, 2});
  pipe.write({data.data(), data.size()});
  pipe.close_write();
  ByteVector out(2);
  EXPECT_EQ(pipe.read_some({out.data(), 2}), 2u);
  std::uint8_t b = 0;
  EXPECT_EQ(pipe.read_some({&b, 1}), 0u);  // end of stream
  EXPECT_EQ(pipe.read_some({&b, 1}), 0u);  // sticky
}

TEST(Pipe, CloseReadMakesWriteThrow) {
  Pipe pipe{16};
  pipe.close_read();
  const ByteVector data = bytes_of({1});
  EXPECT_THROW(pipe.write({data.data(), data.size()}), ChannelClosed);
}

TEST(Pipe, CloseReadWakesBlockedWriter) {
  Pipe pipe{2};
  const ByteVector data = bytes_of({1, 2});
  pipe.write({data.data(), data.size()});
  std::jthread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    pipe.close_read();
  }};
  const ByteVector more = bytes_of({3});
  EXPECT_THROW(pipe.write({more.data(), more.size()}), ChannelClosed);
}

TEST(Pipe, CloseWriteWakesBlockedReader) {
  Pipe pipe{16};
  std::jthread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    pipe.close_write();
  }};
  std::uint8_t b = 0;
  EXPECT_EQ(pipe.read_some({&b, 1}), 0u);
}

TEST(Pipe, AbortWakesBothSides) {
  Pipe pipe{2};
  const ByteVector data = bytes_of({1, 2});
  pipe.write({data.data(), data.size()});
  std::jthread aborter{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    pipe.abort();
  }};
  const ByteVector more = bytes_of({3});
  EXPECT_THROW(pipe.write({more.data(), more.size()}), Interrupted);
}

TEST(Pipe, GrowUnblocksWriter) {
  Pipe pipe{2};
  const ByteVector data = bytes_of({1, 2});
  pipe.write({data.data(), data.size()});
  std::atomic<bool> wrote{false};
  std::jthread writer{[&] {
    const ByteVector more = bytes_of({3, 4});
    pipe.write({more.data(), more.size()});
    wrote.store(true);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_FALSE(wrote.load());
  pipe.grow(8);
  writer.join();
  EXPECT_TRUE(wrote.load());
  EXPECT_EQ(pipe.size(), 4u);
  EXPECT_EQ(pipe.capacity(), 8u);
}

TEST(Pipe, SetUnboundedUnblocksWriter) {
  Pipe pipe{1};
  const ByteVector a = bytes_of({1});
  pipe.write({a.data(), a.size()});
  std::jthread writer{[&] {
    const ByteVector big(100, 9);
    pipe.write({big.data(), big.size()});
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  pipe.set_unbounded();
  writer.join();
  EXPECT_EQ(pipe.size(), 101u);
}

TEST(Pipe, StealBufferTakesEverythingAndFrees) {
  Pipe pipe{8};
  const ByteVector data = bytes_of({1, 2, 3, 4, 5});
  pipe.write({data.data(), data.size()});
  const ByteVector stolen = pipe.steal_buffer();
  EXPECT_EQ(stolen, data);
  EXPECT_EQ(pipe.size(), 0u);
}

TEST(Pipe, BlockedCountsVisible) {
  Pipe pipe{4};
  EXPECT_EQ(pipe.blocked_readers(), 0u);
  std::jthread reader{[&] {
    std::uint8_t b = 0;
    pipe.read_some({&b, 1});
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{10});
  EXPECT_EQ(pipe.blocked_readers(), 1u);
  const ByteVector data = bytes_of({1});
  pipe.write({data.data(), data.size()});
}

/// Property: any split of a byte sequence across writes and reads, at any
/// capacity, reproduces the sequence exactly (ring wraparound correctness).
class PipeRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipeRoundTrip, PreservesByteSequence) {
  const std::size_t capacity = GetParam();
  Pipe pipe{capacity};
  Xoshiro256 rng{capacity * 7919 + 1};
  ByteVector sent(4096);
  for (auto& b : sent) b = static_cast<std::uint8_t>(rng.next());

  std::jthread writer{[&] {
    Xoshiro256 wrng{capacity};
    std::size_t off = 0;
    while (off < sent.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + wrng.below(97), sent.size() - off);
      pipe.write({sent.data() + off, n});
      off += n;
    }
    pipe.close_write();
  }};

  ByteVector received;
  ByteVector chunk(61);
  for (;;) {
    const std::size_t n = pipe.read_some({chunk.data(), chunk.size()});
    if (n == 0) break;
    received.insert(received.end(), chunk.begin(), chunk.begin() + n);
  }
  EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PipeRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 16, 61, 256, 4096));

// --- Memory streams ---------------------------------------------------------

TEST(MemoryStreams, RoundTrip) {
  MemoryOutputStream out;
  const ByteVector data = bytes_of({1, 2, 3});
  out.write({data.data(), data.size()});
  MemoryInputStream in{out.take()};
  ByteVector read(3);
  EXPECT_EQ(in.read_some({read.data(), 3}), 3u);
  EXPECT_EQ(read, data);
  EXPECT_EQ(in.read(), -1);
}

TEST(MemoryStreams, WriteAfterCloseThrows) {
  MemoryOutputStream out;
  out.close();
  const ByteVector data = bytes_of({1});
  EXPECT_THROW(out.write({data.data(), data.size()}), IoError);
}

TEST(MemoryStreams, PartialReads) {
  MemoryInputStream in{bytes_of({1, 2, 3, 4, 5})};
  ByteVector buffer(2);
  EXPECT_EQ(in.read_some({buffer.data(), 2}), 2u);
  EXPECT_EQ(in.remaining(), 3u);
  EXPECT_EQ(in.read(), 3);
}

// --- read_fully / BlockingInputStream --------------------------------------

TEST(ReadFully, ThrowsOnShortStream) {
  MemoryInputStream in{bytes_of({1, 2})};
  ByteVector buffer(3);
  EXPECT_THROW(read_fully(in, {buffer.data(), 3}), EndOfStream);
}

TEST(BlockingInput, DeliversFullReads) {
  auto pipe = std::make_shared<Pipe>(4);
  BlockingInputStream blocking{std::make_shared<LocalInputStream>(pipe)};
  std::jthread writer{[&] {
    for (int i = 0; i < 10; ++i) {
      const ByteVector one = bytes_of({i});
      pipe->write({one.data(), one.size()});
      std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
  }};
  ByteVector buffer(10);
  EXPECT_EQ(blocking.read_some({buffer.data(), 10}), 10u);  // never short
  for (int i = 0; i < 10; ++i) EXPECT_EQ(buffer[i], i);
}

TEST(BlockingInput, SingleByteReadSeesEof) {
  auto pipe = std::make_shared<Pipe>(4);
  pipe->close_write();
  BlockingInputStream blocking{std::make_shared<LocalInputStream>(pipe)};
  EXPECT_EQ(blocking.read(), -1);
}

// --- SequenceInputStream -----------------------------------------------------

TEST(SequenceInput, ConcatenatesStreams) {
  SequenceInputStream seq{std::make_shared<MemoryInputStream>(bytes_of({1, 2}))};
  seq.append(std::make_shared<MemoryInputStream>(bytes_of({3})));
  seq.append(std::make_shared<MemoryInputStream>(bytes_of({4, 5})));
  ByteVector out;
  int b = 0;
  while ((b = seq.read()) >= 0) out.push_back(static_cast<std::uint8_t>(b));
  EXPECT_EQ(out, bytes_of({1, 2, 3, 4, 5}));
  EXPECT_TRUE(seq.finished());
}

TEST(SequenceInput, EofIsSticky) {
  SequenceInputStream seq{std::make_shared<MemoryInputStream>(bytes_of({1}))};
  EXPECT_EQ(seq.read(), 1);
  EXPECT_EQ(seq.read(), -1);
  seq.append(std::make_shared<MemoryInputStream>(bytes_of({2})));
  EXPECT_EQ(seq.read(), -1);  // a finished sequence stays finished
}

TEST(SequenceInput, SpliceWhileReaderBlocked) {
  // The reconfiguration pattern: the reader is blocked on the current
  // (pipe) stream while another process appends the successor, then
  // closes the pipe.
  auto pipe = std::make_shared<Pipe>(4);
  auto seq = std::make_shared<SequenceInputStream>(
      std::make_shared<LocalInputStream>(pipe));
  std::jthread splicer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    seq->append(std::make_shared<MemoryInputStream>(bytes_of({42})));
    pipe->close_write();
  }};
  EXPECT_EQ(seq->read(), 42);
  EXPECT_EQ(seq->read(), -1);
}

TEST(SequenceInput, CloseClosesAllQueued) {
  auto pipe = std::make_shared<Pipe>(4);
  SequenceInputStream seq{std::make_shared<LocalInputStream>(pipe)};
  seq.close();
  EXPECT_TRUE(pipe->read_closed());
  EXPECT_THROW(seq.read(), IoError);
}

TEST(SequenceInput, EmptySequenceIsEof) {
  SequenceInputStream seq;
  EXPECT_EQ(seq.read(), -1);
}

// --- SequenceOutputStream ---------------------------------------------------

TEST(SequenceOutput, SwitchPreservesOrder) {
  auto first = std::make_shared<MemoryOutputStream>();
  auto second = std::make_shared<MemoryOutputStream>();
  SequenceOutputStream seq{first};
  const ByteVector a = bytes_of({1, 2});
  seq.write({a.data(), a.size()});
  seq.switch_to(second, /*close_old=*/false);
  const ByteVector b = bytes_of({3});
  seq.write({b.data(), b.size()});
  EXPECT_EQ(first->data(), bytes_of({1, 2}));
  EXPECT_EQ(second->data(), bytes_of({3}));
}

TEST(SequenceOutput, WriteAfterCloseThrows) {
  SequenceOutputStream seq{std::make_shared<MemoryOutputStream>()};
  seq.close();
  const ByteVector a = bytes_of({1});
  EXPECT_THROW(seq.write({a.data(), a.size()}), IoError);
  EXPECT_THROW(
      seq.switch_to(std::make_shared<MemoryOutputStream>(), false), IoError);
}

TEST(SequenceOutput, SwitchWaitsForInFlightWrite) {
  // A writer blocked on a full pipe is unwedged by set_unbounded, after
  // which switch_to can proceed -- the protocol used when shipping a
  // consuming endpoint.
  auto pipe = std::make_shared<Pipe>(2);
  auto seq = std::make_shared<SequenceOutputStream>(
      std::make_shared<LocalOutputStream>(pipe));
  std::jthread writer{[&] {
    const ByteVector big(64, 5);
    seq->write({big.data(), big.size()});  // blocks on the tiny pipe
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  pipe->set_unbounded();
  auto target = std::make_shared<MemoryOutputStream>();
  seq->switch_to(target, false);
  writer.join();
  // Everything the writer wrote landed in the pipe, in order, before the
  // switch; nothing leaked into the new stream.
  EXPECT_EQ(pipe->size(), 64u);
  EXPECT_TRUE(target->data().empty());
}

// --- Data streams -----------------------------------------------------------

TEST(DataStreams, PrimitivesRoundTrip) {
  auto sink = std::make_shared<MemoryOutputStream>();
  DataOutputStream out{sink};
  out.write_bool(true);
  out.write_u8(0xab);
  out.write_i16(-1234);
  out.write_i32(-123456789);
  out.write_i64(-1234567890123456789LL);
  out.write_u64(0xfedcba9876543210ULL);
  out.write_f32(1.5f);
  out.write_f64(-2.25e-100);
  out.write_string("kahn");

  DataInputStream in{std::make_shared<MemoryInputStream>(sink->take())};
  EXPECT_TRUE(in.read_bool());
  EXPECT_EQ(in.read_u8(), 0xab);
  EXPECT_EQ(in.read_i16(), -1234);
  EXPECT_EQ(in.read_i32(), -123456789);
  EXPECT_EQ(in.read_i64(), -1234567890123456789LL);
  EXPECT_EQ(in.read_u64(), 0xfedcba9876543210ULL);
  EXPECT_EQ(in.read_f32(), 1.5f);
  EXPECT_EQ(in.read_f64(), -2.25e-100);
  EXPECT_EQ(in.read_string(), "kahn");
}

TEST(DataStreams, ReadPastEndThrows) {
  DataInputStream in{std::make_shared<MemoryInputStream>(bytes_of({1}))};
  EXPECT_THROW(in.read_u32(), EndOfStream);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Value) {
  auto sink = std::make_shared<MemoryOutputStream>();
  DataOutputStream out{sink};
  out.write_varint(GetParam());
  DataInputStream in{std::make_shared<MemoryInputStream>(sink->take())};
  EXPECT_EQ(in.read_varint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                      (1ULL << 32), ~0ULL, (~0ULL) - 1));

TEST(DataStreams, BytesBlobRoundTrip) {
  auto sink = std::make_shared<MemoryOutputStream>();
  DataOutputStream out{sink};
  Xoshiro256 rng{5};
  ByteVector blob(1000);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next());
  out.write_bytes({blob.data(), blob.size()});
  out.write_bytes({});  // empty blob is legal
  DataInputStream in{std::make_shared<MemoryInputStream>(sink->take())};
  EXPECT_EQ(in.read_bytes(), blob);
  EXPECT_TRUE(in.read_bytes().empty());
}

TEST(DataStreams, OverChannelPipe) {
  auto pipe = std::make_shared<Pipe>(8);  // smaller than one i64 burst
  DataOutputStream out{std::make_shared<LocalOutputStream>(pipe)};
  DataInputStream in{std::make_shared<LocalInputStream>(pipe)};
  std::jthread writer{[&] {
    for (std::int64_t i = 0; i < 100; ++i) out.write_i64(i * i);
    out.close();
  }};
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(in.read_i64(), i * i);
  EXPECT_THROW(in.read_i64(), EndOfStream);
}

}  // namespace
}  // namespace dpn::io
